"""Shared reporting + engine knobs for every benchmark harness.

This is *the* one place a bench result leaves the process: every
``benchmarks/bench_e*.py`` and ``perf_report.py`` routes its
human-readable summary through :func:`emit`, which both prints it and
persists it under ``benchmarks/_results/`` so EXPERIMENTS.md can quote
files that are guaranteed current.  (``conftest.py`` re-exports these
for the historical ``from .conftest import emit, once`` form.)

The engine knobs let one environment variable parallelize any sweep
harness without editing it:

- ``REPRO_SWEEP_JOBS=N`` — worker processes for engine-backed sweeps
  (default 1: the serial, byte-identical reference path);
- ``REPRO_SWEEP_CACHE=1`` — arm the on-disk result cache under
  ``.benchmarks/cache/`` (default off under pytest so timing-sensitive
  assertions always measure fresh runs).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro.analysis.cache import ResultCache

RESULTS_DIR = Path(__file__).parent / "_results"
REPO_ROOT = Path(__file__).resolve().parent.parent


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under ``benchmarks/_results``."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run a heavyweight simulation exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def engine_jobs() -> int:
    """Worker count for engine-backed sweeps (``REPRO_SWEEP_JOBS``)."""
    return max(1, int(os.environ.get("REPRO_SWEEP_JOBS", "1")))


def engine_cache() -> Optional[ResultCache]:
    """Result cache if armed via ``REPRO_SWEEP_CACHE=1``, else ``None``."""
    if os.environ.get("REPRO_SWEEP_CACHE", "") not in ("1", "true", "yes"):
        return None
    return ResultCache(root=REPO_ROOT / ".benchmarks" / "cache")
