"""E10 — Section VI-C: independent-set search cost at blockchain scale.

"Line 27 of Algorithm 1 requires to solve the independent set decision
problem, which is known to be NP-hard.  However, for small graphs, e.g.
including only tenth of nodes, it is easy to compute."  We time the
existence check plus lexicographic search on adversarially dense suspect
graphs (every suspicion touching one of ``f`` faulty processes — the
densest graphs reachable under an accurate failure detector) for
``n`` up to 60.
"""

import time

from repro.analysis.report import Table
from repro.graphs.independent_set import has_independent_set, lex_first_independent_set
from repro.graphs.suspect_graph import SuspectGraph

from .conftest import emit

CASES = ((10, 3), (20, 6), (30, 9), (40, 12), (60, 18))


def densest_accurate_graph(n: int, f: int) -> SuspectGraph:
    """Every faulty process suspected by / suspecting everyone."""
    graph = SuspectGraph(n)
    for bad in range(1, f + 1):
        for other in range(1, n + 1):
            if other != bad:
                graph.add_edge(bad, other)
    return graph


def search_all(cases=CASES):
    rows = []
    for n, f in cases:
        graph = densest_accurate_graph(n, f)
        q = n - f
        started = time.perf_counter()
        exists = has_independent_set(graph, q)
        quorum = lex_first_independent_set(graph, q)
        elapsed = time.perf_counter() - started
        rows.append((n, f, graph.edge_count(), exists, min(quorum), elapsed))
    return rows


def test_e10_independent_set_scaling(benchmark):
    rows = benchmark(search_all)

    table = Table(
        ["n", "f", "edges", "IS exists", "quorum min id", "seconds"],
        title="E10 — quorum search cost on densest accuracy-compatible graphs",
    )
    for n, f, edges, exists, min_id, seconds in rows:
        table.add_row(n, f, edges, exists, f"p{min_id}", seconds)
    emit("e10_is_scaling", table.render())

    for n, f, _, exists, min_id, seconds in rows:
        assert exists  # the correct set is always independent
        assert min_id == f + 1  # lex-first avoids the dense faulty prefix
        assert seconds < 2.0  # "easy to compute" at tens of nodes
