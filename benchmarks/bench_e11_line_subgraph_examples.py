"""E11 — Examples 1 and 2 (Section VIII): maximal line subgraphs.

Regenerates the two worked examples on 7-node graphs: the possible-
follower exclusion of a two-edge-path center (Example 1, the paper's
p2), the irrelevance of a new edge landing on such a center, and the
leader strictly increasing when a (leader, possible follower) suspicion
is added (Example 2) — plus the computation cost of the maximal-line-
subgraph search itself.
"""

from repro.analysis.report import Table
from repro.graphs.line_subgraph import (
    leader_of,
    maximal_line_subgraph,
    possible_followers,
)
from repro.graphs.suspect_graph import SuspectGraph

from .conftest import emit


def run_examples():
    rows = []
    # Example 1 family: path 1-2-3 plus edge 4-5 on 7 nodes.
    g1 = SuspectGraph(7, [(1, 2), (2, 3), (4, 5)])
    line1 = maximal_line_subgraph(g1)
    rows.append(("Example 1", sorted(g1.edges()), sorted(line1.edges()),
                 leader_of(line1), sorted(possible_followers(line1))))
    # "A new edge (p2, p5) ... would not change the maximal line subgraph".
    g1b = g1.copy()
    g1b.add_edge(2, 5)
    line1b = maximal_line_subgraph(g1b)
    rows.append(("Example 1 + (2,5)", sorted(g1b.edges()), sorted(line1b.edges()),
                 leader_of(line1b), sorted(possible_followers(line1b))))
    # Example 2 family: a new leader-incident suspicion moves the leader.
    g2 = SuspectGraph(7, [(1, 2), (3, 4)])
    line2 = maximal_line_subgraph(g2)
    leader2 = leader_of(line2)
    follower = min(possible_followers(line2) - {leader2})
    g2b = g2.copy()
    g2b.add_edge(leader2, follower)
    line2b = maximal_line_subgraph(g2b)
    rows.append(("Example 2 before", sorted(g2.edges()), sorted(line2.edges()),
                 leader2, sorted(possible_followers(line2))))
    rows.append((f"Example 2 + ({leader2},{follower})", sorted(g2b.edges()),
                 sorted(line2b.edges()), leader_of(line2b),
                 sorted(possible_followers(line2b))))
    return rows


def test_e11_line_subgraph_examples(benchmark):
    rows = benchmark(run_examples)

    table = Table(
        ["case", "graph edges", "maximal line subgraph", "leader", "possible followers"],
        title="E11 / Examples 1-2 — maximal line subgraphs and possible followers",
    )
    for case, edges, line_edges, leader, followers in rows:
        table.add_row(case, edges, line_edges, f"p{leader}", followers)
    emit("e11_line_subgraph_examples", table.render())

    example1, example1b, example2, example2b = rows
    # Example 1: p2 (center of the two-edge path) is not a possible follower.
    assert 2 not in example1[4]
    # Adding an edge to the P3 center does not change the leader.
    assert example1b[3] == example1[3]
    # Example 2: the (leader, follower) suspicion strictly raises the leader.
    assert example2b[3] > example2[3]
