"""E12 — BChain's external-replacement reconfiguration vs Quorum Selection.

The paper's critique: "Quorum Selection in BChain relies on replacing
potentially faulty processes with new, external processes that are
assumed to be correct."  We subject BChain-lite and the QS-driven XPaxos
stack to the same class of fault (a chain/quorum member that mutes its
forwarding link) and compare reconfigurations, completion, and where the
faulty process ends up.
"""

from repro.analysis.report import Table
from repro.baselines.bchain import build_bchain_cluster
from repro.baselines.bchain_cs import build_bchain_cs_cluster
from repro.failures.adversary import Adversary
from repro.xpaxos.messages import KIND_COMMIT
from repro.xpaxos.system import build_system

from .conftest import emit, once


def run_bchain():
    cluster = build_bchain_cluster(n=7, f=2, clients=1, requests_per_client=15, seed=5)
    adversary = Adversary(cluster.sim)
    adversary.omit_links(3, kinds={"bc.chain"}, start=30.0)
    cluster.run(1200.0)
    return cluster


def run_bchain_cs():
    cluster = build_bchain_cs_cluster(n=7, f=2, clients=1, requests_per_client=15, seed=5)
    adversary = Adversary(cluster.sim)
    adversary.omit_links(3, kinds={"bcs.chain"}, start=30.0)
    cluster.run(1200.0)
    return cluster


def run_qs_xpaxos():
    system = build_system(n=5, f=2, mode="selection", clients=1, seed=5,
                          client_ops=[[("put", f"k{i}", i) for i in range(15)]])
    system.adversary.omit_links(2, dsts={3}, kinds={KIND_COMMIT}, start=30.0)
    system.run(1200.0)
    return system


def test_e12_bchain_vs_quorum_selection(benchmark):
    def run_all():
        return run_bchain(), run_bchain_cs(), run_qs_xpaxos()

    bchain, bchain_cs, xpaxos = once(benchmark, run_all)

    table = Table(
        [
            "system", "fault", "reconfigurations", "completed",
            "faulty handling", "needs external pool",
        ],
        title="E12 — reconfiguration under a muted link: BChain vs Quorum Selection",
    )
    table.add_row(
        "BChain-lite (n=7)", "p3 mutes chain link", bchain.total_rechains(),
        bchain.total_completed(),
        "ejected to standby pool" if 3 not in bchain.replicas[1].chain else "still chained",
        "yes (standbys consumed)",
    )
    cs_chain = bchain_cs.current_chain()
    cs_handling = (
        "off chain" if 3 not in cs_chain
        else "demoted to tail (forwarding-free)" if cs_chain[-1] == 3
        else "unresolved"
    )
    table.add_row(
        "BChain + Chain Selection (n=7)", "p3 mutes chain link",
        bchain_cs.total_reconfigurations(), bchain_cs.total_completed(),
        cs_handling, "no (reorders existing chain)",
    )
    changes = max(r.view_changes for r in xpaxos.correct_replicas())
    final_quorum = xpaxos.correct_replicas()[0].quorum
    table.add_row(
        "XPaxos + QS (n=5)", "p2 mutes COMMIT link to p3", changes,
        xpaxos.total_completed(),
        "link pair split across quorums" if not {2, 3} <= final_quorum else "unresolved",
        "no (reuses existing replicas)",
    )
    emit("e12_bchain_comparison", table.render())

    assert bchain.total_completed() == 15
    assert bchain_cs.total_completed() == 15
    assert xpaxos.total_completed() == 15
    assert 3 not in bchain.replicas[1].chain  # replaced by an external standby
    assert 3 not in cs_chain or cs_chain[-1] == 3
    assert not {2, 3} <= final_quorum         # QS separates the bad link
    assert bchain.total_rechains() <= 2
