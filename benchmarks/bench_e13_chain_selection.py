"""E13 — Chain Selection (extension): churn and epoch behaviour.

The paper's conclusion leaves chain-communicating systems as future
work; this experiment characterizes our Chain Selection extension:

- *churn*: under the same greedy adversary as E3, how many chain changes
  can be forced, split into pure re-orderings (same member set) and
  genuine membership changes — membership churn matches Algorithm 1's
  ``C(f+2,2) - 1`` exactly, with re-orderings on top;
- *viability*: chains survive suspicion graphs that kill every
  independent set, so the epoch advances strictly less often.
"""

from repro.analysis.abstract import greedy_chain_changes, greedy_max_changes
from repro.analysis.bounds import observed_max_changes_claim
from repro.analysis.report import Table
from repro.graphs.chain_path import has_chain
from repro.graphs.independent_set import has_independent_set
from repro.graphs.suspect_graph import SuspectGraph

from .conftest import emit, once

SWEEP = (1, 2, 3, 4)


def run_churn():
    rows = []
    for f in SWEEP:
        n = 2 * f + 2
        chain = greedy_chain_changes(n, f)
        qs = greedy_max_changes(n, f)
        rows.append((f, n, chain, qs))
    return rows


def test_e13a_chain_churn(benchmark):
    rows = once(benchmark, run_churn)

    table = Table(
        [
            "f", "n", "chain changes (total)", "of which reorders",
            "membership changes", "Alg-1 changes", "C(f+2,2)-1",
        ],
        title="E13a — greedy adversary vs Chain Selection (same game as E3)",
    )
    for f, n, chain, qs in rows:
        table.add_row(
            f, n, chain.total_changes,
            chain.total_changes - chain.membership_changes,
            chain.membership_changes, qs, observed_max_changes_claim(f),
        )
    emit("e13a_chain_churn", table.render())

    for f, _, chain, qs in rows:
        assert chain.membership_changes == observed_max_changes_claim(f)
        assert chain.membership_changes == qs
        assert chain.total_changes >= chain.membership_changes
        # The adversary ends cornered outside the chain.
        assert not set(chain.final_chain) & set(range(1, f + 1))


def run_viability():
    """Count random *pre-stabilization* graphs where a chain survives but
    no independent set does.

    With an accurate failure detector every edge touches a faulty
    process and the all-correct independent set always exists — both
    selections are equally viable there.  The interesting regime is the
    inaccurate phase (correct-correct false suspicions before GST): those
    are exactly the graphs that force Algorithm 1 to advance its epoch,
    and where chains — needing only consecutive independence — often
    still exist.
    """
    from repro.util.rand import DeterministicRng

    rng = DeterministicRng(99)
    n, q = 8, 5
    trials, chain_only, both, neither = 200, 0, 0, 0
    for _ in range(trials):
        graph = SuspectGraph(n)
        for a in range(1, n + 1):
            for b in range(a + 1, n + 1):
                if rng.coin(0.18):
                    graph.add_edge(a, b)
        has_is = has_independent_set(graph, q)
        chain = has_chain(graph, q)
        assert chain or not has_is  # IS => chain, structurally
        if chain and not has_is:
            chain_only += 1
        elif chain and has_is:
            both += 1
        else:
            neither += 1
    return trials, chain_only, both, neither


def test_e13b_chain_viability(benchmark):
    trials, chain_only, both, neither = once(benchmark, run_viability)

    table = Table(
        ["outcome", "graphs (of 200 random pre-GST graphs, n=8, q=5)"],
        title="E13b — viability: chains survive denser suspicion graphs",
    )
    table.add_row("independent set exists (chain too)", both)
    table.add_row("chain only (Alg-1 would bump the epoch)", chain_only)
    table.add_row("neither (both bump)", neither)
    emit("e13b_chain_viability", table.render())

    assert both + chain_only + neither == trials
    assert chain_only > 0              # chains strictly more available...
    # ...and an IS never exists without a chain (sorted IS is a chain).
    assert both + chain_only + neither == trials
