"""E14 — stabilization-time distributions across seeds (extension).

E5 compares Quorum Selection with XPaxos' enumeration on single seeds;
this sweep puts distributions behind the claim: over many random
latency schedules, the time of the last view change and the number of
view-change events after the same leader crash, for both policies.
"""

from repro.analysis.report import Table
from repro.analysis.sweeps import sweep
from repro.xpaxos.system import build_system

from .conftest import emit, once

SEEDS = tuple(range(1, 13))
N, F = 5, 2


def metrics_for(seed: int):
    out = {}
    for mode in ("selection", "enumeration"):
        system = build_system(n=N, f=F, mode=mode, clients=1, seed=seed)
        system.adversary.crash(1, at=30.0)
        system.run(900.0)
        assert system.total_completed() == 20
        assert system.histories_consistent()
        vc_times = [e.time for e in system.sim.log.events(kind="xp.viewchange")]
        out[f"{mode}.stabilized_at"] = max(vc_times) if vc_times else 0.0
        out[f"{mode}.view_changes"] = max(
            r.view_changes for r in system.correct_replicas()
        )
    return out


def test_e14_stabilization_sweep(benchmark):
    summaries = once(benchmark, lambda: sweep(metrics_for, SEEDS))

    table = Table(
        ["metric", "mean", "min", "max", "stdev"],
        title=f"E14 — leader crash at t=30, n={N}, f={F}, {len(SEEDS)} seeds",
    )
    for name in sorted(summaries):
        s = summaries[name]
        table.add_row(name, s.mean, s.minimum, s.maximum, s.stdev)
    emit("e14_stabilization_sweep", table.render())

    sel_time = summaries["selection.stabilized_at"]
    enum_time = summaries["enumeration.stabilized_at"]
    sel_changes = summaries["selection.view_changes"]
    enum_changes = summaries["enumeration.view_changes"]
    # Selection stabilizes faster and with fewer interruptions, on
    # average and in the worst observed case.
    assert sel_time.mean < enum_time.mean
    assert sel_time.maximum <= enum_time.maximum
    assert sel_changes.mean < enum_changes.mean
    assert sel_changes.maximum <= enum_changes.minimum + 4  # clear separation
