"""E14 — stabilization-time distributions across seeds (extension).

E5 compares Quorum Selection with XPaxos' enumeration on single seeds;
this sweep puts distributions behind the claim: over many random
latency schedules, the time of the last view change and the number of
view-change events after the same leader crash, for both policies.

The metric runs through the parallel execution engine via the
registered ``e14.stabilization_point`` task — ``REPRO_SWEEP_JOBS=N``
fans the seeds across N worker processes, ``REPRO_SWEEP_CACHE=1`` reuses
on-disk results (DESIGN.md §5.15); both default off, reproducing the
serial path exactly.
"""

from repro.analysis.report import Table
from repro.analysis.sweeps import sweep
from repro.analysis.tasks import e14_stabilization_point

from .conftest import emit, engine_cache, engine_jobs, once

SEEDS = tuple(range(1, 13))
N, F = 5, 2


def test_e14_stabilization_sweep(benchmark):
    summaries = once(
        benchmark,
        lambda: sweep(
            e14_stabilization_point, SEEDS,
            jobs=engine_jobs(), cache=engine_cache(),
        ),
    )

    table = Table(
        ["metric", "mean", "min", "max", "stdev"],
        title=f"E14 — leader crash at t=30, n={N}, f={F}, {len(SEEDS)} seeds",
    )
    for name in sorted(summaries):
        s = summaries[name]
        table.add_row(name, s.mean, s.minimum, s.maximum, s.stdev)
    emit("e14_stabilization_sweep", table.render())

    sel_time = summaries["selection.stabilized_at"]
    enum_time = summaries["enumeration.stabilized_at"]
    sel_changes = summaries["selection.view_changes"]
    enum_changes = summaries["enumeration.view_changes"]
    # Selection stabilizes faster and with fewer interruptions, on
    # average and in the worst observed case.
    assert sel_time.mean < enum_time.mean
    assert sel_time.maximum <= enum_time.maximum
    assert sel_changes.mean < enum_changes.mean
    assert sel_changes.maximum <= enum_changes.minimum + 4  # clear separation
