"""E15 — the epoch-inflation attack and its band defense (extension).

A Byzantine row stamped with an absurd epoch pins its edges through
every epoch advance up to the stamp.  Under the paper-literal graph rule
this livelocks Algorithm 1 whenever a transient correct-correct
suspicion (re-stamped into each new epoch, Algorithm 1 line 29) coexists
with the inflated star: no independent set exists for ~stamp-many
epochs.  The epoch *band* (edge requires ``value <= epoch + slack``)
defuses the attack without discounting any honest suspicion.
"""

from repro.analysis.report import Table
from repro.core.suspicion_matrix import SuspicionMatrix
from repro.failures.strategies import FalseSuspicionInjector
from repro.graphs.independent_set import has_independent_set
from tests.conftest import build_qs_world
from tests.test_epoch_inflation import HUGE, inject_inflated_row

from .conftest import emit, once


def abstract_livelock_probe():
    """How many probe epochs stay non-viable under each semantics."""
    rows = []
    for slack_label, slack in (("paper-literal (None)", None), ("banded (1024)", 1024)):
        matrix = SuspicionMatrix(4)
        for other in (1, 2, 3):
            matrix.mark(4, other, HUGE)
        stuck = 0
        probes = (1, 10, 1000, 10**6, 10**9)
        for epoch in probes:
            matrix.mark(1, 2, epoch)  # the re-stamped correct-correct edge
            graph = matrix.build_suspect_graph(epoch, slack=slack)
            if not has_independent_set(graph, 3):
                stuck += 1
        rows.append((slack_label, len(probes), stuck))
    return rows


def live_run():
    sim, modules = build_qs_world(4, 1)
    sim.at(10.0, lambda: inject_inflated_row(sim, 4, 4))
    sim.at(20.0, lambda: FalseSuspicionInjector(modules[1]).suspect(2))
    sim.run_until(150.0)
    return sim, modules


def test_e15_epoch_inflation_defense(benchmark):
    def run():
        return abstract_livelock_probe(), live_run()

    probe_rows, (sim, modules) = once(benchmark, run)

    table = Table(
        ["graph semantics", "probe epochs", "non-viable (livelocked)"],
        title="E15a — inflated star (stamp 10^9) + re-stamped correct edge, n=4 f=1",
    )
    for label, probes, stuck in probe_rows:
        table.add_row(label, probes, stuck)

    live = Table(
        ["metric", "value"],
        title="E15b — live run with the band defense (slack 1024)",
    )
    live.add_row("final epoch at correct processes", modules[1].epoch)
    live.add_row("scheduler steps (whole run)", sim.scheduler.steps_executed)
    live.add_row("final quorum", modules[3].qlast)
    emit("e15_epoch_inflation", table.render() + "\n\n" + live.render())

    literal, banded = probe_rows
    assert literal[2] == literal[1]   # every probe epoch livelocked
    # With the band, only the probe AT the stamp itself (epoch 10^9, where
    # the stamps are genuinely current and deserve to count) is blocked;
    # real systems never get near it because no earlier epoch advances.
    assert banded[2] == 1
    assert modules[1].epoch == 1      # live system never even bumps
    assert sim.scheduler.steps_executed < 20_000
    assert modules[3].qlast == frozenset({1, 3, 4})
