"""E16 — leader batching: amortizing agreement cost (extension).

The active-quorum design already drops ~1/3-1/2 of the inter-replica
messages (E7); batching multiplies the effect by amortizing one slot's
PREPARE/COMMIT exchange over many requests.  Sweep the batch size under
a fixed 4-client load and report per-request agreement messages and mean
latency (batching trades a little latency for message efficiency).
"""

from repro.analysis.report import Table
from repro.xpaxos.system import build_system

from .conftest import emit, once

BATCHES = (1, 2, 4, 8)
CLIENTS = 8
REQUESTS = CLIENTS * 10


def run_sweep():
    rows = []
    for batch_size in BATCHES:
        window = 0.0 if batch_size == 1 else 1.0
        system = build_system(
            n=5, f=2, clients=CLIENTS, seed=7,
            client_ops=[
                [("put", f"k{c}-{i}", i) for i in range(10)] for c in range(CLIENTS)
            ],
            batch_size=batch_size, batch_window=window,
        )
        system.run(800.0)
        assert system.total_completed() == REQUESTS
        assert system.histories_consistent()
        messages = system.sim.stats.total_sent(["xp.prepare", "xp.commit"])
        latencies = [
            entry[3]
            for client in system.clients.values()
            for entry in client.completed
        ]
        slots = len(system.replicas[1].executed_certs)
        rows.append(
            (
                batch_size, slots, messages, messages / REQUESTS,
                sum(latencies) / len(latencies),
            )
        )
    return rows


def test_e16_batching(benchmark):
    rows = once(benchmark, run_sweep)

    table = Table(
        ["batch size", "slots used", "agreement msgs", "msgs/request", "mean latency"],
        title=f"E16 — batching sweep ({CLIENTS} clients x 20 puts, n=5, f=2)",
    )
    for batch_size, slots, messages, per_request, latency in rows:
        table.add_row(batch_size, slots, messages, per_request, latency)
    emit("e16_batching", table.render())

    per_request = [row[3] for row in rows]
    assert per_request[0] == max(per_request)       # batch 1 is the ceiling
    assert per_request[-1] < per_request[0] * 0.75  # batching pays off
    # Closed-loop clients cap the effective batch at the in-flight
    # concurrency, so the curve plateaus rather than dropping 1/batch.
    slots = [row[1] for row in rows]
    assert slots[0] == REQUESTS and slots[-1] < REQUESTS
