"""E17 — Quorum Selection at consortium scale (extension).

Section VI-C positions Quorum Selection for "consortium or permissioned
blockchains" with "tenths of nodes".  This experiment scales ``n`` up to
30 processes (f = n/5) with the full stack — heartbeats, gossiped
suspicion matrix, independent-set search — crashes one default-quorum
member, and reports convergence time, quorum changes, gossip traffic,
and wall-clock cost of the run.
"""

import time

from repro.analysis.report import Table
from repro.core.spec import agreement_holds, no_suspicion_holds
from tests.conftest import build_qs_world

from .conftest import emit, once

CASES = ((5, 2), (10, 3), (15, 4), (20, 5), (30, 6))


def run_case(n: int, f: int):
    started = time.perf_counter()
    sim, modules = build_qs_world(n, f, seed=7)
    sim.at(10.0, lambda: sim.host(1).crash())
    sim.run_until(120.0)
    wall = time.perf_counter() - started
    correct = [modules[p] for p in sim.pids if p != 1]
    change_times = [
        e.time for e in sim.log.events(kind="qs.quorum") if e.process != 1
    ]
    converged_at = max(change_times) if change_times else 0.0
    updates = sim.stats.sent_by_kind.get("qs.update", 0)
    return {
        "n": n,
        "f": f,
        "agree": agreement_holds(correct),
        "no_suspicion": no_suspicion_holds(correct),
        "changes": max(m.total_quorums_issued() for m in correct),
        "converged_at": converged_at,
        "updates": updates,
        "wall_seconds": wall,
        "final_min": min(correct[0].qlast),
    }


def test_e17_scalability(benchmark):
    rows = once(benchmark, lambda: [run_case(n, f) for n, f in CASES])

    table = Table(
        [
            "n", "f", "quorum changes", "converged at (sim t)",
            "UPDATE msgs", "wall seconds", "agree",
        ],
        title="E17 — crash of p1 at t=10, full stack, consortium scale",
    )
    for row in rows:
        table.add_row(
            row["n"], row["f"], row["changes"], row["converged_at"],
            row["updates"], row["wall_seconds"], row["agree"],
        )
    emit("e17_scalability", table.render())

    for row in rows:
        assert row["agree"] and row["no_suspicion"]
        # Suspicions of the crashed member trickle in from each peer; the
        # no-suspicion property forces a change per new in-quorum edge,
        # so a single crash costs up to ~f+1 interim quorums (observed:
        # exactly f+1 here) before settling.
        assert 1 <= row["changes"] <= row["f"] + 2
        assert row["converged_at"] < 30.0   # a few rounds after the crash
        assert row["final_min"] == 2        # p1 excluded, rest shift in
    # Convergence time stays flat as n grows (gossip is round-bounded,
    # Lemma 1); only traffic and CPU grow.
    times = [row["converged_at"] for row in rows]
    assert max(times) - min(times) < 10.0
