"""E17 — Quorum Selection at consortium scale (extension).

Section VI-C positions Quorum Selection for "consortium or permissioned
blockchains" with "tenths of nodes".  This experiment scales ``n`` up to
30 processes (f = n/5) with the full stack — heartbeats, gossiped
suspicion matrix, independent-set search — crashes one default-quorum
member, and reports convergence time, quorum changes, gossip traffic,
and wall-clock cost of the run.

The cases dispatch through the parallel execution engine as the
registered ``e21.hotpath_case`` task (which *is* the E17 scenario, plus
wall clock and hot-path counters); ``REPRO_SWEEP_JOBS=N`` runs them in
N worker processes, default 1 = in-process serial.
"""

from repro.analysis.exec import ParallelExecutor, TaskSpec
from repro.analysis.report import Table
from repro.analysis.tasks import e21_hotpath_case

from .conftest import emit, engine_jobs, once

CASES = ((5, 2), (10, 3), (15, 4), (20, 5), (30, 6))


def run_cases():
    specs = [
        TaskSpec.for_function(e21_hotpath_case, seed=7, n=n, f=f, repeats=1)
        for n, f in CASES
    ]
    outcomes = ParallelExecutor(jobs=engine_jobs(), chunk_size=1).run(specs)
    rows = []
    for outcome in outcomes:
        assert outcome.ok, outcome.describe_error()
        rows.append(outcome.value)
    return rows


def test_e17_scalability(benchmark):
    rows = once(benchmark, run_cases)

    table = Table(
        [
            "n", "f", "quorum changes", "converged at (sim t)",
            "UPDATE msgs", "wall seconds", "agree",
        ],
        title="E17 — crash of p1 at t=10, full stack, consortium scale",
    )
    for row in rows:
        table.add_row(
            row["n"], row["f"], row["changes"], row["converged_at"],
            row["updates"], row["wall_seconds"], row["agree"],
        )
    emit("e17_scalability", table.render())

    for row in rows:
        assert row["agree"] and row["no_suspicion"]
        # Suspicions of the crashed member trickle in from each peer; the
        # no-suspicion property forces a change per new in-quorum edge,
        # so a single crash costs up to ~f+1 interim quorums (observed:
        # exactly f+1 here) before settling.
        assert 1 <= row["changes"] <= row["f"] + 2
        assert row["converged_at"] < 30.0   # a few rounds after the crash
        assert row["final_min"] == 2        # p1 excluded, rest shift in
    # Convergence time stays flat as n grows (gossip is round-bounded,
    # Lemma 1); only traffic and CPU grow.
    times = [row["converged_at"] for row in rows]
    assert max(times) - min(times) < 10.0
