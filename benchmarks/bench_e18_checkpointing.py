"""E18 — checkpointing: bounded state transfer (extension).

Without log compaction every view change ships one commit certificate
per slot ever committed; with quorum-certified checkpoints the transfer
is one snapshot plus at most ``interval`` live certificates.  Measure
the certificate-log length and the catch-up mechanism of a previously
passive replica joining the quorum after a long run.
"""

from repro.analysis.report import Table
from repro.xpaxos.system import build_system

from .conftest import emit, once

REQUESTS = 60


def run_variant(checkpoint_interval):
    system = build_system(
        n=5, f=2, mode="selection", clients=3, seed=9,
        client_ops=[[("put", f"k{c}-{i}", i) for i in range(20)] for c in range(3)],
        client_think_time=3.0,
        checkpoint_interval=checkpoint_interval,
    )
    system.adversary.crash(1, at=80.0)  # forces p4/p5 to join and catch up
    system.run(1500.0)
    assert system.total_completed() == REQUESTS
    assert system.histories_consistent()
    active = system.replicas[2]
    return {
        "interval": checkpoint_interval or "-",
        "live_certs": len(active.executed_certs),
        "checkpoints": active.checkpoints_made,
        "snapshot_adoptions": system.sim.log.count("xp.snapshot-adopted"),
        "view_changes": max(r.view_changes for r in system.correct_replicas()),
        "executed": len(active.executed),
    }


def test_e18_checkpointing(benchmark):
    rows = once(benchmark, lambda: [run_variant(None), run_variant(10)])

    table = Table(
        [
            "checkpoint interval", "live certs at run end", "checkpoints",
            "snapshot adoptions", "view changes", "executed",
        ],
        title=f"E18 — log compaction under a leader crash ({REQUESTS} requests, n=5, f=2)",
    )
    for row in rows:
        table.add_row(
            row["interval"], row["live_certs"], row["checkpoints"],
            row["snapshot_adoptions"], row["view_changes"], row["executed"],
        )
    emit("e18_checkpointing", table.render())

    plain, compacted = rows
    assert plain["live_certs"] == plain["executed"]       # one cert per slot forever
    assert compacted["live_certs"] <= 10                  # bounded by the interval
    assert compacted["checkpoints"] >= 4
    assert compacted["snapshot_adoptions"] >= 1           # catch-up via snapshot
    assert plain["snapshot_adoptions"] == 0
