"""E19 — QS-driven active-quorum replication at n = 3f+1 (extension).

The introduction's Distler et al. argument: PBFT-class systems
(``n = 3f+1``) can run agreement inside a selected quorum of ``n - f =
2f+1`` well-functioning replicas and drop ~1/3 of their messages —
*if* something maintains that quorum as failures occur.  Quorum
Selection is that something.  This experiment runs the generic
active-quorum replica at ``n = 3f+1`` under Quorum Selection and
compares messaging with full-broadcast PBFT, then drives it through a
crash plus a per-link omission to show the quorum maintenance working.
"""

from repro.analysis.report import Table
from repro.baselines.pbft import build_pbft_cluster
from repro.xpaxos.messages import KIND_COMMIT
from repro.xpaxos.system import build_system

from .conftest import emit, once

F = 2
N = 3 * F + 1
REQUESTS = 40


def run_pbft_full():
    cluster = build_pbft_cluster(n=N, f=F, clients=1, requests_per_client=REQUESTS, seed=7)
    cluster.run(40.0 * REQUESTS)
    assert cluster.total_completed() == REQUESTS
    return cluster.inter_replica_messages() / REQUESTS


def run_qs_quorum_fault_free():
    system = build_system(n=N, f=F, mode="selection", clients=1, seed=7,
                          client_ops=[[("put", f"k{i}", i) for i in range(REQUESTS)]])
    system.run(1200.0)
    assert system.total_completed() == REQUESTS
    messages = system.sim.stats.total_sent(["xp.prepare", "xp.commit"])
    return messages / REQUESTS


def run_qs_quorum_faulty():
    system = build_system(
        n=N, f=F, mode="selection", clients=2, seed=9, client_think_time=5.0,
        client_ops=[[("put", f"k{c}-{i}", i) for i in range(20)] for c in range(2)],
    )
    system.adversary.crash(1, at=30.0)
    system.adversary.omit_links(3, dsts={5}, kinds={KIND_COMMIT}, start=80.0)
    system.run(1500.0)
    return system


def test_e19_rebft_configuration(benchmark):
    def run_all():
        return run_pbft_full(), run_qs_quorum_fault_free(), run_qs_quorum_faulty()

    pbft_msgs, qs_msgs, faulty_system = once(benchmark, run_all)

    final_quorum = faulty_system.correct_replicas()[0].quorum
    table = Table(
        ["configuration", "value"],
        title=f"E19 — n = 3f+1 = {N}: full-broadcast PBFT vs QS-driven active quorum",
    )
    table.add_row("PBFT full broadcast: msgs/request", pbft_msgs)
    table.add_row("QS active quorum (2f+1): msgs/request", qs_msgs)
    table.add_row("message reduction", 1 - qs_msgs / pbft_msgs)
    table.add_row("faulty run completed", faulty_system.total_completed())
    table.add_row("faulty run safe", faulty_system.histories_consistent())
    table.add_row("final quorum (crash p1, omit p3->p5)", final_quorum)
    emit("e19_rebft_configuration", table.render())

    # The active-quorum pattern uses dramatically fewer messages...
    assert qs_msgs < pbft_msgs * 0.5
    # ...and Quorum Selection keeps it live and safe through the faults.
    assert faulty_system.total_completed() == REQUESTS
    assert faulty_system.histories_consistent()
    assert 1 not in final_quorum
    assert not {3, 5} <= final_quorum
