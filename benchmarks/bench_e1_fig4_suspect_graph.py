"""E1 — Figure 4: suspect graphs across epochs.

Reconstructs the figure's scenario on 5 processes: in epoch 2 the
recorded suspicions leave no independent set of size 3; raising the epoch
to 3 drops the (p3, p4) edge and the sets {p1,p3,p4} and {p3,p4,p5}
become independent, with {p1,p3,p4} chosen lexicographically.
"""

from repro.analysis.report import Table
from repro.core.suspicion_matrix import SuspicionMatrix
from repro.graphs.independent_set import (
    all_independent_sets,
    has_independent_set,
    lex_first_independent_set,
)

from .conftest import emit, once


def build_matrix() -> SuspicionMatrix:
    matrix = SuspicionMatrix(5)
    matrix.mark(1, 2, 3)
    matrix.mark(2, 5, 3)
    matrix.mark(1, 5, 3)
    matrix.mark(3, 4, 2)
    return matrix


def test_e1_fig4_epochs(benchmark):
    matrix = build_matrix()

    def run():
        rows = []
        for epoch in (2, 3):
            graph = matrix.build_suspect_graph(epoch)
            exists = has_independent_set(graph, 3)
            chosen = lex_first_independent_set(graph, 3)
            sets = [tuple(sorted(s)) for s in all_independent_sets(graph, 3)]
            rows.append((epoch, sorted(graph.edges()), exists, chosen, sets))
        return rows

    rows = once(benchmark, run)

    table = Table(
        ["epoch", "edges", "IS of size 3?", "selected quorum", "all size-3 sets"],
        title="E1 / Figure 4 — suspect graph per epoch (n=5, q=3)",
    )
    for epoch, edges, exists, chosen, sets in rows:
        table.add_row(epoch, edges, exists, chosen or "-", sets)
    emit("e1_fig4", table.render())

    epoch2, epoch3 = rows
    assert epoch2[2] is False  # paper: "no independent set ... in epoch 2"
    assert epoch3[2] is True
    assert epoch3[3] == frozenset({1, 3, 4})
    assert (1, 3, 4) in epoch3[4] and (3, 4, 5) in epoch3[4]
