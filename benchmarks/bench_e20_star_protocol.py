"""E20 — the star protocol: Section VIII's pattern, end to end (extension).

Follower Selection exists for applications "where a single leader
communicates with several followers, but followers do not directly
communicate with each other".  This experiment runs exactly such an
application and measures:

(a) per-request message cost — linear ``3 (q-1)`` on the star vs the
    quadratic COMMIT exchange of the XPaxos pattern at the same scale;
(b) reconfiguration churn under a leader-hunting adversary — Follower
    Selection's ``O(f)`` (Theorem 9) observed at the *application* level,
    with the service staying available throughout.
"""

from repro.analysis.bounds import thm9_per_epoch_bound
from repro.analysis.report import Table
from repro.failures.strategies import FalseSuspicionInjector
from repro.leadercentric import build_star_system
from repro.xpaxos.system import build_system

from .conftest import emit, once

F = 2
N = 3 * F + 1  # 7, quorum of 5
REQUESTS = 20


def run_message_comparison():
    star = build_star_system(n=N, f=F, clients=1, seed=7,
                             client_ops=[[("put", f"k{i}", i) for i in range(REQUESTS)]])
    star.run(600.0)
    assert star.total_completed() == REQUESTS
    xp = build_system(n=N, f=F, mode="selection", clients=1, seed=7,
                      client_ops=[[("put", f"k{i}", i) for i in range(REQUESTS)]])
    xp.run(600.0)
    assert xp.total_completed() == REQUESTS
    xp_msgs = xp.sim.stats.total_sent(["xp.prepare", "xp.commit"])
    return star.star_messages() / REQUESTS, xp_msgs / REQUESTS


def run_leader_hunt():
    system = build_star_system(n=N, f=F, clients=1, seed=9, client_retry=20.0,
                               client_ops=[[("put", f"h{i}", i) for i in range(REQUESTS)]])
    faulty = {6, 7}
    for pid in faulty:
        system.adversary.corrupt(pid)
    fired = []

    def hunt():
        modules = system.fs_modules
        correct = [modules[p] for p in range(1, N + 1) if p not in faulty]
        leaders = {m.leader for m in correct}
        if len(leaders) == 1 and all(m.stable for m in correct):
            leader = leaders.pop()
            for bad in sorted(faulty):
                if leader != bad and modules[bad].matrix.get(bad, leader) < modules[bad].epoch:
                    FalseSuspicionInjector(modules[bad]).suspect(leader)
                    fired.append((system.sim.now, bad, leader))
                    break
        system.sim.scheduler.schedule(2.0, hunt, label="leader-hunt")

    system.sim.at(2.0, hunt, label="leader-hunt")
    system.run(2000.0)
    return system, fired


def test_e20_star_protocol(benchmark):
    def run_all():
        return run_message_comparison(), run_leader_hunt()

    (star_msgs, xp_msgs), (hunted, fired) = once(benchmark, run_all)

    reconfigurations = max(r.reconfigurations for r in hunted.correct_replicas())
    table = Table(
        ["metric", "value"],
        title=f"E20 — star protocol on Follower Selection (n={N}, f={F}, q={N - F})",
    )
    table.add_row("star msgs/request (3(q-1))", star_msgs)
    table.add_row("XPaxos-pattern msgs/request ((q-1)+(q-1)^2)", xp_msgs)
    table.add_row("leader-hunt: false suspicions fired", len(fired))
    table.add_row("leader-hunt: reconfigurations", reconfigurations)
    table.add_row("Theorem 9 bound (3f+1)", thm9_per_epoch_bound(F))
    table.add_row("leader-hunt: requests completed", hunted.total_completed())
    table.add_row("final config", hunted.current_config())
    emit("e20_star_protocol", table.render())

    assert star_msgs == 3 * (N - F - 1)
    assert star_msgs < xp_msgs
    assert reconfigurations <= thm9_per_epoch_bound(F)
    assert hunted.total_completed() == REQUESTS
    assert hunted.histories_consistent()
    # The adversary ran out of moves: the final leader is correct.
    assert hunted.current_config()[0] not in {6, 7}
