"""E21 — UPDATE hot path: incremental graphs + memoized quorum search.

The seed implementation rebuilt the O(n²) suspect graph and re-ran the
independent-set search on *every* matrix-changing UPDATE.  This PR makes
the matrix maintain the current epoch's graph incrementally (monotone
entries ⇒ one edge per write) and memoizes the search under a
``(graph uid, graph version, epoch, q)`` key (DESIGN.md §5.13).

This benchmark re-runs the E17 consortium-scale scenario on the
optimized stack and asserts:

- every E17 correctness invariant still holds (same quorum-change
  counts, convergence times, surviving quorum) — the optimization is
  behaviour-preserving by construction and by the equivalence tests in
  ``tests/test_incremental_equivalence.py``;
- the incremental machinery is actually engaged (graph reuses dominate
  builds; incremental edge updates occurred);
- the n=30 case beats the recorded seed wall with comfortable margin.
  The acceptance target is ≥5× vs the seed's ~4.7-5.5s; the assertion
  floor is 2× so CPU-contention noise on shared runners cannot flake the
  suite — the emitted table and BENCH_hotpath.json report the real ratio
  (typically 4-5× on the baseline machine).

Writes the machine-readable report to ``BENCH_hotpath.json`` at the repo
root (checked in) and the human-readable table to ``_results/``.
"""

from .conftest import emit, once
from .perf_report import SEED_BASELINE_WALL, render_table, write_report


def test_e21_update_hotpath(benchmark):
    report = once(benchmark, lambda: write_report(repeats=2))
    rows = report["cases"]

    emit("e21_update_hotpath", render_table(report))

    # Invariants were asserted per-case inside write_report(); here we pin
    # the headline claim: the big case is decisively faster than the seed.
    big = next(row for row in rows if row["n"] == 30)
    assert big["wall_seconds"] < SEED_BASELINE_WALL[30] / 2
    # And the hot path is structurally different, not just luckily faster:
    hp = big["hotpath"]
    assert hp["graph_reuses"] > hp["graph_builds"]
    assert hp["incremental_edge_updates"] > 0
