"""E22 — QS convergence on lossy channels (extension).

The paper's Lemma 1 assumes reliable channels.  This experiment re-runs
the E17 crash scenario (n=10, f=3, crash of p1 at t=10) on chaotic
channels — message drop swept over {0.0, 0.1, 0.2, 0.3} with duplication
0.1 and reordering 0.2 throughout — with both countermeasures armed:
:class:`ReliableTransport` under UPDATE gossip and periodic anti-entropy
digest sync (DESIGN.md §5.14).  For every grid point and seed the final
per-process quorum and epoch must equal the reliable-channel reference
run of the same seed; the table reports what the robustness layer paid
for that (retransmissions, duplicates suppressed, anti-entropy repairs)
as loss climbs.

Writes the machine-readable report to ``BENCH_lossy_gossip.json`` at the
repo root (checked in) and the human-readable table to ``_results/``.

The per-point metric is the registered ``e22.lossy_point`` engine task
(:mod:`repro.analysis.tasks`); ``REPRO_SWEEP_JOBS``/``REPRO_SWEEP_CACHE``
parallelize and cache the grid without touching this harness.
"""

import json
from pathlib import Path

from repro.analysis.report import Table
from repro.analysis.sweeps import grid_sweep
from repro.analysis.tasks import e22_lossy_point

from .conftest import emit, engine_cache, engine_jobs, once

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_lossy_gossip.json"

N, F = 10, 3
BASE_TIMEOUT = 24.0   # generous FD timeout: no false suspicions under loss
HORIZON = 200.0
ANTI_ENTROPY_PERIOD = 5.0
DROP_GRID = (0.0, 0.1, 0.2, 0.3)
DUPLICATE, REORDER = 0.1, 0.2
SEEDS = (3, 7, 11)


def test_e22_lossy_gossip(benchmark):
    # One kwargs dict per grid point; the scenario constants ride along so
    # the engine's cache key captures the full input tuple.
    grid = [
        dict(
            drop=drop, duplicate=DUPLICATE, reorder=REORDER, n=N, f=F,
            base_timeout=BASE_TIMEOUT, horizon=HORIZON,
            anti_entropy_period=ANTI_ENTROPY_PERIOD,
        )
        for drop in DROP_GRID
    ]
    results = once(
        benchmark,
        lambda: grid_sweep(
            e22_lossy_point, grid, SEEDS,
            jobs=engine_jobs(), cache=engine_cache(),
        ),
    )

    table = Table(
        [
            "drop", "converged (sim t, mean)", "msgs lost (mean)",
            "retransmits (mean)", "dups suppressed (mean)",
            "AE repairs (mean)", "matches reference",
        ],
        title=(
            "E22 — crash of p1 at t=10, n=10 f=3, chaotic channels "
            f"(dup={DUPLICATE}, reorder={REORDER}), seeds {SEEDS}"
        ),
    )
    for point, summaries in results:
        table.add_row(
            point["drop"],
            round(summaries["converged_at"].mean, 1),
            round(summaries["messages_lost"].mean, 1),
            round(summaries["retransmissions"].mean, 1),
            round(summaries["duplicates_suppressed"].mean, 1),
            round(summaries["ae_rows_applied"].mean, 1),
            f"{int(sum(summaries['matches_reference'].values))}/{len(SEEDS)}",
        )
    emit("e22_lossy_gossip", table.render())

    report = {
        "benchmark": "E22 — lossy-channel gossip robustness (E17 scenario)",
        "scenario": (
            f"crash p1 at t=10, run to t={HORIZON:g}, n={N}, f={F}, "
            f"base_timeout={BASE_TIMEOUT:g}, anti_entropy_period="
            f"{ANTI_ENTROPY_PERIOD:g}, duplicate={DUPLICATE}, "
            f"reorder={REORDER}, seeds={list(SEEDS)}"
        ),
        "points": [
            {
                "drop": point["drop"],
                "metrics": {
                    name: {
                        "mean": summary.mean,
                        "min": summary.minimum,
                        "max": summary.maximum,
                        "values": list(summary.values),
                    }
                    for name, summary in sorted(summaries.items())
                },
            }
            for point, summaries in results
        ],
        "notes": (
            "matches_reference is 1.0 when the final (quorum, epoch) of "
            "every correct process equals the reliable-channel run of the "
            "same seed — the headline claim is mean 1.0 at every drop "
            "rate.  Retransmissions and AE repairs show the robustness "
            "layer working harder as loss climbs; runs are deterministic "
            "per seed."
        ),
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    # The headline claim: loss, duplication, and reordering delayed, but
    # never changed, what the protocol decided — at every drop rate, for
    # every seed.
    for point, summaries in results:
        assert summaries["matches_reference"].mean == 1.0, (
            f"diverged from reliable reference at drop={point['drop']}"
        )
    # And the countermeasures visibly engage once the channel is lossy.
    lossiest = results[-1][1]
    assert lossiest["messages_lost"].minimum > 0
    assert lossiest["retransmissions"].minimum > 0
