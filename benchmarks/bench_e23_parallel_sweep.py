"""E23 — parallel sweep engine: equal results, faster walls, warm cache.

The engine's whole contract (DESIGN.md §5.15) is that parallelism and
caching are *invisible* in the results: the simulator is deterministic
per seed, so ``jobs=N`` must produce **exactly equal** results to the
serial path — equality, not tolerance — and a warm cache must serve the
identical values without simulating anything.

This benchmark runs the E17 crash grid three ways and records all three
acceptance numbers in ``BENCH_parallel_sweep.json`` (checked in):

1. serial (``jobs=1``, no cache) — the byte-identical reference path;
2. parallel cold (``jobs=4``, empty cache) — asserts result equality,
   records the wall-clock speedup (asserted ≥ 2× only on hosts with
   ≥ 4 CPUs; on smaller boxes the measured ratio is recorded with the
   CPU count so the number is honest, not flaky);
3. parallel warm (``jobs=4``, same cache) — asserts equality again and
   a **100% hit rate**: zero simulations on the re-run.

The grid's trace_fingerprint metric folds the SHA-256 of each run's
quorum-change trace into the compared values, so "equal" here means the
full behaviour matched, not just the headline statistics.
"""

import json
import os
import shutil
import time
from pathlib import Path

from repro.analysis.cache import ResultCache
from repro.analysis.report import Table
from repro.analysis.sweeps import grid_sweep
from repro.analysis.tasks import e17_crash_case

from .conftest import emit, once

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_parallel_sweep.json"
CACHE_DIR = REPO_ROOT / ".benchmarks" / "cache" / "e23"

CASES = ((5, 2), (10, 3), (15, 4), (20, 5))
SEEDS = (3, 7, 11)
JOBS = 4


def _grid():
    return [dict(n=n, f=f) for n, f in CASES]


def run_three_ways():
    """Serial, parallel-cold, parallel-warm over the same E17 grid."""
    shutil.rmtree(CACHE_DIR, ignore_errors=True)

    started = time.perf_counter()
    serial = grid_sweep(e17_crash_case, _grid(), SEEDS)
    serial_wall = time.perf_counter() - started

    cold_cache = ResultCache(root=CACHE_DIR)
    started = time.perf_counter()
    parallel = grid_sweep(e17_crash_case, _grid(), SEEDS,
                          jobs=JOBS, cache=cold_cache)
    parallel_wall = time.perf_counter() - started

    warm_cache = ResultCache(root=CACHE_DIR)
    started = time.perf_counter()
    warm = grid_sweep(e17_crash_case, _grid(), SEEDS,
                      jobs=JOBS, cache=warm_cache)
    warm_wall = time.perf_counter() - started

    return {
        "serial": serial,
        "parallel": parallel,
        "warm": warm,
        "serial_wall": serial_wall,
        "parallel_wall": parallel_wall,
        "warm_wall": warm_wall,
        "cold_stats": cold_cache.stats,
        "warm_stats": warm_cache.stats,
    }


def test_e23_parallel_sweep(benchmark):
    out = once(benchmark, run_three_ways)
    cpus = os.cpu_count() or 1
    point_count = len(CASES) * len(SEEDS)

    # 1. Parallel results equal serial results — exactly.  SweepSummary
    # holds raw value tuples (including each run's trace fingerprint),
    # so == compares every simulated number of every (point, seed).
    assert out["parallel"] == out["serial"]
    assert out["warm"] == out["serial"]

    # 2. The cold run simulated everything and banked it; the warm run
    # simulated nothing: 100% cache hits.
    assert out["cold_stats"].hits == 0
    assert out["cold_stats"].stores == point_count
    assert out["warm_stats"].hits == point_count
    assert out["warm_stats"].misses == 0
    assert out["warm_stats"].hit_rate == 1.0

    speedup = out["serial_wall"] / out["parallel_wall"]
    warm_speedup = out["serial_wall"] / out["warm_wall"]
    # 3. Wall-clock: a warm cache beats simulating, always; process
    # parallelism needs actual cores to pay for its spawn overhead, so
    # the 2x floor is asserted where the hardware can deliver it.
    assert warm_speedup > 2.0
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"jobs={JOBS} on {cpus} CPUs: {speedup:.2f}x < 2x floor"
        )

    table = Table(
        ["path", "wall s", "speedup", "cache"],
        title=(
            f"E23 — E17 grid {list(CASES)} x seeds {list(SEEDS)}, "
            f"jobs={JOBS}, {cpus} CPU(s)"
        ),
    )
    table.add_row("serial jobs=1", round(out["serial_wall"], 3), "1.0x", "off")
    table.add_row("parallel cold", round(out["parallel_wall"], 3),
                  f"{speedup:.2f}x", f"{out['cold_stats'].stores} stores")
    table.add_row("parallel warm", round(out["warm_wall"], 3),
                  f"{warm_speedup:.2f}x",
                  f"{out['warm_stats'].hits} hits (100%)")
    emit("e23_parallel_sweep", table.render())

    report = {
        "benchmark": "E23 — parallel sweep engine (E17 crash grid)",
        "scenario": (
            f"grid n,f in {list(CASES)}, seeds {list(SEEDS)}, "
            f"jobs={JOBS}, spawn start method, chunked dispatch"
        ),
        "cpus": cpus,
        "grid_points": point_count,
        "serial_wall_seconds": out["serial_wall"],
        "parallel_wall_seconds": out["parallel_wall"],
        "warm_wall_seconds": out["warm_wall"],
        "parallel_speedup": round(speedup, 3),
        "warm_speedup": round(warm_speedup, 3),
        "parallel_equals_serial": out["parallel"] == out["serial"],
        "warm_equals_serial": out["warm"] == out["serial"],
        "cold_cache": out["cold_stats"].as_dict(),
        "warm_cache": out["warm_stats"].as_dict(),
        "notes": (
            "parallel_equals_serial compares full SweepSummary value "
            "tuples, including per-run quorum-trace fingerprints — the "
            "simulator is deterministic per seed, so equality is a hard "
            "check, not a tolerance.  The >=2x parallel floor is asserted "
            "on hosts with >=4 CPUs; warm_speedup (100% cache hits) is "
            "asserted >2x everywhere."
        ),
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
