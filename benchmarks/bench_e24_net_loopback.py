"""E24 — live loopback runtime: gossip throughput + stabilization latency.

Measures the asyncio network runtime (``repro.net``) the way E21
measures the simulator's hot path, and writes ``BENCH_net_loopback.json``
at the repo root:

- **UPDATE-gossip throughput**: signed ``UPDATE`` envelopes pushed
  through one real TCP link (wire encode → batched envelope + link
  HMAC → socket → frame decode → HMAC verify → deliver), in
  frames/second — measured under the default (binary V2, batched)
  codec *and* the tagged-JSON V1 codec, so the report carries its own
  before/after comparison;
- **stabilization latency**: full in-process meshes (n live hosts, one
  event loop, real sockets) in which ``p1`` crashes; per surviving
  replica, the wall time from the crash to its *final* quorum event.
  p50/p99 are taken over ``rounds × (n-1)`` samples at n ∈ {4, 7, 10}.

The in-process mesh keeps the benchmark about the runtime itself —
subprocess startup noise is excluded, but every byte still crosses a
loopback socket.  ``python benchmarks/perf_report.py --net`` runs the
same harness and flags wall regressions against the previous report.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import pytest  # noqa: E402

from repro.analysis.report import Table  # noqa: E402
from repro.core.messages import KIND_UPDATE, UpdatePayload  # noqa: E402
from repro.crypto.authenticator import Authenticator  # noqa: E402
from repro.crypto.keys import KeyRegistry  # noqa: E402
from repro.net.batch import BatchAuthenticator  # noqa: E402
from repro.net.host import NetHost  # noqa: E402
from repro.net.loop import uvloop_active  # noqa: E402
from repro.net.peer import PeerManager  # noqa: E402
from repro.net.timers import NetTimerService  # noqa: E402
from repro.net.wire import WIRE_V1, WIRE_V2, resolve_wire_version  # noqa: E402
from repro.sim.worlds import attach_qs_stack  # noqa: E402

from benchmarks._reporting import emit  # noqa: E402

#: (n, f) cases; the classic 3f+1 ladder the issue asks for.
CASES: Tuple[Tuple[int, int], ...] = ((4, 1), (7, 2), (10, 3))

REPORT_PATH = REPO_ROOT / "BENCH_net_loopback.json"


# ----------------------------------------------------------- throughput


async def _throughput_async(frames: int, wire_version: Optional[int] = None) -> float:
    """Push ``frames`` signed UPDATEs over one loopback link; frames/s.

    Both endpoints run the negotiated codec (``wire_version``; ``None``
    resolves the default) with link-level batch MACs, so the measured
    path is the production one: wire encode → batch envelope + HMAC →
    socket → frame decode → envelope HMAC verify → signature verify →
    deliver.
    """
    loop = asyncio.get_running_loop()
    registry = KeyRegistry(2)
    sender = PeerManager(
        1, queue_capacity=frames + 16, rng_seed=1,
        wire_version=wire_version, batch_auth=BatchAuthenticator(registry, 1),
    )
    receiver = PeerManager(
        2, queue_capacity=frames + 16, rng_seed=2,
        wire_version=wire_version, batch_auth=BatchAuthenticator(registry, 2),
    )
    addr = await receiver.start_server()
    sender.addresses = {2: addr}

    done = asyncio.Event()
    received = 0
    verifier = Authenticator(registry, 2)

    def ingress(kind, payload, src):
        nonlocal received
        assert verifier.verify(payload)
        received += 1
        if received >= frames:
            done.set()

    receiver.ingress = ingress
    await sender.warm_up(timeout=5.0)

    message = Authenticator(registry, 1).sign(UpdatePayload(row=(0, 0, 1)))
    start = loop.time()
    for _ in range(frames):
        sender.send(2, KIND_UPDATE, message)
    await asyncio.wait_for(done.wait(), timeout=60.0)
    elapsed = loop.time() - start

    assert sender.stats.frames_dropped_backpressure == 0
    assert receiver.stats.batches_rejected == 0
    await sender.close()
    await receiver.close()
    return frames / elapsed


def measure_update_throughput(
    frames: int = 2000, wire_version: Optional[int] = None
) -> float:
    """Signed-UPDATE frames per second over one loopback TCP link."""
    return asyncio.run(_throughput_async(frames, wire_version=wire_version))


# -------------------------------------------------- stabilization latency


async def _mesh(n: int, f: int, heartbeat: float, timeout: float):
    managers, addrs = {}, {}
    for pid in range(1, n + 1):
        managers[pid] = PeerManager(pid, rng_seed=pid)
        addrs[pid] = await managers[pid].start_server()
    hosts, modules = {}, {}
    loop = asyncio.get_running_loop()
    for pid in range(1, n + 1):
        managers[pid].addresses = {p: a for p, a in addrs.items() if p != pid}
        host = NetHost(
            pid, managers[pid], Authenticator(KeyRegistry(n), pid),
            NetTimerService(loop),
        )
        hosts[pid] = host
        modules[pid] = attach_qs_stack(
            host, n, f, heartbeat_period=heartbeat, base_timeout=timeout
        )
    for pid in range(1, n + 1):
        await managers[pid].warm_up(timeout=5.0)
    for host in hosts.values():
        host.start()
    return hosts, modules, managers


async def _stabilization_round(
    n: int, f: int, heartbeat: float = 0.05, timeout: float = 0.3
) -> List[float]:
    """Crash p1 in a live n-host mesh; per-survivor seconds to final quorum."""
    hosts, modules, managers = await _mesh(n, f, heartbeat, timeout)
    loop = asyncio.get_running_loop()
    try:
        await asyncio.sleep(4 * heartbeat)  # a few beats of steady state
        crash_wall = loop.time()
        hosts[1].crash()
        await asyncio.sleep(2 * timeout + 0.6)  # detect + gossip + settle

        expected = frozenset(range(2, n - f + 2))
        latencies = []
        for pid in range(2, n + 1):
            assert modules[pid].qlast == expected, (
                f"p{pid} ended on {sorted(modules[pid].qlast)}, "
                f"expected {sorted(expected)}"
            )
            t_crash = crash_wall - hosts[pid].timers._t0
            after = [
                e.time for e in hosts[pid].log.events(kind="qs.quorum")
                if e.time >= t_crash
            ]
            assert after, f"p{pid} saw no quorum change after the crash"
            latencies.append(max(after) - t_crash)
        return latencies
    finally:
        for manager in managers.values():
            await manager.close()


def measure_stabilization(n: int, f: int, rounds: int = 4) -> List[float]:
    """Stabilization-latency samples over ``rounds`` fresh meshes."""
    samples: List[float] = []
    for _ in range(rounds):
        samples.extend(asyncio.run(_stabilization_round(n, f)))
    return samples


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sample."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


# ------------------------------------------------------------- reporting


def write_report(
    rounds: int = 4, frames: int = 2000, path: Path = REPORT_PATH
) -> dict:
    """Run every case and write ``BENCH_net_loopback.json``.

    The headline throughput is the default (negotiated) codec; the V1
    figure is measured alongside it so the report carries its own
    before/after comparison.
    """
    wire_version = resolve_wire_version()
    throughput = measure_update_throughput(frames=frames, wire_version=wire_version)
    throughput_v1 = measure_update_throughput(frames=frames, wire_version=WIRE_V1)
    cases = []
    for n, f in CASES:
        samples = measure_stabilization(n, f, rounds=rounds)
        cases.append({
            "n": n,
            "f": f,
            "samples": len(samples),
            "stabilization_p50_s": round(percentile(samples, 50), 4),
            "stabilization_p99_s": round(percentile(samples, 99), 4),
            "stabilization_max_s": round(max(samples), 4),
        })
    report = {
        "benchmark": "E24 — live loopback runtime (repro.net)",
        "update_throughput_frames_per_s": round(throughput, 1),
        "v1_update_throughput_frames_per_s": round(throughput_v1, 1),
        "throughput_frames": frames,
        "wire": {
            "version": wire_version,
            "batch_policy": PeerManager(1).batch_policy.as_dict(),
            "uvloop": uvloop_active(),
        },
        "scenario": (
            "in-process meshes over loopback TCP; crash p1 after warm-up; "
            "latency = seconds from crash to each survivor's final quorum "
            "(heartbeat 0.05s, base timeout 0.3s)"
        ),
        "cases": cases,
    }
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def render_table(report: dict) -> str:
    wire = report.get("wire", {})
    table = Table(
        ["n", "f", "samples", "p50 s", "p99 s", "max s"],
        title=(
            "E24 — stabilization latency over loopback "
            f"(UPDATE throughput {report['update_throughput_frames_per_s']:.0f}/s "
            f"V{wire.get('version', '?')}, "
            f"{report.get('v1_update_throughput_frames_per_s', 0):.0f}/s V1"
            f"{', uvloop' if wire.get('uvloop') else ''})"
        ),
    )
    for row in report["cases"]:
        table.add_row(
            row["n"], row["f"], row["samples"],
            row["stabilization_p50_s"], row["stabilization_p99_s"],
            row["stabilization_max_s"],
        )
    return table.render()


# ----------------------------------------------------------------- pytest


@pytest.mark.net
def test_e24_net_loopback_report():
    """One-round version of the report: sane numbers, file written."""
    report = write_report(rounds=1, frames=500)
    assert report["update_throughput_frames_per_s"] > 100
    assert report["v1_update_throughput_frames_per_s"] > 100
    assert report["wire"]["version"] in (WIRE_V1, WIRE_V2)
    for row in report["cases"]:
        assert 0 < row["stabilization_p50_s"] <= row["stabilization_p99_s"]
        # Detection cannot beat the failure-detector timeout, and a healthy
        # loopback mesh settles well inside the sleep window.
        assert row["stabilization_p99_s"] < 1.2
    emit("e24_net_loopback", render_table(report))


if __name__ == "__main__":
    emit("e24_net_loopback", render_table(write_report()))
    print(f"wrote {REPORT_PATH}")
