"""E26 — replicated KV service under load: live TCP + deterministic sim.

Drives the full client path (request ids, retry/backoff, redirect via
learned views, server-side at-most-once dedup) against the XPaxos+QS
stack and writes ``BENCH_service_load.json`` at the repo root:

- **live**: ``n`` replica OS processes plus the client gateway
  (:func:`repro.service.live.run_live_load`), closed-loop, with a
  mid-run leader kill and recovery — throughput and latency p50/p99 for
  the steady, crash, and recovery phases, plus the measured
  client-visible view-change outage (kill → first completion served in
  a higher view);
- **sim**: the deterministic twin
  (:func:`repro.service.loadgen.run_sim_load`) under the same fault
  schedule, so the phase structure is reproducible bit-for-bit across
  machines.

Both halves assert the service invariants: every node's at-most-once
equation holds, and replicas at the same execution frontier share one
state digest.  ``python benchmarks/perf_report.py --service`` reruns
this and flags a steady-state throughput drop of more than 20% against
the previous report.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import pytest  # noqa: E402

from repro.analysis.report import Table  # noqa: E402
from repro.service.live import run_live_load_blocking  # noqa: E402
from repro.service.loadgen import run_sim_load  # noqa: E402

from benchmarks._reporting import emit  # noqa: E402

REPORT_PATH = REPO_ROOT / "BENCH_service_load.json"


def run_live_case(
    clients: int = 64,
    duration: float = 14.0,
    kill_leader_at: Optional[float] = 8.0,
    recover_at: Optional[float] = 10.5,
) -> dict:
    """The live benchmark scenario; returns the (serializable) report."""
    report = run_live_load_blocking(
        n=4,
        f=1,
        clients=clients,
        duration=duration,
        kill_leader_at=kill_leader_at,
        recover_at=recover_at,
    )
    assert report["at_most_once"], "a replica's at-most-once equation broke"
    assert report["digests_agree"], "frontier replicas diverged"
    return report


def run_sim_case(
    clients: int = 40,
    duration: float = 120.0,
    kill_leader_at: Optional[float] = 60.0,
    recover_at: Optional[float] = 85.0,
) -> dict:
    """The deterministic twin of the live scenario."""
    report = run_sim_load(
        n=4,
        f=1,
        clients=clients,
        duration=duration,
        kill_leader_at=kill_leader_at,
        recover_at=recover_at,
    )
    report.pop("world", None)  # live object handles are not serializable
    assert report["at_most_once"], "a replica's at-most-once equation broke"
    assert report["digests_agree"], "frontier replicas diverged"
    return report


def write_report(
    path: Path = REPORT_PATH,
    live_duration: float = 14.0,
    live_clients: int = 64,
) -> dict:
    report = {
        "benchmark": "E26 — replicated KV service + load generator",
        "scenario": (
            "closed-loop clients, zipfian GET/PUT/CAS/DEL mix, n=4 f=1; "
            "initial leader killed mid-run and later recovered; phases "
            "report completions inside their window, view_change the "
            "client-visible outage (kill -> first reply in a higher view)"
        ),
        "live": run_live_case(clients=live_clients, duration=live_duration),
        "sim": run_sim_case(),
    }
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def render_table(report: dict) -> str:
    live = report["live"]
    sim = report["sim"]
    table = Table(
        ["runtime", "phase", "completed", "throughput", "p50", "p99"],
        title=(
            "E26 — KV service load (live: req/s; sim: req/sim-t) — "
            f"live {live['clients']} clients, sim {sim['clients']} clients"
        ),
    )
    for runtime, block in (("live", live), ("sim", sim)):
        for name, phase in block["phases"].items():
            if name == "view_change":
                continue
            table.add_row(
                runtime, name, phase["completed"], phase["throughput"],
                phase["latency_p50"], phase["latency_p99"],
            )
        outage = block["phases"].get("view_change", {}).get("outage")
        table.add_row(runtime, "view-change outage", "-", outage, "-", "-")
    return table.render()


# ----------------------------------------------------------------- pytest


@pytest.mark.net
def test_e26_service_load_report():
    """Scaled-down report run: invariants hold, the file is written."""
    report = {
        "benchmark": "E26 — replicated KV service + load generator (smoke)",
        "live": run_live_case(clients=8, duration=6.0,
                              kill_leader_at=3.0, recover_at=4.5),
        "sim": run_sim_case(clients=20, duration=80.0,
                            kill_leader_at=40.0, recover_at=60.0),
    }
    for runtime in ("live", "sim"):
        block = report[runtime]
        assert block["completed"] > 0
        assert block["at_most_once"] and block["digests_agree"]
        steady = block["phases"]["steady"]
        assert steady["completed"] > 0
        assert steady["latency_p50"] <= steady["latency_p99"]
        view_change = block["phases"]["view_change"]
        assert view_change["outage"] is not None and view_change["outage"] > 0
    # The live gateway must actually route every reply it receives.
    assert report["live"]["replies_unrouted"] == 0
    emit("e26_service_load", render_table(report))


if __name__ == "__main__":
    emit("e26_service_load", render_table(write_report()))
    print(f"wrote {REPORT_PATH}")
