"""E28 — programmable adversary engine + randomized lower-bound chase.

The seeded attack search (:func:`repro.adversary.search.chase_bound`)
fuzzes (strategy, parameters, schedule jitter) configurations against
live worlds, guided by the proposed-quorum count, and must rediscover
Theorem 4's tightness claim for every ``f``:

- **canonical exact** — trial 0 is always the proof's own attack
  (lexicographic pair chase on ``F+2``); its proposed-quorum count must
  equal ``C(f+2, 2)`` *exactly*;
- **bound met** — the best attack found is never below the bound
  (a randomized trial can tie it, never beat it — Theorem 3's
  ``f(f+1)`` envelope is asserted over every trial);
- **deterministic** — the whole report is a pure function of the seed,
  and trials run through the E23 engine, so ``REPRO_SWEEP_JOBS=N``
  parallelism and ``REPRO_SWEEP_CACHE=1`` warm re-runs return the
  identical report.

Writes ``BENCH_adversary_search.json`` (checked in) so EXPERIMENTS.md
quotes measured numbers.
"""

import json
import time
from pathlib import Path

from repro.adversary.search import chase_bound

from repro.analysis.report import Table

from .conftest import emit, engine_cache, engine_jobs, once

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_adversary_search.json"

F_VALUES = (1, 2, 3)
SEED = 3
BUDGET = 6
ROUNDS = 2


def write_report(path: Path = REPORT_PATH) -> dict:
    """Run the chase for every f, write the JSON report, return it."""
    started = time.perf_counter()
    chase = chase_bound(
        F_VALUES, seed=SEED, budget=BUDGET, rounds=ROUNDS,
        jobs=engine_jobs(), cache=engine_cache(),
    )
    wall = time.perf_counter() - started
    entries = []
    for entry in chase["entries"]:
        strategies = sorted({t["strategy"] for t in entry["trials"]})
        entries.append({
            "f": entry["f"],
            "n": entry["n"],
            "thm4_bound": entry["thm4_bound"],
            "thm3_bound": entry["thm3_bound"],
            "canonical_exact": entry["canonical_exact"],
            "bound_met": entry["bound_met"],
            "thm3_ok": entry["thm3_ok"],
            "best": entry["best"],
            "trials": len(entry["trials"]),
            "cached_trials": entry["cached_trials"],
            "failed_trials": entry["failed_trials"],
            "strategies_tried": strategies,
        })
    report = {
        "benchmark": "E28 — randomized adversarial lower-bound chase",
        "seed": SEED,
        "budget": BUDGET,
        "rounds": ROUNDS,
        "jobs": engine_jobs(),
        "wall_seconds": round(wall, 3),
        "entries": entries,
        "notes": (
            "Each trial is one engine strategy (sampled params + schedule "
            "jitter) against a fresh n=2f+2 world, scored by the worst "
            "per-epoch proposed-quorum count over correct processes. "
            "Trial 0 per f is the canonical Theorem-4 chase; "
            "canonical_exact records that it hits C(f+2,2) exactly. "
            "Deterministic per seed; trials run through the E23 engine "
            "(REPRO_SWEEP_JOBS / REPRO_SWEEP_CACHE)."
        ),
    }
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def render_table(report: dict) -> str:
    table = Table(
        [
            "f", "n", "best attack", "proposed quorums", "C(f+2,2)",
            "canonical exact", "Thm 3 ok", "trials (cached)",
        ],
        title=(
            f"E28 — lower-bound chase, seed={report['seed']}, "
            f"budget={report['budget']}, rounds={report['rounds']}, "
            f"wall {report['wall_seconds']}s"
        ),
    )
    for entry in report["entries"]:
        table.add_row(
            entry["f"], entry["n"], entry["best"]["strategy"],
            int(entry["best"]["proposed_quorums"]), entry["thm4_bound"],
            entry["canonical_exact"], entry["thm3_ok"],
            f"{entry['trials']} ({entry['cached_trials']})",
        )
    return table.render()


def test_e28_adversary_search(benchmark):
    report = once(benchmark, write_report)
    emit("e28_adversary_search", render_table(report))

    for entry in report["entries"]:
        # Theorem 4 tightness, rediscovered: the canonical trial is exact
        # and no randomized trial beats the proof (or escapes Theorem 3).
        assert entry["canonical_exact"], (
            f"f={entry['f']}: canonical attack missed C(f+2,2)"
        )
        assert entry["bound_met"]
        assert entry["best"]["proposed_quorums"] == entry["thm4_bound"]
        assert entry["thm3_ok"]
        assert entry["failed_trials"] == 0
        # The fuzzer genuinely explored beyond the seed corpus.
        assert len(entry["strategies_tried"]) >= 2
