"""E29 — protocol backend comparison: XPaxos vs IBFT on the shared stack.

Both backends consume the same Quorum Selection module through the
:class:`~repro.protocol.backend.ProtocolBackend` contract; this bench
compares what each pays for a decision and how fast each re-stabilizes
after losing its leader.

- **per-decision message cost** — measured per committed slot in a
  fault-free run and checked against the closed forms: XPaxos
  ``q(q-1)`` (PREPARE to q-1 members, (q-1)^2 COMMIT echoes), IBFT
  ``(q-1)(2q-1)`` (PRE-PREPARE plus two all-to-all vote phases inside
  the quorum).  The measurement must match the formula *exactly* —
  any drift means retransmissions or protocol leakage.
- **active-quorum savings** — the paper's intro claim: running
  agreement in a quorum of ``q = n - f`` instead of all ``n`` saves
  ~1/3 of the work in the ``n = 3f+1`` family and ~1/2 in the
  ``n = 2f+1`` family (asymptotically, counting participants; the
  per-message savings are quadratic and therefore larger).  Both
  backends must show it — the savings come from Quorum Selection, not
  from the protocol.
- **stabilization latency** — leader killed mid-run; measured time
  until every correct quorum member adopts a quorum excluding the dead
  leader and returns to normal status, with the client workload
  completing and histories staying consistent.

Writes ``BENCH_protocol_compare.json`` (checked in) so EXPERIMENTS.md
quotes measured numbers; ``perf_report.py --protocol`` gates on it.
"""

import json
import time
from pathlib import Path

from repro.protocol.backend import get_backend
from repro.protocol.system import build_backend_system

from repro.analysis.report import Table

from .conftest import emit, once

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_protocol_compare.json"

PROTOCOLS = ("xpaxos", "ibft")
SEED = 3
OPS_PER_CLIENT = 20

#: (family, n, f) for the fault-free cost runs.  The families carry the
#: paper's two intro savings claims; the asymptotic participant savings
#: are 1/3 (3f+1) and 1/2 (2f+1).
COST_CASES = (("3f+1", 7, 2), ("2f+1", 5, 2))
SAVINGS_TARGETS = {"3f+1": 1 / 3, "2f+1": 1 / 2}

#: Leader-kill re-stabilization scenario.
STAB_N, STAB_F = 4, 1
KILL_AT = 30.0
STAB_HORIZON = 400.0
STAB_STEP = 1.0


def run_cost_case(protocol: str, family: str, n: int, f: int,
                  clients: int = 2, seed: int = SEED) -> dict:
    """One fault-free run; returns measured vs analytic per-decision cost."""
    system = build_backend_system(protocol, n=n, f=f, clients=clients, seed=seed)
    system.run(600.0)
    costs = system.protocol_message_costs()
    q = n - f
    analytic_quorum = system.backend.analytic_messages_per_decision(q)
    analytic_full = system.backend.analytic_messages_per_decision(n)
    per_decision = costs["per_decision"]
    return {
        "family": family,
        "n": n,
        "f": f,
        "quorum_size": q,
        "decisions": costs["decisions"],
        "by_kind": costs["by_kind"],
        "per_decision": per_decision,
        "analytic_per_decision": analytic_quorum,
        "analytic_full_set": analytic_full,
        "measured_matches_analytic": per_decision == analytic_quorum,
        # What Quorum Selection saves vs running the protocol over all n.
        "message_savings": round(1 - analytic_quorum / analytic_full, 4),
        "participant_savings": round(1 - q / n, 4),
        "savings_target": round(SAVINGS_TARGETS[family], 4),
        "completed": system.total_completed(),
        "completed_all": system.total_completed() == clients * OPS_PER_CLIENT,
        "histories_consistent": system.histories_consistent(),
    }


def run_stabilization_case(protocol: str, n: int = STAB_N, f: int = STAB_F,
                           seed: int = SEED) -> dict:
    """Kill the initial leader; measure time back to a stable live quorum."""
    system = build_backend_system(protocol, n=n, f=f, clients=1, seed=seed,
                                  client_retry=20.0)
    victim = min(system.replicas[1].policy.quorum_of(0))
    system.adversary.crash(victim, at=KILL_AT)

    def stabilized() -> bool:
        for pid in system.replica_pids:
            if pid == victim:
                continue
            status = system.observe(pid)
            if victim in status.quorum:
                return False
            if pid in status.quorum and status.status != "normal":
                return False
        return True

    stabilized_at = None
    t = KILL_AT
    while t < STAB_HORIZON:
        t += STAB_STEP
        system.run(t)
        if stabilized():
            stabilized_at = t
            break
    system.run(STAB_HORIZON)
    decision_changes = max(
        system.backend.observe(r).decision_changes
        for r in system.correct_replicas()
    )
    return {
        "n": n,
        "f": f,
        "killed": victim,
        "kill_at": KILL_AT,
        "stabilized_at": stabilized_at,
        # Measured at STAB_STEP resolution; None means never stabilized.
        "latency": (round(stabilized_at - KILL_AT, 3)
                    if stabilized_at is not None else None),
        "decision_changes": decision_changes,
        "completed": system.total_completed(),
        "completed_all": system.total_completed() == OPS_PER_CLIENT,
        "histories_consistent": system.histories_consistent(),
    }


def write_report(path: Path = REPORT_PATH) -> dict:
    """Run every case for both backends, write the JSON report, return it."""
    started = time.perf_counter()
    backends = {}
    for protocol in PROTOCOLS:
        backend = get_backend(protocol)
        backends[protocol] = {
            "decision_term": backend.decision_term,
            "costs": [
                run_cost_case(protocol, family, n, f)
                for family, n, f in COST_CASES
            ],
            "stabilization": run_stabilization_case(protocol),
        }
    report = {
        "benchmark": "E29 — protocol backend comparison (XPaxos vs IBFT)",
        "seed": SEED,
        "backends": backends,
        "wall_seconds": round(time.perf_counter() - started, 3),
        "notes": (
            "per_decision counts protocol messages (no heartbeats, no "
            "client traffic) per committed slot in a fault-free run and "
            "must equal the closed form exactly: XPaxos q(q-1), IBFT "
            "(q-1)(2q-1). message_savings/participant_savings compare the "
            "active quorum q=n-f against running over all n — the paper's "
            "~1/3 (3f+1) and ~1/2 (2f+1) intro claims, protocol-"
            "independent because Quorum Selection provides the quorum. "
            "stabilization kills the initial leader at t=%s and measures "
            "time (at %s-step resolution) until every correct quorum "
            "member adopts a victim-free quorum in normal status."
            % (KILL_AT, STAB_STEP)
        ),
    }
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def render_table(report: dict) -> str:
    table = Table(
        [
            "protocol", "family", "n", "f", "q", "decisions",
            "msgs/decision", "analytic", "full-set", "msg savings",
            "participant savings (target)",
        ],
        title=(
            f"E29 — per-decision protocol cost, seed={report['seed']}, "
            f"wall {report['wall_seconds']}s"
        ),
    )
    for protocol, block in report["backends"].items():
        for case in block["costs"]:
            table.add_row(
                protocol, case["family"], case["n"], case["f"],
                case["quorum_size"], case["decisions"],
                case["per_decision"], case["analytic_per_decision"],
                case["analytic_full_set"],
                f"{case['message_savings'] * 100:.0f}%",
                f"{case['participant_savings'] * 100:.0f}% "
                f"(~{case['savings_target'] * 100:.0f}%)",
            )
    lines = [table.render()]
    for protocol, block in report["backends"].items():
        stab = block["stabilization"]
        lines.append(
            f"{protocol}: leader p{stab['killed']} killed at "
            f"t={stab['kill_at']}, re-stabilized in {stab['latency']} "
            f"({stab['decision_changes']} {block['decision_term']} changes, "
            f"{stab['completed']} ops completed)"
        )
    return "\n".join(lines)


def test_e29_protocol_compare(benchmark):
    report = once(benchmark, write_report)
    emit("e29_protocol_compare", render_table(report))

    xpaxos = report["backends"]["xpaxos"]
    ibft = report["backends"]["ibft"]
    for protocol, block in report["backends"].items():
        for case in block["costs"]:
            # The measured cost IS the closed form — no leakage, no loss.
            assert case["measured_matches_analytic"], (
                f"{protocol} {case['family']}: measured "
                f"{case['per_decision']} != analytic "
                f"{case['analytic_per_decision']}"
            )
            assert case["completed_all"] and case["histories_consistent"]
            # The paper's savings claim, protocol-independent: quadratic
            # message savings dominate the linear participant savings,
            # which approach the family's asymptote from below (the
            # slack covers finite-f distance from the limit).
            assert case["message_savings"] > case["participant_savings"]
            assert case["participant_savings"] >= case["savings_target"] - 0.12
        stab = block["stabilization"]
        assert stab["latency"] is not None, f"{protocol} never re-stabilized"
        assert stab["latency"] < 120.0
        assert stab["completed_all"] and stab["histories_consistent"]

    # IBFT's extra vote phase costs more per decision in every case.
    for x_case, i_case in zip(xpaxos["costs"], ibft["costs"]):
        assert i_case["per_decision"] > x_case["per_decision"]
