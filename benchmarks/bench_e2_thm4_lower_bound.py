"""E2 — Theorem 4 / Figure 5: the adversarial lower bound.

The Theorem-4 adversary (false suspicions concentrated on an ``F+2``
node set, one per stabilization) runs against the *live* Algorithm 1
stack and must force exactly ``C(f+2, 2)`` proposed quorums — i.e.
``C(f+2, 2) - 1`` quorum changes after the initial default — for every
``f``.  This matches the paper's claim that the bound is tight.
"""

import pytest

from repro.analysis.bounds import observed_max_changes_claim, thm3_upper_bound
from repro.analysis.report import Table
from repro.analysis.runner import run_thm4_adversary

from .conftest import emit, once

SWEEP = (1, 2, 3, 4)


def run_sweep():
    rows = []
    for f in SWEEP:
        result = run_thm4_adversary(2 * f + 2, f, seed=3, duration=8000.0)
        rows.append((f, result))
    return rows


def test_e2_thm4_lower_bound(benchmark):
    rows = once(benchmark, run_sweep)

    table = Table(
        [
            "f", "n", "suspicions fired", "quorum changes",
            "C(f+2,2)-1 (claim)", "f(f+1) (Thm 3)", "agree", "no-suspicion",
        ],
        title="E2 / Theorem 4 — adversarial quorum changes (live Algorithm 1)",
    )
    for f, result in rows:
        table.add_row(
            f, result.n, result.suspicions_fired, result.max_changes_per_epoch,
            observed_max_changes_claim(f), thm3_upper_bound(f),
            result.final_quorums_agree, result.no_suspicion,
        )
    emit("e2_thm4_lower_bound", table.render())

    for f, result in rows:
        assert result.max_changes_per_epoch == observed_max_changes_claim(f)
        assert result.max_changes_per_epoch <= thm3_upper_bound(f)
        assert result.final_quorums_agree and result.no_suspicion
        assert result.max_epoch == 1  # accuracy: the epoch never advances
