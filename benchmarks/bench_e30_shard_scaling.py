"""E30a — consistent-hash shard scaling: aggregate KV throughput vs M.

Runs the sharded deployment (DESIGN.md §5.19) at M = 1, 2, 4 shards and
writes ``BENCH_shard_scaling.json`` at the repo root:

- **live**: M independent ``n=4 f=1`` TCP clusters (M×4 replica OS
  processes) behind one router process holding the consistent-hash ring
  (:func:`repro.shard.live.run_live_shard_load`), closed-loop with a
  fixed per-shard client count — aggregate steady throughput is the
  moving part.  The ≥2.5× M=4 vs M=1 scaling gate is asserted only on
  hosts with at least :data:`SCALING_MIN_CPUS` CPUs; the report always
  records ``cpu_count`` so a number produced on a small box is honest
  about why its live ratio is flat.
- **sim**: the deterministic lockstep twin
  (:func:`repro.shard.sim.run_sim_shard_load`).  Sim throughput is per
  unit of *simulated* time, so shard worlds genuinely add capacity
  regardless of host CPUs — the scaling gate on the sim half is
  asserted everywhere, and the numbers replay bit-for-bit.
- **containment**: a deterministic leader-kill run (shard 0's leader
  crashes mid-window) asserting, via
  :func:`repro.shard.sim.unaffected_shards_ok`, that the other shards'
  crash-window throughput stays within tolerance of their own steady
  rate — the fault does not cross shard boundaries.

The M=1 live case uses the E26 configuration (n=4, f=1, 64 clients) so
``BENCH_service_load.json``'s steady throughput is directly comparable.
``python benchmarks/perf_report.py --shard`` reruns this and flags a
>20% drop in any M's live aggregate steady throughput.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import pytest  # noqa: E402

from repro.analysis.report import Table  # noqa: E402
from repro.service.live import run_live_load_blocking  # noqa: E402
from repro.shard.live import run_live_shard_load_blocking  # noqa: E402
from repro.shard.sim import (  # noqa: E402
    run_sim_shard_load,
    unaffected_shards_ok,
)

from benchmarks._reporting import emit  # noqa: E402

REPORT_PATH = REPO_ROOT / "BENCH_shard_scaling.json"

SHARD_COUNTS = (1, 2, 4)

#: Live M=4 vs M=1 aggregate-throughput floor — asserted when the host
#: has at least SCALING_MIN_CPUS CPUs (shard clusters are real OS
#: processes; on a 1-CPU box they time-slice one core and the live
#: ratio is meaningless).  The sim ratio is asserted unconditionally.
SCALING_FLOOR = 2.5
SCALING_MIN_CPUS = 4


def run_sim_case(shards: int, clients: int = 24, duration: float = 80.0,
                 drain: float = 40.0, seed: int = 3) -> dict:
    """One deterministic scaling point; returns the serializable report."""
    report = run_sim_shard_load(
        shards=shards, n=4, f=1, clients=clients, duration=duration,
        drain=drain, seed=seed,
    )
    report.pop("worlds", None)  # live object handles are not serializable
    assert report["at_most_once"], "a shard broke its at-most-once equation"
    assert report["digests_agree"], "a shard's frontier replicas diverged"
    return report


def run_live_case(shards: int, clients: int, duration: float = 10.0,
                  seed: int = 3) -> dict:
    """One live scaling point (M×4 replica processes + router)."""
    report = run_live_shard_load_blocking(
        shards=shards, n=4, f=1, clients=clients, duration=duration, seed=seed,
    )
    assert report["at_most_once"], "a shard broke its at-most-once equation"
    assert report["digests_agree"], "a shard's frontier replicas diverged"
    assert report["replies_unrouted"] == 0
    return report


def run_containment_case(duration: float = 120.0, seed: int = 3) -> dict:
    """Deterministic leader-kill on shard 0; other shards must hold."""
    report = run_sim_shard_load(
        shards=2, n=4, f=1, clients=24, duration=duration, drain=60.0,
        seed=seed, kill_shard_leader_at=duration / 3,
        recover_at=2 * duration / 3,
    )
    report.pop("worlds", None)
    assert report["at_most_once"] and report["digests_agree"]
    assert unaffected_shards_ok(report), (
        "an unaffected shard's throughput collapsed during shard 0's "
        "view change — the fault escaped its shard"
    )
    outage = report["kill"]["view_change"]["outage"]
    assert outage is not None and outage > 0
    return report


def aggregate_steady(report: dict) -> float:
    return report["aggregate"]["steady"]["throughput"]


def scaling_ratios(points: dict) -> dict:
    """M -> aggregate steady throughput relative to the M=1 point."""
    base = aggregate_steady(points["1"] if "1" in points else points[1])
    return {
        str(m): round(aggregate_steady(block) / base, 3) if base > 0 else None
        for m, block in points.items()
    }


def write_report(path: Path = REPORT_PATH, live_duration: float = 10.0) -> dict:
    cpu_count = os.cpu_count() or 1
    sim_points = {str(m): run_sim_case(m) for m in SHARD_COUNTS}
    # Per-shard client count held constant across M — per-shard offered
    # load is the control, aggregate throughput the moving part.  M=1
    # matches the E26 live scenario (n=4 f=1, 64 clients) so the two
    # checked-in reports are directly comparable.
    live_points = {
        str(m): run_live_case(m, clients=64, duration=live_duration)
        for m in SHARD_COUNTS
    }
    # Same-run unsharded reference (the E26 driver, identical config):
    # the M=1/reference ratio isolates the router's overhead from
    # day-to-day machine drift in the checked-in E26 numbers.
    reference = run_live_load_blocking(
        n=4, f=1, clients=64, duration=live_duration
    )
    reference_steady = reference["phases"]["steady"]["throughput"]
    router_overhead_ratio = (
        round(aggregate_steady(live_points["1"]) / reference_steady, 3)
        if reference_steady > 0 else None
    )
    assert router_overhead_ratio is None or router_overhead_ratio >= 0.75, (
        f"M=1 through the shard router reached only "
        f"{router_overhead_ratio}x the unsharded driver"
    )
    containment = run_containment_case()

    sim_ratios = scaling_ratios(sim_points)
    live_ratios = scaling_ratios(live_points)
    # The deterministic twin must scale everywhere: M sim worlds serve M
    # independent request streams per unit of simulated time.
    assert sim_ratios["4"] >= SCALING_FLOOR, (
        f"sim M=4 aggregate only {sim_ratios['4']}x M=1 "
        f"(floor {SCALING_FLOOR}x)"
    )
    if cpu_count >= SCALING_MIN_CPUS:
        assert live_ratios["4"] >= SCALING_FLOOR, (
            f"live M=4 aggregate only {live_ratios['4']}x M=1 on a "
            f"{cpu_count}-CPU host (floor {SCALING_FLOOR}x)"
        )

    report = {
        "benchmark": "E30a — consistent-hash shard scaling",
        "scenario": (
            "M independent n=4 f=1 XPaxos+QS clusters behind one "
            "consistent-hash router; closed-loop zipfian KV load routed "
            "by key; aggregate steady throughput vs shard count, plus a "
            "deterministic shard-0 leader-kill containment run"
        ),
        "cpu_count": cpu_count,
        "scaling_floor": SCALING_FLOOR,
        "scaling_min_cpus": SCALING_MIN_CPUS,
        "live_gate_enforced": cpu_count >= SCALING_MIN_CPUS,
        "sim": {"points": sim_points, "ratios": sim_ratios},
        "live": {
            "points": live_points,
            "ratios": live_ratios,
            "single_cluster_reference_steady": reference_steady,
            "router_overhead_ratio": router_overhead_ratio,
        },
        "containment": containment,
    }
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def render_table(report: dict) -> str:
    table = Table(
        ["runtime", "M", "clients/shard", "aggregate steady", "vs M=1",
         "p50", "p99"],
        title=(
            "E30a — shard scaling (live: req/s; sim: req/sim-t) — "
            f"{report['cpu_count']} CPUs, live gate "
            f"{'on' if report['live_gate_enforced'] else 'off'}"
        ),
    )
    for runtime in ("sim", "live"):
        block = report[runtime]
        for m, point in block["points"].items():
            steady = point["aggregate"]["steady"]
            table.add_row(
                runtime, m, point["clients_per_shard"],
                steady["throughput"], f"{block['ratios'][m]}x",
                steady["latency_p50"], steady["latency_p99"],
            )
    reference = report["live"].get("single_cluster_reference_steady")
    if reference is not None:
        table.add_row(
            "live", "1 (no router)", 64, reference,
            f"router {report['live']['router_overhead_ratio']}x", "-", "-",
        )
    kill = report["containment"]["kill"]
    table.add_row(
        "sim", "2 (kill)", report["containment"]["clients_per_shard"],
        aggregate_steady(report["containment"]),
        f"outage {kill['view_change']['outage']}", "-", "-",
    )
    return table.render()


# ----------------------------------------------------------------- pytest


@pytest.mark.net
def test_e30_shard_scaling_smoke():
    """Scaled-down run: sim scaling + containment hold, live 2-shard works."""
    sim_points = {
        str(m): run_sim_case(m, clients=12, duration=40.0, drain=20.0)
        for m in (1, 4)
    }
    ratios = scaling_ratios(sim_points)
    assert ratios["4"] >= SCALING_FLOOR

    live = run_live_case(2, clients=8, duration=6.0)
    assert live["completed"] > 0
    assert all(
        block["completed"] > 0 for block in live["per_shard"].values()
    ), "a live shard served nothing — routing or cluster startup broke"

    containment = run_containment_case(duration=90.0)
    assert containment["kill"]["view_change"]["outage"] > 0

    emit("e30_shard_scaling_smoke", json.dumps(ratios))


if __name__ == "__main__":
    emit("e30_shard_scaling", render_table(write_report()))
    print(f"wrote {REPORT_PATH}")
