"""E3 — Theorem 3 and the paper's "simulations suggest" claim.

Two parts:

1. *Exhaustive worst case* (network-free single-epoch model): search over
   every adversary edge sequence (and, for small ``f``, every faulty-set
   choice); the maximum number of quorum changes Algorithm 1 can be
   forced into per epoch must equal ``C(f+2,2) - 1`` — the paper's
   "simulations suggest at most C(f+2,2) quorums in one epoch".
2. *Random noise* (full stack): random false suspicions never push any
   epoch past the Theorem-3 bound ``f(f+1)``.
"""

from repro.analysis.abstract import exhaustive_max_changes, greedy_max_changes
from repro.analysis.bounds import observed_max_changes_claim, thm3_upper_bound
from repro.analysis.report import Table
from repro.analysis.runner import run_random_adversary

from .conftest import emit, once

EXHAUSTIVE_F = (1, 2)      # all faulty-set choices
EXHAUSTIVE_FIXED_F = (3,)  # canonical faulty set only (state space)
GREEDY_F = (4, 5, 6)
RANDOM_SEEDS = (1, 2, 3, 4, 5)


def run_worst_case():
    rows = []
    for f in EXHAUSTIVE_F:
        rows.append((f, "exhaustive", exhaustive_max_changes(2 * f + 2, f)))
    for f in EXHAUSTIVE_FIXED_F:
        value = exhaustive_max_changes(2 * f + 2, f, faulty=set(range(1, f + 1)))
        rows.append((f, "exhaustive (F={1..f})", value))
    for f in GREEDY_F:
        rows.append((f, "greedy", greedy_max_changes(2 * f + 2, f)))
    return rows


def test_e3_worst_case_per_epoch(benchmark):
    rows = once(benchmark, run_worst_case)

    table = Table(
        ["f", "search", "max changes/epoch", "C(f+2,2)-1 (claim)", "f(f+1) (Thm 3)"],
        title="E3a / Theorem 3 — worst-case quorum changes per epoch (Algorithm 1)",
    )
    for f, mode, value in rows:
        table.add_row(f, mode, value, observed_max_changes_claim(f), thm3_upper_bound(f))
    emit("e3a_worst_case", table.render())

    for f, _, value in rows:
        assert value == observed_max_changes_claim(f)
        assert value <= thm3_upper_bound(f)


def test_e3_random_noise_respects_bound(benchmark):
    f = 2

    def run():
        return [
            run_random_adversary(6, f, seed=seed, duration=300.0)
            for seed in RANDOM_SEEDS
        ]

    results = once(benchmark, run)

    table = Table(
        ["seed", "suspicions", "max changes/epoch", "bound f(f+1)", "agree"],
        title="E3b / Theorem 3 — random false-suspicion noise (full stack, f=2)",
    )
    for seed, result in zip(RANDOM_SEEDS, results):
        table.add_row(
            seed, result.suspicions_fired, result.max_changes_per_epoch,
            thm3_upper_bound(f), result.final_quorums_agree,
        )
    emit("e3b_random_noise", table.render())

    for result in results:
        assert result.max_changes_per_epoch <= thm3_upper_bound(f)
        assert result.final_quorums_agree and result.no_suspicion
