"""E4 — Theorem 9 / Corollary 10: Follower Selection bounds.

A leader-attack adversary (every stabilization, a faulty process falsely
suspects the current leader) runs against live Algorithm 2 with
``n = 3f + 1``.  Quorums per epoch must stay within ``3f + 1`` (Thm 9)
and post-stabilization totals within ``6f + 2`` (Cor 10) — the paper's
``O(f)`` improvement over general Quorum Selection's ``Theta(f^2)``.
"""

from repro.analysis.bounds import (
    cor10_total_bound,
    observed_max_changes_claim,
    thm9_per_epoch_bound,
)
from repro.analysis.report import Table
from repro.analysis.runner import run_follower_worst_case

from .conftest import emit, once

SWEEP = (1, 2, 3)


def run_sweep():
    return [(f, run_follower_worst_case(f, seed=3, duration=6000.0)) for f in SWEEP]


def test_e4_follower_selection_bounds(benchmark):
    rows = once(benchmark, run_sweep)

    table = Table(
        [
            "f", "n=3f+1", "suspicions", "changes (total)", "max/epoch",
            "3f+1 (Thm 9)", "6f+2 (Cor 10)", "QS claim C(f+2,2)-1", "final leader",
        ],
        title="E4 / Theorem 9 & Corollary 10 — Follower Selection under leader attack",
    )
    for f, result in rows:
        table.add_row(
            f, result.n, result.suspicions_fired, result.quorum_changes_total,
            result.max_changes_per_epoch, thm9_per_epoch_bound(f),
            cor10_total_bound(f), observed_max_changes_claim(f),
            f"p{result.final_leader}",
        )
    emit("e4_follower_selection", table.render())

    for f, result in rows:
        assert result.max_changes_per_epoch <= thm9_per_epoch_bound(f)
        assert result.quorum_changes_total <= cor10_total_bound(f)
        assert result.final_quorums_agree
    # The O(f) bound beats the Theta(f^2) general lower bound for f > 3
    # (3f+1 < C(f+2,2) first holds at f=4) and diverges from there.
    for f in (4, 6, 10):
        assert thm9_per_epoch_bound(f) < observed_max_changes_claim(f)
