"""E5 — XPaxos quorum enumeration vs Quorum Selection.

The same crash schedule runs under both view policies.  Enumeration must
walk through every quorum ordered before a working one (worst case
``C(n, f)``-scale); Quorum Selection jumps straight to the selected
quorum.  Metrics: view-change events at correct replicas, time of the
last view change (stabilization), and completed client requests.
"""

from repro.analysis.bounds import enumeration_cycle_length
from repro.analysis.report import Table
from repro.analysis.runner import run_xpaxos_crash_comparison

from .conftest import emit, once

SCENARIOS = (
    # (f, crash pids) — n = 2f + 1; crashing low ids hurts enumeration
    # most because every early view contains them.
    (1, (1,)),
    (2, (1,)),
    (2, (1, 2)),
    (3, (1, 2)),
)


def run_all():
    rows = []
    for f, crashes in SCENARIOS:
        n = 2 * f + 1
        comparison = run_xpaxos_crash_comparison(
            n=n, f=f, crash_pids=crashes, seed=9, duration=2000.0,
        )
        rows.append((f, n, crashes, comparison))
    return rows


def _last_view_change(system):
    times = [e.time for e in system.sim.log.events(kind="xp.viewchange")]
    return max(times) if times else 0.0


def test_e5_enumeration_vs_selection(benchmark):
    rows = once(benchmark, run_all)

    table = Table(
        [
            "f", "n", "crashes", "C(n,f) cycle",
            "sel changes", "enum changes", "sel done", "enum done",
            "sel t_stable", "enum t_stable",
        ],
        title="E5 — view changes under crashes: Quorum Selection vs enumeration",
    )
    for f, n, crashes, comparison in rows:
        sel, enum = comparison.view_changes()
        sel_done, enum_done = comparison.completed()
        table.add_row(
            f, n, crashes, enumeration_cycle_length(n, f),
            sel, enum, sel_done, enum_done,
            _last_view_change(comparison.selection),
            _last_view_change(comparison.enumeration),
        )
    emit("e5_enumeration_vs_qs", table.render())

    for _, _, _, comparison in rows:
        sel, enum = comparison.view_changes()
        assert sel <= enum  # selection never loses
        assert comparison.selection.histories_consistent()
        assert comparison.enumeration.histories_consistent()
    # And it wins strictly on the multi-crash scenarios.
    strict_wins = sum(
        1 for _, _, _, c in rows if c.view_changes()[0] < c.view_changes()[1]
    )
    assert strict_wins >= 2
