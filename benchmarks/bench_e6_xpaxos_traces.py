"""E6 — Figures 2 and 3: XPaxos normal-case message flow.

Regenerates both figures as message traces at ``f = 2`` (the figures'
parameter): the normal pattern (one PREPARE broadcast, COMMIT exchange,
commit on full quorum) and the delayed-PREPARE variant where a COMMIT
overtakes the PREPARE and the receiver issues an expectation for it —
with *no* false suspicion in either case.
"""

from repro.analysis.report import Table
from repro.analysis.traces import render_sequence_diagram
from repro.xpaxos.messages import KIND_COMMIT, KIND_PREPARE
from repro.xpaxos.system import build_system

from .conftest import emit, once

TRACED = {"xp.request", "xp.prepare", "xp.commit", "xp.reply"}


def run_normal_case():
    system = build_system(n=5, f=2, clients=1, seed=7, heartbeats=False,
                          client_ops=[[("put", "x", 1)]])
    system.sim.network.trace(TRACED)
    system.run(60.0)
    return system


def run_delayed_prepare():
    system = build_system(n=5, f=2, clients=1, seed=7, heartbeats=False,
                          client_ops=[[("put", "x", 1)]])
    system.sim.network.trace(TRACED)
    system.adversary.delay_links(1, extra_delay=2.5, dsts={3}, kinds={KIND_PREPARE})
    system.run(60.0)
    return system


def test_e6_fig2_normal_flow(benchmark):
    system = once(benchmark, run_normal_case)
    stats = system.sim.stats

    table = Table(
        ["metric", "value", "expected (Fig. 2, q=3)"],
        title="E6a / Figure 2 — XPaxos normal case, one request, f=2 (quorum {1,2,3})",
    )
    prepares = stats.sent_by_kind.get(KIND_PREPARE, 0)
    commits = stats.sent_by_kind.get(KIND_COMMIT, 0)
    table.add_row("PREPARE messages", prepares, "q-1 = 2")
    table.add_row("COMMIT messages", commits, "(q-1)*(q-1) = 4")
    table.add_row("commits executed at quorum",
                  sum(1 for pid in (1, 2, 3) if system.replicas[pid].executed), "3")
    table.add_row("false suspicions", system.sim.log.count("fd.timeout"), "0")
    diagram = render_sequence_diagram(system.sim.log, [6, 1, 2, 3], kinds=TRACED)
    emit("e6a_fig2_flow", table.render() + "\n\n" + diagram)

    assert prepares == 2          # leader -> two followers
    assert commits == 4           # each follower -> two peers
    assert system.total_completed() == 1
    assert system.sim.log.count("fd.timeout") == 0
    # Passive replicas saw none of it.
    for passive in (4, 5):
        assert len(system.replicas[passive].executed) == 0


def test_e6_fig3_delayed_prepare(benchmark):
    system = once(benchmark, run_delayed_prepare)

    # p3's COMMIT-before-PREPARE path: it received a COMMIT first, sent
    # its own COMMIT, and expected the PREPARE from the leader.
    expect_events = [
        e for e in system.sim.log.events(kind="fd.expect", process=3)
        if str(e.payload.get("label", "")).startswith("prepare<-p1")
    ]
    table = Table(
        ["metric", "value", "expected (Fig. 3)"],
        title="E6b / Figure 3 — delayed PREPARE to p3, f=2",
    )
    table.add_row("p3 expectations for the late PREPARE", len(expect_events), ">= 1")
    table.add_row("request completed", system.total_completed(), "1")
    table.add_row("false suspicions", system.sim.log.count("fd.timeout"), "0")
    table.add_row("p3 executed", len(system.replicas[3].executed), "1")
    diagram = render_sequence_diagram(system.sim.log, [6, 1, 2, 3], kinds=TRACED)
    emit("e6b_fig3_flow", table.render() + "\n\n" + diagram)

    assert len(expect_events) >= 1
    assert system.total_completed() == 1
    assert system.sim.log.count("fd.timeout") == 0
    assert len(system.replicas[3].executed) == 1
