"""E7 — the introduction's message-savings claim.

"Systems like PBFT ... use n = 3f+1 replicas, broadcast messages to all
replicas but require replies from only n-f correct replicas. ... these
systems can drop approximately 1/3 or 1/2 of the inter-replica
messages."  We measure per-request inter-replica messages for full
broadcast vs. an active quorum of ``n - f`` well-functioning replicas, in
both system families (``3f+1`` and ``2f+1``).
"""

import pytest

from repro.analysis.report import Table
from repro.analysis.runner import measure_message_savings

from .conftest import emit, once

SWEEP = (1, 2, 3, 4)


def run_both_families():
    rows = []
    for f in SWEEP:
        rows.append((f, "3f+1", measure_message_savings(f)))
        rows.append((f, "2f+1", measure_message_savings(f, two_f_plus_one=True)))
    return rows


def test_e7_message_savings(benchmark):
    rows = once(benchmark, run_both_families)

    table = Table(
        [
            "f", "family", "n", "active", "msgs/req full", "msgs/req active",
            "per-broadcast drop", "paper claim", "total drop",
        ],
        title="E7 — inter-replica messages per committed request",
    )
    for f, family, s in rows:
        claim = "~1/3" if family == "3f+1" else "~1/2"
        table.add_row(
            f, family, s.n, s.active_size,
            s.full_messages_per_request, s.active_messages_per_request,
            s.per_broadcast_reduction, claim, s.total_reduction,
        )
    emit("e7_message_savings", table.render())

    for f, family, s in rows:
        if family == "3f+1":
            assert s.per_broadcast_reduction == pytest.approx(1 / 3, abs=0.01)
        else:
            assert s.per_broadcast_reduction == pytest.approx(1 / 2, abs=0.01)
        assert s.total_reduction > 0.3
        assert s.active_messages_per_request < s.full_messages_per_request
