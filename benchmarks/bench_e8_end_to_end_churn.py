"""E8 — full-stack churn: XPaxos + FD + Quorum Selection under faults.

One run mixes the paper's failure classes — a crash, a per-link repeated
omission, and a bounded timing fault — against both view policies.
Metrics: completed requests over time (throughput before/during/after
churn), view changes, and safety (history consistency).
"""

from repro.analysis.report import Table
from repro.xpaxos.messages import KIND_COMMIT
from repro.xpaxos.system import build_system

from .conftest import emit, once

DURATION = 2000.0
REQUESTS = 40  # 2 clients x 20


def run_mode(mode: str):
    # Paced closed-loop clients so the workload spans the entire fault
    # schedule (think time 12 -> ~20 requests cover ~300+ time units).
    system = build_system(
        n=5, f=2, mode=mode, clients=2, seed=17, client_think_time=12.0,
        client_ops=[[("put", f"k{c}-{i}", i) for i in range(20)] for c in range(2)],
    )
    # Two faulty processes (f = 2): p1 crashes; follower p3 combines a
    # repeated per-link COMMIT omission towards p4 with a window of
    # timing failures towards the others.
    system.adversary.crash(1, at=100.0)
    system.adversary.omit_links(3, dsts={4}, kinds={KIND_COMMIT}, start=150.0)
    system.adversary.delay_links(3, extra_delay=3.0, dsts={2, 5}, start=200.0, end=400.0)
    system.run(DURATION)
    return system


def completed_by(system, t):
    return sum(
        sum(1 for entry in client.completed if entry[4] <= t)
        for client in system.clients.values()
    )


def test_e8_end_to_end_churn(benchmark):
    def run_both():
        return {mode: run_mode(mode) for mode in ("selection", "enumeration")}

    systems = once(benchmark, run_both)

    table = Table(
        [
            "mode", "done@100", "done@600", "done@end", "view changes",
            "final quorum", "safe",
        ],
        title="E8 — churn run (crash p1@100, omit p3->p4 COMMITs, delay p3) on n=5, f=2",
    )
    for mode, system in systems.items():
        changes = max((r.view_changes for r in system.correct_replicas()), default=0)
        table.add_row(
            mode, completed_by(system, 100.0), completed_by(system, 600.0),
            system.total_completed(), changes,
            system.correct_replicas()[0].quorum, system.histories_consistent(),
        )
    emit("e8_end_to_end_churn", table.render())

    for mode, system in systems.items():
        assert system.total_completed() == REQUESTS, mode
        assert system.histories_consistent(), mode
    sel = max(r.view_changes for r in systems["selection"].correct_replicas())
    enum = max(r.view_changes for r in systems["enumeration"].correct_replicas())
    assert sel <= enum
    # The final quorum dodges the crashed process and the broken link.
    final = systems["selection"].correct_replicas()[0].quorum
    assert 1 not in final
    assert not {3, 4} <= final
