"""E9 — ablations of the paper's design choices.

(a) *Epoch memory off*: if suspicions were permanent edges (never aged
    out by the epoch mechanism), a burst of pre-GST false suspicions
    between correct processes would leave the quorum permanently
    constrained — with the epoch mechanism the system returns to a quorum
    chosen only by current-epoch evidence.
(b) *Adaptive timeouts off*: with a fixed (non-doubling) timeout below
    the pre-GST delay, false suspicions keep recurring; the doubling
    policy stops them after stabilization.
(c) *Possible-follower rule off*: selecting a two-edge-path center as
    follower breaks the guarantee that a new (leader, follower) suspicion
    yields a larger leader — measured on the graph family of Example 1.
(d) *Update forwarding off* (Algorithm 1 line 23 / Lemma 1): a Byzantine
    quorum member that tells only half the correct processes about a
    (false) suspicion splits the quorum permanently — Agreement breaks.
"""

from repro.analysis.report import Table
from repro.fd.properties import false_suspicions
from repro.graphs.line_subgraph import LineSubgraph, leader_of, maximal_line_subgraph
from repro.graphs.suspect_graph import SuspectGraph
from tests.conftest import build_qs_world

from .conftest import emit, once


def test_e9a_epoch_memory(benchmark):
    """Epochs let the quorum escape stale false suspicions."""

    def run():
        sim, modules = build_qs_world(5, 2, seed=11, gst=40.0, base_timeout=3.0)
        sim.run_until(400.0)
        module = modules[1]
        # With epochs: quorum constrained only by final-epoch edges.
        with_epochs = module.matrix.build_suspect_graph(module.epoch)
        # Ablation: every suspicion ever recorded stays an edge (epoch 1).
        without_epochs = module.matrix.build_suspect_graph(1)
        return module, with_epochs, without_epochs

    module, with_epochs, without_epochs = once(benchmark, run)

    from repro.graphs.independent_set import has_independent_set

    table = Table(
        ["variant", "edges", "independent set of size q?"],
        title="E9a — epoch memory ablation (after pre-GST false suspicions)",
    )
    table.add_row("with epochs (paper)", with_epochs.edge_count(),
                  has_independent_set(with_epochs, module.q))
    table.add_row("without epochs (ablated)", without_epochs.edge_count(),
                  has_independent_set(without_epochs, module.q))
    emit("e9a_epoch_ablation", table.render())

    assert has_independent_set(with_epochs, module.q)
    # The ablated graph accumulated every pre-GST false suspicion.
    assert without_epochs.edge_count() > with_epochs.edge_count()
    assert not has_independent_set(without_epochs, module.q)


def test_e9b_adaptive_timeouts(benchmark):
    """Doubling timeouts are what buys eventual strong accuracy."""

    def run():
        # Base timeout 2.0 sits *below* the steady-state heartbeat gap
        # (period 2 plus latency jitter), so a non-adapting detector keeps
        # raising false suspicions forever; doubling escapes after a few.
        results = {}
        for label, multiplier in (("adaptive (paper)", 2.0), ("fixed (ablated)", 1.0)):
            sim, modules = build_qs_world(5, 2, seed=11, base_timeout=2.0)
            for pid in sim.pids:
                sim.host(pid).fd.policy.multiplier = multiplier
            sim.run_until(500.0)
            late = false_suspicions(sim.log, sim.pids, after=300.0)
            results[label] = (len(false_suspicions(sim.log, sim.pids)), len(late))
        return results

    results = once(benchmark, run)

    table = Table(
        ["timeout policy", "false suspicions (total)", "after stabilization"],
        title="E9b — timeout adaptivity ablation (base timeout below the heartbeat gap)",
    )
    for label, (total, late) in results.items():
        table.add_row(label, total, late)
    emit("e9b_timeout_ablation", table.render())

    assert results["adaptive (paper)"][1] == 0
    assert results["fixed (ablated)"][1] > 0


def test_e9c_possible_follower_rule(benchmark):
    """Choosing a P3 center as follower blocks the leader walk."""

    def run():
        graph = SuspectGraph(7, [(1, 2), (2, 3), (4, 5)])
        line = maximal_line_subgraph(graph)
        leader = leader_of(line)
        outcomes = {}
        for label, follower in (("possible follower (paper)", 3),
                                ("P3 center (ablated)", 2)):
            g2 = graph.copy()
            g2.add_edge(leader, follower)
            new_leader = leader_of(maximal_line_subgraph(g2))
            outcomes[label] = (leader, follower, new_leader)
        return outcomes

    outcomes = once(benchmark, run)

    table = Table(
        ["follower choice", "old leader", "suspected follower", "new leader", "leader moved?"],
        title="E9c — possible-follower (Definition 2) ablation on Example 1's graph",
    )
    for label, (old, fw, new) in outcomes.items():
        table.add_row(label, f"p{old}", f"p{fw}", f"p{new}", new > old)
    emit("e9c_follower_rule_ablation", table.render())

    old, _, new_good = outcomes["possible follower (paper)"]
    _, _, new_bad = outcomes["P3 center (ablated)"]
    assert new_good > old      # rule respected: leader strictly increases
    assert new_bad == old      # rule violated: system would be stuck


def test_e9d_update_forwarding(benchmark):
    """Lemma 1's forwarding is what makes Agreement survive equivocation."""
    from repro.core.messages import KIND_UPDATE, UpdatePayload
    from repro.core.quorum_selection import QuorumSelectionModule
    from repro.core.spec import agreement_holds
    from repro.fd.detector import FailureDetector
    from repro.fd.heartbeat import HeartbeatModule
    from repro.sim.runtime import Simulation, SimulationConfig

    def run(forward):
        sim = Simulation(SimulationConfig(n=5, seed=3))
        modules = {}
        for pid in sim.pids:
            host = sim.host(pid)
            FailureDetector(host)
            host.add_module(HeartbeatModule(host, n=5, period=2.0))
            modules[pid] = host.add_module(
                QuorumSelectionModule(host, n=5, f=2, forward_updates=forward)
            )
        byz = sim.host(3)  # a default-quorum member

        def selective_equivocation():
            # Tell only p1 and p2 about a (false) suspicion of p1.
            row = (0, 2, 0, 0, 0, 0)
            signed = byz.authenticator.sign(UpdatePayload(row))
            byz.send(1, KIND_UPDATE, signed)
            byz.send(2, KIND_UPDATE, signed)

        sim.at(10.0, selective_equivocation)
        sim.run_until(150.0)
        correct = [modules[p] for p in (1, 2, 4, 5)]
        quorums = {p: tuple(sorted(modules[p].qlast)) for p in (1, 2, 4, 5)}
        return agreement_holds(correct), quorums

    def run_both():
        return run(True), run(False)

    (with_fwd, q_with), (without_fwd, q_without) = once(benchmark, run_both)

    table = Table(
        ["variant", "agreement", "quorums at correct processes"],
        title="E9d — UPDATE forwarding ablation under selective equivocation",
    )
    table.add_row("forwarding on (paper)", with_fwd, sorted(set(q_with.values())))
    table.add_row("forwarding off (ablated)", without_fwd, sorted(set(q_without.values())))
    emit("e9d_forwarding_ablation", table.render())

    assert with_fwd and len(set(q_with.values())) == 1
    assert not without_fwd and len(set(q_without.values())) == 2
