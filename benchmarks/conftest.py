"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or quantitative
claims (see DESIGN.md §4 and EXPERIMENTS.md).  Conventions:

- each bench *asserts* the reproduced shape (who wins, which bound holds),
  so ``pytest benchmarks/ --benchmark-only`` doubles as a reproduction
  check;
- each bench prints its paper-style table through :func:`emit`, visible
  with ``-s`` and collected into ``benchmarks/_results/*.txt`` for
  EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "_results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under ``benchmarks/_results``."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run a heavyweight simulation exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
