"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or quantitative
claims (see DESIGN.md §4 and EXPERIMENTS.md).  Conventions:

- each bench *asserts* the reproduced shape (who wins, which bound holds),
  so ``pytest benchmarks/ --benchmark-only`` doubles as a reproduction
  check;
- each bench prints its paper-style table through :func:`emit` — the one
  shared reporting helper, in :mod:`benchmarks._reporting` — visible
  with ``-s`` and collected into ``benchmarks/_results/*.txt`` for
  EXPERIMENTS.md.

``emit``/``once`` are re-exported here because every bench imports them
from ``.conftest``; new code should import :mod:`benchmarks._reporting`
directly (``perf_report.py`` does, since conftest is pytest-specific).
"""

from __future__ import annotations

from ._reporting import RESULTS_DIR, emit, engine_cache, engine_jobs, once

__all__ = ["RESULTS_DIR", "emit", "engine_cache", "engine_jobs", "once"]
