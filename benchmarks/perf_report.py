"""E21 hot-path measurement harness — shared by the benchmark and the CLI.

Runs the E17 scenario (crash of ``p1`` at t=10, full stack: heartbeats,
failure detectors, gossiped suspicion matrix, quorum selection) at
consortium scales and reports, per case:

- wall-clock seconds (best of ``repeats`` — the simulation is
  deterministic, so repeated runs differ only by host-machine noise);
- the E17 correctness invariants (agreement, no-suspicion, quorum-change
  count, convergence time, surviving-quorum minimum);
- the aggregated hot-path counters from every process's
  :meth:`QuorumSelectionModule.hotpath_stats` — rebuilds avoided
  (``graph_reuses`` vs ``graph_builds``), searches memoized, incremental
  edge updates, gossip forwards suppressed;
- a digest of the quorum-change trace, so two builds can be checked for
  behavioural identity without shipping the full trace.

The cases run through the parallel execution engine (DESIGN.md §5.15):
``python benchmarks/perf_report.py --jobs N`` dispatches them across N
worker processes (never cached — the wall clock is the payload).  Before
overwriting ``BENCH_hotpath.json`` the previous report is read back and
any case whose ``wall_seconds`` regressed by more than 20% is flagged;
``--strict`` turns flags into a non-zero exit, making this the perf
regression gate for CI boxes with stable hardware.

``bench_e21_update_hotpath.py`` drives the same functions under pytest
and asserts the speedup floor.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.analysis.exec import ParallelExecutor, TaskSpec  # noqa: E402
from repro.analysis.report import Table  # noqa: E402
from repro.analysis.tasks import HOTPATH_COUNTERS, e21_hotpath_case  # noqa: E402

from benchmarks._reporting import emit  # noqa: E402

CASES: Tuple[Tuple[int, int], ...] = ((5, 2), (10, 3), (15, 4), (20, 5), (30, 6))

# Seed-commit wall seconds for the same scenario, measured on the machine
# that produced the checked-in BENCH_hotpath.json (best of 3; single-vCPU
# VM).  Absolute numbers are machine-specific — the *ratios* are the
# claim.  Regenerate with ``git stash && python benchmarks/perf_report.py``
# style archaeology if the baseline machine changes.
SEED_BASELINE_WALL: Dict[int, float] = {
    5: 0.052,
    10: 0.249,
    15: 0.705,
    20: 1.566,
    30: 5.544,
}

REPORT_PATH = REPO_ROOT / "BENCH_hotpath.json"

#: A case is flagged when its wall time exceeds the previous report's by
#: more than this fraction.
REGRESSION_THRESHOLD = 0.20


def run_hotpath_case(n: int, f: int, seed: int = 7, repeats: int = 1) -> dict:
    """Run the E17 scenario once per repeat; report best wall + invariants.

    Thin wrapper over the registered ``e21.hotpath_case`` engine task so
    the smoke tier and ad-hoc callers share the measured code path.
    """
    return e21_hotpath_case(seed=seed, n=n, f=f, repeats=repeats)


def check_invariants(row: dict) -> None:
    """The E17 acceptance assertions, shared by benchmark and smoke tier."""
    assert row["agree"] and row["no_suspicion"]
    assert 1 <= row["changes"] <= row["f"] + 2
    assert row["converged_at"] < 30.0
    assert row["final_min"] == 2
    hotpath = row["hotpath"]
    # The incremental view must be doing its job: after the first build
    # per (process, epoch), every later UPDATE reuses the maintained graph.
    assert hotpath["graph_reuses"] > hotpath["graph_builds"]
    assert hotpath["incremental_edge_updates"] > 0


def find_regressions(
    previous: Optional[dict], cases: List[dict],
    threshold: float = REGRESSION_THRESHOLD,
) -> List[str]:
    """Compare new wall times against the previous report's, per case.

    Returns human-readable flag lines for every case whose
    ``wall_seconds`` grew by more than ``threshold`` (fractional).
    Missing or malformed previous reports flag nothing — the gate only
    fires on evidence.
    """
    if not previous:
        return []
    old_walls = {
        (row.get("n"), row.get("f")): row.get("wall_seconds")
        for row in previous.get("cases", [])
        if isinstance(row, dict)
    }
    flags = []
    for row in cases:
        old = old_walls.get((row["n"], row["f"]))
        if not isinstance(old, (int, float)) or old <= 0:
            continue
        ratio = row["wall_seconds"] / old
        if ratio > 1.0 + threshold:
            flags.append(
                f"n={row['n']} f={row['f']}: wall {old:.3f}s -> "
                f"{row['wall_seconds']:.3f}s (+{(ratio - 1) * 100:.0f}%, "
                f"threshold +{threshold * 100:.0f}%)"
            )
    return flags


def find_net_regressions(
    previous: Optional[dict], report: dict,
    threshold: float = REGRESSION_THRESHOLD,
) -> List[str]:
    """Flag the live-runtime benchmark's throughput falling off a cliff.

    Mirrors :func:`find_regressions` for ``BENCH_net_loopback.json``:
    a flag line when ``update_throughput_frames_per_s`` dropped by more
    than ``threshold`` (fractional) versus the previous report.  Missing
    or malformed previous reports flag nothing.
    """
    if not previous:
        return []
    old = previous.get("update_throughput_frames_per_s")
    new = report.get("update_throughput_frames_per_s")
    if not isinstance(old, (int, float)) or old <= 0:
        return []
    if not isinstance(new, (int, float)):
        return []
    ratio = new / old
    if ratio < 1.0 - threshold:
        return [
            f"UPDATE throughput {old:.0f}/s -> {new:.0f}/s "
            f"({(ratio - 1) * 100:.0f}%, threshold -{threshold * 100:.0f}%)"
        ]
    return []


def find_service_regressions(
    previous: Optional[dict], report: dict,
    threshold: float = REGRESSION_THRESHOLD,
) -> List[str]:
    """Flag the KV-service benchmark's steady throughput dropping.

    Mirrors :func:`find_net_regressions` for ``BENCH_service_load.json``:
    a flag line when the live steady-state throughput fell by more than
    ``threshold`` (fractional) versus the previous report.  Missing or
    malformed previous reports flag nothing.
    """
    if not previous:
        return []
    try:
        old = previous["live"]["phases"]["steady"]["throughput"]
        new = report["live"]["phases"]["steady"]["throughput"]
    except (KeyError, TypeError):
        return []
    if not isinstance(old, (int, float)) or old <= 0:
        return []
    if not isinstance(new, (int, float)):
        return []
    ratio = new / old
    if ratio < 1.0 - threshold:
        return [
            f"service steady throughput {old:.0f}/s -> {new:.0f}/s "
            f"({(ratio - 1) * 100:.0f}%, threshold -{threshold * 100:.0f}%)"
        ]
    return []


def find_shard_regressions(
    previous: Optional[dict], report: dict,
    threshold: float = REGRESSION_THRESHOLD,
) -> List[str]:
    """Flag the shard-scaling benchmark's live throughput dropping.

    Mirrors :func:`find_service_regressions` for
    ``BENCH_shard_scaling.json``: one flag line per shard count M whose
    live aggregate steady throughput fell by more than ``threshold``
    (fractional) versus the previous report.  Missing or malformed
    previous reports flag nothing.
    """
    if not previous:
        return []
    flags = []
    old_points = previous.get("live", {}).get("points", {})
    new_points = report.get("live", {}).get("points", {})
    if not isinstance(old_points, dict) or not isinstance(new_points, dict):
        return []
    for m, new_point in new_points.items():
        old_point = old_points.get(m)
        try:
            old = old_point["aggregate"]["steady"]["throughput"]
            new = new_point["aggregate"]["steady"]["throughput"]
        except (KeyError, TypeError):
            continue
        if not isinstance(old, (int, float)) or old <= 0:
            continue
        if not isinstance(new, (int, float)):
            continue
        ratio = new / old
        if ratio < 1.0 - threshold:
            flags.append(
                f"shard M={m} aggregate throughput {old:.0f}/s -> {new:.0f}/s "
                f"({(ratio - 1) * 100:.0f}%, threshold -{threshold * 100:.0f}%)"
            )
    return flags


def find_adversary_regressions(
    previous: Optional[dict], report: dict,
) -> List[str]:
    """Flag the adversarial chase losing its Theorem-4 guarantees.

    Unlike the throughput gates this is a *correctness* gate on
    ``BENCH_adversary_search.json``: every f must keep ``canonical_exact``
    (the proof's own attack still scores exactly C(f+2,2)), ``bound_met``
    and ``thm3_ok``, and an f that previously hit the bound dropping its
    best score is flagged too.  Missing or malformed previous reports
    only check the absolute invariants.
    """
    flags = []
    old_entries = {}
    if previous:
        for entry in previous.get("entries", []) or []:
            if isinstance(entry, dict) and "f" in entry:
                old_entries[entry["f"]] = entry
    for entry in report.get("entries", []):
        f = entry["f"]
        if not entry.get("canonical_exact"):
            flags.append(f"adversary f={f}: canonical attack no longer exact")
        if not entry.get("bound_met"):
            flags.append(f"adversary f={f}: best attack below C(f+2,2)")
        if not entry.get("thm3_ok"):
            flags.append(f"adversary f={f}: a trial escaped the Thm 3 envelope")
        old = old_entries.get(f)
        if not old:
            continue
        try:
            old_best = old["best"]["proposed_quorums"]
            new_best = entry["best"]["proposed_quorums"]
        except (KeyError, TypeError):
            continue
        if isinstance(old_best, (int, float)) and \
                isinstance(new_best, (int, float)) and new_best < old_best:
            flags.append(
                f"adversary f={f}: best proposed quorums "
                f"{old_best:.0f} -> {new_best:.0f}"
            )
    return flags


def find_protocol_regressions(
    previous: Optional[dict], report: dict,
    threshold: float = REGRESSION_THRESHOLD,
) -> List[str]:
    """Flag the backend comparison (E29) drifting or slowing down.

    Absolute gates on ``BENCH_protocol_compare.json``: every backend's
    measured per-decision cost must still equal its closed form, the
    savings ordering must hold, and the leader-kill scenario must
    re-stabilize with a consistent history.  Relative gate: a backend's
    stabilization latency growing past the threshold (plus one probe
    step of slack — the measurement is step-quantized) is flagged.
    """
    flags = []
    old_backends = (previous or {}).get("backends", {})
    if not isinstance(old_backends, dict):
        old_backends = {}
    for protocol, block in report.get("backends", {}).items():
        for case in block.get("costs", []):
            family = case.get("family")
            if not case.get("measured_matches_analytic"):
                flags.append(
                    f"protocol {protocol} {family}: per-decision cost "
                    f"{case.get('per_decision')} != analytic "
                    f"{case.get('analytic_per_decision')}"
                )
            if not case.get("completed_all") or not case.get("histories_consistent"):
                flags.append(
                    f"protocol {protocol} {family}: cost run lost ops or "
                    f"history consistency"
                )
        stab = block.get("stabilization", {})
        new_latency = stab.get("latency")
        if new_latency is None:
            flags.append(f"protocol {protocol}: never re-stabilized after leader kill")
        if not stab.get("completed_all") or not stab.get("histories_consistent"):
            flags.append(
                f"protocol {protocol}: stabilization run lost ops or "
                f"history consistency"
            )
        old_stab = (old_backends.get(protocol) or {}).get("stabilization", {})
        old_latency = old_stab.get("latency") if isinstance(old_stab, dict) else None
        if (
            isinstance(old_latency, (int, float)) and old_latency > 0
            and isinstance(new_latency, (int, float))
            and new_latency > old_latency * (1 + threshold) + 1.0
        ):
            flags.append(
                f"protocol {protocol}: stabilization latency "
                f"{old_latency:.1f} -> {new_latency:.1f} "
                f"(threshold +{threshold * 100:.0f}%)"
            )
    return flags


def read_previous_report(path: Path = REPORT_PATH) -> Optional[dict]:
    """The report currently on disk, or ``None`` if absent/corrupt."""
    try:
        return json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError):
        return None


def write_report(repeats: int = 3, path: Path = REPORT_PATH, jobs: int = 1) -> dict:
    """Run every case, write ``BENCH_hotpath.json``, return the report.

    ``jobs>1`` runs the cases in worker processes via the engine (one
    case per chunk — they differ wildly in cost).  Caching is
    deliberately not offered here: the wall clock is the measurement.
    """
    specs = [
        TaskSpec.for_function(e21_hotpath_case, seed=7, n=n, f=f, repeats=repeats)
        for n, f in CASES
    ]
    outcomes = ParallelExecutor(jobs=jobs, chunk_size=1).run(specs)
    cases = []
    for outcome in outcomes:
        if not outcome.ok:
            raise RuntimeError(
                f"hot-path case failed: {outcome.describe_error()}"
            )
        row = outcome.value
        check_invariants(row)
        baseline = SEED_BASELINE_WALL.get(row["n"])
        row["seed_wall_seconds"] = baseline
        row["speedup_vs_seed"] = (
            round(baseline / row["wall_seconds"], 2) if baseline else None
        )
        cases.append(row)
    report = {
        "benchmark": "E21 — UPDATE hot path (E17 scenario, incremental stack)",
        "scenario": "crash p1 at t=10, run to t=120, seed=7",
        "cases": cases,
        "notes": (
            "wall_seconds is best-of-%d on the current machine; "
            "seed_wall_seconds is the pre-optimization commit on the "
            "baseline machine (see SEED_BASELINE_WALL). Behaviour is "
            "deterministic: trace_sha256 identifies the quorum-change "
            "sequence, identical between seed and optimized builds."
            % repeats
        ),
    }
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def render_table(report: dict) -> str:
    """The human-readable summary, shared by ``main`` and ``_results/``."""
    table = Table(
        [
            "n", "f", "wall s", "seed wall s", "speedup",
            "graph builds", "graph reuses", "edge updates", "memo hits",
        ],
        title="E21 — UPDATE hot path vs seed (E17 scenario)",
    )
    for row in report["cases"]:
        hp = row["hotpath"]
        table.add_row(
            row["n"], row["f"],
            round(row["wall_seconds"], 3), row["seed_wall_seconds"],
            f"{row['speedup_vs_seed']:.1f}x",
            hp["graph_builds"], hp["graph_reuses"],
            hp["incremental_edge_updates"], hp["searches_memoized"],
        )
    return table.render()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the cases (default 1)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per case, best wall wins")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if any case regressed >20%%")
    parser.add_argument("--net", action="store_true",
                        help="also run the live loopback runtime benchmark "
                             "(E24) and write BENCH_net_loopback.json")
    parser.add_argument("--net-rounds", type=int, default=4,
                        help="stabilization rounds per case for --net")
    parser.add_argument("--service", action="store_true",
                        help="also run the replicated KV service load "
                             "benchmark (E26) and write BENCH_service_load.json")
    parser.add_argument("--shard", action="store_true",
                        help="also run the shard-scaling benchmark (E30a) "
                             "and write BENCH_shard_scaling.json")
    parser.add_argument("--adversary", action="store_true",
                        help="also run the adversarial lower-bound chase "
                             "(E28) and write BENCH_adversary_search.json")
    parser.add_argument("--protocol", action="store_true",
                        help="also run the XPaxos vs IBFT backend comparison "
                             "(E29) and write BENCH_protocol_compare.json")
    args = parser.parse_args(argv)

    previous = read_previous_report()
    report = write_report(repeats=args.repeats, jobs=args.jobs)
    emit("e21_update_hotpath", render_table(report))
    regressions = find_regressions(previous, report["cases"])
    for line in regressions:
        print(f"PERF REGRESSION: {line}")
    print(f"wrote {REPORT_PATH}")

    if args.net:
        from benchmarks import bench_e24_net_loopback as e24

        net_previous = read_previous_report(e24.REPORT_PATH)
        net_report = e24.write_report(rounds=args.net_rounds)
        emit("e24_net_loopback", e24.render_table(net_report))
        net_regressions = find_net_regressions(net_previous, net_report)
        for line in net_regressions:
            print(f"PERF REGRESSION: {line}")
        regressions.extend(net_regressions)
        print(f"wrote {e24.REPORT_PATH}")

    if args.service:
        from benchmarks import bench_e26_service_load as e26

        service_previous = read_previous_report(e26.REPORT_PATH)
        service_report = e26.write_report()
        emit("e26_service_load", e26.render_table(service_report))
        service_regressions = find_service_regressions(
            service_previous, service_report
        )
        for line in service_regressions:
            print(f"PERF REGRESSION: {line}")
        regressions.extend(service_regressions)
        print(f"wrote {e26.REPORT_PATH}")

    if args.shard:
        from benchmarks import bench_e30_shard_scaling as e30

        shard_previous = read_previous_report(e30.REPORT_PATH)
        shard_report = e30.write_report()
        emit("e30_shard_scaling", e30.render_table(shard_report))
        shard_regressions = find_shard_regressions(shard_previous, shard_report)
        for line in shard_regressions:
            print(f"PERF REGRESSION: {line}")
        regressions.extend(shard_regressions)
        print(f"wrote {e30.REPORT_PATH}")

    if args.adversary:
        from benchmarks import bench_e28_adversary_search as e28

        adversary_previous = read_previous_report(e28.REPORT_PATH)
        adversary_report = e28.write_report()
        emit("e28_adversary_search", e28.render_table(adversary_report))
        adversary_regressions = find_adversary_regressions(
            adversary_previous, adversary_report
        )
        for line in adversary_regressions:
            print(f"PERF REGRESSION: {line}")
        regressions.extend(adversary_regressions)
        print(f"wrote {e28.REPORT_PATH}")

    if args.protocol:
        from benchmarks import bench_e29_protocol_compare as e29

        protocol_previous = read_previous_report(e29.REPORT_PATH)
        protocol_report = e29.write_report()
        emit("e29_protocol_compare", e29.render_table(protocol_report))
        protocol_regressions = find_protocol_regressions(
            protocol_previous, protocol_report
        )
        for line in protocol_regressions:
            print(f"PERF REGRESSION: {line}")
        regressions.extend(protocol_regressions)
        print(f"wrote {e29.REPORT_PATH}")

    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
