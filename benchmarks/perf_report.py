"""E21 hot-path measurement harness — shared by the benchmark and the CLI.

Runs the E17 scenario (crash of ``p1`` at t=10, full stack: heartbeats,
failure detectors, gossiped suspicion matrix, quorum selection) at
consortium scales and reports, per case:

- wall-clock seconds (best of ``repeats`` — the simulation is
  deterministic, so repeated runs differ only by host-machine noise);
- the E17 correctness invariants (agreement, no-suspicion, quorum-change
  count, convergence time, surviving-quorum minimum);
- the aggregated hot-path counters from every process's
  :meth:`QuorumSelectionModule.hotpath_stats` — rebuilds avoided
  (``graph_reuses`` vs ``graph_builds``), searches memoized, incremental
  edge updates, gossip forwards suppressed;
- a digest of the quorum-change trace, so two builds can be checked for
  behavioural identity without shipping the full trace.

``python benchmarks/perf_report.py`` writes ``BENCH_hotpath.json`` at the
repo root; ``bench_e21_update_hotpath.py`` drives the same functions under
pytest and asserts the speedup floor.
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.core.spec import agreement_holds, no_suspicion_holds  # noqa: E402
from tests.conftest import build_qs_world  # noqa: E402

CASES: Tuple[Tuple[int, int], ...] = ((5, 2), (10, 3), (15, 4), (20, 5), (30, 6))

# Seed-commit wall seconds for the same scenario, measured on the machine
# that produced the checked-in BENCH_hotpath.json (best of 3; single-vCPU
# VM).  Absolute numbers are machine-specific — the *ratios* are the
# claim.  Regenerate with ``git stash && python benchmarks/perf_report.py``
# style archaeology if the baseline machine changes.
SEED_BASELINE_WALL: Dict[int, float] = {
    5: 0.052,
    10: 0.249,
    15: 0.705,
    20: 1.566,
    30: 5.544,
}

REPORT_PATH = REPO_ROOT / "BENCH_hotpath.json"

HOTPATH_COUNTERS = (
    "quorum_searches",
    "searches_memoized",
    "graph_builds",
    "graph_reuses",
    "incremental_edge_updates",
    "forwards_suppressed",
)


def run_hotpath_case(n: int, f: int, seed: int = 7, repeats: int = 1) -> dict:
    """Run the E17 scenario once per repeat; report best wall + invariants.

    The counters and invariants come from the *last* repeat — the
    simulation is deterministic, so every repeat produces identical
    behaviour and only the wall clock varies.
    """
    best_wall: Optional[float] = None
    sim = modules = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        sim, modules = build_qs_world(n, f, seed=seed)
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(120.0)
        wall = time.perf_counter() - started
        if best_wall is None or wall < best_wall:
            best_wall = wall
    correct = [modules[p] for p in sim.pids if p != 1]
    change_times = [
        e.time for e in sim.log.events(kind="qs.quorum") if e.process != 1
    ]
    stats = {counter: 0 for counter in HOTPATH_COUNTERS}
    for module in modules.values():
        for counter, value in module.hotpath_stats().items():
            stats[counter] += value
    trace = [
        (e.time, e.process, e.epoch, tuple(sorted(e.quorum)))
        for pid in sorted(modules)
        for e in modules[pid].quorum_events
    ]
    trace_digest = hashlib.sha256(
        json.dumps(trace, separators=(",", ":")).encode()
    ).hexdigest()
    return {
        "n": n,
        "f": f,
        "agree": agreement_holds(correct),
        "no_suspicion": no_suspicion_holds(correct),
        "changes": max(m.total_quorums_issued() for m in correct),
        "converged_at": max(change_times) if change_times else 0.0,
        "updates": sim.stats.sent_by_kind.get("qs.update", 0),
        "final_min": min(correct[0].qlast),
        "wall_seconds": best_wall,
        "hotpath": stats,
        "trace_sha256": trace_digest,
    }


def check_invariants(row: dict) -> None:
    """The E17 acceptance assertions, shared by benchmark and smoke tier."""
    assert row["agree"] and row["no_suspicion"]
    assert 1 <= row["changes"] <= row["f"] + 2
    assert row["converged_at"] < 30.0
    assert row["final_min"] == 2
    hotpath = row["hotpath"]
    # The incremental view must be doing its job: after the first build
    # per (process, epoch), every later UPDATE reuses the maintained graph.
    assert hotpath["graph_reuses"] > hotpath["graph_builds"]
    assert hotpath["incremental_edge_updates"] > 0


def write_report(repeats: int = 3, path: Path = REPORT_PATH) -> dict:
    """Run every case, write ``BENCH_hotpath.json``, return the report."""
    cases = []
    for n, f in CASES:
        row = run_hotpath_case(n, f, repeats=repeats)
        check_invariants(row)
        baseline = SEED_BASELINE_WALL.get(n)
        row["seed_wall_seconds"] = baseline
        row["speedup_vs_seed"] = (
            round(baseline / row["wall_seconds"], 2) if baseline else None
        )
        cases.append(row)
    report = {
        "benchmark": "E21 — UPDATE hot path (E17 scenario, incremental stack)",
        "scenario": "crash p1 at t=10, run to t=120, seed=7",
        "cases": cases,
        "notes": (
            "wall_seconds is best-of-%d on the current machine; "
            "seed_wall_seconds is the pre-optimization commit on the "
            "baseline machine (see SEED_BASELINE_WALL). Behaviour is "
            "deterministic: trace_sha256 identifies the quorum-change "
            "sequence, identical between seed and optimized builds."
            % repeats
        ),
    }
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    report = write_report()
    for row in report["cases"]:
        speedup = row["speedup_vs_seed"]
        print(
            f"n={row['n']:>2} f={row['f']}  wall={row['wall_seconds']:.3f}s"
            f"  seed={row['seed_wall_seconds']:.3f}s"
            f"  speedup={speedup:.1f}x"
            f"  reuses={row['hotpath']['graph_reuses']}"
            f"  builds={row['hotpath']['graph_builds']}"
        )
    print(f"wrote {REPORT_PATH}")


if __name__ == "__main__":
    main()
