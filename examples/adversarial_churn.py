#!/usr/bin/env python3
"""The Theorem 4 adversary, live: forcing the maximum quorum churn.

The strongest attack against any deterministic Quorum Selection: fix the
``f`` faulty processes plus two correct targets (the set ``F+2``), wait
for the correct processes to agree on a quorum, and fire exactly one new
false suspicion between two quorum members inside ``F+2``.  Theorem 4
proves this forces ``C(f+2,2)`` proposed quorums; the paper's simulations
(and this one) show Algorithm 1 hits that number exactly — and then the
adversary is *done forever*: once the quorum is clean, it has no move
left.

Run:  python examples/adversarial_churn.py [f]
"""

import sys

from repro.analysis.bounds import observed_max_changes_claim, thm3_upper_bound
from repro.core import QuorumSelectionModule
from repro.failures import LowerBoundStrategy
from repro.fd import FailureDetector, HeartbeatModule
from repro.sim import Simulation, SimulationConfig
from repro.util.ids import format_pset


def main() -> None:
    f = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    n = 2 * f + 2
    sim = Simulation(SimulationConfig(n=n, seed=3, gst=0.0, delta=1.0))
    modules = {}
    for pid in sim.pids:
        host = sim.host(pid)
        FailureDetector(host)
        host.add_module(HeartbeatModule(host, n=n, period=2.0))
        modules[pid] = host.add_module(QuorumSelectionModule(host, n=n, f=f))

    modules[n].add_quorum_listener(
        lambda event: print(f"  t={event.time:7.2f}  new quorum "
                            f"{format_pset(event.quorum)}")
    )

    faulty = set(range(1, f + 1))
    targets = (f + 1, f + 2)
    strategy = LowerBoundStrategy(sim, modules, faulty=faulty, targets=targets)
    strategy.install()

    print(f"n={n}, f={f}; F = {format_pset(faulty)}, "
          f"targets = {format_pset(targets)}")
    print(f"claimed maximum churn: C(f+2,2)-1 = "
          f"{observed_max_changes_claim(f)} changes "
          f"(Theorem 3 bound: {thm3_upper_bound(f)})\n")
    sim.run_until(4000.0)

    correct = [modules[p] for p in sim.pids if p not in faulty]
    changes = max(m.total_quorums_issued() for m in correct)
    print(f"\nadversary exhausted after {len(strategy.fired)} suspicions; "
          f"{changes} quorum changes observed")
    print(f"suspicion sequence: "
          f"{[(f'p{a}', f'p{b}') for _, a, b in strategy.fired]}")
    print(f"final quorum: {format_pset(correct[0].qlast)} — all faulty "
          f"members cornered, no further interruption possible")
    assert changes == observed_max_changes_claim(f)


if __name__ == "__main__":
    main()
