#!/usr/bin/env python3
"""A replicated bank ledger: order-sensitive results on XPaxos + QS.

Demonstrates the pluggable state-machine API with operations whose
*results* depend on ordering: two transfers race for the same funds and
exactly one succeeds — at every replica identically, because the quorum
orders them once.  Mid-run the leader crashes (with checkpointing on),
and the books still balance everywhere.

Run:  python examples/bank_ledger.py
"""

from repro.xpaxos import BankLedger, build_system

OPS = [
    ("open", "alice"), ("open", "bob"), ("open", "carol"),
    ("deposit", "alice", 100),
    ("transfer", "alice", "bob", 70),   # succeeds
    ("transfer", "alice", "carol", 70),  # insufficient: only 30 left
    ("transfer", "alice", "carol", 30),  # succeeds
    ("deposit", "bob", 5),
    ("transfer", "bob", "carol", 75),    # succeeds: bob has 75
    ("balance", "carol"),
]


def main() -> None:
    system = build_system(
        n=5, f=2, mode="selection", clients=1, seed=11,
        client_ops=[OPS], state_machine_factory=BankLedger,
        checkpoint_interval=4, client_think_time=6.0,
    )
    system.adversary.crash(1, at=25.0)  # the initial leader dies mid-workload
    print("submitting:", *OPS, sep="\n  ")
    system.run(900.0)

    client = list(system.clients.values())[0]
    print("\nresults (agreed by f+1 replicas each):")
    for sequence, op, result, latency, _ in client.completed:
        print(f"  {op!s:<35} -> {result!r}   ({latency:.2f}tu)")

    caught_up = [
        replica for replica in system.correct_replicas()
        if len(replica.executed) == len(OPS)
    ]
    print(f"\nreplicas with the full ledger: {[r.pid for r in caught_up]}")
    for replica in caught_up[:1]:
        print(f"  alice={replica.kv.balance('alice')} "
              f"bob={replica.kv.balance('bob')} "
              f"carol={replica.kv.balance('carol')} "
              f"(total {replica.kv.total_money()})")
    digests = {replica.kv.state_digest() for replica in caught_up}
    print(f"state digests agree across replicas: {len(digests) == 1}")
    assert system.total_completed() == len(OPS)
    assert len(digests) == 1
    assert caught_up[0].kv.total_money() == 105


if __name__ == "__main__":
    main()
