#!/usr/bin/env python3
"""Chain replication re-configured by Chain Selection (extension demo).

The paper's conclusion points at chain-communicating systems (BChain) as
the next special case of Quorum Selection.  This demo runs our
integration: a BChain-style replicated KV store whose chain order comes
from the decentralized Chain Selection module instead of head-issued
blame.  A chain member then silently stops forwarding — the classic
"mute link" — and the chain reorganizes so the culprit ends up at the
tail, where forwarding is never required.  No standby pool, no trusted
accusations.

Run:  python examples/chain_replication.py
"""

from repro.baselines import build_bchain_cs_cluster
from repro.failures import Adversary

N, F = 7, 2


def main() -> None:
    cluster = build_bchain_cs_cluster(
        n=N, f=F, clients=1, requests_per_client=15, seed=5
    )
    for module in cluster.chain_modules.values():
        module.add_quorum_listener(
            lambda event: print(
                f"  t={event.time:7.2f}  p{event.process} adopts chain "
                f"{cluster.chain_modules[event.process].chain}"
            )
        )
        break  # one announcer is enough

    adversary = Adversary(cluster.sim, f_max=F)
    adversary.omit_links(3, kinds={"bcs.chain"}, start=25.0)

    print(f"n={N}, f={F}; initial chain {cluster.replicas[1].chain}")
    print("p3 silently stops forwarding CHAIN messages at t=25 ...\n")
    cluster.run(900.0)

    chain = cluster.current_chain()
    print(f"\ncompleted requests:  {cluster.total_completed()}/15")
    print(f"reconfigurations:    {cluster.total_reconfigurations()}")
    print(f"final chain:         {chain}")
    if 3 not in chain:
        print("p3 was selected out of the chain entirely.")
    elif chain[-1] == 3:
        print("p3 was demoted to the tail — it never has to forward there.")
    digests = {
        cluster.replicas[pid].kv.state_digest() for pid in chain
        if pid != 3  # the faulty process's state is its own problem
    }
    print(f"correct chain members' state digests agree: {len(digests) == 1}")
    assert cluster.total_completed() == 15
    assert 3 not in chain or chain[-1] == 3


if __name__ == "__main__":
    main()
