#!/usr/bin/env python3
"""Crash-recovery and the quorum's memory of cancelled suspicions.

The paper grounds *eventual detection* in the crash-recovery world: a
process fails, is suspected, resumes, and the suspicions are cancelled.
But Quorum Selection deliberately remembers — "we take not only current
suspicions into account, but also suspicions previously raised and
canceled" — so a process that bounced does not bounce straight back into
the quorum.  This demo shows the full lifecycle:

1. p1 (a default-quorum member) crashes; everyone suspects it; the
   quorum moves to {p2, p3, p4}.
2. p1 recovers; heartbeats resume; every failure-detector suspicion of
   p1 is cancelled within a few rounds.
3. And yet the quorum stays {p2, p3, p4}: the epoch-stamped matrix still
   carries the suspicions, exactly as designed.

Run:  python examples/crash_recovery.py
"""

from repro.core import QuorumSelectionModule, agreement_holds, no_suspicion_holds
from repro.fd import FailureDetector, HeartbeatModule
from repro.sim import Simulation, SimulationConfig
from repro.util.ids import format_pset

N, F = 5, 2


def main() -> None:
    sim = Simulation(SimulationConfig(n=N, seed=42))
    modules = {}
    for pid in sim.pids:
        host = sim.host(pid)
        FailureDetector(host)
        host.add_module(HeartbeatModule(host, n=N, period=2.0))
        modules[pid] = host.add_module(QuorumSelectionModule(host, n=N, f=F))
    modules[2].add_quorum_listener(
        lambda event: print(f"  t={event.time:7.2f}  quorum -> "
                            f"{format_pset(event.quorum)}")
    )

    print(f"default quorum: {format_pset(modules[2].qlast)}")
    print("p1 crashes at t=10, recovers at t=60 ...\n")
    sim.at(10.0, lambda: sim.host(1).crash())
    sim.at(60.0, lambda: sim.host(1).recover())
    sim.run_until(250.0)

    correct = [modules[p] for p in sim.pids]
    suspicions_of_p1 = {
        pid: 1 in sim.host(pid).fd.suspected for pid in (2, 3, 4, 5)
    }
    marks = [
        (pid, modules[2].matrix.get(pid, 1))
        for pid in (2, 3, 4, 5)
        if modules[2].matrix.get(pid, 1)
    ]
    print(f"\nafter recovery:")
    print(f"  anyone still suspecting p1?      {any(suspicions_of_p1.values())}")
    print(f"  matrix marks against p1 (epoch): {marks}")
    print(f"  final quorum:                    {format_pset(modules[2].qlast)}")
    print(f"  p1's own module agrees too:      "
          f"{modules[1].qlast == modules[2].qlast}")
    print(f"  agreement / no-suspicion:        "
          f"{agreement_holds(correct)} / {no_suspicion_holds(correct)}")
    assert not any(suspicions_of_p1.values())   # suspicions cancelled...
    assert 1 not in modules[2].qlast            # ...but the quorum remembers
    assert agreement_holds(correct)


if __name__ == "__main__":
    main()
