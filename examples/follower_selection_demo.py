#!/usr/bin/env python3
"""Follower Selection: the O(f) leader walk under a leader-hunting attack.

Leader-centric protocols only need the *leader's* links to work
(Section VIII), so Follower Selection relaxes "no suspicion" to "no
leader suspicion" and — for ``n > 3f`` — guarantees at most ``3f + 1``
quorums per epoch (Theorem 9), beating the ``C(f+2,2)`` lower bound that
binds general Quorum Selection.

Here ``f = 2`` Byzantine processes keep falsely suspecting whichever
leader the correct processes settle on.  The leader walks up the maximal
line subgraph; the adversary runs out of moves after a handful of steps.

Run:  python examples/follower_selection_demo.py
"""

from repro.analysis.bounds import observed_max_changes_claim, thm9_per_epoch_bound
from repro.core import FollowerSelectionModule, agreement_holds, no_leader_suspicion_holds
from repro.failures import FalseSuspicionInjector
from repro.fd import FailureDetector, HeartbeatModule
from repro.sim import Simulation, SimulationConfig
from repro.util.ids import format_pset

F = 2
N = 3 * F + 1
FAULTY = {1, 2}


def main() -> None:
    sim = Simulation(SimulationConfig(n=N, seed=3, gst=0.0, delta=1.0))
    modules = {}
    for pid in sim.pids:
        host = sim.host(pid)
        FailureDetector(host)
        host.add_module(HeartbeatModule(host, n=N, period=2.0))
        modules[pid] = host.add_module(FollowerSelectionModule(host, n=N, f=F))

    modules[3].add_quorum_listener(
        lambda event: print(
            f"  t={event.time:7.2f}  leader p{event.leader}, "
            f"quorum {format_pset(event.quorum)}"
        )
    )

    fired = []

    def attack() -> None:
        correct = [modules[p] for p in sim.pids if p not in FAULTY]
        leaders = {m.leader for m in correct}
        if len(leaders) == 1 and all(m.stable for m in correct):
            leader = leaders.pop()
            attacker = None
            if leader in FAULTY:
                for victim in sim.pids:
                    if victim != leader and modules[leader].matrix.get(leader, victim) < 1:
                        attacker, victim_pid = leader, victim
                        break
                else:
                    victim_pid = None
            else:
                for bad in sorted(FAULTY):
                    if modules[bad].matrix.get(bad, leader) < modules[bad].epoch:
                        attacker, victim_pid = bad, leader
                        break
                else:
                    victim_pid = None
            if attacker is not None and victim_pid is not None:
                print(f"  t={sim.now:7.2f}  [adversary] p{attacker} falsely "
                      f"suspects leader p{victim_pid}")
                FalseSuspicionInjector(modules[attacker]).suspect(victim_pid)
                fired.append((attacker, victim_pid))
        sim.scheduler.schedule(2.0, attack, label="attack")

    print(f"n={N}, f={F}; faulty = {format_pset(FAULTY)}; "
          f"Theorem 9 bound: {thm9_per_epoch_bound(F)} quorums/epoch "
          f"(general QS lower bound would allow {observed_max_changes_claim(F)})\n")
    sim.at(2.0, attack, label="attack")
    sim.run_until(400.0)

    correct = [modules[p] for p in sim.pids if p not in FAULTY]
    changes = max(m.total_quorums_issued() for m in correct)
    print(f"\nadversary fired {len(fired)} false suspicions, forcing "
          f"{changes} quorum changes (bound: {thm9_per_epoch_bound(F)})")
    print(f"final leader p{correct[0].leader}, "
          f"quorum {format_pset(correct[0].qlast)}")
    print(f"agreement: {agreement_holds(correct)}, "
          f"no leader suspicion: {no_leader_suspicion_holds(correct)}")
    assert changes <= thm9_per_epoch_bound(F)


if __name__ == "__main__":
    main()
