"""Run Quorum Selection over real sockets: a live loopback cluster.

Launches one OS process per replica (``python -m repro node``), lets
them find each other through the ephemeral-port rendezvous, crashes one
replica mid-run, and prints the cluster verdict: every surviving replica
must agree on the same *active* quorum (no crashed member), and no
replica may exceed Theorem 3's ``f(f+1)`` quorum changes per epoch.

Equivalent CLI invocation::

    python -m repro cluster --n 4 --f 1 --duration 6 --kill 4@1.5

Requires only the standard library and loopback TCP — no external
services.  See ``docs/architecture.md`` ("Live network runtime") for the
wire format and host-API contract behind this.
"""

from __future__ import annotations

from repro.net.cluster import ClusterConfig, run_cluster
from repro.net.parity import thm3_bound


def main() -> None:
    config = ClusterConfig(
        n=4,
        f=1,
        duration=6.0,
        kills=((4, 1.5),),  # crash p4 1.5 s after the start barrier
        kill_mode="host",
        heartbeat_period=0.3,
        base_timeout=1.5,
    )
    print(f"Starting a live loopback cluster: n={config.n}, f={config.f}, "
          f"killing p4 at t={config.kills[0][1]}s ...")
    result = run_cluster(config)

    quorum = result.final_quorum()
    print(f"correct replicas : {result.correct_pids()}")
    print(f"agreement        : {result.agreement()}")
    print(f"final quorum     : {sorted(quorum) if quorum else None}")
    print(f"active quorum    : {result.active_quorum()} (crashed member excluded)")
    print(f"max changes/epoch: {result.max_changes_per_epoch()} "
          f"(Thm 3 bound: {thm3_bound(config.f)})")

    assert result.agreement(), "correct replicas disagree on the final quorum"
    assert result.active_quorum(), "final quorum contains a crashed process"
    assert result.max_changes_per_epoch() <= thm3_bound(config.f)
    print("OK: the cluster re-stabilized on an active quorum over real sockets.")


if __name__ == "__main__":
    main()
