#!/usr/bin/env python3
"""Consortium-blockchain committee selection with flaky validators.

The paper motivates Quorum Selection with permissioned blockchains
(Section VI-C): a fixed membership of tens of validators, of which an
active committee of ``n - f`` runs consensus.  This example models a
9-validator consortium (``f = 3``, committees of 6) where, over time:

- one validator crashes outright (hardware failure),
- one develops a *single bad link* (it keeps dropping heartbeats to one
  specific peer — undetectable for detectors that only watch processes,
  the exact case the paper's per-link failure detector handles),
- one turns sluggish, with response delays growing without bound.

Watch the committee migrate away from all three while the six healthy
validators keep a stable committee.

Run:  python examples/permissioned_blockchain.py
"""

from repro.core import QuorumSelectionModule, agreement_holds
from repro.failures import Adversary
from repro.fd import FailureDetector, HeartbeatModule, PingPongModule
from repro.sim import Simulation, SimulationConfig
from repro.util.ids import format_pset

N, F = 9, 3
CRASHED, BAD_LINK, SLUGGISH = 2, 5, 8
BAD_LINK_PEER = 1


def main() -> None:
    sim = Simulation(SimulationConfig(n=N, seed=7, gst=0.0, delta=1.0))
    modules = {}
    for pid in sim.pids:
        host = sim.host(pid)
        FailureDetector(host)
        host.add_module(HeartbeatModule(host, n=N, period=2.0))
        host.add_module(PingPongModule(host, n=N, period=6.0))
        modules[pid] = host.add_module(QuorumSelectionModule(host, n=N, f=F))

    observer = modules[1]
    observer.add_quorum_listener(
        lambda event: print(
            f"  t={event.time:7.2f}  committee -> {format_pset(event.quorum)}"
        )
    )

    adversary = Adversary(sim, f_max=F)
    adversary.crash(CRASHED, at=20.0)
    adversary.omit_links(
        BAD_LINK, dsts={BAD_LINK_PEER}, kinds={"heartbeat"}, start=60.0
    )
    adversary.increasing_delay(SLUGGISH, growth_per_unit=0.5, start=120.0)

    print(f"consortium of {N} validators, committees of {N - F}")
    print(f"default committee: {format_pset(observer.qlast)}")
    print(f"fault schedule: p{CRASHED} crashes @20, "
          f"p{BAD_LINK} mutes its link to p{BAD_LINK_PEER} @60, "
          f"p{SLUGGISH} slows down without bound @120\n")
    sim.run_until(600.0)

    correct = [modules[p] for p in sim.pids if p not in (CRASHED, BAD_LINK, SLUGGISH)]
    final = correct[0].qlast
    print(f"\nfinal committee: {format_pset(final)}")
    print(f"all healthy validators agree: {agreement_holds(correct)}")
    print(f"crashed validator out:        {CRASHED not in final}")
    print(f"bad-link pair separated:      {not {BAD_LINK, BAD_LINK_PEER} <= final}")
    print(f"sluggish validator out:       {SLUGGISH not in final}")
    assert CRASHED not in final
    assert not {BAD_LINK, BAD_LINK_PEER} <= final


if __name__ == "__main__":
    main()
