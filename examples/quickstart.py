#!/usr/bin/env python3
"""Quickstart: Quorum Selection surviving a crashed quorum member.

Builds the paper's smallest interesting system — ``n = 5`` processes
tolerating ``f = 2`` faults, so active quorums have ``q = 3`` members —
wires each process with a failure detector, a heartbeat application, and
the Quorum Selection module (Algorithm 1), then crashes ``p1`` (a member
of the default quorum ``{p1, p2, p3}``) and watches the correct processes
agree on a replacement quorum.

Run:  python examples/quickstart.py
"""

from repro.core import QuorumSelectionModule, agreement_holds, no_suspicion_holds
from repro.fd import FailureDetector, HeartbeatModule
from repro.sim import Simulation, SimulationConfig
from repro.util.ids import format_pset

N, F = 5, 2


def main() -> None:
    sim = Simulation(SimulationConfig(n=N, seed=42, gst=0.0, delta=1.0))
    modules = {}
    for pid in sim.pids:
        host = sim.host(pid)
        FailureDetector(host)
        host.add_module(HeartbeatModule(host, n=N, period=2.0))
        modules[pid] = host.add_module(QuorumSelectionModule(host, n=N, f=F))

    # Print every quorum any process announces, as it happens.
    for pid, module in modules.items():
        module.add_quorum_listener(
            lambda event: print(
                f"  t={event.time:7.2f}  p{event.process} issues "
                f"<QUORUM, {format_pset(event.quorum)}> (epoch {event.epoch})"
            )
        )

    print(f"n={N}, f={F}: default quorum is {format_pset(modules[1].qlast)}")
    print("crashing p1 at t=10 ...")
    sim.at(10.0, lambda: sim.host(1).crash())
    sim.run_until(100.0)

    correct = [modules[pid] for pid in (2, 3, 4, 5)]
    final = correct[0].qlast
    print(f"\nfinal quorum at every correct process: {format_pset(final)}")
    print(f"agreement holds:    {agreement_holds(correct)}")
    print(f"no suspicion holds: {no_suspicion_holds(correct)}")
    assert final == frozenset({2, 3, 4})


if __name__ == "__main__":
    main()
