#!/usr/bin/env python3
"""A replicated key-value store on XPaxos with Quorum Selection.

Runs the full stack of Section V: ``n = 2f + 1 = 5`` XPaxos replicas with
the paper's expectation-based failure detector and Quorum Selection
driving view changes.  Two clients issue puts continuously; mid-run the
current leader crashes.  Compare how quickly the two quorum policies —
Quorum Selection vs XPaxos' original enumeration — restore service.

Run:  python examples/replicated_kv_store.py
"""

from repro.util.ids import format_pset
from repro.xpaxos import build_system

N, F = 5, 2
REQUESTS_PER_CLIENT = 25


def run(mode: str) -> None:
    print(f"--- mode: {mode} ---")
    system = build_system(
        n=N, f=F, mode=mode, clients=2, seed=11, client_think_time=4.0,
        client_ops=[
            [("put", f"user-{c}-{i}", i) for i in range(REQUESTS_PER_CLIENT)]
            for c in range(2)
        ],
    )
    system.adversary.crash(1, at=50.0)  # the view-0 leader dies mid-run
    system.run(1200.0)

    done = system.total_completed()
    replica = system.correct_replicas()[0]
    changes = max(r.view_changes for r in system.correct_replicas())
    latencies = [
        entry[3] for client in system.clients.values() for entry in client.completed
    ]
    print(f"completed requests:      {done}/{2 * REQUESTS_PER_CLIENT}")
    print(f"view changes:            {changes}")
    print(f"final view/quorum:       v{replica.view} {format_pset(replica.quorum)}")
    print(f"mean request latency:    {sum(latencies) / len(latencies):.2f} time units")
    print(f"p99-ish (max) latency:   {max(latencies):.2f} time units")
    print(f"inter-replica messages:  {system.inter_replica_messages()}")
    print(f"histories consistent:    {system.histories_consistent()}")
    sample = system.correct_replicas()[0].kv.get("user-0-0")
    print(f"kv sanity (user-0-0):    {sample}\n")
    assert done == 2 * REQUESTS_PER_CLIENT
    assert system.histories_consistent()


def main() -> None:
    for mode in ("selection", "enumeration"):
        run(mode)


if __name__ == "__main__":
    main()
