"""Setuptools entry point (legacy path for environments without wheel)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Quorum Selection for Byzantine Fault Tolerance' "
        "(Jehl, ICDCS 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
