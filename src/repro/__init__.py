"""Reproduction of "Quorum Selection for Byzantine Fault Tolerance".

Leander Jehl, ICDCS 2019.  See README.md for a guided tour, DESIGN.md
for the system inventory and resolved ambiguities, and EXPERIMENTS.md
for paper-vs-measured results.

The public API re-exports the pieces most users need; subpackages stay
importable directly for everything else:

- :mod:`repro.sim` — deterministic discrete-event simulation substrate.
- :mod:`repro.crypto` — simulated signatures.
- :mod:`repro.graphs` — suspect-graph algorithms.
- :mod:`repro.fd` — the expectation-driven Byzantine failure detector.
- :mod:`repro.core` — Quorum Selection (Alg. 1) and Follower Selection
  (Alg. 2), plus the extension modules.
- :mod:`repro.failures` — fault injection and adversary strategies.
- :mod:`repro.xpaxos` — the XPaxos substrate with both quorum policies.
- :mod:`repro.baselines` — PBFT-pattern and BChain-lite baselines.
- :mod:`repro.analysis` — bounds, worst-case search, experiment runners.
"""

from repro.core import FollowerSelectionModule, QuorumSelectionModule
from repro.failures import Adversary
from repro.fd import FailureDetector, HeartbeatModule
from repro.sim import Simulation, SimulationConfig
from repro.xpaxos import build_system

__version__ = "1.0.0"

__all__ = [
    "QuorumSelectionModule",
    "FollowerSelectionModule",
    "FailureDetector",
    "HeartbeatModule",
    "Adversary",
    "Simulation",
    "SimulationConfig",
    "build_system",
    "__version__",
]
