"""Programmable Byzantine adversary engine + lower-bound chase (E28).

Grows — and for new adversarial scenarios supersedes — the static rule
layer in :mod:`repro.failures`:

- :mod:`repro.adversary.engine` — the engine: composable, stateful
  :class:`Strategy` policies driven each tick by a read-only world
  snapshot (:mod:`repro.core.observation`), actuating through the
  model's allowed faults (false suspicions, equivocation, forged rows,
  tagged per-link omission/timing rules, a collusion blackboard).
- :mod:`repro.adversary.strategies` — the policy library: the ported
  Theorem-4 chase, colluding f-cliques, equivocation, garbage-row
  forging, adaptive selective omission, and quorum-keyed timing.
- :mod:`repro.adversary.search` — the seeded randomized attack search:
  a fuzzer over strategy parameters and schedule jitter, guided by the
  quorum-change count, chasing Theorem 4's ``C(f+2, 2)`` bound through
  the E23 parallel executor and result cache.

CLI: ``python -m repro adversary {attack,search} ...``.
"""

from repro.adversary.engine import ActionRecord, AdversaryEngine, Blackboard, Strategy
from repro.adversary.strategies import (
    AdaptiveTimingStrategy,
    CollusionStrategy,
    EquivocationStrategy,
    ForgedSuspicionStrategy,
    LowerBoundAttack,
    SelectiveOmissionStrategy,
    forge_garbage_rows,
)
from repro.adversary.search import (
    STRATEGY_FACTORIES,
    canonical_config,
    chase_bound,
    make_strategy,
    run_attack_case,
)

__all__ = [
    "ActionRecord",
    "AdversaryEngine",
    "Blackboard",
    "Strategy",
    "LowerBoundAttack",
    "CollusionStrategy",
    "EquivocationStrategy",
    "ForgedSuspicionStrategy",
    "SelectiveOmissionStrategy",
    "AdaptiveTimingStrategy",
    "forge_garbage_rows",
    "STRATEGY_FACTORIES",
    "make_strategy",
    "run_attack_case",
    "canonical_config",
    "chase_bound",
]
