"""The programmable Byzantine adversary engine (E28).

Where :class:`repro.failures.Adversary` attaches *static* per-link rules,
the engine runs *policies*: composable, stateful :class:`Strategy`
objects that each tick observe the world through the read-only snapshot
API (:mod:`repro.core.observation`) and react through a small actuation
vocabulary — exactly the failures the paper's model grants a Byzantine
process:

- ``false_suspicion``: a controlled process signs a dishonest UPDATE row
  through its own module (wire-format-perfect, cf. Theorem 4);
- ``equivocate``: conflicting signed UPDATE rows to different peer
  groups — within crypto limits, since only the liar's own key signs;
- ``forge_row``: a signed row whose *content* is garbage (wrong arity,
  bogus types, absurd stamps) — receivers must shrug it off;
- ``omit`` / ``delay`` / ``clear_rules``: per-link omission and timing
  failures, delegated to the legacy rule layer under per-strategy tags
  so stacked behaviours replace their own rules without shadowing
  (see the audit notes in :mod:`repro.failures.adversary`);
- a shared :class:`Blackboard` for colluding f-cliques.

Every actuation is logged, counted, and span-recorded
(:data:`~repro.obs.spans.SPAN_ADVERSARY_ACTION`), so attacks are as
observable as the protocol they attack.  All engine randomness comes
from a dedicated ``adversary/engine`` child of the run RNG; strategies
that draw nothing (e.g. the ported Theorem-4 policy) leave every other
stream untouched, keeping their runs trace-identical to the legacy
scripted path.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.messages import KIND_UPDATE, UpdatePayload
from repro.core.observation import WorldView, observe_world
from repro.core.quorum_selection import QuorumSelectionModule
from repro.failures.adversary import Adversary, LinkRule
from repro.failures.strategies import FalseSuspicionInjector
from repro.obs.spans import SPAN_ADVERSARY_ACTION
from repro.sim.runtime import Simulation
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId
from repro.util.rand import DeterministicRng

__all__ = ["ActionRecord", "Blackboard", "Strategy", "AdversaryEngine"]


class Blackboard:
    """Shared memory for colluding strategies (the f-clique's back channel).

    Faulty processes may coordinate out of band — nothing in the model
    forbids it — so colluders post and read freely here.  Correct
    processes never see it; it is adversary-internal state only.
    """

    def __init__(self) -> None:
        self._slots: Dict[str, Any] = {}
        self.posts: List[Tuple[float, str, str]] = []

    def post(self, key: str, value: Any, by: str = "?", now: float = 0.0) -> None:
        self._slots[key] = value
        self.posts.append((now, by, key))

    def get(self, key: str, default: Any = None) -> Any:
        return self._slots.get(key, default)

    def pop(self, key: str, default: Any = None) -> Any:
        return self._slots.pop(key, default)


#: One actuation: ``(time, strategy name, action name, attrs)``.
ActionRecord = Tuple[float, str, str, Dict[str, Any]]


class Strategy:
    """Base class for adversary policies.

    Lifecycle: :meth:`bind` wires the engine in (once), then the engine
    calls :meth:`on_observe` with a fresh :class:`WorldView` every tick
    until :attr:`done` goes true for every strategy.  Strategies keep
    their own state between ticks; randomness must come from
    :attr:`rng` (a per-strategy child stream) so composition never
    perturbs sibling strategies.
    """

    #: Stable policy name: names the RNG child, rule tags, and spans.
    name = "strategy"

    def __init__(self) -> None:
        self.engine: Optional["AdversaryEngine"] = None
        self.rng: Optional[DeterministicRng] = None
        self.done = False

    def bind(self, engine: "AdversaryEngine", index: int) -> None:
        if self.engine is not None:
            raise ConfigurationError(f"strategy {self.name!r} bound twice")
        self.engine = engine
        # The index keeps two instances of one policy on distinct streams.
        self.rng = engine.rng.child(self.name, index)
        self.tag = f"{self.name}#{index}"

    def on_observe(self, view: WorldView) -> None:
        raise NotImplementedError


class AdversaryEngine:
    """Drives a set of strategies against one simulated QS world.

    Parameters mirror the legacy strategy constructors: ``modules`` maps
    every pid to its QS module (faulty ones included — the engine signs
    lies through *their* modules and keys only), ``faulty`` is the
    corrupted set F.  ``tick_period`` is the observe/act cadence; the
    default matches the legacy ``check_period`` so the ported Theorem-4
    policy replays the scripted adversary tick for tick.
    """

    def __init__(
        self,
        sim: Simulation,
        modules: Dict[int, QuorumSelectionModule],
        faulty: Set[int],
        f_max: Optional[int] = None,
        tick_period: float = 1.0,
    ) -> None:
        if tick_period <= 0:
            raise ConfigurationError(f"tick period must be positive, got {tick_period}")
        unknown = set(faulty) - set(modules)
        if unknown:
            raise ConfigurationError(f"faulty pids without modules: {sorted(unknown)}")
        self.sim = sim
        self.modules = modules
        self.faulty: FrozenSet[int] = frozenset(faulty)
        self.f = len(self.faulty)
        self.tick_period = tick_period
        self.rng = sim.rng.child("adversary", "engine")
        self.blackboard = Blackboard()
        # The legacy controller remains the rule layer: corruption marks,
        # interceptor plumbing, and LinkRule matching all live there.
        self.rules = Adversary(sim, f_max=f_max)
        for pid in sorted(self.faulty):
            self.rules.corrupt(pid)
        self.strategies: List[Strategy] = []
        self.actions: List[ActionRecord] = []
        self.action_counts: Dict[str, int] = {}
        self.ticks = 0
        self._installed = False
        self._obs = sim.obs
        self._obs.add_collector(self._collect_metrics)

    # ------------------------------------------------------------- lifecycle

    def add(self, strategy: Strategy) -> Strategy:
        """Attach a policy; returns it for chaining."""
        if self._installed:
            raise ConfigurationError("cannot add strategies after install()")
        strategy.bind(self, len(self.strategies))
        self.strategies.append(strategy)
        return strategy

    @property
    def done(self) -> bool:
        return all(strategy.done for strategy in self.strategies)

    def install(self) -> None:
        """Arm the observe/act loop (call before ``sim.run_until``)."""
        if not self.strategies:
            raise ConfigurationError("engine has no strategies to run")
        self._installed = True
        self.sim.at(self.tick_period, self._tick, label="adversary-engine")

    def _tick(self) -> None:
        # Mirrors the legacy strategy loop shape (check done, act,
        # reschedule) so engine runs share the scripted path's timeline.
        if self.done:
            return
        self.ticks += 1
        view = self.observe()
        for strategy in self.strategies:
            if not strategy.done:
                strategy.on_observe(view)
        self.sim.scheduler.schedule(
            self.tick_period, self._tick, label="adversary-engine"
        )

    def observe(self) -> WorldView:
        """A fresh world snapshot (read-only; draws nothing)."""
        return observe_world(self.sim.now, self.modules, self.faulty, self.f)

    # ---------------------------------------------------------- commission

    def false_suspicion(
        self, suspector: ProcessId, victim: ProcessId, by: str = "engine"
    ) -> None:
        """``suspector`` (faulty) falsely suspects ``victim``.

        Signed through the suspector's own module — the Theorem-4 lie:
        wire-format-perfect and unprovable as a protocol violation.
        """
        self._require_faulty(suspector)
        FalseSuspicionInjector(self.modules[suspector]).suspect(victim)
        self._record(by, "false_suspicion", suspector=suspector, victim=victim)

    def sign_row(self, pid: ProcessId, row: Sequence[Any]):
        """A signed UPDATE carrying an arbitrary row, under ``pid``'s key.

        The crypto limit in code form: the engine can make a faulty
        process sign anything, but only with keys that process holds.
        """
        self._require_faulty(pid)
        host = self.sim.host(pid)
        return host.authenticator.sign(UpdatePayload(tuple(row)))

    def send_update(self, pid: ProcessId, signed: Any, dsts: Iterable[int]) -> None:
        """Deliver one signed UPDATE from ``pid`` to chosen peers only.

        Uses raw injection: the adversary talking through its own
        process bypasses that process's interceptor but never
        authentication — receivers still verify the signature.
        """
        self._require_faulty(pid)
        for dst in dsts:
            self.sim.network.inject(pid, dst, KIND_UPDATE, signed)

    def equivocate(
        self,
        pid: ProcessId,
        groups: Sequence[Tuple[Sequence[Any], Iterable[int]]],
        by: str = "engine",
    ) -> None:
        """Send *conflicting* signed rows to different peer groups.

        ``groups`` is ``[(row, destinations), ...]``; each row is signed
        separately, so every recipient holds a genuinely authenticated —
        mutually inconsistent — claim about ``pid``'s suspicions.  Gossip
        forwarding (Lemma 1) is what reconciles the views afterwards.
        """
        for row, dsts in groups:
            self.send_update(pid, self.sign_row(pid, row), dsts)
        self._record(by, "equivocate", actor=pid, variants=len(groups))

    def forge_row(
        self,
        pid: ProcessId,
        row: Sequence[Any],
        dsts: Optional[Iterable[int]] = None,
        by: str = "engine",
    ) -> None:
        """Broadcast a signed but content-garbage row from ``pid``."""
        signed = self.sign_row(pid, row)
        targets = list(dsts) if dsts is not None else [
            dst for dst in sorted(self.modules) if dst != pid
        ]
        self.send_update(pid, signed, targets)
        self._record(by, "forge_row", actor=pid, dsts=len(targets))

    # ------------------------------------------------- omission and timing

    def omit(
        self,
        pid: ProcessId,
        dsts: Optional[Set[int]] = None,
        kinds: Optional[Set[str]] = None,
        probability: float = 1.0,
        tag: Optional[str] = None,
        by: str = "engine",
    ) -> None:
        """Selective per-link omission from ``pid`` (tagged rule)."""
        self.rules.add_rule(
            pid,
            LinkRule(dsts=dsts, kinds=kinds, drop=True,
                     probability=probability, tag=tag),
        )
        self._record(by, "omit", actor=pid,
                     dsts=tuple(sorted(dsts)) if dsts else "all")

    def delay(
        self,
        pid: ProcessId,
        extra_delay: float,
        dsts: Optional[Set[int]] = None,
        kinds: Optional[Set[str]] = None,
        tag: Optional[str] = None,
        by: str = "engine",
    ) -> None:
        """Timing failure on selected links from ``pid`` (tagged rule)."""
        self.rules.add_rule(
            pid,
            LinkRule(dsts=dsts, kinds=kinds, extra_delay=extra_delay, tag=tag),
        )
        self._record(by, "delay", actor=pid, extra_delay=extra_delay)

    def clear_rules(self, pid: ProcessId, tag: Optional[str] = None) -> int:
        """Drop ``pid``'s rules (all, or one strategy's tag)."""
        return self.rules.clear_rules(pid, tag=tag)

    # -------------------------------------------------------------- plumbing

    def _require_faulty(self, pid: ProcessId) -> None:
        if pid not in self.faulty:
            raise ConfigurationError(
                f"p{pid} is correct: the adversary only acts through faulty processes"
            )

    def _record(self, by: str, action: str, **attrs: Any) -> None:
        now = self.sim.now
        self.actions.append((now, by, action, attrs))
        key = f"{by}:{action}"
        self.action_counts[key] = self.action_counts.get(key, 0) + 1
        self.sim.log.append(now, 0, "adv.action", strategy=by, action=action, **attrs)
        self._obs.span(SPAN_ADVERSARY_ACTION, 0, now,
                       strategy=by, action=action, **attrs)

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector (collect-on-snapshot discipline)."""
        registry.gauge(
            "adv_strategies_active",
            help="adversary strategies not yet done",
        ).set(sum(1 for s in self.strategies if not s.done))
        registry.counter(
            "adv_ticks_total", help="adversary engine observe/act ticks"
        ).set(self.ticks)
        for key, count in sorted(self.action_counts.items()):
            strategy, _, action = key.partition(":")
            registry.counter(
                "adv_actions_total",
                help="adversary actuations by strategy and action",
                strategy=strategy, action=action,
            ).set(count)
