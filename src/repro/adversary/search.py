"""Seeded randomized adversarial-schedule search (the lower-bound chase).

A fuzzer over (strategy, parameters, schedule jitter) triples, guided by
the quorum-change count, chasing Theorem 4's ``C(f+2, 2)`` proposed-
quorum bound per ``(n, f)``:

- **Trial** = one :func:`run_attack_case`: a fresh QS world, one engine
  strategy built from a JSON spec, optional adversarial delivery jitter
  (the scheduler-interleaving dimension), run to completion; scored by
  the worst per-epoch *proposed*-quorum count among correct processes
  (issued changes + the epoch's starting quorum — the counting
  convention of :mod:`repro.analysis.bounds`).
- **Corpus**: round 0 always contains the canonical Theorem-4 config
  (the fuzzer's seed corpus — the proof is the best attack we know)
  plus uniformly sampled configs; later rounds mutate the elite third,
  so the search is *guided* by the score while remaining a pure
  function of the seed.
- **Scale**: trials run as registered sweep tasks through the E23
  :class:`~repro.analysis.exec.ParallelExecutor`, so ``jobs=N``
  parallelism and the on-disk result cache come for free — re-running a
  search with the same seed serves every trial from cache.

Everything here is deterministic given ``seed``: sampling and mutation
draw from named RNG children only, ties break on trial order, and the
trial task returns floats that are equal across workers.  Same seed →
same trials → same best attack.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.adversary.engine import AdversaryEngine, Strategy
from repro.adversary.strategies import (
    AdaptiveTimingStrategy,
    CollusionStrategy,
    EquivocationStrategy,
    ForgedSuspicionStrategy,
    LowerBoundAttack,
    SelectiveOmissionStrategy,
)
from repro.analysis.bounds import thm3_upper_bound, thm4_quorum_count
from repro.analysis.exec import ParallelExecutor, TaskSpec
from repro.core.spec import agreement_holds
from repro.sim.worlds import build_qs_world
from repro.util.errors import ConfigurationError
from repro.util.rand import DeterministicRng, make_rng

__all__ = [
    "STRATEGY_FACTORIES",
    "make_strategy",
    "run_attack_case",
    "canonical_config",
    "chase_bound",
]

STRATEGY_FACTORIES = {
    "lower_bound": LowerBoundAttack,
    "collusion": CollusionStrategy,
    "equivocation": EquivocationStrategy,
    "forged_rows": ForgedSuspicionStrategy,
    "selective_omission": SelectiveOmissionStrategy,
    "adaptive_timing": AdaptiveTimingStrategy,
}

#: Strategies the sampler draws from.  The chase pair (which can reach
#: the bound) is listed twice — mild weighting toward configs that can
#: actually win, while every taxon keeps fuzz coverage.
SEARCH_POOL = (
    "lower_bound", "lower_bound", "collusion", "equivocation",
    "forged_rows", "selective_omission", "adaptive_timing",
)


def make_strategy(name: str, params: Optional[Dict[str, Any]],
                  n: int, f: int) -> Strategy:
    """Build one strategy from its JSON spec (name + params dict)."""
    factory = STRATEGY_FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown strategy {name!r}; known: {sorted(STRATEGY_FACTORIES)}"
        )
    kwargs = dict(params or {})
    if name in ("lower_bound", "collusion"):
        kwargs.setdefault("targets", [f + 1, f + 2])
        kwargs["targets"] = tuple(kwargs["targets"])
    if "victims" in kwargs and kwargs["victims"] is not None:
        kwargs["victims"] = tuple(kwargs["victims"])
    if "kinds" in kwargs:
        kwargs["kinds"] = tuple(kwargs["kinds"])
    return factory(**kwargs)


def quorum_trace_fingerprint(modules: Dict[int, Any]) -> str:
    """SHA-256 of the full quorum-change trace across all processes."""
    trace = [
        (e.time, e.process, e.epoch, tuple(sorted(e.quorum)))
        for pid in sorted(modules)
        for e in modules[pid].quorum_events
    ]
    return hashlib.sha256(
        json.dumps(trace, separators=(",", ":")).encode()
    ).hexdigest()


def run_attack_case(
    seed: int,
    n: int,
    f: int,
    strategy: str = "lower_bound",
    params: Optional[Dict[str, Any]] = None,
    jitter: float = 0.0,
    horizon: float = 4000.0,
    tick_period: float = 1.0,
    settle: float = 80.0,
) -> Dict[str, float]:
    """One attack trial; returns deterministic float metrics only.

    The run advances in 50-unit slices and stops one ``settle`` window
    after the strategy reports done (or at ``horizon``) — a fixed,
    seed-independent stopping rule, so the cut-off never depends on wall
    clock and identical inputs always produce identical results.
    """
    sim, modules = build_qs_world(n, f, seed=seed)
    if jitter:
        sim.network.set_adversary_jitter(jitter)
    faulty = set(range(1, f + 1))
    engine = AdversaryEngine(sim, modules, faulty, f_max=f,
                             tick_period=tick_period)
    engine.add(make_strategy(strategy, params, n, f))
    engine.install()
    elapsed = 0.0
    finished_at = horizon
    while elapsed < horizon:
        elapsed = min(elapsed + 50.0, horizon)
        sim.run_until(elapsed)
        if engine.done:
            finished_at = elapsed
            break
    if engine.done:
        sim.run_until(finished_at + settle)
    correct = [modules[pid] for pid in sim.pids if pid not in faulty]
    max_per_epoch = max(m.max_quorums_in_any_epoch() for m in correct)
    digest = quorum_trace_fingerprint(modules)
    return {
        # Proposed quorums in the worst epoch: issued changes plus the
        # epoch's starting quorum — what Theorem 4 counts.
        "proposed_quorums": float(max_per_epoch + 1),
        "max_changes_per_epoch": float(max_per_epoch),
        "changes_total": float(max(m.total_quorums_issued() for m in correct)),
        "max_epoch": float(max(m.epoch for m in correct)),
        "agree": float(agreement_holds(correct)),
        "done": float(engine.done),
        "actions": float(len(engine.actions)),
        "finished_at": float(finished_at if engine.done else horizon),
        "thm3_ok": float(max_per_epoch <= thm3_upper_bound(f)),
        "trace_fingerprint": float(int(digest[:12], 16)),
    }


# ------------------------------------------------------------ config space


def canonical_config(f: int) -> Dict[str, Any]:
    """The proof's own attack: the fuzzer's seed-corpus entry."""
    return {
        "strategy": "lower_bound",
        "params": {"targets": [f + 1, f + 2], "pair_order_seed": 0},
        "jitter": 0.0,
    }


def _sample_params(name: str, rng: DeterministicRng, n: int, f: int) -> Dict[str, Any]:
    correct = list(range(f + 1, n + 1))
    if name in ("lower_bound", "collusion"):
        return {
            "targets": sorted(rng.sample(correct, 2)),
            "pair_order_seed": rng.randint(0, 7),
        }
    if name == "equivocation":
        return {
            "victims": sorted(rng.sample(correct, 2)),
            "period": rng.choice([2.0, 4.0, 6.0]),
            "rounds": rng.randint(2, 5),
        }
    if name == "forged_rows":
        return {
            "period": rng.choice([2.0, 3.0]),
            "rounds": rng.randint(3, 6),
            "valid_rate": rng.choice([0.0, 0.5, 1.0]),
        }
    if name == "selective_omission":
        return {"width": rng.randint(1, 2), "stop_at": rng.choice([40.0, 80.0])}
    if name == "adaptive_timing":
        return {
            "extra_delay": rng.choice([4.0, 8.0]),
            "stop_at": rng.choice([40.0, 80.0]),
        }
    raise ConfigurationError(f"no sampler for strategy {name!r}")


def _sample_config(rng: DeterministicRng, n: int, f: int) -> Dict[str, Any]:
    name = rng.choice(SEARCH_POOL)
    return {
        "strategy": name,
        "params": _sample_params(name, rng, n, f),
        "jitter": rng.choice([0.0, 0.0, 0.5, 1.5]),
    }


def _mutate_config(rng: DeterministicRng, parent: Dict[str, Any],
                   n: int, f: int) -> Dict[str, Any]:
    """One elite mutation: perturb the jitter or resample one parameter."""
    child = {
        "strategy": parent["strategy"],
        "params": dict(parent["params"]),
        "jitter": parent["jitter"],
    }
    if rng.coin(0.3):
        child["jitter"] = rng.choice([0.0, 0.0, 0.5, 1.5])
        return child
    fresh = _sample_params(child["strategy"], rng, n, f)
    key = rng.choice(sorted(fresh))
    child["params"][key] = fresh[key]
    return child


# ------------------------------------------------------------ search loop


def _score(result: Optional[Dict[str, float]]) -> float:
    """Trial fitness: proposed quorums, zeroed for crashed/diverged runs."""
    if not result or not result.get("agree"):
        return 0.0
    return result["proposed_quorums"]


def chase_bound(
    f_values: Iterable[int],
    seed: int = 3,
    budget: int = 6,
    rounds: int = 2,
    jobs: int = 1,
    cache=None,
    horizon: Optional[float] = None,
    n_for: Optional[Dict[int, int]] = None,
) -> Dict[str, Any]:
    """Chase the Theorem 4 bound for each ``f``; returns a JSON-able report.

    ``budget`` trials per round, ``rounds`` rounds per ``f`` (round 0 =
    seed corpus + uniform samples; later rounds mutate the elite third).
    ``n_for`` overrides the default ``n = 2f + 2`` per ``f``.
    """
    from repro.analysis.tasks import e28_attack_case

    if budget < 1:
        raise ConfigurationError(f"budget must be >= 1, got {budget}")
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    executor = ParallelExecutor(jobs=jobs, cache=cache)
    entries: List[Dict[str, Any]] = []
    for f in f_values:
        n = (n_for or {}).get(f, 2 * f + 2)
        span = horizon if horizon is not None else 4000.0
        rng = make_rng(seed).child("e28", "search", f)
        trials: List[Dict[str, Any]] = []
        configs = [canonical_config(f)] + [
            _sample_config(rng.child("sample", 0, index), n, f)
            for index in range(1, budget)
        ]
        for round_index in range(rounds):
            if round_index:
                ranked = sorted(
                    trials, key=lambda t: (-t["score"], t["trial"])
                )
                elites = ranked[: max(1, (budget + 2) // 3)] or ranked
                configs = [
                    _mutate_config(
                        rng.child("mutate", round_index, index),
                        elites[index % len(elites)],
                        n, f,
                    )
                    for index in range(budget)
                ]
            specs = [
                TaskSpec.for_function(
                    e28_attack_case,
                    seed=seed, n=n, f=f,
                    strategy=config["strategy"],
                    params=config["params"],
                    jitter=config["jitter"],
                    horizon=span,
                )
                for config in configs
            ]
            for config, result in zip(configs, executor.run(specs)):
                value = result.value if result.ok else None
                trials.append({
                    "trial": len(trials),
                    "round": round_index,
                    "strategy": config["strategy"],
                    "params": config["params"],
                    "jitter": config["jitter"],
                    "ok": result.ok,
                    "cached": result.cached,
                    "score": _score(value),
                    "result": value,
                })
        best = min(trials, key=lambda t: (-t["score"], t["trial"]))
        bound = thm4_quorum_count(f)
        # Trial 0 is always the canonical Theorem-4 config; the theorem
        # says its count is *exactly* C(f+2, 2) — the tightness claim.
        canonical = trials[0]
        entries.append({
            "f": f,
            "n": n,
            "thm4_bound": bound,
            "thm3_bound": thm3_upper_bound(f),
            "canonical_exact": canonical["ok"] and canonical["score"] == bound,
            "best": {
                "trial": best["trial"],
                "strategy": best["strategy"],
                "params": best["params"],
                "jitter": best["jitter"],
                "proposed_quorums": best["score"],
                "result": best["result"],
            },
            "bound_met": best["score"] >= bound,
            "thm3_ok": all(
                t["result"]["thm3_ok"] for t in trials if t["ok"]
            ),
            "trials": trials,
            "cached_trials": sum(1 for t in trials if t["cached"]),
            "failed_trials": sum(1 for t in trials if not t["ok"]),
        })
    return {
        "schema": 1,
        "seed": seed,
        "budget": budget,
        "rounds": rounds,
        "jobs": jobs,
        "entries": entries,
    }
