"""The engine's strategy library: Byzantine policies as observation loops.

Every class here is a :class:`~repro.adversary.engine.Strategy` — a
stateful policy that reads a :class:`~repro.core.observation.WorldView`
each tick and actuates through the engine.  The repertoire covers the
taxonomy the E28 issue (and the BFT-survey attack literature) asks for:

=====================  ====================================================
policy                 failure mode it exercises
=====================  ====================================================
LowerBoundAttack       Theorem 4: one fresh false suspicion inside F+2
                       per stabilization (port of the legacy scripted
                       ``repro.failures.LowerBoundStrategy``)
CollusionStrategy      the same chase split across an f-clique that
                       coordinates through the engine blackboard
EquivocationStrategy   conflicting signed UPDATE rows to disjoint peer
                       groups (Lemma 1's adversary)
ForgedSuspicionStrategy signed rows with garbage/absurd content that
                       correct receivers must survive, mixed with
                       well-formed lies
SelectiveOmissionStrategy adaptive per-link omission re-pointed at the
                       current quorum's members
AdaptiveTimingStrategy delays armed only while the faulty process sits
                       in the observed quorum, cleared once evicted
=====================  ====================================================

Randomized policies draw exclusively from their own per-strategy RNG
child; ``LowerBoundAttack`` with the default ``pair_order_seed=0`` draws
nothing at all, which is what makes its runs trace-identical to the
legacy scripted adversary (the props-tier equivalence test holds it to
that).
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.adversary.engine import AdversaryEngine, Strategy
from repro.core.observation import WorldView
from repro.util.errors import ConfigurationError
from repro.util.rand import DeterministicRng

__all__ = [
    "LowerBoundAttack",
    "CollusionStrategy",
    "EquivocationStrategy",
    "ForgedSuspicionStrategy",
    "SelectiveOmissionStrategy",
    "AdaptiveTimingStrategy",
    "forge_garbage_rows",
]


def forge_garbage_rows(rng: DeterministicRng, n: int, count: int) -> List[tuple]:
    """Adversary-generated garbage suspicion rows for an ``n``-process world.

    Mixes wrong arities with valid-arity rows full of hostile content
    (negatives, bools, floats, strings, absurd stamps) — everything a
    signed-but-lying UPDATE can carry.  The matrix must silently ignore
    all of it (:meth:`~repro.core.suspicion_matrix.SuspicionMatrix.merge_row`);
    the props tier feeds these straight into correct replicas.
    """
    rows: List[tuple] = []
    for index in range(count):
        item = rng.child(index)
        arity = item.choice([0, max(0, n - 1), n, n + 1, n + 1, n + 3])
        row: List[object] = []
        for _ in range(arity):
            kind = item.randint(0, 5)
            if kind == 0:
                row.append(item.randint(0, 9))
            elif kind == 1:
                row.append(-item.randint(1, 9))
            elif kind == 2:
                row.append(bool(item.coin(0.5)))
            elif kind == 3:
                row.append(item.uniform(0.0, 9.0))
            elif kind == 4:
                row.append(item.randint(10 ** 6, 10 ** 9))
            else:
                row.append("garbage")
        rows.append(tuple(row))
    return rows


class _PairChase(Strategy):
    """Shared machinery of the Theorem-4 chase (direct or colluding).

    Keeps the legacy semantics exactly: wait until the correct processes
    agree on a quorum *and* the previously fired pair is no longer
    jointly inside it, then pick the next unused pair from ``F+2`` with
    both endpoints in the quorum and a faulty endpoint as suspector.
    """

    def __init__(
        self,
        targets: Sequence[int],
        faulty: Optional[Iterable[int]] = None,
        pair_order_seed: int = 0,
    ) -> None:
        super().__init__()
        if len(tuple(targets)) != 2:
            raise ConfigurationError("exactly two correct targets required")
        self.targets = tuple(targets)
        self._faulty_override = None if faulty is None else set(faulty)
        self.pair_order_seed = pair_order_seed
        self.used_pairs: Set[Tuple[int, int]] = set()
        self.fired: List[Tuple[float, int, int]] = []
        self._last_pair: Optional[Tuple[int, int]] = None
        self._order: List[Tuple[int, int]] = []

    def bind(self, engine: AdversaryEngine, index: int) -> None:
        super().bind(engine, index)
        self.faulty = (
            set(self._faulty_override)
            if self._faulty_override is not None
            else set(engine.faulty)
        )
        if set(self.targets) & self.faulty:
            raise ConfigurationError("targets must be correct processes")
        self.f_plus_2 = self.faulty | set(self.targets)
        # Pair order is the searchable degree of freedom: 0 keeps the
        # proof's lexicographic order (and draws no randomness at all);
        # any other seed shuffles on a dedicated child stream.
        order = list(itertools.combinations(sorted(self.f_plus_2), 2))
        if self.pair_order_seed:
            self.rng.child("pair-order", self.pair_order_seed).shuffle(order)
        self._order = order

    def _pair_evicted(self, view: WorldView) -> bool:
        quorum = view.agreed_quorum
        if quorum is None:
            return False
        if self._last_pair is not None:
            a, b = self._last_pair
            if a in quorum and b in quorum:
                return False  # previous suspicion not yet reflected
        return True

    def _next_pair(self, quorum) -> Optional[Tuple[int, int]]:
        for a, b in self._order:
            if (a, b) in self.used_pairs:
                continue
            if a not in quorum or b not in quorum:
                continue
            if a in self.faulty:
                return (a, b)
            if b in self.faulty:
                return (b, a)
        return None

    def _mark_fired(self, now: float, suspector: int, victim: int) -> None:
        key = (min(suspector, victim), max(suspector, victim))
        self.used_pairs.add(key)
        self._last_pair = key
        self.fired.append((now, suspector, victim))


class LowerBoundAttack(_PairChase):
    """Theorem 4 ported onto the engine (supersedes the scripted path)."""

    name = "lower_bound"

    def on_observe(self, view: WorldView) -> None:
        if not self._pair_evicted(view):
            return
        pair = self._next_pair(view.agreed_quorum)
        if pair is None:
            self.done = True
            self.engine.sim.log.append(
                self.engine.sim.now, 0, "adv.thm4-done", fired=len(self.fired)
            )
            return
        suspector, victim = pair
        self.engine.false_suspicion(suspector, victim, by=self.name)
        self._mark_fired(view.now, suspector, victim)


class CollusionStrategy(_PairChase):
    """The Theorem-4 chase run by a colluding f-clique.

    The clique's lowest pid acts as coordinator: it *posts* the next
    ``(suspector, victim)`` assignment on the shared blackboard; on the
    following tick the assigned clique member reads it and fires through
    its own module and keys.  Same pair schedule as
    :class:`LowerBoundAttack`, one coordination tick slower per pair —
    the collusion cost made visible.
    """

    name = "collusion"

    def bind(self, engine: AdversaryEngine, index: int) -> None:
        super().bind(engine, index)
        self.coordinator = min(self.faulty)
        self._slot = f"{self.tag}/assignment"

    def on_observe(self, view: WorldView) -> None:
        assignment = self.engine.blackboard.pop(self._slot)
        if assignment is not None:
            suspector, victim = assignment
            self.engine.false_suspicion(suspector, victim, by=self.name)
            self._mark_fired(view.now, suspector, victim)
            return
        if not self._pair_evicted(view):
            return
        pair = self._next_pair(view.agreed_quorum)
        if pair is None:
            self.done = True
            return
        self.engine.blackboard.post(
            self._slot, pair, by=f"p{self.coordinator}", now=view.now
        )


class EquivocationStrategy(Strategy):
    """Conflicting signed UPDATE rows to disjoint halves of the peers.

    Each round the liar signs two variants of its current row — one
    stamping ``victims[0]``, one stamping ``victims[1]`` — and sends each
    variant to a different half of the correct processes.  Both variants
    authenticate (same key, different content): the receivers' matrices
    genuinely diverge until gossip forwarding (Lemma 1) reunites them.
    """

    name = "equivocation"

    def __init__(
        self,
        pid: Optional[int] = None,
        victims: Optional[Sequence[int]] = None,
        period: float = 4.0,
        rounds: int = 3,
    ) -> None:
        super().__init__()
        if rounds < 1:
            raise ConfigurationError(f"need at least one round, got {rounds}")
        self._pid_param = pid
        self._victims_param = None if victims is None else tuple(victims)
        self.period = period
        self.rounds = rounds
        self.rounds_done = 0
        self._next_at = 0.0

    def bind(self, engine: AdversaryEngine, index: int) -> None:
        super().bind(engine, index)
        self.pid = self._pid_param if self._pid_param is not None else min(engine.faulty)
        if self.pid not in engine.faulty:
            raise ConfigurationError(f"equivocator p{self.pid} must be faulty")
        if self._victims_param is not None:
            self.victims = self._victims_param
        else:
            correct = sorted(p for p in engine.modules if p not in engine.faulty)
            self.victims = tuple(correct[:2])
        if len(self.victims) != 2 or self.pid in self.victims:
            raise ConfigurationError(f"need two victims distinct from p{self.pid}")

    def on_observe(self, view: WorldView) -> None:
        if self.rounds_done >= self.rounds:
            self.done = True
            return
        if view.now < self._next_at:
            return
        self._next_at = view.now + self.period
        self.rounds_done += 1
        module = self.engine.modules[self.pid]
        epoch = view.processes[self.pid].epoch
        base = list(module.matrix.row(self.pid))
        variant_a, variant_b = list(base), list(base)
        variant_a[self.victims[0]] = max(variant_a[self.victims[0]], epoch)
        variant_b[self.victims[1]] = max(variant_b[self.victims[1]], epoch)
        correct = sorted(view.correct)
        half = max(1, len(correct) // 2)
        groups = [(tuple(variant_a), correct[:half])]
        if correct[half:]:
            groups.append((tuple(variant_b), correct[half:]))
        self.engine.equivocate(self.pid, groups, by=self.name)


class ForgedSuspicionStrategy(Strategy):
    """Signed rows whose content is hostile garbage, mixed with real lies.

    Each round the liar either broadcasts a batch of
    :func:`forge_garbage_rows` output (receivers must drop every entry
    silently) or a well-formed false stamp on a random correct victim
    (which genuinely perturbs quorums).  ``valid_rate`` steers the mix —
    the search can tune it from pure fuzz to pure attack.
    """

    name = "forged_rows"

    def __init__(
        self,
        pid: Optional[int] = None,
        period: float = 3.0,
        rounds: int = 4,
        valid_rate: float = 0.5,
        batch: int = 3,
    ) -> None:
        super().__init__()
        if not 0.0 <= valid_rate <= 1.0:
            raise ConfigurationError(f"valid_rate must be in [0, 1], got {valid_rate}")
        self._pid_param = pid
        self.period = period
        self.rounds = rounds
        self.valid_rate = valid_rate
        self.batch = batch
        self.rounds_done = 0
        self.garbage_sent = 0
        self.lies_sent = 0
        self._next_at = 0.0

    def bind(self, engine: AdversaryEngine, index: int) -> None:
        super().bind(engine, index)
        self.pid = self._pid_param if self._pid_param is not None else min(engine.faulty)
        if self.pid not in engine.faulty:
            raise ConfigurationError(f"forger p{self.pid} must be faulty")

    def on_observe(self, view: WorldView) -> None:
        if self.rounds_done >= self.rounds:
            self.done = True
            return
        if view.now < self._next_at:
            return
        self._next_at = view.now + self.period
        round_rng = self.rng.child("round", self.rounds_done)
        self.rounds_done += 1
        if round_rng.coin(self.valid_rate):
            victim = round_rng.choice(sorted(view.correct))
            row = list(self.engine.modules[self.pid].matrix.row(self.pid))
            row[victim] = max(row[victim], view.processes[self.pid].epoch)
            self.engine.forge_row(self.pid, tuple(row), by=self.name)
            self.lies_sent += 1
        else:
            for row in forge_garbage_rows(round_rng.child("garbage"),
                                          view.n, self.batch):
                self.engine.forge_row(self.pid, row, by=self.name)
                self.garbage_sent += 1


class SelectiveOmissionStrategy(Strategy):
    """Adaptive per-link omission toward the current quorum's members.

    Whenever the agreed quorum changes, the rules are *re-pointed*: the
    strategy clears its own tagged rules and omits the chosen kinds
    toward the ``width`` lex-first correct quorum members.  This is the
    stacking pattern the rule-layer audit prescribes — append-only rules
    would leave the first quorum's targets shadowing every refresh.
    """

    name = "selective_omission"

    def __init__(
        self,
        pid: Optional[int] = None,
        kinds: Sequence[str] = ("heartbeat",),
        width: int = 2,
        stop_at: float = 60.0,
    ) -> None:
        super().__init__()
        self._pid_param = pid
        self.kinds = tuple(kinds)
        self.width = width
        self.stop_at = stop_at
        self.repointed = 0
        self._targets: Tuple[int, ...] = ()

    def bind(self, engine: AdversaryEngine, index: int) -> None:
        super().bind(engine, index)
        self.pid = self._pid_param if self._pid_param is not None else min(engine.faulty)
        if self.pid not in engine.faulty:
            raise ConfigurationError(f"omitter p{self.pid} must be faulty")

    def on_observe(self, view: WorldView) -> None:
        if view.now >= self.stop_at:
            self.engine.clear_rules(self.pid, tag=self.tag)
            self.done = True
            return
        quorum = view.agreed_quorum
        if quorum is None:
            return
        targets = tuple(sorted(p for p in quorum if p in view.correct))[: self.width]
        if targets and targets != self._targets:
            self.engine.clear_rules(self.pid, tag=self.tag)
            self.engine.omit(
                self.pid, dsts=set(targets), kinds=set(self.kinds),
                tag=self.tag, by=self.name,
            )
            self._targets = targets
            self.repointed += 1


class AdaptiveTimingStrategy(Strategy):
    """Timing failure keyed off observed quorum membership.

    While the faulty process sits inside the agreed quorum it delays all
    its outbound traffic (heartbeats miss their expectations, so the
    detector classifies it); the moment it is evicted it clears its
    rules and behaves — the classic "look correct while out, stall while
    in" oscillation a static delay rule cannot express.
    """

    name = "adaptive_timing"

    def __init__(
        self,
        pid: Optional[int] = None,
        extra_delay: float = 6.0,
        stop_at: float = 60.0,
    ) -> None:
        super().__init__()
        self._pid_param = pid
        self.extra_delay = extra_delay
        self.stop_at = stop_at
        self.armed = False
        self.transitions = 0

    def bind(self, engine: AdversaryEngine, index: int) -> None:
        super().bind(engine, index)
        self.pid = self._pid_param if self._pid_param is not None else min(engine.faulty)
        if self.pid not in engine.faulty:
            raise ConfigurationError(f"delayer p{self.pid} must be faulty")

    def on_observe(self, view: WorldView) -> None:
        if view.now >= self.stop_at:
            if self.armed:
                self.engine.clear_rules(self.pid, tag=self.tag)
                self.armed = False
            self.done = True
            return
        quorum = view.agreed_quorum
        if quorum is None:
            return
        inside = self.pid in quorum
        if inside and not self.armed:
            self.engine.delay(self.pid, self.extra_delay, tag=self.tag, by=self.name)
            self.armed = True
            self.transitions += 1
        elif not inside and self.armed:
            self.engine.clear_rules(self.pid, tag=self.tag)
            self.armed = False
            self.transitions += 1
