"""Analysis layer: closed-form bounds, worst-case search, experiment runners.

Everything the benchmark harness needs to regenerate the paper's
quantitative claims lives here:

- :mod:`repro.analysis.bounds` — the paper's formulas (Theorem 3's
  ``f(f+1)``, Theorem 4's ``C(f+2,2)``, Theorem 9's ``3f+1``,
  Corollary 10's ``6f+2``, XPaxos' ``C(n,f)`` enumeration cycle).
- :mod:`repro.analysis.abstract` — network-free single-epoch models of
  Algorithms 1 and 2 plus exhaustive/greedy adversary searches, used to
  re-derive the paper's "simulations suggest at most C(f+2,2) quorums per
  epoch" claim.
- :mod:`repro.analysis.runner` — online (full simulator) experiment
  drivers shared by benchmarks and integration tests.
- :mod:`repro.analysis.report` — plain-text table rendering for
  paper-style benchmark output.
"""

from repro.analysis.bounds import (
    thm3_upper_bound,
    thm4_quorum_count,
    observed_max_changes_claim,
    thm9_per_epoch_bound,
    cor10_total_bound,
    enumeration_cycle_length,
)
from repro.analysis.abstract import (
    AbstractQuorumSelection,
    AbstractFollowerSelection,
    AbstractChainSelection,
    exhaustive_max_changes,
    greedy_max_changes,
    greedy_follower_changes,
    greedy_chain_changes,
)
from repro.analysis.runner import (
    QsRunResult,
    run_thm4_adversary,
    run_random_adversary,
    run_follower_worst_case,
    run_xpaxos_crash_comparison,
    measure_message_savings,
)
from repro.analysis.report import Table
from repro.analysis.sweeps import SweepSummary, sweep
from repro.analysis.traces import (
    message_sends,
    render_arrow_trace,
    render_sequence_diagram,
)

__all__ = [
    "thm3_upper_bound",
    "thm4_quorum_count",
    "observed_max_changes_claim",
    "thm9_per_epoch_bound",
    "cor10_total_bound",
    "enumeration_cycle_length",
    "AbstractQuorumSelection",
    "AbstractFollowerSelection",
    "exhaustive_max_changes",
    "greedy_max_changes",
    "greedy_follower_changes",
    "greedy_chain_changes",
    "AbstractChainSelection",
    "QsRunResult",
    "run_thm4_adversary",
    "run_random_adversary",
    "run_follower_worst_case",
    "run_xpaxos_crash_comparison",
    "measure_message_savings",
    "Table",
    "SweepSummary",
    "sweep",
    "message_sends",
    "render_arrow_trace",
    "render_sequence_diagram",
]
