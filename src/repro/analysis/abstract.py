"""Network-free single-epoch models of Algorithms 1 and 2.

Once the failure detector is accurate, every suspicion has a faulty
endpoint, so the suspect graph always has a vertex cover of size ``f``
(the faulty set), an independent set of size ``q`` always exists, and the
epoch never advances.  Within one epoch the whole distributed machinery
therefore collapses to a deterministic function *edge set -> quorum*,
which is what these models compute directly.  The adversary game —
repeatedly add an allowed suspicion edge, count quorum changes — can then
be searched exhaustively (with memoization over edge sets) to re-derive
the paper's claim that Algorithm 1 "actually allows at most C(f+2, 2)
quorums in one epoch", and greedily for larger ``f``.

Allowed adversary moves:

- the edge must have at least one *faulty* endpoint (accuracy: correct
  processes never suspect each other after stabilization);
- for the Theorem-4 game, both endpoints must lie in the *current* quorum
  (a suspicion outside the quorum violates no property, so Quorum
  Selection need not react; Lemma 2 makes this precise for Algorithm 1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graphs.independent_set import has_independent_set, lex_first_independent_set
from repro.graphs.line_subgraph import leader_of, maximal_line_subgraph, possible_followers
from repro.graphs.suspect_graph import SuspectGraph
from repro.util.errors import ConfigurationError
from repro.util.ids import default_quorum

Edge = Tuple[int, int]


class AbstractQuorumSelection:
    """Single-epoch Algorithm 1: edge set in, lex-first quorum out."""

    def __init__(self, n: int, f: int) -> None:
        if not 1 <= f < n - f:
            raise ConfigurationError(f"need 1 <= f < n - f, got n={n}, f={f}")
        self.n = n
        self.f = f
        self.q = n - f
        self.graph = SuspectGraph(n)
        self.quorum: FrozenSet[int] = default_quorum(n, self.q)
        self.changes = 0

    def add_suspicion(self, a: int, b: int) -> bool:
        """Add an edge; returns ``True`` if the quorum changed.

        Raises when no independent set of size ``q`` remains (the epoch
        would advance — impossible under the accuracy-restricted move
        rules, so it signals a misuse of the model).
        """
        self.graph.add_edge(a, b)
        new_quorum = lex_first_independent_set(self.graph, self.q)
        if new_quorum is None:
            raise ConfigurationError("no independent set left: epoch would advance")
        if new_quorum != self.quorum:
            self.quorum = new_quorum
            self.changes += 1
            return True
        return False


class AbstractFollowerSelection:
    """Single-epoch Algorithm 2: edge set in, (leader, quorum) out."""

    def __init__(self, n: int, f: int) -> None:
        if n <= 3 * f:
            raise ConfigurationError(f"Follower Selection needs n > 3f, got n={n}, f={f}")
        self.n = n
        self.f = f
        self.q = n - f
        self.graph = SuspectGraph(n)
        self.leader = 1
        self.quorum: FrozenSet[int] = default_quorum(n, self.q)
        self.changes = 0

    def add_suspicion(self, a: int, b: int) -> bool:
        """Add an edge; returns ``True`` if a new quorum is issued.

        Mirrors Algorithm 2: a new quorum is issued only when the leader
        designated by the maximal line subgraph changes (line 18).
        """
        self.graph.add_edge(a, b)
        if not has_independent_set(self.graph, self.q):
            raise ConfigurationError("no independent set left: epoch would advance")
        line = maximal_line_subgraph(self.graph)
        new_leader = leader_of(line)
        if new_leader == self.leader:
            return False
        self.leader = new_leader
        candidates = sorted(possible_followers(line) - {new_leader})
        self.quorum = frozenset([new_leader, *candidates[: self.q - 1]])
        self.changes += 1
        return True


# ---------------------------------------------------------------------------
# Worst-case search (the "simulations suggest" experiment, E3)
# ---------------------------------------------------------------------------


def _theorem4_moves(
    graph: SuspectGraph, quorum: FrozenSet[int], faulty: FrozenSet[int]
) -> List[Edge]:
    """Legal Theorem-4 moves: new edges inside the quorum touching F."""
    moves = []
    for a, b in itertools.combinations(sorted(quorum), 2):
        if (a in faulty or b in faulty) and not graph.has_edge(a, b):
            moves.append((a, b))
    return moves


def exhaustive_max_changes(
    n: int,
    f: int,
    faulty: Optional[Iterable[int]] = None,
    state_budget: int = 2_000_000,
) -> int:
    """Maximum quorum changes any adversary sequence can force out of
    Algorithm 1 in one epoch (exhaustive DFS with memoization).

    When ``faulty`` is ``None``, maximizes over every choice of the
    faulty set as well (the adversary picks who is corrupted).  The state
    space is ``2^(edges touching F within F's reach)`` — exhaustive use
    is intended for ``f <= 3``-ish; ``state_budget`` guards the rest.
    """
    if faulty is not None:
        return _exhaustive_for_faulty(n, f, frozenset(faulty), state_budget)
    best = 0
    for combo in itertools.combinations(range(1, n + 1), f):
        best = max(best, _exhaustive_for_faulty(n, f, frozenset(combo), state_budget))
    return best


def _exhaustive_for_faulty(
    n: int, f: int, faulty: FrozenSet[int], state_budget: int
) -> int:
    if len(faulty) != f:
        raise ConfigurationError(f"faulty set must have exactly f={f} members")
    q = n - f
    memo: Dict[FrozenSet[Edge], int] = {}

    def best_from(graph: SuspectGraph, quorum: FrozenSet[int]) -> int:
        key = graph.edges()
        cached = memo.get(key)
        if cached is not None:
            return cached
        if len(memo) > state_budget:
            raise ConfigurationError(
                f"state budget exceeded ({state_budget}); use greedy_max_changes"
            )
        best = 0
        for a, b in _theorem4_moves(graph, quorum, faulty):
            graph.add_edge(a, b)
            new_quorum = lex_first_independent_set(graph, q)
            # Moves keep a faulty endpoint, so an IS always survives.
            assert new_quorum is not None
            gained = 1 if new_quorum != quorum else 0
            best = max(best, gained + best_from(graph, new_quorum))
            graph.remove_edge(a, b)
        memo[key] = best
        return best

    return best_from(SuspectGraph(n), default_quorum(n, q))


def greedy_max_changes(
    n: int, f: int, faulty: Optional[Iterable[int]] = None
) -> int:
    """Greedy (first legal move) adversary for larger ``f``.

    Mirrors :class:`repro.failures.strategies.LowerBoundStrategy`'s pair
    order; with the faulty set ``{1..f}`` the greedy walk already attains
    ``C(f+2, 2) - 1`` changes when ``n`` is large enough, matching the
    lower bound without search.
    """
    faulty_set = frozenset(faulty) if faulty is not None else frozenset(range(1, f + 1))
    model = AbstractQuorumSelection(n, f)
    while True:
        moves = _theorem4_moves(model.graph, model.quorum, faulty_set)
        if not moves:
            return model.changes
        model.add_suspicion(*moves[0])


class AbstractChainSelection:
    """Single-epoch Chain Selection: edge set in, lex-first chain out."""

    def __init__(self, n: int, f: int) -> None:
        if not 1 <= f < n - f:
            raise ConfigurationError(f"need 1 <= f < n - f, got n={n}, f={f}")
        from repro.graphs.chain_path import lex_first_chain

        self._lex_first_chain = lex_first_chain
        self.n = n
        self.f = f
        self.q = n - f
        self.graph = SuspectGraph(n)
        self.chain: Tuple[int, ...] = tuple(range(1, self.q + 1))
        self.changes = 0

    def add_suspicion(self, a: int, b: int) -> bool:
        """Add an edge; returns ``True`` if the chain changed."""
        self.graph.add_edge(a, b)
        chain = self._lex_first_chain(self.graph, self.q)
        if chain is None:
            raise ConfigurationError("no chain left: epoch would advance")
        if chain != self.chain:
            self.chain = chain
            self.changes += 1
            return True
        return False


@dataclass(frozen=True)
class ChainChurnResult:
    """Outcome of the greedy chain-adversary game.

    Chains are *ordered*, so a forced change can be a pure re-ordering of
    the same member set (cheap for membership-tracking consumers, still a
    re-chain for BChain-style deployments) or a genuine membership
    change.  Both are reported; E13 compares them against Algorithm 1.
    """

    total_changes: int
    membership_changes: int
    final_chain: Tuple[int, ...]


def greedy_chain_changes(
    n: int, f: int, faulty: Optional[Iterable[int]] = None
) -> ChainChurnResult:
    """Greedy adversary against Chain Selection (extension analysis).

    Only suspicions on a *current* chain link with a faulty endpoint are
    productive; the greedy adversary fires the first such unused link
    each round, mirroring :func:`greedy_max_changes` for comparability.
    """
    from repro.graphs.chain_path import sensitive_pairs

    faulty_set = frozenset(faulty) if faulty is not None else frozenset(range(1, f + 1))
    model = AbstractChainSelection(n, f)
    membership_changes = 0
    while True:
        move = None
        for a, b in sensitive_pairs(model.chain):
            if (a in faulty_set or b in faulty_set) and not model.graph.has_edge(a, b):
                move = (a, b)
                break
        if move is None:
            return ChainChurnResult(
                total_changes=model.changes,
                membership_changes=membership_changes,
                final_chain=model.chain,
            )
        before = frozenset(model.chain)
        model.add_suspicion(*move)
        if frozenset(model.chain) != before:
            membership_changes += 1


def greedy_follower_changes(
    n: int, f: int, faulty: Optional[Iterable[int]] = None
) -> int:
    """Greedy leader-attack against Follower Selection (Theorem 9 check).

    Each step some faulty process falsely suspects the current leader
    (or, when the leader is faulty, the leader suspects the smallest
    process it has no edge to).  Stops when no move can change anything.
    """
    faulty_set = frozenset(faulty) if faulty is not None else frozenset(range(1, f + 1))
    model = AbstractFollowerSelection(n, f)
    stuck = 0
    while stuck < 2 * n:  # allow some non-changing probes before giving up
        leader = model.leader
        move: Optional[Edge] = None
        if leader in faulty_set:
            for other in range(1, n + 1):
                if other != leader and not model.graph.has_edge(leader, other):
                    move = (leader, other)
                    break
        else:
            for bad in sorted(faulty_set):
                if not model.graph.has_edge(bad, leader):
                    move = (bad, leader)
                    break
        if move is None:
            break
        try:
            changed = model.add_suspicion(*move)
        except ConfigurationError:
            break  # epoch would advance: single-epoch game over
        stuck = 0 if changed else stuck + 1
    return model.changes
