"""Closed-form bounds from the paper, as checkable formulas.

Counting convention: Algorithm 1/2 *issue* a ``<QUORUM, ...>`` event only
when the selected quorum changes; the initial default quorum
``{p_1..p_q}`` is part of the module state and never issued.  The
theorem statements count *proposed* quorums, which include that initial
default — so ``k`` proposed quorums correspond to ``k - 1`` issued
events.  Helpers are provided in both currencies to keep tests honest.
"""

from __future__ import annotations

from math import comb

from repro.util.errors import ConfigurationError


def _check_f(f: int) -> None:
    if f < 1:
        raise ConfigurationError(f"bounds are stated for f >= 1, got {f}")


def thm3_upper_bound(f: int) -> int:
    """Theorem 3: a correct process issues at most ``f (f+1)`` quorums in
    one epoch (issued-event currency)."""
    _check_f(f)
    return f * (f + 1)


def thm4_quorum_count(f: int) -> int:
    """Theorem 4: an adversary can force ``C(f+2, 2)`` *proposed* quorums
    out of any deterministic Quorum Selection algorithm."""
    _check_f(f)
    return comb(f + 2, 2)


def observed_max_changes_claim(f: int) -> int:
    """The paper's simulation claim, in issued-event currency:
    Algorithm 1 allows at most ``C(f+2, 2)`` quorums per epoch, i.e.
    ``C(f+2, 2) - 1`` quorum *changes* after the initial default."""
    return thm4_quorum_count(f) - 1


def thm9_per_epoch_bound(f: int) -> int:
    """Theorem 9: Follower Selection issues at most ``3f + 1`` quorums in
    one epoch (the default quorum issued on an epoch bump counts — the
    algorithm explicitly issues it on line 14)."""
    _check_f(f)
    return 3 * f + 1


def cor10_total_bound(f: int) -> int:
    """Corollary 10: at most ``6f + 2`` quorums after stabilization time
    ``t'`` (two epochs' worth of Theorem 9)."""
    _check_f(f)
    return 6 * f + 2


def enumeration_cycle_length(n: int, f: int) -> int:
    """XPaxos' quorum enumeration length ``C(n, f)`` (Section V-B) —
    the worst-case number of quorums the baseline may try."""
    if not 0 < f < n:
        raise ConfigurationError(f"need 0 < f < n, got n={n}, f={f}")
    return comb(n, f)
