"""On-disk result cache for sweep/benchmark task executions.

Every sweep point the engine runs is a pure function of ``(task name,
kwargs, seed, code)`` — the simulator is deterministic per seed — so its
result can be cached on disk and reused until either the inputs or the
*code* change.  :class:`ResultCache` stores one JSON file per result
under ``.benchmarks/cache/`` keyed by the SHA-256 of the canonical JSON
encoding of that tuple; :func:`code_fingerprint` folds the content of
every ``repro`` source file into the key so editing any module under
``src/repro/`` invalidates the whole cache — conservative, but it makes
a cache hit *proof* that re-running the simulation would produce the
same value (DESIGN.md §5.15).

Robustness contract: a corrupted or truncated entry (bad JSON, wrong
schema) is treated as a miss and deleted, never raised; concurrent
writers are safe because entries are written to a temp file and
atomically renamed; the cache is bounded by ``max_entries`` with
oldest-access eviction.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.util.files import atomic_write_text

#: Default cache location, relative to the working directory (the repo
#: root for every documented entry point: pytest, benchmarks, the CLI).
DEFAULT_CACHE_DIR = Path(".benchmarks") / "cache"

_FINGERPRINT_MEMO: Dict[Path, str] = {}


def code_fingerprint(package_root: Optional[Path] = None) -> str:
    """SHA-256 over the content of every ``.py`` file under the package.

    Defaults to the installed ``repro`` package directory.  File paths
    (relative, sorted) are folded in alongside contents so renames also
    invalidate.  Memoized per root — the engine may ask once per worker.
    """
    root = (package_root or Path(__file__).resolve().parents[1]).resolve()
    memo = _FINGERPRINT_MEMO.get(root)
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\1")
    fingerprint = digest.hexdigest()
    _FINGERPRINT_MEMO[root] = fingerprint
    return fingerprint


def canonical_key(task: str, kwargs: Mapping[str, Any], fingerprint: str) -> str:
    """SHA-256 of the canonical JSON of ``(task, kwargs, fingerprint)``.

    ``kwargs`` must be JSON-serializable (task specs are by contract);
    ``sort_keys`` plus compact separators make the encoding canonical so
    logically equal inputs always map to the same key.  The seed is part
    of ``kwargs``, so every (point, seed) pair gets its own entry.
    """
    material = json.dumps(
        {"task": task, "kwargs": kwargs, "fingerprint": fingerprint},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt_discarded: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt_discarded": self.corrupt_discarded,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ResultCache:
    """One-file-per-result JSON cache with LRU-by-mtime eviction.

    ``fingerprint`` defaults to :func:`code_fingerprint`; tests inject
    explicit strings to exercise invalidation without editing sources.
    """

    root: Path = DEFAULT_CACHE_DIR
    fingerprint: Optional[str] = None
    max_entries: int = 4096
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.fingerprint is None:
            self.fingerprint = code_fingerprint()

    def key_for(self, task: str, kwargs: Mapping[str, Any]) -> str:
        return canonical_key(task, kwargs, self.fingerprint)

    def register_metrics(self, obs) -> None:
        """Fold this cache's statistics into an observability registry.

        The counters stay plain ints on the lookup path; the registered
        collector copies them out only when a snapshot is taken.
        """
        from repro.obs.observability import cache_stats_collector

        obs.add_collector(cache_stats_collector(self.stats))

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; corrupted entries count as misses."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
            value = entry["value"]
            if entry["key"] != key:
                raise KeyError("key mismatch")
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except (json.JSONDecodeError, KeyError, TypeError, UnicodeDecodeError, OSError):
            self.stats.corrupt_discarded += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.stats.hits += 1
        try:
            os.utime(path)  # refresh access recency for eviction
        except OSError:
            pass
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` (must be JSON-serializable) atomically."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        atomic_write_text(path, json.dumps({"key": key, "value": value}) + "\n")
        self.stats.stores += 1
        self._evict_over_limit()

    def _evict_over_limit(self) -> None:
        entries = sorted(
            self.root.glob("*.json"), key=lambda p: p.stat().st_mtime
        )
        excess = len(entries) - self.max_entries
        for path in entries[:max(0, excess)]:
            try:
                path.unlink()
                self.stats.evictions += 1
            except OSError:
                pass

    def entry_count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; return how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
