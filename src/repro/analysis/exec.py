"""Parallel experiment-execution engine (DESIGN.md §5.15).

Sweeps and benchmark grids are embarrassingly parallel: every (point,
seed) simulation is independent and deterministic.  This module turns
them into *task specs* — a registry name plus a JSON-serializable kwargs
dict — and runs them through a ``ProcessPoolExecutor``:

- **spawn-safe by construction**: tasks are module-level functions
  registered with :func:`sweep_task`; a spec carries the registry name
  and defining module, and workers re-import the module before lookup.
  Closures and lambdas are rejected at registration time, so nothing
  unpicklable can reach the pool.
- **chunked dispatch**: specs are submitted in chunks to amortize IPC
  per-task overhead (one future per chunk, several tasks per future).
- **crash isolation**: a task exception inside a worker becomes a
  structured error record (type, message, traceback) on its
  :class:`TaskResult`; the other tasks in the chunk — and the sweep —
  complete normally.
- **deterministic ordering**: results are returned in submission order
  regardless of completion order, so ``jobs=N`` output is comparable
  *by equality* against ``jobs=1``.
- **caching**: with a :class:`~repro.analysis.cache.ResultCache`
  attached, hits are served from disk before any dispatch and fresh
  results are stored after; only tasks whose inputs (or the code
  fingerprint) changed are simulated.
"""

from __future__ import annotations

import importlib
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.cache import ResultCache
from repro.util.errors import ConfigurationError

_REGISTRY: Dict[str, Callable[..., Any]] = {}


def sweep_task(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a module-level metric/task function under ``name``.

    The function must be importable by name from its defining module —
    that is what makes specs picklable under the ``spawn`` start method
    — so closures and local functions are rejected here rather than
    failing obscurely inside a worker.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        if "<locals>" in fn.__qualname__ or "<lambda>" in fn.__qualname__:
            raise ConfigurationError(
                f"sweep task {name!r} must be a module-level function "
                f"(got {fn.__qualname__!r}); closures are not spawn-safe"
            )
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not fn:
            raise ConfigurationError(f"sweep task {name!r} already registered")
        _REGISTRY[name] = fn
        fn._sweep_task_name = name
        return fn

    return decorate


def registered_task(name: str) -> Optional[Callable[..., Any]]:
    return _REGISTRY.get(name)


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: a registered task name plus kwargs.

    ``module`` is the task's defining module; worker processes import it
    to (re)populate the registry before resolving ``task``.  ``kwargs``
    must be JSON-serializable — it doubles as cache-key material.
    """

    task: str
    module: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def for_function(cls, fn: Callable[..., Any], **kwargs: Any) -> "TaskSpec":
        name = getattr(fn, "_sweep_task_name", None)
        if name is None:
            raise ConfigurationError(
                f"{getattr(fn, '__qualname__', fn)!r} is not a registered "
                "sweep task; decorate it with @sweep_task(name) to run it "
                "through the engine"
            )
        return cls(task=name, module=fn.__module__, kwargs=kwargs)


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one spec: a value, or a structured error record."""

    index: int
    spec: TaskSpec
    ok: bool
    value: Any = None
    error: Optional[Dict[str, str]] = None
    cached: bool = False

    def describe_error(self) -> str:
        if self.ok or not self.error:
            return ""
        return f"{self.spec.task}{self.spec.kwargs}: " \
               f"{self.error['type']}: {self.error['message']}"


def resolve_task(spec: TaskSpec) -> Callable[..., Any]:
    """Look up a spec's function, importing its module if needed."""
    fn = _REGISTRY.get(spec.task)
    if fn is None:
        importlib.import_module(spec.module)
        fn = _REGISTRY.get(spec.task)
    if fn is None:
        raise ConfigurationError(
            f"task {spec.task!r} not found in registry after importing "
            f"{spec.module!r}"
        )
    return fn


def _error_record(exc: BaseException) -> Dict[str, str]:
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exc(),
    }


def _run_chunk(specs: Sequence[TaskSpec]) -> List[Dict[str, Any]]:
    """Worker entry point: run each spec, isolating per-task failures."""
    out: List[Dict[str, Any]] = []
    for spec in specs:
        try:
            fn = resolve_task(spec)
            out.append({"ok": True, "value": fn(**spec.kwargs)})
        except Exception as exc:  # crash isolation: record, keep going
            out.append({"ok": False, "error": _error_record(exc)})
    return out


class ParallelExecutor:
    """Run task specs across processes with caching and crash isolation.

    ``jobs=1`` never touches multiprocessing: specs run inline, in
    order, in this process — the serial reference path.  ``jobs>1``
    dispatches cache misses to a spawn-based pool in chunks of
    ``chunk_size`` (default: enough chunks for ~4 rounds per worker).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.cache = cache
        self.chunk_size = chunk_size

    def run(self, specs: Sequence[TaskSpec]) -> List[TaskResult]:
        """Execute all specs; results come back in submission order."""
        results: List[Optional[TaskResult]] = [None] * len(specs)
        pending: List[int] = []
        keys: Dict[int, str] = {}
        for index, spec in enumerate(specs):
            if self.cache is not None:
                key = self.cache.key_for(spec.task, spec.kwargs)
                keys[index] = key
                hit, value = self.cache.get(key)
                if hit:
                    results[index] = TaskResult(
                        index=index, spec=spec, ok=True, value=value, cached=True
                    )
                    continue
            pending.append(index)

        if pending and self.jobs == 1:
            for index in pending:
                results[index] = self._run_inline(index, specs[index])
        elif pending:
            self._run_pool(specs, pending, results)

        for index in pending:
            result = results[index]
            if self.cache is not None and result is not None and result.ok:
                self.cache.put(keys[index], result.value)
        return list(results)  # every slot is filled by one of the paths

    def _run_inline(self, index: int, spec: TaskSpec) -> TaskResult:
        try:
            value = resolve_task(spec)(**spec.kwargs)
        except Exception as exc:
            return TaskResult(index=index, spec=spec, ok=False,
                              error=_error_record(exc))
        return TaskResult(index=index, spec=spec, ok=True, value=value)

    def _run_pool(
        self,
        specs: Sequence[TaskSpec],
        pending: Sequence[int],
        results: List[Optional[TaskResult]],
    ) -> None:
        chunk_size = self.chunk_size or max(
            1, -(-len(pending) // (self.jobs * 4))  # ceil division
        )
        chunks = [
            list(pending[i:i + chunk_size])
            for i in range(0, len(pending), chunk_size)
        ]
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(chunks)),
            mp_context=get_context("spawn"),
        ) as pool:
            futures = {
                pool.submit(_run_chunk, [specs[i] for i in chunk]): chunk
                for chunk in chunks
            }
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    outcomes = future.result()
                except Exception as exc:
                    # The whole worker died (e.g. killed); isolate the
                    # chunk as errors rather than aborting the sweep.
                    record = _error_record(exc)
                    outcomes = [{"ok": False, "error": record}] * len(chunk)
                for index, outcome in zip(chunk, outcomes):
                    results[index] = TaskResult(
                        index=index,
                        spec=specs[index],
                        ok=outcome["ok"],
                        value=outcome.get("value"),
                        error=outcome.get("error"),
                    )
