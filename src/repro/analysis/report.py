"""Plain-text tables for benchmark output (paper-style rows)."""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


class Table:
    """Fixed-column ASCII table; benches print these as their 'figures'."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_fmt(value) for value in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, frozenset) or isinstance(value, set):
        return "{" + ",".join(str(v) for v in sorted(value)) + "}"
    return str(value)
