"""Online (full-simulator) experiment drivers.

These functions assemble a complete stack — eventually synchronous
network, signed messaging, failure detectors with heartbeats, Quorum /
Follower Selection, adversary — run it, and return structured results.
Benchmarks and integration tests share them so the numbers in
EXPERIMENTS.md are produced by exactly the code the tests check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.follower_selection import FollowerSelectionModule
from repro.core.quorum_selection import QuorumSelectionModule
from repro.core.spec import agreement_holds, no_suspicion_holds
from repro.failures.strategies import (
    FalseSuspicionInjector,
    LowerBoundStrategy,
    RandomSuspicionStrategy,
)
from repro.fd.detector import FailureDetector
from repro.fd.heartbeat import HeartbeatModule
from repro.sim.runtime import Simulation, SimulationConfig
from repro.util.errors import ConfigurationError
from repro.xpaxos.system import XPaxosSystem, build_system


@dataclass
class QsRunResult:
    """Outcome of one Quorum/Follower Selection run."""

    n: int
    f: int
    seed: int
    suspicions_fired: int
    quorum_changes_total: int
    max_changes_per_epoch: int
    max_epoch: int
    final_quorums_agree: bool
    no_suspicion: bool
    final_quorum: Optional[FrozenSet[int]] = None
    final_leader: Optional[int] = None
    per_process_changes: Dict[int, int] = field(default_factory=dict)


def _build_qs_world(
    n: int,
    f: int,
    seed: int,
    follower_mode: bool,
    heartbeat_period: float = 2.0,
) -> Tuple[Simulation, Dict[int, QuorumSelectionModule]]:
    sim = Simulation(SimulationConfig(n=n, seed=seed, gst=0.0, delta=1.0))
    modules: Dict[int, QuorumSelectionModule] = {}
    for pid in sim.pids:
        host = sim.host(pid)
        FailureDetector(host)
        host.add_module(HeartbeatModule(host, n=n, period=heartbeat_period))
        if follower_mode:
            modules[pid] = host.add_module(FollowerSelectionModule(host, n=n, f=f))
        else:
            modules[pid] = host.add_module(QuorumSelectionModule(host, n=n, f=f))
    return sim, modules


def _summarize(
    sim: Simulation,
    modules: Dict[int, QuorumSelectionModule],
    faulty: Set[int],
    fired: int,
    n: int,
    f: int,
    seed: int,
) -> QsRunResult:
    correct = [modules[pid] for pid in sim.pids if pid not in faulty]
    max_per_epoch = max(
        (module.max_quorums_in_any_epoch() for module in correct), default=0
    )
    total = max((module.total_quorums_issued() for module in correct), default=0)
    leaders = {getattr(module, "leader", None) for module in correct}
    return QsRunResult(
        n=n,
        f=f,
        seed=seed,
        suspicions_fired=fired,
        quorum_changes_total=total,
        max_changes_per_epoch=max_per_epoch,
        max_epoch=max(module.epoch for module in correct),
        final_quorums_agree=agreement_holds(correct),
        no_suspicion=no_suspicion_holds(correct),
        final_quorum=correct[0].qlast if correct else None,
        final_leader=leaders.pop() if len(leaders) == 1 else None,
        per_process_changes={m.pid: m.total_quorums_issued() for m in correct},
    )


def run_thm4_adversary(
    n: int,
    f: int,
    seed: int = 1,
    faulty: Optional[Set[int]] = None,
    targets: Optional[Tuple[int, int]] = None,
    duration: float = 4000.0,
) -> QsRunResult:
    """E2: the Theorem-4 adversary against live Algorithm 1.

    Default corruption: ``F = {1..f}`` with targets ``(f+1, f+2)``, which
    keeps every ``F+2`` pair reachable from the initial quorum.
    """
    faulty_set = set(faulty) if faulty is not None else set(range(1, f + 1))
    target_pair = targets if targets is not None else (f + 1, f + 2)
    sim, modules = _build_qs_world(n, f, seed, follower_mode=False)
    strategy = LowerBoundStrategy(sim, modules, faulty=faulty_set, targets=target_pair)
    strategy.install()
    sim.run_until(duration)
    if not strategy.done:
        raise ConfigurationError(
            f"Theorem-4 adversary did not finish within {duration} time units"
        )
    return _summarize(sim, modules, faulty_set, len(strategy.fired), n, f, seed)


def run_random_adversary(
    n: int,
    f: int,
    seed: int = 1,
    duration: float = 600.0,
    rate: float = 0.5,
) -> QsRunResult:
    """E3: random false-suspicion noise from ``f`` faulty processes.

    Suspicion injection stops at 60% of the run so the tail verifies
    stabilization (Termination/Agreement under a finite-failure run).
    """
    faulty_set = set(range(1, f + 1))
    sim, modules = _build_qs_world(n, f, seed, follower_mode=False)
    strategy = RandomSuspicionStrategy(
        sim, modules, faulty=faulty_set, rate=rate, stop_at=duration * 0.6
    )
    strategy.install()
    sim.run_until(duration)
    return _summarize(sim, modules, faulty_set, len(strategy.fired), n, f, seed)


def run_follower_worst_case(
    f: int,
    seed: int = 1,
    n: Optional[int] = None,
    duration: float = 4000.0,
    check_period: float = 1.0,
) -> QsRunResult:
    """E4: leader-attack adversary against live Follower Selection.

    Every time the correct processes stabilize on a (leader, quorum), a
    faulty process falsely suspects the leader (or, if the leader itself
    is faulty, the leader suspects a fresh victim), pushing the maximal
    line subgraph's leader upward — the walk Theorem 9 bounds by
    ``3f + 1`` quorums per epoch.
    """
    n_val = n if n is not None else 3 * f + 1
    faulty_set = set(range(1, f + 1))
    sim, modules = _build_qs_world(n_val, f, seed, follower_mode=True)
    fired: List[Tuple[float, int, int]] = []
    state = {"last_edge": None}

    def correct_mods() -> List[FollowerSelectionModule]:
        return [modules[pid] for pid in sim.pids if pid not in faulty_set]

    def tick() -> None:
        mods = correct_mods()
        leaders = {m.leader for m in mods}
        quorums = {m.qlast for m in mods}
        stable = all(m.stable for m in mods)
        if len(leaders) == 1 and len(quorums) == 1 and stable:
            leader = leaders.pop()
            move = None
            if leader in faulty_set:
                for other in range(1, n_val + 1):
                    if other != leader and not _has_suspicion(modules, leader, other):
                        move = (leader, other)
                        break
            else:
                for bad in sorted(faulty_set):
                    if not _has_suspicion(modules, bad, leader):
                        move = (bad, leader)
                        break
            if move is not None and move != state["last_edge"]:
                state["last_edge"] = move
                FalseSuspicionInjector(modules[move[0]]).suspect(move[1])
                fired.append((sim.now, move[0], move[1]))
        sim.scheduler.schedule(check_period, tick, label="fs-adversary")

    sim.at(check_period, tick, label="fs-adversary")
    sim.run_until(duration)
    return _summarize(sim, modules, faulty_set, len(fired), n_val, f, seed)


def _has_suspicion(modules: Dict[int, QuorumSelectionModule], a: int, b: int) -> bool:
    """Whether a's false suspicion of b is already on record (any epoch
    >= a's current epoch, i.e. still an edge for a's graph)."""
    module = modules[a]
    return module.matrix.get(a, b) >= module.epoch


@dataclass
class ChurnComparison:
    """E5/E8 outcome: selection vs enumeration under the same faults."""

    selection: XPaxosSystem
    enumeration: XPaxosSystem

    def view_changes(self) -> Tuple[int, int]:
        sel = max(
            (r.view_changes for r in self.selection.correct_replicas()), default=0
        )
        enm = max(
            (r.view_changes for r in self.enumeration.correct_replicas()), default=0
        )
        return sel, enm

    def completed(self) -> Tuple[int, int]:
        return self.selection.total_completed(), self.enumeration.total_completed()


def run_xpaxos_crash_comparison(
    n: int,
    f: int,
    crash_pids: Tuple[int, ...],
    crash_at: float = 30.0,
    seed: int = 1,
    duration: float = 800.0,
    requests_per_client: int = 20,
    clients: int = 2,
) -> ChurnComparison:
    """Run the same crash schedule under both quorum policies."""
    systems = {}
    for mode in ("selection", "enumeration"):
        system = build_system(
            n=n, f=f, mode=mode, clients=clients, seed=seed,
            client_ops=[
                [("put", f"k{c}-{i}", i) for i in range(requests_per_client)]
                for c in range(clients)
            ],
        )
        for step, pid in enumerate(crash_pids):
            system.adversary.crash(pid, at=crash_at + 5.0 * step)
        system.run(duration)
        systems[mode] = system
    return ChurnComparison(
        selection=systems["selection"], enumeration=systems["enumeration"]
    )


@dataclass
class MessageSavings:
    """E7 outcome for one ``f``."""

    f: int
    n: int
    active_size: int
    full_messages_per_request: float
    active_messages_per_request: float

    @property
    def total_reduction(self) -> float:
        return 1.0 - self.active_messages_per_request / self.full_messages_per_request

    @property
    def per_broadcast_reduction(self) -> float:
        """The paper's rough claim: each broadcast shrinks from ``n - 1``
        to ``q - 1`` targets -> a ``f / (n-1)`` fraction dropped."""
        return self.f / (self.n - 1)


def measure_message_savings(
    f: int,
    requests: int = 20,
    seed: int = 1,
    two_f_plus_one: bool = False,
) -> MessageSavings:
    """E7: inter-replica messages per request, full vs active-quorum PBFT.

    With ``two_f_plus_one=True`` the system is sized ``n = 2f + 1`` (the
    trusted-component/XFT family from the introduction, which needs only
    ``n - f = f + 1`` matching votes) and the active quorum has ``f + 1``
    members; the expected per-broadcast drop is then ~1/2 instead of ~1/3.
    """
    from repro.baselines.pbft import build_pbft_cluster  # local: avoid cycle

    if two_f_plus_one:
        n = 2 * f + 1
        active = range(1, f + 2)
        thresholds = {"prepare_quorum": f, "commit_quorum": f + 1}
    else:
        n = 3 * f + 1
        active = range(1, 2 * f + 2)
        thresholds = {}
    full = build_pbft_cluster(
        n=n, f=f, clients=1, requests_per_client=requests, seed=seed, **thresholds
    )
    full.run(40.0 * requests)
    restricted = build_pbft_cluster(
        n=n, f=f, active=active, clients=1, requests_per_client=requests, seed=seed,
        **thresholds,
    )
    restricted.run(40.0 * requests)
    if full.total_completed() < requests or restricted.total_completed() < requests:
        raise ConfigurationError("message-savings run did not complete its workload")
    return MessageSavings(
        f=f,
        n=n,
        active_size=len(tuple(active)),
        full_messages_per_request=full.inter_replica_messages() / requests,
        active_messages_per_request=restricted.inter_replica_messages() / requests,
    )
