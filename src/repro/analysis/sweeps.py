"""Multi-seed experiment sweeps with summary statistics.

Single seeds make good regression tests; claims about *behaviour* need
distributions.  :func:`sweep` runs a metric function over many seeds and
returns a :class:`SweepSummary` (mean, min, max, stdev); benchmark E14
uses it to put error bars on the Quorum-Selection-vs-enumeration
stabilization comparison.

Both :func:`sweep` and :func:`grid_sweep` accept ``jobs=`` and
``cache=`` (DESIGN.md §5.15).  ``jobs=1`` with no cache is the exact
seed-era serial loop — byte-identical output; anything else routes the
(point, seed) tasks through :class:`repro.analysis.exec.ParallelExecutor`,
which requires the metric function to be a ``@sweep_task``-registered
module-level function (spawn-safe, cache-keyable).  The simulator is
deterministic per seed, so parallel results are asserted *equal* to
serial results, never merely close.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.cache import ResultCache
from repro.analysis.exec import ParallelExecutor, TaskResult, TaskSpec
from repro.util.errors import ConfigurationError, ExecutionError


@dataclass(frozen=True)
class SweepSummary:
    """Summary statistics of one metric across seeds."""

    name: str
    values: tuple

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.values) if len(self.values) > 1 else 0.0

    def describe(self) -> str:
        return (
            f"{self.name}: mean={self.mean:.3f} "
            f"[{self.minimum:.3f}, {self.maximum:.3f}] "
            f"sd={self.stdev:.3f} (n={self.count})"
        )


@dataclass(frozen=True)
class PointError:
    """Structured record of a grid point whose tasks failed.

    Returned in place of the summaries dict when ``grid_sweep`` runs
    with ``on_error="record"``: the sweep completes, and the harness
    decides how to report the failed point.
    """

    point: Tuple[Tuple[str, object], ...]
    failures: Tuple[Dict[str, str], ...]

    def describe(self) -> str:
        first = self.failures[0] if self.failures else {}
        return (
            f"point {dict(self.point)} failed "
            f"({len(self.failures)} task(s)): "
            f"{first.get('type', '?')}: {first.get('message', '?')}"
        )


@dataclass(frozen=True)
class BoundPoint:
    """Picklable partial application of ``metric_fn(seed, **point)``.

    Replaces the old per-point lambda, which could not cross a ``spawn``
    boundary; instances are picklable whenever ``metric_fn`` is a
    module-level function, so the same object serves the serial loop and
    the process pool.
    """

    metric_fn: Callable[..., Dict[str, float]]
    point: Tuple[Tuple[str, object], ...]

    def __call__(self, seed: int) -> Dict[str, float]:
        return self.metric_fn(seed, **dict(self.point))


def bind_point(
    metric_fn: Callable[..., Dict[str, float]], point: Dict[str, object]
) -> BoundPoint:
    """Bind one grid point's kwargs onto a metric function, picklably."""
    return BoundPoint(metric_fn=metric_fn, point=tuple(sorted(point.items())))


def _specs_for(
    metric_fn: Union[Callable[[int], Dict[str, float]], BoundPoint],
    seeds: Sequence[int],
) -> List[TaskSpec]:
    """Build engine task specs for a registered metric over seeds."""
    if isinstance(metric_fn, BoundPoint):
        base = metric_fn.metric_fn
        extra = dict(metric_fn.point)
    else:
        base = metric_fn
        extra = {}
    return [TaskSpec.for_function(base, seed=seed, **extra) for seed in seeds]


def _summarize(
    per_seed: Sequence[Dict[str, float]], seeds: Sequence[int]
) -> Dict[str, SweepSummary]:
    """Aggregate per-seed metric dicts, enforcing consistent names."""
    collected: Dict[str, List[float]] = {}
    expected_keys = None
    for seed, metrics in zip(seeds, per_seed):
        keys = set(metrics)
        if expected_keys is None:
            expected_keys = keys
        elif keys != expected_keys:
            raise ConfigurationError(
                f"seed {seed} reported metrics {sorted(keys)}, "
                f"expected {sorted(expected_keys)}"
            )
        for name, value in metrics.items():
            collected.setdefault(name, []).append(float(value))
    return {
        name: SweepSummary(name=name, values=tuple(values))
        for name, values in collected.items()
    }


def _raise_on_failures(results: Sequence[TaskResult]) -> None:
    failures = [r for r in results if not r.ok]
    if failures:
        raise ExecutionError(
            f"{len(failures)} of {len(results)} sweep task(s) failed: "
            + "; ".join(r.describe_error() for r in failures[:3]),
            failures=[r.error for r in failures],
        )


def grid_sweep(
    metric_fn: Callable[..., Dict[str, float]],
    grid: Sequence[Dict[str, object]],
    seeds: Sequence[int],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    on_error: str = "raise",
) -> List[Tuple[Dict[str, object], Union[Dict[str, SweepSummary], PointError]]]:
    """Run :func:`sweep` at every point of a parameter grid.

    ``metric_fn(seed, **point)`` is evaluated over all seeds for each
    ``point`` (a kwargs dict) in ``grid``; returns ``(point, summaries)``
    pairs in grid order.  This is the E22 harness shape: one grid axis
    (e.g. drop probability), one summary table per point.

    With ``jobs>1`` or a cache the *entire* (point, seed) cross product
    is dispatched as one batch, so workers stay busy across point
    boundaries.  ``on_error="record"`` turns a failed point into a
    :class:`PointError` result instead of aborting the whole grid.
    """
    if not grid:
        raise ConfigurationError("grid_sweep needs at least one grid point")
    if on_error not in ("raise", "record"):
        raise ConfigurationError(
            f'on_error must be "raise" or "record", got {on_error!r}'
        )
    if jobs == 1 and cache is None:
        # Seed-era serial path, byte-identical output (modulo the
        # picklable BoundPoint standing in for the old lambda).
        results: List[Tuple[Dict[str, object],
                            Union[Dict[str, SweepSummary], PointError]]] = []
        for point in grid:
            bound = bind_point(metric_fn, point)
            try:
                summaries = sweep(bound, seeds)
            except Exception as exc:
                if on_error != "record":
                    raise
                record = {"type": type(exc).__name__, "message": str(exc),
                          "traceback": ""}
                results.append((dict(point), PointError(
                    point=tuple(sorted(point.items())), failures=(record,))))
                continue
            results.append((dict(point), summaries))
        return results

    if not seeds:
        raise ConfigurationError("sweep needs at least one seed")
    specs: List[TaskSpec] = []
    for point in grid:
        specs.extend(_specs_for(bind_point(metric_fn, point), seeds))
    outcomes = ParallelExecutor(jobs=jobs, cache=cache).run(specs)
    results = []
    for offset, point in enumerate(grid):
        chunk = outcomes[offset * len(seeds):(offset + 1) * len(seeds)]
        failures = [r for r in chunk if not r.ok]
        if failures:
            if on_error != "record":
                _raise_on_failures(chunk)
            results.append((dict(point), PointError(
                point=tuple(sorted(point.items())),
                failures=tuple(r.error for r in failures),
            )))
            continue
        results.append((dict(point), _summarize([r.value for r in chunk], seeds)))
    return results


def sweep(
    metric_fn: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> Dict[str, SweepSummary]:
    """Run ``metric_fn(seed) -> {metric: value}`` over seeds; summarize.

    Every seed must report the same metric names; missing or extra names
    indicate a harness bug and raise.  ``jobs=1`` with no cache calls
    ``metric_fn`` inline (any callable works — the seed behaviour);
    otherwise ``metric_fn`` must be ``@sweep_task``-registered (or a
    :func:`bind_point` wrapper of one) and the seeds run through the
    engine, failures raising :class:`ExecutionError`.
    """
    if not seeds:
        raise ConfigurationError("sweep needs at least one seed")
    if jobs == 1 and cache is None:
        return _summarize([metric_fn(seed) for seed in seeds], seeds)
    results = ParallelExecutor(jobs=jobs, cache=cache).run(
        _specs_for(metric_fn, seeds)
    )
    _raise_on_failures(results)
    return _summarize([r.value for r in results], seeds)
