"""Multi-seed experiment sweeps with summary statistics.

Single seeds make good regression tests; claims about *behaviour* need
distributions.  :func:`sweep` runs a metric function over many seeds and
returns a :class:`SweepSummary` (mean, min, max, stdev); benchmark E14
uses it to put error bars on the Quorum-Selection-vs-enumeration
stabilization comparison.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class SweepSummary:
    """Summary statistics of one metric across seeds."""

    name: str
    values: tuple

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.values) if len(self.values) > 1 else 0.0

    def describe(self) -> str:
        return (
            f"{self.name}: mean={self.mean:.3f} "
            f"[{self.minimum:.3f}, {self.maximum:.3f}] "
            f"sd={self.stdev:.3f} (n={self.count})"
        )


def grid_sweep(
    metric_fn: Callable[..., Dict[str, float]],
    grid: Sequence[Dict[str, object]],
    seeds: Sequence[int],
) -> List[Tuple[Dict[str, object], Dict[str, SweepSummary]]]:
    """Run :func:`sweep` at every point of a parameter grid.

    ``metric_fn(seed, **point)`` is evaluated over all seeds for each
    ``point`` (a kwargs dict) in ``grid``; returns ``(point, summaries)``
    pairs in grid order.  This is the E22 harness shape: one grid axis
    (e.g. drop probability), one summary table per point.
    """
    if not grid:
        raise ConfigurationError("grid_sweep needs at least one grid point")
    results: List[Tuple[Dict[str, object], Dict[str, SweepSummary]]] = []
    for point in grid:
        summaries = sweep(lambda seed, p=point: metric_fn(seed, **p), seeds)
        results.append((dict(point), summaries))
    return results


def sweep(
    metric_fn: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
) -> Dict[str, SweepSummary]:
    """Run ``metric_fn(seed) -> {metric: value}`` over seeds; summarize.

    Every seed must report the same metric names; missing or extra names
    indicate a harness bug and raise.
    """
    if not seeds:
        raise ConfigurationError("sweep needs at least one seed")
    collected: Dict[str, List[float]] = {}
    expected_keys = None
    for seed in seeds:
        metrics = metric_fn(seed)
        keys = set(metrics)
        if expected_keys is None:
            expected_keys = keys
        elif keys != expected_keys:
            raise ConfigurationError(
                f"seed {seed} reported metrics {sorted(keys)}, "
                f"expected {sorted(expected_keys)}"
            )
        for name, value in metrics.items():
            collected.setdefault(name, []).append(float(value))
    return {
        name: SweepSummary(name=name, values=tuple(values))
        for name, values in collected.items()
    }
