"""Registry-named task functions for the parallel execution engine.

Each function here is a module-level, ``@sweep_task``-registered metric:
spawn-started workers import this module and resolve tasks by name, so
everything a benchmark wants to parallelize must live at module level
(never a closure — see DESIGN.md §5.15).  The heavyweight scenario tasks
return **deterministic** values only (no wall-clock fields), which is
what lets the engine assert ``jobs=N`` output *equals* ``jobs=1`` output
and lets the on-disk cache serve old results as if freshly computed.
:func:`e21_hotpath_case` is the one exception — it exists to *measure*
wall time, so it must never be cached.

The ``demo.*`` tasks are tiny self-test metrics used by the engine's own
test suite and by docs examples.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Dict, Optional

from repro.analysis.exec import sweep_task
from repro.core.spec import agreement_holds, no_suspicion_holds
from repro.sim.network import ChaosConfig
from repro.sim.transport import ReliableTransport
from repro.sim.worlds import build_qs_world


@sweep_task("demo.linear")
def demo_linear(seed: int, scale: float = 1.0, offset: float = 0.0) -> Dict[str, float]:
    """``value = seed * scale + offset`` — engine/cache self-test metric."""
    return {"value": seed * scale + offset}


@sweep_task("demo.flaky")
def demo_flaky(seed: int, fail_seed: Optional[int] = None,
               scale: float = 1.0) -> Dict[str, float]:
    """Raises on ``seed == fail_seed`` — exercises crash isolation."""
    if fail_seed is not None and seed == fail_seed:
        raise ValueError(f"demo.flaky configured to fail on seed {seed}")
    return {"value": seed * scale}


@sweep_task("demo.sleep")
def demo_sleep(seed: int, seconds: float = 0.05) -> Dict[str, float]:
    """Sleeps then echoes the seed — for overlap/ordering tests."""
    time.sleep(seconds)
    return {"value": float(seed)}


def _quorum_trace_digest(modules, crash_pid: int) -> str:
    trace = [
        (e.time, e.process, e.epoch, tuple(sorted(e.quorum)))
        for pid in sorted(modules)
        for e in modules[pid].quorum_events
    ]
    return hashlib.sha256(
        json.dumps(trace, separators=(",", ":")).encode()
    ).hexdigest()


@sweep_task("e17.crash_case")
def e17_crash_case(
    seed: int,
    n: int,
    f: int,
    crash_pid: int = 1,
    crash_at: float = 10.0,
    horizon: float = 120.0,
) -> Dict[str, float]:
    """The E17 scenario (crash one quorum member, full stack), metrics only.

    All values are floats and fully determined by the kwargs, so this is
    the reference task for equality-checked parallel sweeps (E23).
    ``trace_fingerprint`` is the leading 48 bits of the SHA-256 of the
    quorum-change trace as an exact float — two runs agree on it iff
    they produced the identical change sequence.
    """
    sim, modules = build_qs_world(n, f, seed=seed)
    sim.at(crash_at, lambda: sim.host(crash_pid).crash())
    sim.run_until(horizon)
    correct = [modules[p] for p in sim.pids if p != crash_pid]
    change_times = [
        e.time for e in sim.log.events(kind="qs.quorum") if e.process != crash_pid
    ]
    digest = _quorum_trace_digest(modules, crash_pid)
    return {
        "agree": float(agreement_holds(correct)),
        "no_suspicion": float(no_suspicion_holds(correct)),
        "changes": float(max(m.total_quorums_issued() for m in correct)),
        "converged_at": max(change_times) if change_times else 0.0,
        "updates": float(sim.stats.sent_by_kind.get("qs.update", 0)),
        "final_min": float(min(correct[0].qlast)),
        "trace_fingerprint": float(int(digest[:12], 16)),
    }


#: Aggregated per-module counters reported by ``e21.hotpath_case``.
HOTPATH_COUNTERS = (
    "quorum_searches",
    "searches_memoized",
    "graph_builds",
    "graph_reuses",
    "incremental_edge_updates",
    "forwards_suppressed",
)


@sweep_task("e21.hotpath_case")
def e21_hotpath_case(seed: int, n: int, f: int, repeats: int = 1) -> dict:
    """E17 scenario with wall-clock and hot-path counters (perf_report).

    Reports best-of-``repeats`` wall seconds — the simulation is
    deterministic, so repeats differ only by host noise.  Because the
    row contains a timing it must be run with ``cache=None``.
    """
    best_wall: Optional[float] = None
    sim = modules = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        sim, modules = build_qs_world(n, f, seed=seed)
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(120.0)
        wall = time.perf_counter() - started
        if best_wall is None or wall < best_wall:
            best_wall = wall
    correct = [modules[p] for p in sim.pids if p != 1]
    change_times = [
        e.time for e in sim.log.events(kind="qs.quorum") if e.process != 1
    ]
    stats = {counter: 0 for counter in HOTPATH_COUNTERS}
    for module in modules.values():
        for counter, value in module.hotpath_stats().items():
            stats[counter] += value
    return {
        "n": n,
        "f": f,
        "agree": agreement_holds(correct),
        "no_suspicion": no_suspicion_holds(correct),
        "changes": max(m.total_quorums_issued() for m in correct),
        "converged_at": max(change_times) if change_times else 0.0,
        "updates": sim.stats.sent_by_kind.get("qs.update", 0),
        "final_min": min(correct[0].qlast),
        "wall_seconds": best_wall,
        "hotpath": stats,
        "trace_sha256": _quorum_trace_digest(modules, 1),
    }


@sweep_task("e14.stabilization_point")
def e14_stabilization_point(seed: int, n: int = 5, f: int = 2) -> Dict[str, float]:
    """E14: leader crash at t=30 under selection vs enumeration policies."""
    from repro.xpaxos.system import build_system

    out: Dict[str, float] = {}
    for mode in ("selection", "enumeration"):
        system = build_system(n=n, f=f, mode=mode, clients=1, seed=seed)
        system.adversary.crash(1, at=30.0)
        system.run(900.0)
        assert system.total_completed() == 20
        assert system.histories_consistent()
        vc_times = [e.time for e in system.sim.log.events(kind="xp.viewchange")]
        out[f"{mode}.stabilized_at"] = max(vc_times) if vc_times else 0.0
        out[f"{mode}.view_changes"] = float(max(
            r.view_changes for r in system.correct_replicas()
        ))
    return out


@sweep_task("e28.attack_case")
def e28_attack_case(
    seed: int,
    n: int,
    f: int,
    strategy: str = "lower_bound",
    params: Optional[dict] = None,
    jitter: float = 0.0,
    horizon: float = 4000.0,
    tick_period: float = 1.0,
) -> Dict[str, float]:
    """One E28 adversary-engine attack trial (see ``repro.adversary.search``).

    Fully determined by its kwargs (all-float result incl. the quorum
    trace fingerprint), so the bound-chase search can fan trials out
    through the engine with ``jobs=N`` and serve re-runs from the cache.
    """
    from repro.adversary.search import run_attack_case

    return run_attack_case(
        seed=seed, n=n, f=f, strategy=strategy, params=params,
        jitter=jitter, horizon=horizon, tick_period=tick_period,
    )


_E22_REFERENCE_MEMO: dict = {}


def _e22_reference_state(seed: int, n: int, f: int, base_timeout: float,
                         horizon: float) -> dict:
    """Final (quorum, epoch) per correct process on reliable channels."""
    memo_key = (seed, n, f, base_timeout, horizon)
    if memo_key not in _E22_REFERENCE_MEMO:
        sim, modules = build_qs_world(n, f, seed=seed, base_timeout=base_timeout)
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(horizon)
        _E22_REFERENCE_MEMO[memo_key] = {
            pid: (m.qlast, m.epoch) for pid, m in modules.items() if pid != 1
        }
    return _E22_REFERENCE_MEMO[memo_key]


@sweep_task("e22.lossy_point")
def e22_lossy_point(
    seed: int,
    drop: float,
    duplicate: float = 0.1,
    reorder: float = 0.2,
    n: int = 10,
    f: int = 3,
    base_timeout: float = 24.0,
    horizon: float = 200.0,
    anti_entropy_period: float = 5.0,
) -> Dict[str, float]:
    """E22: the E17 crash scenario on chaotic channels, robustness armed."""
    chaos = ChaosConfig(drop=drop, duplicate=duplicate, reorder=reorder)
    sim, modules = build_qs_world(
        n, f, seed=seed, base_timeout=base_timeout, chaos=chaos,
        reliable=True, anti_entropy_period=anti_entropy_period,
    )
    sim.at(10.0, lambda: sim.host(1).crash())
    sim.run_until(horizon)
    correct = {pid: m for pid, m in modules.items() if pid != 1}
    assert agreement_holds(list(correct.values()))

    final = {pid: (m.qlast, m.epoch) for pid, m in correct.items()}
    matches = final == _e22_reference_state(seed, n, f, base_timeout, horizon)
    change_times = [
        e.time for e in sim.log.events(kind="qs.quorum") if e.process != 1
    ]
    transports = {
        pid: next(
            mod for mod in m.host._modules if isinstance(mod, ReliableTransport)
        )
        for pid, m in correct.items()
    }
    transport_totals: Dict[str, float] = {}
    for t in transports.values():
        for key, value in t.stats().items():
            transport_totals[key] = transport_totals.get(key, 0) + value
    robustness_totals: Dict[str, float] = {}
    for m in correct.values():
        for key, value in m.robustness_stats().items():
            robustness_totals[key] = robustness_totals.get(key, 0) + value
    return {
        "matches_reference": float(matches),
        "converged_at": max(change_times) if change_times else 0.0,
        "messages_lost": float(sum(sim.stats.lost_by_kind.values())),
        "retransmissions": float(transport_totals["retransmissions"]),
        "duplicates_suppressed": float(transport_totals["duplicates_suppressed"]),
        "ae_rows_applied": float(robustness_totals["ae_rows_applied"]),
    }
