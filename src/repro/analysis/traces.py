"""Message-flow rendering: regenerate Figure 2/3-style diagrams as text.

Enable tracing first (``sim.network.trace({"xp.prepare", "xp.commit"})``)
so the network records per-message ``net.send`` events, then render them
either as a flat arrow list or as a per-process lane diagram::

    t=  0.63  p1 --xp.prepare--> p2
    t=  0.63  p1 --xp.prepare--> p3
    t=  1.21  p2 --xp.commit--> p1
    ...

    time    | p1          | p2          | p3
    --------+-------------+-------------+-------------
       0.63 | prepare>2,3 |             |
       1.21 |             | commit>1,3  |
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.eventlog import EventLog


def message_sends(
    log: EventLog,
    kinds: Optional[Iterable[str]] = None,
    until: Optional[float] = None,
) -> List[Tuple[float, int, int, str]]:
    """Extract traced sends as ``(time, src, dst, kind)`` tuples."""
    wanted = set(kinds) if kinds is not None else None
    out = []
    for event in log.events(kind="net.send"):
        if until is not None and event.time > until:
            continue
        msg = event.payload.get("msg")
        if wanted is not None and msg not in wanted:
            continue
        out.append((event.time, event.process, event.payload.get("dst"), msg))
    return out


def render_arrow_trace(
    log: EventLog,
    kinds: Optional[Iterable[str]] = None,
    until: Optional[float] = None,
    limit: int = 200,
) -> str:
    """Flat, time-ordered arrow list of traced sends."""
    lines = [
        f"t={time:7.2f}  p{src} --{kind}--> p{dst}"
        for time, src, dst, kind in message_sends(log, kinds, until)[:limit]
    ]
    return "\n".join(lines)


def render_sequence_diagram(
    log: EventLog,
    processes: Sequence[int],
    kinds: Optional[Iterable[str]] = None,
    until: Optional[float] = None,
    limit: int = 60,
    strip_prefix: bool = True,
) -> str:
    """Per-process lane diagram: one row per send, grouped destinations.

    ``strip_prefix`` shortens kinds like ``xp.prepare`` to ``prepare``.
    Sends at the same (time, src, kind) collapse into one row with a
    destination list — a broadcast reads as a single row, like the
    paper's figures.
    """
    sends = message_sends(log, kinds, until)
    grouped: Dict[Tuple[float, int, str], List[int]] = defaultdict(list)
    for time, src, dst, kind in sends:
        grouped[(round(time, 6), src, kind)].append(dst)
    rows = sorted(grouped.items())[:limit]

    def short(kind: str) -> str:
        return kind.split(".", 1)[-1] if strip_prefix and "." in kind else kind

    lanes = list(processes)
    width = max(
        [12]
        + [
            len(f"{short(kind)}>" + ",".join(str(d) for d in sorted(dsts)))
            for (_, _, kind), dsts in rows
        ]
    )
    header = "time     | " + " | ".join(f"p{p}".ljust(width) for p in lanes)
    divider = "-" * 9 + "+" + "+".join("-" * (width + 2) for _ in lanes)
    lines = [header, divider]
    for (time, src, kind), dsts in rows:
        cells = []
        label = f"{short(kind)}>" + ",".join(str(d) for d in sorted(dsts))
        for lane in lanes:
            cells.append((label if lane == src else "").ljust(width))
        lines.append(f"{time:8.2f} | " + " | ".join(cells))
    return "\n".join(lines)
