"""Baseline BFT protocols used by the paper's comparisons.

- :mod:`repro.baselines.pbft` — a PBFT-style normal-case protocol
  (PRE-PREPARE / PREPARE / COMMIT, ``n = 3f + 1``), runnable either with
  full broadcast (every replica participates) or restricted to an *active
  quorum* of ``2f + 1`` well-functioning replicas, the configuration this
  paper's introduction credits with dropping ~1/3 of inter-replica
  messages (citing Distler et al.).
- :mod:`repro.baselines.bchain` — a BChain-style chain-replication
  normal case with re-chaining on suspicion and an external standby pool,
  the other prior system the paper identifies as doing (unsatisfactory)
  Quorum Selection.
"""

from repro.baselines.pbft import PbftReplica, PbftClient, build_pbft_cluster, PbftCluster
from repro.baselines.bchain import BChainReplica, BChainClient, build_bchain_cluster, BChainCluster
from repro.baselines.bchain_cs import (
    BChainCsReplica,
    BChainCsClient,
    BChainCsCluster,
    build_bchain_cs_cluster,
)

__all__ = [
    "PbftReplica",
    "PbftClient",
    "build_pbft_cluster",
    "PbftCluster",
    "BChainReplica",
    "BChainClient",
    "build_bchain_cluster",
    "BChainCluster",
    "BChainCsReplica",
    "BChainCsClient",
    "BChainCsCluster",
    "build_bchain_cs_cluster",
]
