"""BChain-style chain replication with re-chaining (comparison baseline).

BChain (Duan et al., OPODIS'14) runs normal-case agreement along a
*chain* of active replicas — each request flows head -> tail and an ACK
flows back — which is the other prior system the paper credits with a
form of Quorum Selection.  Its weakness, per the paper: re-configuration
"relies on replacing potentially faulty processes with new, external
processes that are assumed to be correct".

This lite implementation keeps those essentials:

- ``n = 3f + 1`` replicas; the chain holds ``2f + 1`` of them, the rest
  form the standby pool;
- CHAIN messages carry the request down (each hop re-signs its
  forwarding envelope), the tail emits an ACK that travels back up; a
  chain member executes and replies to the client when the ACK passes it;
- each member, after forwarding, *expects* the ACK within a timeout
  (via the shared failure-detector machinery); a timeout makes the head
  re-chain: the suspected member is swapped with the next standby and
  demoted to the pool — the "assumed correct" external replacement.

State transfer on re-chaining is omitted (requests in flight are simply
retried by the client), which suffices for the E12 comparison of
reconfiguration behaviour and message counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto.authenticator import SignedMessage
from repro.sim.process import Module, ProcessHost
from repro.sim.runtime import Simulation, SimulationConfig
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId
from repro.xpaxos.messages import ClientRequest
from repro.xpaxos.state_machine import KeyValueStore

KIND_BC_REQUEST = "bc.request"
KIND_BC_CHAIN = "bc.chain"
KIND_BC_ACK = "bc.ack"
KIND_BC_SUSPECT = "bc.suspect"
KIND_BC_RECHAIN = "bc.rechain"
KIND_BC_REPLY = "bc.reply"

INTER_REPLICA_KINDS = (KIND_BC_CHAIN, KIND_BC_ACK, KIND_BC_SUSPECT, KIND_BC_RECHAIN)


@dataclass(frozen=True)
class ChainPayload:
    epoch: int
    slot: int
    request: ClientRequest

    def canonical(self):
        return ("bc-chain", self.epoch, self.slot, self.request.canonical())


@dataclass(frozen=True)
class AckPayload:
    epoch: int
    slot: int

    def canonical(self):
        return ("bc-ack", self.epoch, self.slot)


@dataclass(frozen=True)
class SuspectPayload:
    """A chain member blaming its successor for a missing ACK."""

    epoch: int
    target: int

    def canonical(self):
        return ("bc-suspect", self.epoch, self.target)


@dataclass(frozen=True)
class RechainPayload:
    epoch: int
    chain: Tuple[int, ...]

    def canonical(self):
        return ("bc-rechain", self.epoch, self.chain)


@dataclass(frozen=True)
class BcReplyPayload:
    client: int
    sequence: int
    result: Any
    replica: int

    def canonical(self):
        return ("bc-reply", self.client, self.sequence, self.result, self.replica)


class BChainReplica(Module):
    """One BChain replica; chain order is shared state updated by RECHAIN."""

    def __init__(self, host: ProcessHost, n: int, f: int, ack_timeout: float = 8.0) -> None:
        super().__init__(host)
        if n < 3 * f + 1:
            raise ConfigurationError(f"BChain needs n >= 3f + 1; got n={n}, f={f}")
        self.n = n
        self.f = f
        self.ack_timeout = ack_timeout
        self.epoch = 0
        self.chain: Tuple[int, ...] = tuple(range(1, 2 * f + 2))
        self.next_slot = 0
        self.kv = KeyValueStore()
        self.executed: List[ClientRequest] = []
        self._executed_ids: Set[Tuple[int, int]] = set()
        self._inflight: Dict[Tuple[int, int], ClientRequest] = {}
        self._acked: Set[Tuple[int, int]] = set()
        self._suspect_candidate: Optional[Tuple[int, int]] = None
        self._blame_counts: Dict[int, int] = {}
        self.rechains = 0

    # ---------------------------------------------------------------- wiring

    def start(self) -> None:
        self.host.subscribe(KIND_BC_REQUEST, self._on_request)
        self.host.subscribe(KIND_BC_CHAIN, self._on_chain)
        self.host.subscribe(KIND_BC_ACK, self._on_ack)
        self.host.subscribe(KIND_BC_SUSPECT, self._on_suspect)
        self.host.subscribe(KIND_BC_RECHAIN, self._on_rechain)

    @property
    def head(self) -> ProcessId:
        return self.chain[0]

    @property
    def tail(self) -> ProcessId:
        return self.chain[-1]

    def _successor(self) -> Optional[ProcessId]:
        if self.pid not in self.chain or self.pid == self.tail:
            return None
        return self.chain[self.chain.index(self.pid) + 1]

    def _predecessor(self) -> Optional[ProcessId]:
        if self.pid not in self.chain or self.pid == self.head:
            return None
        return self.chain[self.chain.index(self.pid) - 1]

    def _standbys(self) -> List[int]:
        return [pid for pid in range(1, self.n + 1) if pid not in self.chain]

    # ------------------------------------------------------------ normal case

    def _on_request(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage) or not self.host.authenticator.verify(payload):
            return
        request = payload.payload
        if not isinstance(request, ClientRequest) or payload.signer != request.client:
            return
        if self.pid != self.head:
            self.host.send(self.head, KIND_BC_REQUEST, payload)
            return
        if request.request_id() in self._executed_ids:
            self._reply(request, None)
            return
        slot = self.next_slot
        self.next_slot += 1
        body = ChainPayload(epoch=self.epoch, slot=slot, request=request)
        self._inflight[(self.epoch, slot)] = request
        self._forward(body)

    def _forward(self, body: ChainPayload) -> None:
        successor = self._successor()
        if successor is None:  # single-node chain degenerate case
            self._deliver_slot(body)
            return
        self.host.send(successor, KIND_BC_CHAIN, self.host.authenticator.sign(body))
        self._arm_ack_watch(body.epoch, body.slot, successor)

    def _arm_ack_watch(self, epoch: int, slot: int, successor: ProcessId) -> None:
        def check() -> None:
            if (epoch, slot) in self._acked or epoch != self.epoch:
                return
            # ACK missing: blame the successor.  The blame is most accurate
            # at the link where forwarding actually stopped, so every
            # watcher reports to the head, and the head prefers the most
            # downstream report it has seen this epoch.
            self.host.log.append(
                self.host.now, self.pid, "bc.blame", target=successor, slot=slot
            )
            if self.pid == self.head:
                self._note_suspect(self.pid, successor)
            else:
                report = self.host.authenticator.sign(
                    SuspectPayload(epoch=epoch, target=successor)
                )
                self.host.send(self.head, KIND_BC_SUSPECT, report)

        self.host.set_timer(self.ack_timeout, check, label=f"bc-ack@p{self.pid}s{slot}")

    def _on_suspect(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage) or not self.host.authenticator.verify(payload):
            return
        body = payload.payload
        if not isinstance(body, SuspectPayload) or body.epoch != self.epoch:
            return
        if self.pid != self.head or payload.signer not in self.chain:
            return
        # Only trust a member blaming its *own* successor.
        index = self.chain.index(payload.signer)
        if index + 1 >= len(self.chain) or self.chain[index + 1] != body.target:
            return
        self._note_suspect(payload.signer, body.target)

    def _note_suspect(self, reporter: ProcessId, target: ProcessId) -> None:
        """Head-side blame aggregation (BChain's suspicious-link logic).

        A blamed link ``(reporter, target)`` only proves *one of the two*
        is faulty — a mute forwarder blames its innocent successor.  As in
        BChain, the pair is separated over successive re-chainings: both
        endpoints accumulate blame and the endpoint blamed most often is
        ejected, so a culprit that keeps breaking its outgoing link is out
        after at most two reconfigurations.  Reports arriving within half
        an ack-timeout are aggregated and the most downstream link wins.
        """
        if target not in self.chain or reporter not in self.chain:
            return
        epoch = self.epoch
        current = self._suspect_candidate
        link = (reporter, target)
        if current is None or self.chain.index(target) > self.chain.index(current[1]):
            self._suspect_candidate = link
        if current is None:
            def act() -> None:
                if self.epoch != epoch or self._suspect_candidate is None:
                    return
                blamer, blamed = self._suspect_candidate
                self._suspect_candidate = None
                self._blame_counts[blamer] = self._blame_counts.get(blamer, 0) + 1
                self._blame_counts[blamed] = self._blame_counts.get(blamed, 0) + 1
                eject = (
                    blamer
                    if self._blame_counts[blamer] > self._blame_counts[blamed]
                    else blamed
                )
                self._rechain(eject)

            self.host.set_timer(self.ack_timeout / 2, act, label="bc-rechain-grace")

    def _on_chain(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage) or not self.host.authenticator.verify(payload):
            return
        body = payload.payload
        if not isinstance(body, ChainPayload) or body.epoch != self.epoch:
            return
        if payload.signer != self._predecessor():
            return
        self._inflight[(body.epoch, body.slot)] = body.request
        if self.pid == self.tail:
            ack = self.host.authenticator.sign(AckPayload(epoch=body.epoch, slot=body.slot))
            self._deliver_slot(body)
            predecessor = self._predecessor()
            if predecessor is not None:
                self.host.send(predecessor, KIND_BC_ACK, ack)
        else:
            self._forward(body)

    def _on_ack(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage) or not self.host.authenticator.verify(payload):
            return
        body = payload.payload
        if not isinstance(body, AckPayload) or body.epoch != self.epoch:
            return
        key = (body.epoch, body.slot)
        if key in self._acked:
            return
        self._acked.add(key)
        request = self._inflight.get(key)
        if request is not None:
            self._execute(request)
        predecessor = self._predecessor()
        if predecessor is not None:
            self.host.send(predecessor, KIND_BC_ACK, self.host.authenticator.sign(body))

    def _deliver_slot(self, body: ChainPayload) -> None:
        self._acked.add((body.epoch, body.slot))
        self._execute(body.request)

    def _execute(self, request: ClientRequest) -> None:
        rid = request.request_id()
        if rid in self._executed_ids:
            return
        result = self.kv.apply(request.op)
        self.executed.append(request)
        self._executed_ids.add(rid)
        self._reply(request, result)

    def _reply(self, request: ClientRequest, result: Any) -> None:
        reply = self.host.authenticator.sign(
            BcReplyPayload(
                client=request.client, sequence=request.sequence,
                result=result, replica=self.pid,
            )
        )
        self.host.send(request.client, KIND_BC_REPLY, reply)

    # ------------------------------------------------------------- re-chaining

    def _rechain(self, suspected: ProcessId) -> None:
        standbys = self._standbys()
        if suspected not in self.chain or not standbys:
            return
        replacement = standbys[0]
        new_chain = tuple(replacement if pid == suspected else pid for pid in self.chain)
        self.epoch += 1
        self.chain = new_chain
        self.rechains += 1
        self._inflight.clear()
        self._suspect_candidate = None
        self.host.log.append(
            self.host.now, self.pid, "bc.rechain",
            epoch=self.epoch, out=suspected, into=replacement, chain=new_chain,
        )
        body = RechainPayload(epoch=self.epoch, chain=new_chain)
        signed = self.host.authenticator.sign(body)
        for pid in range(1, self.n + 1):
            if pid != self.pid:
                self.host.send(pid, KIND_BC_RECHAIN, signed)

    def _on_rechain(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage) or not self.host.authenticator.verify(payload):
            return
        body = payload.payload
        if not isinstance(body, RechainPayload) or body.epoch <= self.epoch:
            return
        if payload.signer != self.head:  # only the head may re-chain
            return
        self.epoch = body.epoch
        self.chain = tuple(body.chain)
        self._inflight.clear()


class BChainClient(Module):
    """Closed-loop client with retransmission (needed across re-chaining)."""

    def __init__(
        self,
        host: ProcessHost,
        n: int,
        f: int,
        ops: Sequence[Tuple[Any, ...]],
        retry_timeout: float = 25.0,
    ) -> None:
        super().__init__(host)
        self.n = n
        self.f = f
        self.ops = list(ops)
        self.retry_timeout = retry_timeout
        self.next_sequence = 0
        self.current: Optional[ClientRequest] = None
        self._votes: Dict[Any, Set[int]] = {}
        self._sent_at = 0.0
        self.completed: List[Tuple[int, Tuple[Any, ...], Any, float, float]] = []

    def start(self) -> None:
        self.host.subscribe(KIND_BC_REPLY, self._on_reply)
        self._next_request()

    @property
    def done(self) -> bool:
        return self.current is None and not self.ops

    def _next_request(self) -> None:
        if not self.ops:
            self.current = None
            return
        self.current = ClientRequest(
            client=self.pid, sequence=self.next_sequence, op=self.ops.pop(0)
        )
        self.next_sequence += 1
        self._votes = {}
        self._sent_at = self.host.now
        self._send(broadcast=False)
        self._arm_retry(self.current.sequence)

    def _send(self, broadcast: bool) -> None:
        if self.current is None:
            return
        signed = self.host.authenticator.sign(self.current)
        targets = range(1, self.n + 1) if broadcast else (1,)
        for replica in targets:
            self.host.send(replica, KIND_BC_REQUEST, signed)

    def _arm_retry(self, sequence: int) -> None:
        def retry() -> None:
            if self.current is not None and self.current.sequence == sequence:
                self._send(broadcast=True)
                self._arm_retry(sequence)

        self.host.set_timer(self.retry_timeout, retry, label=f"bc-retry@p{self.pid}")

    def _on_reply(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage) or not self.host.authenticator.verify(payload):
            return
        reply = payload.payload
        if not isinstance(reply, BcReplyPayload) or reply.client != self.pid:
            return
        if self.current is None or reply.sequence != self.current.sequence:
            return
        votes = self._votes.setdefault(reply.result, set())
        votes.add(reply.replica)
        if len(votes) >= self.f + 1:
            self.completed.append(
                (self.current.sequence, self.current.op, reply.result,
                 self.host.now - self._sent_at, self.host.now)
            )
            self.current = None
            self._next_request()


@dataclass
class BChainCluster:
    sim: Simulation
    n: int
    f: int
    replicas: Dict[int, BChainReplica]
    clients: Dict[int, BChainClient]

    def run(self, until: float) -> None:
        self.sim.run_until(until)

    def total_completed(self) -> int:
        return sum(len(client.completed) for client in self.clients.values())

    def total_rechains(self) -> int:
        return max((replica.rechains for replica in self.replicas.values()), default=0)

    def inter_replica_messages(self) -> int:
        return self.sim.stats.total_sent(INTER_REPLICA_KINDS)


def build_bchain_cluster(
    n: int,
    f: int,
    clients: int = 1,
    requests_per_client: int = 20,
    seed: int = 1,
    delta: float = 1.0,
    ack_timeout: float = 8.0,
) -> BChainCluster:
    sim = Simulation(SimulationConfig(n=n + clients, seed=seed, gst=0.0, delta=delta))
    replicas = {
        pid: sim.host(pid).add_module(
            BChainReplica(sim.host(pid), n=n, f=f, ack_timeout=ack_timeout)
        )
        for pid in range(1, n + 1)
    }
    client_modules = {}
    for index in range(clients):
        pid = n + 1 + index
        ops = [("put", f"k{index}-{i}", i) for i in range(requests_per_client)]
        client_modules[pid] = sim.host(pid).add_module(
            BChainClient(sim.host(pid), n=n, f=f, ops=ops)
        )
    return BChainCluster(sim=sim, n=n, f=f, replicas=replicas, clients=client_modules)
