"""BChain running on Chain Selection — the integration of Section X.

The paper's conclusion asks "how best to integrate Quorum Selection in
different BFT algorithms or other special cases of Quorum Selection,
e.g. when processes are communicating along a chain".  This module does
both at once: the BChain-style normal case (CHAIN down, ACK up) keeps
running, but re-configuration is taken away from the head's blame
heuristics and given to the decentralized
:class:`~repro.core.chain_selection.ChainSelectionModule`:

- after forwarding a slot, a member *expects* the ACK from its successor
  through the shared failure detector (per-link omission/timing coverage
  for exactly the links the chain uses);
- a timed-out expectation becomes a ``SUSPECTED`` event, gossips through
  the suspicion matrix, and Chain Selection re-selects the
  lexicographically-first conflict-free chain — no external standby pool,
  no trust in a head's accusations, and agreement on the new chain comes
  from the eventually consistent matrix rather than a RECHAIN broadcast;
- chain identity travels inside every message (the chain tuple itself),
  so stale traffic from an old configuration is simply ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.chain_selection import ChainSelectionModule
from repro.crypto.authenticator import SignedMessage
from repro.fd.detector import FailureDetector
from repro.fd.heartbeat import HeartbeatModule
from repro.fd.timers import TimeoutPolicy
from repro.sim.process import Module, ProcessHost
from repro.sim.runtime import Simulation, SimulationConfig
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId
from repro.xpaxos.messages import ClientRequest
from repro.xpaxos.state_machine import KeyValueStore
from repro.baselines.bchain import BChainClient, KIND_BC_REPLY, BcReplyPayload

KIND_CS_CHAIN = "bcs.chain"
KIND_CS_ACK = "bcs.ack"
KIND_CS_REQUEST = "bcs.request"

FD_GROUP = "bchain-cs"


@dataclass(frozen=True)
class CsChainPayload:
    """A request travelling down a specific chain configuration."""

    chain: Tuple[int, ...]
    slot: int
    request: ClientRequest

    def canonical(self):
        return ("bcs-chain", self.chain, self.slot, self.request.canonical())


@dataclass(frozen=True)
class CsAckPayload:
    chain: Tuple[int, ...]
    slot: int

    def canonical(self):
        return ("bcs-ack", self.chain, self.slot)


class BChainCsReplica(Module):
    """BChain normal case re-configured by Chain Selection."""

    def __init__(
        self,
        host: ProcessHost,
        n: int,
        f: int,
        chain_module: ChainSelectionModule,
    ) -> None:
        super().__init__(host)
        if n <= 2 * f:
            raise ConfigurationError(f"need n > 2f, got n={n}, f={f}")
        self.n = n
        self.f = f
        self.cs = chain_module
        self.next_slot = 0
        self.kv = KeyValueStore()
        self.executed: List[ClientRequest] = []
        self._executed_ids: Set[Tuple[int, int]] = set()
        self._inflight: Dict[Tuple[Tuple[int, ...], int], ClientRequest] = {}
        self._acked: Set[Tuple[Tuple[int, ...], int]] = set()
        self.reconfigurations = 0

    # ---------------------------------------------------------------- wiring

    def start(self) -> None:
        self.host.subscribe(KIND_CS_REQUEST, self._on_request)
        self.host.subscribe(KIND_CS_CHAIN, self._on_chain)
        self.host.subscribe(KIND_CS_ACK, self._on_ack)
        self.cs.add_quorum_listener(self._on_new_chain)

    @property
    def chain(self) -> Tuple[int, ...]:
        return self.cs.chain

    @property
    def is_head(self) -> bool:
        return self.chain and self.chain[0] == self.pid

    def _successor(self, chain: Tuple[int, ...]) -> Optional[ProcessId]:
        if self.pid not in chain or self.pid == chain[-1]:
            return None
        return chain[chain.index(self.pid) + 1]

    def _predecessor(self, chain: Tuple[int, ...]) -> Optional[ProcessId]:
        if self.pid not in chain or self.pid == chain[0]:
            return None
        return chain[chain.index(self.pid) - 1]

    # ----------------------------------------------------------- reconfiguring

    def _on_new_chain(self, event: Any) -> None:
        """Chain Selection issued a new chain: drop the old configuration."""
        self.reconfigurations += 1
        self._inflight.clear()
        if self.host.fd is not None:
            self.host.fd.cancel(group=FD_GROUP)
        self.host.log.append(
            self.host.now, self.pid, "bcs.reconfigure", chain=self.cs.chain
        )

    # ------------------------------------------------------------ normal case

    def _on_request(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self.host.authenticator.verify(payload):
            return
        request = payload.payload
        if not isinstance(request, ClientRequest) or payload.signer != request.client:
            return
        chain = self.chain
        if not self.is_head:
            if chain:
                self.host.send(chain[0], KIND_CS_REQUEST, payload)
            return
        if request.request_id() in self._executed_ids:
            self._reply(request, None)
            return
        slot = self.next_slot
        self.next_slot += 1
        body = CsChainPayload(chain=chain, slot=slot, request=request)
        self._inflight[(chain, slot)] = request
        self._forward(body)

    def _forward(self, body: CsChainPayload) -> None:
        successor = self._successor(body.chain)
        if successor is None:
            self._deliver_slot(body)
            return
        signed = self.host.authenticator.sign(body)
        self.host.send(successor, KIND_CS_CHAIN, signed)
        self._expect_ack(body.chain, body.slot, successor)

    def _expect_ack(
        self, chain: Tuple[int, ...], slot: int, successor: ProcessId
    ) -> None:
        """Per-link liveness through the shared failure detector."""
        if self.host.fd is None:
            return

        def match(kind: str, payload: Any) -> bool:
            return (
                kind == KIND_CS_ACK
                and isinstance(payload, SignedMessage)
                and payload.signer == successor
                and isinstance(payload.payload, CsAckPayload)
                and payload.payload.chain == chain
                and payload.payload.slot == slot
            )

        self.host.fd.expect(
            source=successor,
            predicate=match,
            group=FD_GROUP,
            label=f"bcs-ack<-p{successor}s{slot}",
        )

    def _on_chain(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self.host.authenticator.verify(payload):
            return
        body = payload.payload
        if not isinstance(body, CsChainPayload):
            return
        if body.chain != self.chain:
            return  # stale configuration
        if payload.signer != self._predecessor(body.chain):
            return
        self._inflight[(body.chain, body.slot)] = body.request
        if self.pid == body.chain[-1]:
            self._deliver_slot(body)
            predecessor = self._predecessor(body.chain)
            if predecessor is not None:
                ack = self.host.authenticator.sign(
                    CsAckPayload(chain=body.chain, slot=body.slot)
                )
                self.host.send(predecessor, KIND_CS_ACK, ack)
        else:
            self._forward(body)

    def _on_ack(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self.host.authenticator.verify(payload):
            return
        body = payload.payload
        if not isinstance(body, CsAckPayload) or body.chain != self.chain:
            return
        key = (body.chain, body.slot)
        if key in self._acked:
            return
        self._acked.add(key)
        request = self._inflight.get(key)
        if request is not None:
            self._execute(request)
        predecessor = self._predecessor(body.chain)
        if predecessor is not None:
            self.host.send(
                predecessor,
                KIND_CS_ACK,
                self.host.authenticator.sign(body),
            )

    def _deliver_slot(self, body: CsChainPayload) -> None:
        self._acked.add((body.chain, body.slot))
        self._execute(body.request)

    def _execute(self, request: ClientRequest) -> None:
        rid = request.request_id()
        if rid in self._executed_ids:
            return
        result = self.kv.apply(request.op)
        self.executed.append(request)
        self._executed_ids.add(rid)
        self._reply(request, result)

    def _reply(self, request: ClientRequest, result: Any) -> None:
        reply = self.host.authenticator.sign(
            BcReplyPayload(
                client=request.client, sequence=request.sequence,
                result=result, replica=self.pid,
            )
        )
        self.host.send(request.client, KIND_BC_REPLY, reply)


class BChainCsClient(BChainClient):
    """BChain client speaking the Chain-Selection-integrated dialect."""

    def _send(self, broadcast: bool) -> None:
        if self.current is None:
            return
        signed = self.host.authenticator.sign(self.current)
        targets = range(1, self.n + 1) if broadcast else (1,)
        for replica in targets:
            self.host.send(replica, KIND_CS_REQUEST, signed)


@dataclass
class BChainCsCluster:
    sim: Simulation
    n: int
    f: int
    replicas: Dict[int, BChainCsReplica]
    chain_modules: Dict[int, ChainSelectionModule]
    clients: Dict[int, BChainCsClient]

    def run(self, until: float) -> None:
        self.sim.run_until(until)

    def total_completed(self) -> int:
        return sum(len(client.completed) for client in self.clients.values())

    def total_reconfigurations(self) -> int:
        return max(
            (replica.reconfigurations for replica in self.replicas.values()), default=0
        )

    def current_chain(self) -> Tuple[int, ...]:
        """The chain agreed on by the *live* replicas.

        Crashed hosts keep whatever configuration they died with, so they
        are excluded — agreement is only promised among correct processes.
        """
        chains = {
            module.chain
            for module in self.chain_modules.values()
            if module.host.running
        }
        if len(chains) != 1:
            raise ConfigurationError(f"chain disagreement: {chains}")
        return chains.pop()


def build_bchain_cs_cluster(
    n: int,
    f: int,
    clients: int = 1,
    requests_per_client: int = 20,
    seed: int = 1,
    delta: float = 1.0,
    fd_base_timeout: float = 8.0,
    heartbeat_period: float = 4.0,
) -> BChainCsCluster:
    """Assemble BChain-on-Chain-Selection (no standby pool needed)."""
    sim = Simulation(SimulationConfig(n=n + clients, seed=seed, gst=0.0, delta=delta))
    replicas: Dict[int, BChainCsReplica] = {}
    chain_modules: Dict[int, ChainSelectionModule] = {}
    for pid in range(1, n + 1):
        host = sim.host(pid)
        FailureDetector(host, TimeoutPolicy(base_timeout=fd_base_timeout))
        host.add_module(HeartbeatModule(host, n=n, period=heartbeat_period))
        chain_modules[pid] = host.add_module(ChainSelectionModule(host, n=n, f=f))
        replicas[pid] = host.add_module(
            BChainCsReplica(host, n=n, f=f, chain_module=chain_modules[pid])
        )
    client_modules: Dict[int, BChainCsClient] = {}
    for index in range(clients):
        pid = n + 1 + index
        host = sim.host(pid)
        ops = [("put", f"k{index}-{i}", i) for i in range(requests_per_client)]
        client_modules[pid] = host.add_module(
            BChainCsClient(host, n=n, f=f, ops=ops)
        )
    return BChainCsCluster(
        sim=sim, n=n, f=f, replicas=replicas,
        chain_modules=chain_modules, clients=client_modules,
    )
