"""PBFT-style normal case, full-broadcast or active-quorum.

This baseline exists to quantify the introduction's claim: systems like
PBFT "use ``n = 3f + 1`` replicas, broadcast messages to all replicas but
require replies from only ``n - f`` correct replicas"; restricting the
broadcasts to a selected quorum of ``n - f`` well-functioning replicas
drops about 1/3 of the inter-replica messages.

Full-broadcast mode follows the classic pattern with classic thresholds:
the leader PRE-PREPAREs to everyone; every replica PREPAREs to everyone;
a replica that holds the PRE-PREPARE plus ``2f`` matching PREPAREs
COMMITs to everyone; ``2f + 1`` matching COMMITs execute the request.

Active-quorum mode runs the same pattern inside a ``2f + 1``-member
quorum, relying on Quorum Selection's promise that every member is
well-functioning: thresholds become "all active members" (the PRE-PREPARE
counting as the leader's PREPARE), which is sound precisely because a
quorum member that stops cooperating would be suspected and the quorum
changed.  View changes and checkpointing are out of scope — this baseline
measures normal-case messaging and latency only (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.crypto.authenticator import SignedMessage
from repro.crypto.digests import digest
from repro.sim.process import Module, ProcessHost
from repro.sim.runtime import Simulation, SimulationConfig
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId
from repro.xpaxos.messages import ClientRequest
from repro.xpaxos.state_machine import KeyValueStore

KIND_PBFT_REQUEST = "pbft.request"
KIND_PRE_PREPARE = "pbft.pre-prepare"
KIND_PBFT_PREPARE = "pbft.prepare"
KIND_PBFT_COMMIT = "pbft.commit"
KIND_PBFT_REPLY = "pbft.reply"

INTER_REPLICA_KINDS = (KIND_PRE_PREPARE, KIND_PBFT_PREPARE, KIND_PBFT_COMMIT)


@dataclass(frozen=True)
class PrePreparePayload:
    view: int
    slot: int
    request: ClientRequest

    def canonical(self):
        return ("pbft-pre-prepare", self.view, self.slot, self.request.canonical())

    def request_digest(self) -> str:
        return digest(self.request.canonical())


@dataclass(frozen=True)
class PhasePayload:
    """A PREPARE or COMMIT vote: (view, slot, request digest)."""

    phase: str
    view: int
    slot: int
    request_digest: str

    def canonical(self):
        return ("pbft-phase", self.phase, self.view, self.slot, self.request_digest)


@dataclass(frozen=True)
class PbftReplyPayload:
    client: int
    sequence: int
    result: Any
    replica: int

    def canonical(self):
        return ("pbft-reply", self.client, self.sequence, self.result, self.replica)


@dataclass
class PbftSlot:
    request: Optional[ClientRequest] = None
    request_digest: str = ""
    prepares: Set[int] = field(default_factory=set)
    commits: Set[int] = field(default_factory=set)
    prepared: bool = False
    committed: bool = False


class PbftReplica(Module):
    """Normal-case PBFT replica; ``active`` restricts the participant set."""

    def __init__(
        self,
        host: ProcessHost,
        n: int,
        f: int,
        active: Optional[FrozenSet[int]] = None,
        prepare_quorum: Optional[int] = None,
        commit_quorum: Optional[int] = None,
    ) -> None:
        """``prepare_quorum``/``commit_quorum`` override the vote counts.

        Defaults give classic PBFT (``2f`` / ``2f + 1``) in full-broadcast
        mode and all-active in quorum mode.  Overrides model the
        ``n = 2f + 1`` family from the paper's introduction (trusted
        components shrink the replica group; the *message pattern* is the
        same broadcast rounds with ``n - f`` required replies, which is
        all this baseline measures).
        """
        super().__init__(host)
        if n < 2 * f + 1:
            raise ConfigurationError(f"need n >= 2f + 1; got n={n}, f={f}")
        if n < 3 * f + 1 and prepare_quorum is None:
            raise ConfigurationError(
                f"classic PBFT thresholds need n >= 3f + 1 (got n={n}, f={f}); "
                "pass explicit prepare_quorum/commit_quorum for smaller groups"
            )
        self.n = n
        self.f = f
        self.active: FrozenSet[int] = (
            frozenset(range(1, n + 1)) if active is None else frozenset(active)
        )
        if len(self.active) < n - f:
            raise ConfigurationError("active set must have at least n - f members")
        self.full_broadcast = len(self.active) == n
        self._prepare_quorum = prepare_quorum
        self._commit_quorum = commit_quorum
        self.leader: ProcessId = min(self.active)
        self.view = 0
        self.slots: Dict[int, PbftSlot] = {}
        self.next_slot = 0
        self._execution_cursor = 0
        self.kv = KeyValueStore()
        self.executed: List[ClientRequest] = []
        self._executed_ids: Set[Tuple[int, int]] = set()

    # --------------------------------------------------------------- wiring

    def start(self) -> None:
        self.host.subscribe(KIND_PBFT_REQUEST, self._on_request)
        self.host.subscribe(KIND_PRE_PREPARE, self._on_pre_prepare)
        self.host.subscribe(KIND_PBFT_PREPARE, self._on_phase)
        self.host.subscribe(KIND_PBFT_COMMIT, self._on_phase)

    @property
    def is_leader(self) -> bool:
        return self.pid == self.leader

    @property
    def participating(self) -> bool:
        return self.pid in self.active

    def _peers(self) -> List[int]:
        return [member for member in sorted(self.active) if member != self.pid]

    def _prepare_threshold(self) -> int:
        """Matching PREPAREs needed (incl. the PRE-PREPARE as the leader's).

        Full broadcast: classic ``2f`` from distinct replicas.  Active
        quorum: *all* members — justified by the quorum-selection premise
        that every active member is well-functioning.
        """
        if self._prepare_quorum is not None:
            return self._prepare_quorum
        return 2 * self.f if self.full_broadcast else len(self.active) - 1

    def _commit_threshold(self) -> int:
        if self._commit_quorum is not None:
            return self._commit_quorum
        return 2 * self.f + 1 if self.full_broadcast else len(self.active)

    def _slot(self, slot: int) -> PbftSlot:
        return self.slots.setdefault(slot, PbftSlot())

    # ------------------------------------------------------------ normal case

    def _on_request(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage) or not self.host.authenticator.verify(payload):
            return
        request = payload.payload
        if not isinstance(request, ClientRequest) or payload.signer != request.client:
            return
        if not self.is_leader:
            if src == request.client:
                self.host.send(self.leader, KIND_PBFT_REQUEST, payload)
            return
        if request.request_id() in self._executed_ids:
            return
        slot = self.next_slot
        self.next_slot += 1
        body = PrePreparePayload(view=self.view, slot=slot, request=request)
        signed = self.host.authenticator.sign(body)
        state = self._slot(slot)
        state.request = request
        state.request_digest = body.request_digest()
        state.prepares.add(self.pid)  # PRE-PREPARE doubles as leader PREPARE
        for peer in self._peers():
            self.host.send(peer, KIND_PRE_PREPARE, signed)
        self._maybe_advance(slot)

    def _on_pre_prepare(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not self.participating:
            return
        if not isinstance(payload, SignedMessage) or not self.host.authenticator.verify(payload):
            return
        body = payload.payload
        if not isinstance(body, PrePreparePayload) or payload.signer != self.leader:
            return
        if body.view != self.view:
            return
        state = self._slot(body.slot)
        if state.request is not None:
            return
        state.request = body.request
        state.request_digest = body.request_digest()
        state.prepares.add(self.leader)
        state.prepares.add(self.pid)
        vote = self.host.authenticator.sign(
            PhasePayload("prepare", body.view, body.slot, state.request_digest)
        )
        for peer in self._peers():
            self.host.send(peer, KIND_PBFT_PREPARE, vote)
        self._maybe_advance(body.slot)

    def _on_phase(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not self.participating:
            return
        if not isinstance(payload, SignedMessage) or not self.host.authenticator.verify(payload):
            return
        body = payload.payload
        if not isinstance(body, PhasePayload) or body.view != self.view:
            return
        if payload.signer not in self.active:
            return
        state = self._slot(body.slot)
        if state.request is not None and body.request_digest != state.request_digest:
            return  # conflicting vote; a full PBFT would trigger view change
        if body.phase == "prepare":
            state.prepares.add(payload.signer)
        elif body.phase == "commit":
            state.commits.add(payload.signer)
        self._maybe_advance(body.slot)

    def _maybe_advance(self, slot: int) -> None:
        state = self._slot(slot)
        if state.request is None:
            return
        if not state.prepared and len(state.prepares) >= self._prepare_threshold():
            state.prepared = True
            state.commits.add(self.pid)
            vote = self.host.authenticator.sign(
                PhasePayload("commit", self.view, slot, state.request_digest)
            )
            for peer in self._peers():
                self.host.send(peer, KIND_PBFT_COMMIT, vote)
        if state.prepared and not state.committed and len(state.commits) >= self._commit_threshold():
            state.committed = True
            self._execute_ready()

    def _execute_ready(self) -> None:
        while True:
            state = self.slots.get(self._execution_cursor)
            if state is None or not state.committed or state.request is None:
                return
            request = state.request
            rid = request.request_id()
            if rid not in self._executed_ids:
                result = self.kv.apply(request.op)
                self.executed.append(request)
                self._executed_ids.add(rid)
            else:
                result = None
            reply = self.host.authenticator.sign(
                PbftReplyPayload(
                    client=request.client, sequence=request.sequence,
                    result=result, replica=self.pid,
                )
            )
            self.host.send(request.client, KIND_PBFT_REPLY, reply)
            self._execution_cursor += 1


class PbftClient(Module):
    """Closed-loop client; accepts a result on ``f + 1`` matching replies."""

    def __init__(
        self,
        host: ProcessHost,
        n: int,
        f: int,
        leader: ProcessId,
        ops: Sequence[Tuple[Any, ...]],
    ) -> None:
        super().__init__(host)
        self.n = n
        self.f = f
        self.leader = leader
        self.ops = list(ops)
        self.next_sequence = 0
        self.current: Optional[ClientRequest] = None
        self._votes: Dict[Any, Set[int]] = {}
        self._sent_at = 0.0
        self.completed: List[Tuple[int, Tuple[Any, ...], Any, float, float]] = []

    def start(self) -> None:
        self.host.subscribe(KIND_PBFT_REPLY, self._on_reply)
        self._next_request()

    @property
    def done(self) -> bool:
        return self.current is None and not self.ops

    def _next_request(self) -> None:
        if not self.ops:
            self.current = None
            return
        op = self.ops.pop(0)
        self.current = ClientRequest(client=self.pid, sequence=self.next_sequence, op=op)
        self.next_sequence += 1
        self._votes = {}
        self._sent_at = self.host.now
        self.host.send(self.leader, KIND_PBFT_REQUEST, self.host.authenticator.sign(self.current))

    def _on_reply(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage) or not self.host.authenticator.verify(payload):
            return
        reply = payload.payload
        if not isinstance(reply, PbftReplyPayload) or reply.client != self.pid:
            return
        if self.current is None or reply.sequence != self.current.sequence:
            return
        votes = self._votes.setdefault(reply.result, set())
        votes.add(reply.replica)
        if len(votes) >= self.f + 1:
            self.completed.append(
                (self.current.sequence, self.current.op, reply.result,
                 self.host.now - self._sent_at, self.host.now)
            )
            self.current = None
            self._next_request()


@dataclass
class PbftCluster:
    sim: Simulation
    n: int
    f: int
    active: FrozenSet[int]
    replicas: Dict[int, PbftReplica]
    clients: Dict[int, PbftClient]

    def run(self, until: float) -> None:
        self.sim.run_until(until)

    def total_completed(self) -> int:
        return sum(len(client.completed) for client in self.clients.values())

    def inter_replica_messages(self) -> int:
        """Messages of agreement kinds among replicas (the E7 metric)."""
        return self.sim.stats.total_sent(INTER_REPLICA_KINDS)


def build_pbft_cluster(
    n: int,
    f: int,
    active: Optional[Sequence[int]] = None,
    clients: int = 1,
    requests_per_client: int = 20,
    seed: int = 1,
    delta: float = 1.0,
    prepare_quorum: Optional[int] = None,
    commit_quorum: Optional[int] = None,
) -> PbftCluster:
    """Assemble a PBFT cluster (full broadcast unless ``active`` given)."""
    sim = Simulation(SimulationConfig(n=n + clients, seed=seed, gst=0.0, delta=delta))
    active_set = frozenset(active) if active is not None else frozenset(range(1, n + 1))
    replicas = {
        pid: sim.host(pid).add_module(
            PbftReplica(
                sim.host(pid), n=n, f=f, active=active_set,
                prepare_quorum=prepare_quorum, commit_quorum=commit_quorum,
            )
        )
        for pid in range(1, n + 1)
    }
    leader = min(active_set)
    client_modules = {}
    for index in range(clients):
        pid = n + 1 + index
        ops = [("put", f"k{index}-{i}", i) for i in range(requests_per_client)]
        client_modules[pid] = sim.host(pid).add_module(
            PbftClient(sim.host(pid), n=n, f=f, leader=leader, ops=ops)
        )
    return PbftCluster(
        sim=sim, n=n, f=f, active=active_set, replicas=replicas, clients=client_modules
    )
