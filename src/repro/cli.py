"""Command-line interface: ``python -m repro <command>``.

Quick entry points into the reproduction without writing a script:

- ``bounds [--f-max N]`` — print every closed-form bound from the paper.
- ``thm4 [--f F]`` — run the Theorem-4 adversary live and report counts.
- ``crash-compare [--f F]`` — leader crash under Quorum Selection vs
  XPaxos enumeration.
- ``savings [--f-max N]`` — the introduction's message-savings table.
- ``worst-case [--f F]`` — exhaustive/greedy per-epoch worst case
  (the "simulations suggest" experiment).
- ``sweep [--jobs N] [--no-cache]`` — the E17 crash grid through the
  parallel execution engine with the on-disk result cache
  (DESIGN.md §5.15).
- ``cluster --n 7 --f 2 [--kill PID@T] [--recover PID@T]`` — launch a
  live loopback cluster (one OS process per replica over TCP), inject
  crashes/recoveries on schedule, and report the cluster verdict.
- ``node`` — one replica of such a cluster (used internally by
  ``cluster``; documented for running replicas across machines).
- ``metrics {sim,net,render,diff}`` — snapshot the observability
  registry from a deterministic simulation or a live loopback cluster,
  re-render saved snapshots, or diff two of them; output as a table,
  Prometheus text exposition, or JSON.
- ``adversary {attack,search}`` — run one programmable-adversary attack
  trial, or the seeded randomized lower-bound chase against Theorem 4's
  ``C(f+2,2)`` proposed-quorum count (E28).

Each command prints a table built by the same code the benchmarks use.
Invalid argument combinations exit with status 2 and a one-line message
— never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.bounds import (
    cor10_total_bound,
    enumeration_cycle_length,
    observed_max_changes_claim,
    thm3_upper_bound,
    thm4_quorum_count,
    thm9_per_epoch_bound,
)
from repro.analysis.report import Table


def _invalid(message: str) -> int:
    """Reject an invalid argument combination: message to stderr, exit 2."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def _require_f(f: int) -> Optional[int]:
    """Shared ``--f`` sanity check; returns an exit code when invalid."""
    if f < 1:
        return _invalid(f"--f must be >= 1, got {f}")
    return None


def _cmd_bounds(args: argparse.Namespace) -> int:
    if args.f_max < 1:
        return _invalid(f"--f-max must be >= 1, got {args.f_max}")
    table = Table(
        [
            "f", "Thm 3 f(f+1)", "Thm 4 C(f+2,2)", "changes C(f+2,2)-1",
            "Thm 9 3f+1", "Cor 10 6f+2", "enum cycle C(2f+1,f)",
        ],
        title="Closed-form bounds (per-epoch counts unless noted)",
    )
    for f in range(1, args.f_max + 1):
        table.add_row(
            f, thm3_upper_bound(f), thm4_quorum_count(f),
            observed_max_changes_claim(f), thm9_per_epoch_bound(f),
            cor10_total_bound(f), enumeration_cycle_length(2 * f + 1, f),
        )
    print(table.render())
    return 0


def _cmd_thm4(args: argparse.Namespace) -> int:
    invalid = _require_f(args.f)
    if invalid is not None:
        return invalid
    from repro.analysis.runner import run_thm4_adversary

    f = args.f
    result = run_thm4_adversary(2 * f + 2, f, seed=args.seed)
    table = Table(["metric", "value"], title=f"Theorem 4 adversary, f={f}")
    table.add_row("suspicions fired", result.suspicions_fired)
    table.add_row("quorum changes", result.max_changes_per_epoch)
    table.add_row("claimed maximum C(f+2,2)-1", observed_max_changes_claim(f))
    table.add_row("Theorem 3 bound f(f+1)", thm3_upper_bound(f))
    table.add_row("final quorum", result.final_quorum)
    table.add_row("agreement / no-suspicion",
                  f"{result.final_quorums_agree} / {result.no_suspicion}")
    print(table.render())
    return 0


def _cmd_crash_compare(args: argparse.Namespace) -> int:
    invalid = _require_f(args.f)
    if invalid is not None:
        return invalid
    from repro.analysis.runner import run_xpaxos_crash_comparison

    f = args.f
    comparison = run_xpaxos_crash_comparison(
        n=2 * f + 1, f=f, crash_pids=(1,), seed=args.seed, duration=1500.0
    )
    selection, enumeration = comparison.view_changes()
    sel_done, enum_done = comparison.completed()
    table = Table(
        ["policy", "view changes", "completed requests"],
        title=f"Leader crash at t=30, n={2 * f + 1}, f={f}",
    )
    table.add_row("quorum selection", selection, sel_done)
    table.add_row("enumeration (XPaxos)", enumeration, enum_done)
    print(table.render())
    return 0


def _cmd_savings(args: argparse.Namespace) -> int:
    if args.f_max < 1:
        return _invalid(f"--f-max must be >= 1, got {args.f_max}")
    from repro.analysis.runner import measure_message_savings

    table = Table(
        ["f", "family", "msgs/req full", "msgs/req active", "per-broadcast drop"],
        title="Inter-replica message savings (introduction claim)",
    )
    for f in range(1, args.f_max + 1):
        for family, flag in (("3f+1", False), ("2f+1", True)):
            s = measure_message_savings(f, two_f_plus_one=flag)
            table.add_row(f, family, s.full_messages_per_request,
                          s.active_messages_per_request, s.per_broadcast_reduction)
    print(table.render())
    return 0


def _cmd_worst_case(args: argparse.Namespace) -> int:
    invalid = _require_f(args.f)
    if invalid is not None:
        return invalid
    from repro.analysis.abstract import exhaustive_max_changes, greedy_max_changes

    f = args.f
    n = 2 * f + 2
    table = Table(["search", "max changes/epoch", "claim"], title=f"Worst case, f={f}")
    if f <= 2:
        table.add_row("exhaustive (all faulty sets)",
                      exhaustive_max_changes(n, f), observed_max_changes_claim(f))
    elif f == 3:
        table.add_row("exhaustive (F={1..f})",
                      exhaustive_max_changes(n, f, faulty=set(range(1, f + 1))),
                      observed_max_changes_claim(f))
    table.add_row("greedy", greedy_max_changes(n, f), observed_max_changes_claim(f))
    print(table.render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        return _invalid(f"--jobs must be >= 1, got {args.jobs}")
    import time

    from repro.analysis.cache import ResultCache
    from repro.analysis.sweeps import PointError, grid_sweep
    from repro.analysis.tasks import e17_crash_case
    from repro.util.errors import ConfigurationError

    try:
        cases = [
            tuple(int(part) for part in chunk.split(":"))
            for chunk in args.cases.split(",") if chunk
        ]
        seeds = [int(chunk) for chunk in args.seeds.split(",") if chunk]
        if any(len(case) != 2 for case in cases) or not cases or not seeds:
            raise ValueError
    except ValueError:
        print("--cases must look like '5:2,10:3' and --seeds like '3,7,11'",
              file=sys.stderr)
        return 2

    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    grid = [dict(n=n, f=f) for n, f in cases]
    started = time.perf_counter()
    try:
        results = grid_sweep(
            e17_crash_case, grid, seeds,
            jobs=args.jobs, cache=cache, on_error="record",
        )
    except ConfigurationError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    wall = time.perf_counter() - started

    table = Table(
        ["n", "f", "quorum changes", "converged at (sim t)",
         "UPDATE msgs (mean)", "agree"],
        title=(
            f"E17 crash grid — jobs={args.jobs}, seeds={seeds}, "
            f"cache={'off' if cache is None else cache.root}"
        ),
    )
    failed = 0
    for point, summaries in results:
        if isinstance(summaries, PointError):
            failed += 1
            table.add_row(point["n"], point["f"], "ERROR", "-", "-",
                          summaries.describe())
            continue
        table.add_row(
            point["n"], point["f"],
            round(summaries["changes"].mean, 2),
            round(summaries["converged_at"].mean, 2),
            round(summaries["updates"].mean, 1),
            summaries["agree"].minimum == 1.0,
        )
    print(table.render())
    line = f"wall: {wall:.3f}s, jobs={args.jobs}"
    if cache is not None:
        stats = cache.stats
        line += (
            f", cache hits={stats.hits} misses={stats.misses} "
            f"(hit rate {stats.hit_rate:.0%})"
        )
    print(line)
    return 1 if failed else 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.net.cluster import ClusterConfig, parse_schedule, run_cluster
    from repro.util.errors import ConfigurationError

    try:
        config = ClusterConfig(
            n=args.n,
            f=args.f,
            duration=args.duration,
            kills=parse_schedule(args.kill, "kill"),
            recovers=parse_schedule(args.recover, "recover"),
            kill_mode=args.kill_mode,
            follower_mode=args.follower_mode,
            heartbeat_period=args.heartbeat,
            base_timeout=args.timeout,
            anti_entropy_period=args.anti_entropy,
            run_dir=args.run_dir,
            wire_version=args.wire_version,
            uvloop=args.uvloop,
        )
        config.validate()
    except ConfigurationError as exc:
        return _invalid(str(exc))

    result = run_cluster(config)
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        table = Table(
            ["metric", "value"],
            title=(
                f"Live loopback cluster — n={args.n}, f={args.f}, "
                f"{args.duration:.1f}s, kill_mode={args.kill_mode}"
            ),
        )
        quorum = summary["final_quorum"]
        table.add_row("correct replicas", ",".join(map(str, summary["correct_pids"])))
        table.add_row("agreement", summary["agreement"])
        table.add_row("final quorum", ",".join(map(str, quorum)) if quorum else "-")
        table.add_row("active quorum (no crashed member)", summary["active_quorum"])
        table.add_row("max quorum changes / epoch", summary["max_changes_per_epoch"])
        table.add_row("Thm 3 bound f(f+1)", args.f * (args.f + 1))
        table.add_row("wall seconds", summary["wall_seconds"])
        print(table.render())
        if result.run_dir is not None:
            print(f"per-node event streams: {result.run_dir}/node_*.jsonl")
    healthy = summary["agreement"] and (
        summary["active_quorum"] or not (config.kills or config.recovers)
    )
    return 0 if healthy else 1


def _cmd_node(args: argparse.Namespace) -> int:
    from repro.net.node import NodeConfig, parse_peer_map, run_node_blocking
    from repro.util.errors import ConfigurationError

    peers = None
    if args.peers != "-":
        try:
            entries = dict(
                part.split("=", 1) for part in args.peers.split(",") if part
            )
            peers = parse_peer_map(entries)
        except (ValueError, KeyError):
            return _invalid(
                "--peers expects '-' (stdin rendezvous) or "
                "'1=host:port,2=host:port,...'"
            )
    try:
        config = NodeConfig(
            pid=args.pid,
            n=args.n,
            f=args.f,
            port=args.port,
            peers=peers,
            follower_mode=args.follower_mode,
            heartbeat_period=args.heartbeat,
            base_timeout=args.timeout,
            duration=args.duration,
            queue_capacity=args.queue_capacity,
            anti_entropy_period=args.anti_entropy,
            kills_at=tuple(args.kill_at),
            recovers_at=tuple(args.recover_at),
            metrics_prom_path=args.metrics_prom,
            wire_version=args.wire_version,
            uvloop=args.uvloop,
            service=args.service,
            service_clients=args.service_clients,
            batch_size=args.batch_size,
            batch_window=args.batch_window,
            checkpoint_interval=args.checkpoint_interval,
            protocol=args.protocol,
        )
        config.validate()
        run_node_blocking(config)
    except ConfigurationError as exc:
        return _invalid(str(exc))
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.util.errors import ConfigurationError

    if args.mode == "open" and args.rate is None:
        return _invalid("open-loop mode needs --rate")
    kill = args.kill_leader_at
    recover = args.recover_at
    if recover is not None and kill is None:
        return _invalid("--recover-at needs --kill-leader-at")
    if args.shards < 1:
        return _invalid(f"--shards must be >= 1, got {args.shards}")
    if not 0 <= args.kill_shard < args.shards:
        return _invalid(
            f"--kill-shard {args.kill_shard} out of range for "
            f"{args.shards} shards"
        )
    if args.clients is None:
        if args.shards > 1:
            args.clients = 50 if args.runtime == "sim" else 16
        else:
            args.clients = 100 if args.runtime == "sim" else 32
    if args.duration is None:
        args.duration = 300.0 if args.runtime == "sim" else 8.0
    if args.shards > 1:
        if args.protocol != "xpaxos":
            return _invalid("--protocol is only supported with --shards 1")
        return _cmd_loadgen_sharded(args, kill, recover)
    try:
        if args.runtime == "sim":
            from repro.service.loadgen import run_sim_load

            report = run_sim_load(
                n=args.n,
                f=args.f,
                clients=args.clients,
                duration=args.duration,
                mode=args.mode,
                rate=args.rate,
                seed=args.seed,
                keys=args.keys,
                zipf_s=args.zipf,
                kill_leader_at=kill,
                recover_at=recover,
                protocol=args.protocol,
            )
            report.pop("world", None)
        else:
            from repro.service.live import run_live_load_blocking

            report = run_live_load_blocking(
                n=args.n,
                f=args.f,
                clients=args.clients,
                duration=args.duration,
                mode=args.mode,
                rate=args.rate,
                seed=args.seed,
                keys=args.keys,
                zipf_s=args.zipf,
                kill_leader_at=kill,
                recover_at=recover,
                protocol=args.protocol,
                run_dir=args.run_dir,
            )
    except ConfigurationError as exc:
        return _invalid(str(exc))

    if args.json:
        print(json.dumps(report, indent=2))
    else:
        unit = "s" if args.runtime == "live" else "sim-t"
        table = Table(
            ["phase", "completed", f"throughput (req/{unit})",
             "latency p50", "latency p99"],
            title=(
                f"KV service load — {args.runtime}, {args.protocol}, "
                f"n={args.n}, f={args.f}, {args.clients} clients, "
                f"{args.mode}-loop"
            ),
        )
        for name, phase in report["phases"].items():
            if name == "view_change":
                continue
            table.add_row(
                name, phase["completed"], phase["throughput"],
                phase["latency_p50"], phase["latency_p99"],
            )
        print(table.render())
        view_change = report["phases"].get("view_change")
        if view_change is not None:
            print(
                f"view-change outage: {view_change['outage']} "
                f"(new view learned by {view_change['new_view_learned_by']} clients)"
            )
        print(
            f"offered={report['offered']} completed={report['completed']} "
            f"retries={report['retries']} at_most_once={report['at_most_once']} "
            f"digests_agree={report['digests_agree']}"
        )
    healthy = bool(report["at_most_once"]) and bool(report["digests_agree"])
    return 0 if healthy else 1


def _cmd_loadgen_sharded(args: argparse.Namespace, kill, recover) -> int:
    """``loadgen --shards M``: the deployment-level sharded drivers."""
    from repro.util.errors import ConfigurationError

    try:
        if args.runtime == "sim":
            from repro.shard.sim import run_sim_shard_load

            report = run_sim_shard_load(
                shards=args.shards,
                n=args.n,
                f=args.f,
                clients=args.clients,
                duration=args.duration,
                mode=args.mode,
                rate=args.rate,
                seed=args.seed,
                keys=args.keys,
                zipf_s=args.zipf,
                vnodes=args.vnodes,
                kill_shard_leader_at=kill,
                kill_shard=args.kill_shard,
                recover_at=recover,
            )
            report.pop("worlds", None)
        else:
            from repro.shard.live import run_live_shard_load_blocking

            report = run_live_shard_load_blocking(
                shards=args.shards,
                n=args.n,
                f=args.f,
                clients=args.clients,
                duration=args.duration,
                mode=args.mode,
                rate=args.rate,
                seed=args.seed,
                keys=args.keys,
                zipf_s=args.zipf,
                vnodes=args.vnodes,
                kill_shard_leader_at=kill,
                kill_shard=args.kill_shard,
                recover_at=recover,
                run_dir=args.run_dir,
            )
    except ConfigurationError as exc:
        return _invalid(str(exc))

    if args.json:
        print(json.dumps(report, indent=2))
    else:
        unit = "s" if args.runtime == "live" else "sim-t"
        table = Table(
            ["shard", "phase", "completed", f"throughput (req/{unit})",
             "latency p50", "latency p99"],
            title=(
                f"Sharded KV load — {args.runtime}, {args.shards} shards x "
                f"(n={args.n}, f={args.f}), {args.clients} clients/shard, "
                f"{args.mode}-loop"
            ),
        )
        blocks = [("all", report["aggregate"])] + [
            (str(s), block["phases"])
            for s, block in sorted(report["per_shard"].items())
        ]
        for shard_label, phases in blocks:
            for name, phase in phases.items():
                if name == "view_change":
                    continue
                table.add_row(
                    shard_label, name, phase["completed"], phase["throughput"],
                    phase["latency_p50"], phase["latency_p99"],
                )
        print(table.render())
        if report["kill"] is not None:
            view_change = report["kill"].get("view_change") or {}
            print(
                f"shard {report['kill']['shard']} leader killed at "
                f"{report['kill']['at']}: outage={view_change.get('outage')}"
            )
        print(
            f"offered={report['offered']} completed={report['completed']} "
            f"retries={report['retries']} at_most_once={report['at_most_once']} "
            f"digests_agree={report['digests_agree']}"
        )
    healthy = bool(report["at_most_once"]) and bool(report["digests_agree"])
    return 0 if healthy else 1


def _emit_snapshot(snapshot: dict, render: str, out: Optional[str]) -> int:
    """Render a metrics snapshot in the requested format, to stdout or file."""
    from repro.obs.registry import render_prometheus, render_table

    if render == "json":
        text = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    elif render == "prom":
        text = render_prometheus(snapshot)
    else:
        text = render_table(snapshot)
    if not text.endswith("\n"):
        text += "\n"
    if out is not None:
        with open(out, "w") as handle:
            handle.write(text)
        print(f"wrote {out}")
    else:
        sys.stdout.write(text)
    return 0


def _load_snapshot(path: str) -> dict:
    from repro.obs.registry import SNAPSHOT_SCHEMA
    from repro.util.errors import ConfigurationError

    try:
        with open(path) as handle:
            snapshot = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read snapshot {path}: {exc}") from None
    if not isinstance(snapshot, dict) or snapshot.get("schema") != SNAPSHOT_SCHEMA:
        raise ConfigurationError(
            f"{path} is not a {SNAPSHOT_SCHEMA} snapshot "
            "(produce one with `repro metrics sim --render json`)"
        )
    return snapshot


def _cmd_metrics_sim(args: argparse.Namespace) -> int:
    from repro.net.cluster import parse_schedule
    from repro.sim.worlds import build_qs_world
    from repro.util.errors import ConfigurationError

    try:
        kills = parse_schedule(args.kill, "kill")
        recovers = parse_schedule(args.recover, "recover")
        sim, _modules = build_qs_world(
            args.n, args.f, seed=args.seed, follower_mode=args.follower_mode
        )
    except ConfigurationError as exc:
        return _invalid(str(exc))
    for pid, t in kills:
        sim.at(t, sim.host(pid).crash)
    for pid, t in recovers:
        sim.at(t, sim.host(pid).recover)
    sim.run_until(args.duration)
    return _emit_snapshot(sim.obs.snapshot(), args.render, args.out)


def _cmd_metrics_net(args: argparse.Namespace) -> int:
    from repro.net.cluster import ClusterConfig, parse_schedule, run_cluster
    from repro.util.errors import ConfigurationError

    try:
        config = ClusterConfig(
            n=args.n,
            f=args.f,
            duration=args.duration,
            kills=parse_schedule(args.kill, "kill"),
            recovers=parse_schedule(args.recover, "recover"),
            follower_mode=args.follower_mode,
            heartbeat_period=args.heartbeat,
            base_timeout=args.timeout,
            run_dir=args.run_dir,
            wire_version=args.wire_version,
            uvloop=args.uvloop,
        )
        config.validate()
    except ConfigurationError as exc:
        return _invalid(str(exc))
    result = run_cluster(config)
    merged = result.merged_metrics()
    if merged is None:
        print("error: no node emitted a metrics snapshot", file=sys.stderr)
        return 1
    return _emit_snapshot(merged, args.render, args.out)


def _load_merged(paths) -> dict:
    """Load one or more snapshot files; merge when more than one.

    Merging uses :func:`~repro.obs.registry.merge_snapshots` — the same
    rollup the sharded drivers apply across shard clusters — so
    ``metrics render shard_0.json shard_1.json`` shows deployment totals.
    """
    from repro.obs.registry import merge_snapshots

    snapshots = [_load_snapshot(path) for path in paths]
    return snapshots[0] if len(snapshots) == 1 else merge_snapshots(snapshots)


def _cmd_metrics_render(args: argparse.Namespace) -> int:
    from repro.util.errors import ConfigurationError

    try:
        snapshot = _load_merged(args.snapshots)
    except ConfigurationError as exc:
        return _invalid(str(exc))
    return _emit_snapshot(snapshot, args.render, args.out)


def _cmd_metrics_diff(args: argparse.Namespace) -> int:
    from repro.obs.registry import diff_snapshots
    from repro.util.errors import ConfigurationError

    try:
        before = _load_merged(args.before.split(","))
        after = _load_merged(args.after.split(","))
    except ConfigurationError as exc:
        return _invalid(str(exc))
    return _emit_snapshot(diff_snapshots(before, after), args.render, args.out)


def _cmd_adversary_attack(args: argparse.Namespace) -> int:
    invalid = _require_f(args.f)
    if invalid is not None:
        return invalid
    from repro.adversary.search import STRATEGY_FACTORIES, run_attack_case
    from repro.util.errors import ConfigurationError

    if args.strategy not in STRATEGY_FACTORIES:
        return _invalid(
            f"unknown strategy {args.strategy!r}; "
            f"known: {', '.join(sorted(STRATEGY_FACTORIES))}"
        )
    n = args.n if args.n is not None else 2 * args.f + 2
    try:
        params = json.loads(args.params) if args.params else None
    except json.JSONDecodeError as exc:
        return _invalid(f"--params is not valid JSON: {exc}")
    try:
        result = run_attack_case(
            seed=args.seed, n=n, f=args.f, strategy=args.strategy,
            params=params, jitter=args.jitter,
        )
    except (ConfigurationError, TypeError) as exc:
        return _invalid(f"cannot build strategy {args.strategy!r}: {exc}")
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    table = Table(
        ["metric", "value"],
        title=f"Adversary attack — {args.strategy}, n={n}, f={args.f}, "
              f"seed={args.seed}",
    )
    table.add_row("proposed quorums (worst epoch)", int(result["proposed_quorums"]))
    table.add_row("Thm 4 count C(f+2,2)", thm4_quorum_count(args.f))
    table.add_row("quorum changes (worst epoch)", int(result["max_changes_per_epoch"]))
    table.add_row("Thm 3 bound f(f+1)", thm3_upper_bound(args.f))
    table.add_row("max epoch", int(result["max_epoch"]))
    table.add_row("adversary actions", int(result["actions"]))
    table.add_row("strategy finished", bool(result["done"]))
    table.add_row("agreement", bool(result["agree"]))
    print(table.render())
    return 0 if result["agree"] else 1


def _cmd_adversary_search(args: argparse.Namespace) -> int:
    if args.budget < 1:
        return _invalid(f"--budget must be >= 1, got {args.budget}")
    if args.rounds < 1:
        return _invalid(f"--rounds must be >= 1, got {args.rounds}")
    if args.jobs < 1:
        return _invalid(f"--jobs must be >= 1, got {args.jobs}")
    try:
        f_values = [int(chunk) for chunk in args.f_values.split(",") if chunk]
        if not f_values or any(f < 1 for f in f_values):
            raise ValueError
    except ValueError:
        return _invalid("--f-values must be comma-separated ints >= 1, "
                        "e.g. '1,2,3'")
    import time

    from repro.adversary.search import chase_bound
    from repro.analysis.cache import ResultCache

    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    started = time.perf_counter()
    report = chase_bound(
        f_values, seed=args.seed, budget=args.budget, rounds=args.rounds,
        jobs=args.jobs, cache=cache,
    )
    wall = time.perf_counter() - started
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    table = Table(
        ["f", "n", "best attack", "proposed quorums", "Thm 4 C(f+2,2)",
         "canonical exact", "Thm 3 ok", "trials (cached)"],
        title=(
            f"Lower-bound chase — seed={args.seed}, budget={args.budget}, "
            f"rounds={args.rounds}, jobs={args.jobs}"
        ),
    )
    all_met = True
    for entry in report["entries"]:
        all_met = all_met and entry["bound_met"] and entry["canonical_exact"]
        table.add_row(
            entry["f"], entry["n"], entry["best"]["strategy"],
            int(entry["best"]["proposed_quorums"]), entry["thm4_bound"],
            entry["canonical_exact"], entry["thm3_ok"],
            f"{len(entry['trials'])} ({entry['cached_trials']})",
        )
    print(table.render())
    line = f"wall: {wall:.3f}s"
    if cache is not None:
        stats = cache.stats
        line += f", cache hits={stats.hits} misses={stats.misses}"
    print(line)
    return 0 if all_met else 1


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Quorum Selection for Byzantine Fault "
                    "Tolerance' (Jehl, ICDCS 2019)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bounds = sub.add_parser("bounds", help="print the paper's closed-form bounds")
    bounds.add_argument("--f-max", type=int, default=6)
    bounds.set_defaults(func=_cmd_bounds)

    thm4 = sub.add_parser("thm4", help="run the Theorem-4 adversary live")
    thm4.add_argument("--f", type=int, default=2)
    thm4.add_argument("--seed", type=int, default=3)
    thm4.set_defaults(func=_cmd_thm4)

    crash = sub.add_parser("crash-compare",
                           help="leader crash: quorum selection vs enumeration")
    crash.add_argument("--f", type=int, default=2)
    crash.add_argument("--seed", type=int, default=9)
    crash.set_defaults(func=_cmd_crash_compare)

    savings = sub.add_parser("savings", help="message-savings table (E7)")
    savings.add_argument("--f-max", type=int, default=3)
    savings.set_defaults(func=_cmd_savings)

    worst = sub.add_parser("worst-case",
                           help="per-epoch worst case ('simulations suggest')")
    worst.add_argument("--f", type=int, default=2)
    worst.set_defaults(func=_cmd_worst_case)

    sweep = sub.add_parser(
        "sweep",
        help="E17 crash grid via the parallel engine + result cache (E23)",
    )
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default 1 = serial)")
    sweep.add_argument("--cases", default="5:2,10:3,15:4",
                       help="comma-separated n:f grid points")
    sweep.add_argument("--seeds", default="3,7,11",
                       help="comma-separated seeds per point")
    sweep.add_argument("--no-cache", action="store_true",
                       help="always simulate; skip the on-disk cache")
    sweep.add_argument("--cache-dir", default=".benchmarks/cache",
                       help="result cache directory (default .benchmarks/cache)")
    sweep.set_defaults(func=_cmd_sweep)

    cluster = sub.add_parser(
        "cluster",
        help="live loopback cluster: one OS process per replica over TCP",
    )
    cluster.add_argument("--n", type=int, default=7, help="replicas (default 7)")
    cluster.add_argument("--f", type=int, default=2, help="fault bound (default 2)")
    cluster.add_argument("--duration", type=float, default=10.0,
                         help="run length in wall seconds (default 10)")
    cluster.add_argument("--kill", action="append", default=[], metavar="PID@T",
                         help="crash PID at T seconds after start (repeatable)")
    cluster.add_argument("--recover", action="append", default=[], metavar="PID@T",
                         help="recover PID at T seconds after start (repeatable)")
    cluster.add_argument("--kill-mode", choices=("host", "process"), default="host",
                         help="host = silent crash with state (recoverable); "
                              "process = SIGKILL the replica")
    cluster.add_argument("--follower-mode", action="store_true",
                         help="run Follower Selection instead of Quorum Selection")
    cluster.add_argument("--heartbeat", type=float, default=0.3,
                         help="heartbeat period in seconds (default 0.3)")
    cluster.add_argument("--timeout", type=float, default=2.0,
                         help="failure-detector base timeout in seconds (default 2)")
    cluster.add_argument("--anti-entropy", type=float, default=None,
                         help="periodic matrix sync period (default off)")
    cluster.add_argument("--run-dir", default=None,
                         help="directory for per-node JSONL event streams")
    cluster.add_argument("--wire-version", type=int, choices=(1, 2), default=None,
                         help="wire codec every node offers (default: V2, "
                              "or REPRO_WIRE_VERSION)")
    cluster.add_argument("--uvloop", action="store_true",
                         help="run nodes under uvloop when installed "
                              "(silent fallback otherwise)")
    cluster.add_argument("--json", action="store_true",
                         help="print the machine-readable summary instead of a table")
    cluster.set_defaults(func=_cmd_cluster)

    node = sub.add_parser(
        "node",
        help="one live replica (spawned by `cluster`; usable across machines)",
    )
    node.add_argument("--pid", type=int, required=True)
    node.add_argument("--n", type=int, required=True)
    node.add_argument("--f", type=int, required=True)
    node.add_argument("--port", type=int, default=0,
                      help="listen port (default 0 = ephemeral)")
    node.add_argument("--peers", default="-",
                      help="'-' reads a JSON peer map from stdin (rendezvous); "
                           "or '1=host:port,2=host:port,...'")
    node.add_argument("--duration", type=float, default=10.0)
    node.add_argument("--heartbeat", type=float, default=0.3)
    node.add_argument("--timeout", type=float, default=2.0)
    node.add_argument("--queue-capacity", type=int, default=1024)
    node.add_argument("--anti-entropy", type=float, default=None)
    node.add_argument("--follower-mode", action="store_true")
    node.add_argument("--kill-at", type=float, action="append", default=[],
                      metavar="T", help="crash own host T seconds after ready")
    node.add_argument("--recover-at", type=float, action="append", default=[],
                      metavar="T", help="recover own host T seconds after ready")
    node.add_argument("--metrics-prom", default=None, metavar="PATH",
                      help="write final metrics as Prometheus text to PATH")
    node.add_argument("--wire-version", type=int, choices=(1, 2), default=None,
                      help="wire codec this node offers/accepts (default: V2, "
                           "or REPRO_WIRE_VERSION)")
    node.add_argument("--uvloop", action="store_true",
                      help="install uvloop before running (no-op if missing)")
    node.add_argument("--service", choices=("kv",), default=None,
                      help="run a replicated service on top of the QS stack")
    node.add_argument("--service-clients", type=int, default=0,
                      help="logical client pids covered by the key registry")
    node.add_argument("--batch-size", type=int, default=8,
                      help="service consensus batch size (default 8)")
    node.add_argument("--batch-window", type=float, default=0.002,
                      help="service consensus batch window seconds (default 0.002)")
    node.add_argument("--checkpoint-interval", type=int, default=128,
                      help="service checkpoint every N slots (default 128)")
    node.add_argument("--protocol", choices=("xpaxos", "ibft"), default="xpaxos",
                      help="protocol backend executing the service (default xpaxos)")
    node.set_defaults(func=_cmd_node)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive the replicated KV service under load (sim or live TCP)",
    )
    loadgen.add_argument("--runtime", choices=("sim", "live"), default="sim",
                         help="deterministic sim or live loopback cluster")
    loadgen.add_argument("--protocol", choices=("xpaxos", "ibft"), default="xpaxos",
                         help="protocol backend executing the service "
                              "(default xpaxos; single-deployment runs only)")
    loadgen.add_argument("--n", type=int, default=4, help="replicas (default 4)")
    loadgen.add_argument("--f", type=int, default=1, help="fault bound (default 1)")
    loadgen.add_argument("--clients", type=int, default=None,
                         help="logical clients (default: 100 sim, 32 live)")
    loadgen.add_argument("--duration", type=float, default=None,
                         help="load window (default: 300 sim-t, 8 s live)")
    loadgen.add_argument("--mode", choices=("closed", "open"), default="closed",
                         help="closed-loop (one outstanding/client) or "
                              "open-loop fixed-rate arrivals")
    loadgen.add_argument("--rate", type=float, default=None,
                         help="open-loop arrival rate (req per time unit)")
    loadgen.add_argument("--seed", type=int, default=3)
    loadgen.add_argument("--keys", type=int, default=1000,
                         help="key-space size (default 1000)")
    loadgen.add_argument("--zipf", type=float, default=1.1,
                         help="zipf skew for key choice (default 1.1)")
    loadgen.add_argument("--shards", type=int, default=1,
                         help="independent shard clusters behind a "
                              "consistent-hash router (default 1)")
    loadgen.add_argument("--vnodes", type=int, default=128,
                         help="virtual nodes per shard on the hash ring "
                              "(default 128; --shards > 1 only)")
    loadgen.add_argument("--kill-leader-at", type=float, default=None,
                         metavar="T", help="crash the initial leader at T "
                              "(with --shards: the leader of --kill-shard)")
    loadgen.add_argument("--kill-shard", type=int, default=0,
                         help="which shard's leader --kill-leader-at crashes "
                              "(default 0)")
    loadgen.add_argument("--recover-at", type=float, default=None,
                         metavar="T", help="recover the killed leader at T")
    loadgen.add_argument("--run-dir", default=None,
                         help="live only: per-node JSONL event streams")
    loadgen.add_argument("--json", action="store_true",
                         help="print the full machine-readable report")
    loadgen.set_defaults(func=_cmd_loadgen)

    metrics = sub.add_parser(
        "metrics",
        help="snapshot/diff/render the observability registry (sim or live)",
    )
    metrics_sub = metrics.add_subparsers(dest="mode", required=True)

    msim = metrics_sub.add_parser(
        "sim", help="run a deterministic simulation and print its metrics"
    )
    msim.add_argument("--n", type=int, default=5)
    msim.add_argument("--f", type=int, default=2)
    msim.add_argument("--seed", type=int, default=3)
    msim.add_argument("--duration", type=float, default=60.0,
                      help="simulated seconds to run (default 60)")
    msim.add_argument("--kill", action="append", default=[], metavar="PID@T",
                      help="crash PID at sim time T (repeatable)")
    msim.add_argument("--recover", action="append", default=[], metavar="PID@T",
                      help="recover PID at sim time T (repeatable)")
    msim.add_argument("--follower-mode", action="store_true")
    msim.add_argument("--render", choices=("table", "prom", "json"),
                      default="table")
    msim.add_argument("--out", default=None, metavar="FILE",
                      help="write to FILE instead of stdout")
    msim.set_defaults(func=_cmd_metrics_sim)

    mnet = metrics_sub.add_parser(
        "net", help="run a live loopback cluster and print its merged metrics"
    )
    mnet.add_argument("--n", type=int, default=5)
    mnet.add_argument("--f", type=int, default=2)
    mnet.add_argument("--duration", type=float, default=8.0,
                      help="run length in wall seconds (default 8)")
    mnet.add_argument("--kill", action="append", default=[], metavar="PID@T")
    mnet.add_argument("--recover", action="append", default=[], metavar="PID@T")
    mnet.add_argument("--heartbeat", type=float, default=0.3)
    mnet.add_argument("--timeout", type=float, default=2.0)
    mnet.add_argument("--follower-mode", action="store_true")
    mnet.add_argument("--run-dir", default=None,
                      help="also write per-node JSONL + .prom files here")
    mnet.add_argument("--wire-version", type=int, choices=(1, 2), default=None,
                      help="wire codec every node offers (default: V2)")
    mnet.add_argument("--uvloop", action="store_true",
                      help="run nodes under uvloop when installed")
    mnet.add_argument("--render", choices=("table", "prom", "json"),
                      default="table")
    mnet.add_argument("--out", default=None, metavar="FILE")
    mnet.set_defaults(func=_cmd_metrics_net)

    mrender = metrics_sub.add_parser(
        "render", help="re-render a saved snapshot JSON file"
    )
    mrender.add_argument("snapshots", nargs="+", metavar="SNAPSHOT",
                         help="snapshot JSON file(s) (repro.metrics/1); "
                              "several are merged into one rollup")
    mrender.add_argument("--render", choices=("table", "prom", "json"),
                         default="table")
    mrender.add_argument("--out", default=None, metavar="FILE")
    mrender.set_defaults(func=_cmd_metrics_render)

    mdiff = metrics_sub.add_parser(
        "diff", help="delta between two saved snapshots (after - before)"
    )
    mdiff.add_argument("before", help="earlier snapshot JSON file "
                       "(comma-separate several to merge before diffing)")
    mdiff.add_argument("after", help="later snapshot JSON file "
                       "(comma-separate several to merge before diffing)")
    mdiff.add_argument("--render", choices=("table", "prom", "json"),
                       default="table")
    mdiff.add_argument("--out", default=None, metavar="FILE")
    mdiff.set_defaults(func=_cmd_metrics_diff)

    adversary = sub.add_parser(
        "adversary",
        help="programmable Byzantine adversary: one attack or the "
             "randomized lower-bound chase (E28)",
    )
    adversary_sub = adversary.add_subparsers(dest="mode", required=True)

    attack = adversary_sub.add_parser(
        "attack", help="run one engine strategy against a fresh world"
    )
    attack.add_argument("--f", type=int, default=2)
    attack.add_argument("--n", type=int, default=None,
                        help="world size (default 2f+2)")
    attack.add_argument("--seed", type=int, default=3)
    attack.add_argument("--strategy", default="lower_bound",
                        help="lower_bound, collusion, equivocation, "
                             "forged_rows, selective_omission, adaptive_timing")
    attack.add_argument("--params", default=None, metavar="JSON",
                        help='strategy kwargs, e.g. \'{"rounds": 5}\'')
    attack.add_argument("--jitter", type=float, default=0.0,
                        help="adversarial delivery jitter amplitude (default 0)")
    attack.add_argument("--json", action="store_true",
                        help="print the raw metric dict")
    attack.set_defaults(func=_cmd_adversary_attack)

    search = adversary_sub.add_parser(
        "search",
        help="seeded randomized attack search chasing Thm 4's C(f+2,2)",
    )
    search.add_argument("--f-values", default="1,2,3",
                        help="comma-separated f values (default 1,2,3)")
    search.add_argument("--seed", type=int, default=3)
    search.add_argument("--budget", type=int, default=6,
                        help="trials per round per f (default 6)")
    search.add_argument("--rounds", type=int, default=2,
                        help="search rounds: round 0 samples, later rounds "
                             "mutate the elite (default 2)")
    search.add_argument("--jobs", type=int, default=1,
                        help="parallel executor workers (default 1)")
    search.add_argument("--no-cache", action="store_true",
                        help="always simulate; skip the on-disk cache")
    search.add_argument("--cache-dir", default=".benchmarks/cache",
                        help="result cache directory (default .benchmarks/cache)")
    search.add_argument("--json", action="store_true",
                        help="print the full machine-readable report")
    search.set_defaults(func=_cmd_adversary_search)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
