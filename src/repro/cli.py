"""Command-line interface: ``python -m repro <command>``.

Quick entry points into the reproduction without writing a script:

- ``bounds [--f-max N]`` — print every closed-form bound from the paper.
- ``thm4 [--f F]`` — run the Theorem-4 adversary live and report counts.
- ``crash-compare [--f F]`` — leader crash under Quorum Selection vs
  XPaxos enumeration.
- ``savings [--f-max N]`` — the introduction's message-savings table.
- ``worst-case [--f F]`` — exhaustive/greedy per-epoch worst case
  (the "simulations suggest" experiment).
- ``sweep [--jobs N] [--no-cache]`` — the E17 crash grid through the
  parallel execution engine with the on-disk result cache
  (DESIGN.md §5.15).

Each command prints a table built by the same code the benchmarks use.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.bounds import (
    cor10_total_bound,
    enumeration_cycle_length,
    observed_max_changes_claim,
    thm3_upper_bound,
    thm4_quorum_count,
    thm9_per_epoch_bound,
)
from repro.analysis.report import Table


def _cmd_bounds(args: argparse.Namespace) -> int:
    table = Table(
        [
            "f", "Thm 3 f(f+1)", "Thm 4 C(f+2,2)", "changes C(f+2,2)-1",
            "Thm 9 3f+1", "Cor 10 6f+2", "enum cycle C(2f+1,f)",
        ],
        title="Closed-form bounds (per-epoch counts unless noted)",
    )
    for f in range(1, args.f_max + 1):
        table.add_row(
            f, thm3_upper_bound(f), thm4_quorum_count(f),
            observed_max_changes_claim(f), thm9_per_epoch_bound(f),
            cor10_total_bound(f), enumeration_cycle_length(2 * f + 1, f),
        )
    print(table.render())
    return 0


def _cmd_thm4(args: argparse.Namespace) -> int:
    from repro.analysis.runner import run_thm4_adversary

    f = args.f
    result = run_thm4_adversary(2 * f + 2, f, seed=args.seed)
    table = Table(["metric", "value"], title=f"Theorem 4 adversary, f={f}")
    table.add_row("suspicions fired", result.suspicions_fired)
    table.add_row("quorum changes", result.max_changes_per_epoch)
    table.add_row("claimed maximum C(f+2,2)-1", observed_max_changes_claim(f))
    table.add_row("Theorem 3 bound f(f+1)", thm3_upper_bound(f))
    table.add_row("final quorum", result.final_quorum)
    table.add_row("agreement / no-suspicion",
                  f"{result.final_quorums_agree} / {result.no_suspicion}")
    print(table.render())
    return 0


def _cmd_crash_compare(args: argparse.Namespace) -> int:
    from repro.analysis.runner import run_xpaxos_crash_comparison

    f = args.f
    comparison = run_xpaxos_crash_comparison(
        n=2 * f + 1, f=f, crash_pids=(1,), seed=args.seed, duration=1500.0
    )
    selection, enumeration = comparison.view_changes()
    sel_done, enum_done = comparison.completed()
    table = Table(
        ["policy", "view changes", "completed requests"],
        title=f"Leader crash at t=30, n={2 * f + 1}, f={f}",
    )
    table.add_row("quorum selection", selection, sel_done)
    table.add_row("enumeration (XPaxos)", enumeration, enum_done)
    print(table.render())
    return 0


def _cmd_savings(args: argparse.Namespace) -> int:
    from repro.analysis.runner import measure_message_savings

    table = Table(
        ["f", "family", "msgs/req full", "msgs/req active", "per-broadcast drop"],
        title="Inter-replica message savings (introduction claim)",
    )
    for f in range(1, args.f_max + 1):
        for family, flag in (("3f+1", False), ("2f+1", True)):
            s = measure_message_savings(f, two_f_plus_one=flag)
            table.add_row(f, family, s.full_messages_per_request,
                          s.active_messages_per_request, s.per_broadcast_reduction)
    print(table.render())
    return 0


def _cmd_worst_case(args: argparse.Namespace) -> int:
    from repro.analysis.abstract import exhaustive_max_changes, greedy_max_changes

    f = args.f
    n = 2 * f + 2
    table = Table(["search", "max changes/epoch", "claim"], title=f"Worst case, f={f}")
    if f <= 2:
        table.add_row("exhaustive (all faulty sets)",
                      exhaustive_max_changes(n, f), observed_max_changes_claim(f))
    elif f == 3:
        table.add_row("exhaustive (F={1..f})",
                      exhaustive_max_changes(n, f, faulty=set(range(1, f + 1))),
                      observed_max_changes_claim(f))
    table.add_row("greedy", greedy_max_changes(n, f), observed_max_changes_claim(f))
    print(table.render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import time

    from repro.analysis.cache import ResultCache
    from repro.analysis.sweeps import PointError, grid_sweep
    from repro.analysis.tasks import e17_crash_case
    from repro.util.errors import ConfigurationError

    try:
        cases = [
            tuple(int(part) for part in chunk.split(":"))
            for chunk in args.cases.split(",") if chunk
        ]
        seeds = [int(chunk) for chunk in args.seeds.split(",") if chunk]
        if any(len(case) != 2 for case in cases) or not cases or not seeds:
            raise ValueError
    except ValueError:
        print("--cases must look like '5:2,10:3' and --seeds like '3,7,11'",
              file=sys.stderr)
        return 2

    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    grid = [dict(n=n, f=f) for n, f in cases]
    started = time.perf_counter()
    try:
        results = grid_sweep(
            e17_crash_case, grid, seeds,
            jobs=args.jobs, cache=cache, on_error="record",
        )
    except ConfigurationError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    wall = time.perf_counter() - started

    table = Table(
        ["n", "f", "quorum changes", "converged at (sim t)",
         "UPDATE msgs (mean)", "agree"],
        title=(
            f"E17 crash grid — jobs={args.jobs}, seeds={seeds}, "
            f"cache={'off' if cache is None else cache.root}"
        ),
    )
    failed = 0
    for point, summaries in results:
        if isinstance(summaries, PointError):
            failed += 1
            table.add_row(point["n"], point["f"], "ERROR", "-", "-",
                          summaries.describe())
            continue
        table.add_row(
            point["n"], point["f"],
            round(summaries["changes"].mean, 2),
            round(summaries["converged_at"].mean, 2),
            round(summaries["updates"].mean, 1),
            summaries["agree"].minimum == 1.0,
        )
    print(table.render())
    line = f"wall: {wall:.3f}s, jobs={args.jobs}"
    if cache is not None:
        stats = cache.stats
        line += (
            f", cache hits={stats.hits} misses={stats.misses} "
            f"(hit rate {stats.hit_rate:.0%})"
        )
    print(line)
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Quorum Selection for Byzantine Fault "
                    "Tolerance' (Jehl, ICDCS 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bounds = sub.add_parser("bounds", help="print the paper's closed-form bounds")
    bounds.add_argument("--f-max", type=int, default=6)
    bounds.set_defaults(func=_cmd_bounds)

    thm4 = sub.add_parser("thm4", help="run the Theorem-4 adversary live")
    thm4.add_argument("--f", type=int, default=2)
    thm4.add_argument("--seed", type=int, default=3)
    thm4.set_defaults(func=_cmd_thm4)

    crash = sub.add_parser("crash-compare",
                           help="leader crash: quorum selection vs enumeration")
    crash.add_argument("--f", type=int, default=2)
    crash.add_argument("--seed", type=int, default=9)
    crash.set_defaults(func=_cmd_crash_compare)

    savings = sub.add_parser("savings", help="message-savings table (E7)")
    savings.add_argument("--f-max", type=int, default=3)
    savings.set_defaults(func=_cmd_savings)

    worst = sub.add_parser("worst-case",
                           help="per-epoch worst case ('simulations suggest')")
    worst.add_argument("--f", type=int, default=2)
    worst.set_defaults(func=_cmd_worst_case)

    sweep = sub.add_parser(
        "sweep",
        help="E17 crash grid via the parallel engine + result cache (E23)",
    )
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default 1 = serial)")
    sweep.add_argument("--cases", default="5:2,10:3,15:4",
                       help="comma-separated n:f grid points")
    sweep.add_argument("--seeds", default="3,7,11",
                       help="comma-separated seeds per point")
    sweep.add_argument("--no-cache", action="store_true",
                       help="always simulate; skip the on-disk cache")
    sweep.add_argument("--cache-dir", default=".benchmarks/cache",
                       help="result cache directory (default .benchmarks/cache)")
    sweep.set_defaults(func=_cmd_sweep)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
