"""The paper's primary contribution: Quorum Selection and Follower Selection.

- :class:`SuspicionMatrix` — the epoch-stamped ``suspected[n][n]`` matrix,
  an eventually consistent (pointwise-max) replicated data structure
  (Section VI-A): rows are per-suspector vectors, merged by max, so
  correct processes converge regardless of delivery order or faulty
  equivocation.
- :class:`QuorumSelectionModule` — Algorithm 1: propagate suspicions as
  signed ``UPDATE`` gossip, build the suspect graph for the current epoch,
  select the lexicographically first independent set of size ``q``, and
  advance the epoch when suspicions are inconsistent (no independent set).
- :class:`FollowerSelectionModule` — Algorithm 2: the ``O(f)`` variant for
  leader-centric applications (``n > 3f``, FIFO links): leaders come from
  maximal line subgraphs (Definition 1), followers from possible followers
  (Definition 2), distributed via signed ``FOLLOWERS`` messages verified
  for well-formedness (Definition 3).
- :mod:`repro.core.spec` — run-level checkers for the module's three
  properties: Termination, No suspicion / No leader suspicion, Agreement.
"""

from repro.core.messages import UpdatePayload, FollowersPayload, KIND_UPDATE, KIND_FOLLOWERS
from repro.core.suspicion_matrix import SuspicionMatrix
from repro.core.events import QuorumEvent
from repro.core.quorum_selection import QuorumSelectionModule
from repro.core.follower_selection import FollowerSelectionModule
from repro.core.chain_selection import ChainSelectionModule
from repro.core.leader_election import LeaderElection, TrustEvent, leaders_agree
from repro.core.spec import (
    termination_holds,
    agreement_holds,
    no_suspicion_holds,
    no_leader_suspicion_holds,
    no_link_suspicion_holds,
    quorums_issued_after,
    quorums_per_epoch,
)

__all__ = [
    "UpdatePayload",
    "FollowersPayload",
    "KIND_UPDATE",
    "KIND_FOLLOWERS",
    "SuspicionMatrix",
    "QuorumEvent",
    "QuorumSelectionModule",
    "FollowerSelectionModule",
    "ChainSelectionModule",
    "LeaderElection",
    "TrustEvent",
    "leaders_agree",
    "termination_holds",
    "agreement_holds",
    "no_suspicion_holds",
    "no_leader_suspicion_holds",
    "no_link_suspicion_holds",
    "quorums_issued_after",
    "quorums_per_epoch",
]
