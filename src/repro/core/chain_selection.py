"""Chain Selection — Quorum Selection for chain-communicating systems.

This module implements the special case the paper's conclusion leaves as
future work: systems like BChain route traffic along a *chain*, so only
consecutive links carry messages and only suspicions on those links
endanger operation.  The specification relaxes accordingly:

- **No link suspicion** — eventually, for every pair of *adjacent* chain
  members, neither suspects the other (suspicions between non-adjacent
  members are tolerated, like follower-follower suspicions in Follower
  Selection).
- Termination and Agreement are unchanged from Section IV-A.

The mechanism reuses Algorithm 1 wholesale — the same suspicion matrix,
gossip, and epoch machinery — and only replaces the selection function:
the output is the lexicographically first *conflict-free chain* (a
``q``-sequence with no suspect edge between neighbours) instead of the
lexicographically first independent set.  Two consequences, both
measured in benchmark E13:

- chains exist whenever independent sets do (sort the set) *and* in many
  denser graphs, so epochs advance less often;
- an adversary inside the chain can only force a change by creating a
  suspicion on one of the ``q - 1`` *current* links, and the
  lexicographic re-selection buries repeat offenders deeper down the
  chain — measured churn sits well below Algorithm 1's
  ``C(f+2,2) - 1``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.quorum_selection import QuorumSelectionModule
from repro.graphs.chain_path import has_chain, lex_first_chain
from repro.sim.process import ProcessHost


class ChainSelectionModule(QuorumSelectionModule):
    """Chain Selection at one process (extension module)."""

    def __init__(self, host: ProcessHost, n: int, f: int, use_fd: bool = True) -> None:
        super().__init__(host, n, f, use_fd=use_fd)
        self.chain: Tuple[int, ...] = tuple(range(1, self.q + 1))

    # -------------------------------------------------- selection override

    def _viable(self, graph) -> bool:
        # Chains exist at least as often as independent sets: epochs
        # advance only when even a chain is impossible.
        return has_chain(graph, self.q)

    def _update_quorum(self) -> None:
        while True:
            graph = self._suspect_graph()
            key = (graph.uid, graph.version, self.epoch, self.q)
            if key == self._memo_key:
                # No edge of this epoch's band changed: the previous chain
                # stands (see QuorumSelectionModule._update_quorum).
                self.searches_memoized += 1
                return
            # Viability and selection share one search: a chain existing is
            # lex_first_chain returning non-None.
            chain = lex_first_chain(graph, self.q)
            if chain is not None:
                break
            self.epoch = self._next_viable_epoch()
            self.host.log.append(self.host.now, self.pid, "qs.epoch", epoch=self.epoch)
            self._remark_and_broadcast()
        self.quorum_searches += 1
        self._memo_key = (graph.uid, graph.version, self.epoch, self.q)
        if chain != self.chain:
            self.chain = chain
            self.qlast = frozenset(chain)
            self._issue(self.qlast, leader=chain[0])
            self.host.log.append(
                self.host.now, self.pid, "cs.chain", chain=chain, epoch=self.epoch
            )

    # ------------------------------------------------------------ diagnostics

    @property
    def head(self) -> Optional[int]:
        return self.chain[0] if self.chain else None

    @property
    def tail(self) -> Optional[int]:
        return self.chain[-1] if self.chain else None
