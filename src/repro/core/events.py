"""Quorum output events — the module's ``<QUORUM, ...>`` interface."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.util.ids import format_pset


@dataclass(frozen=True)
class QuorumEvent:
    """One ``<QUORUM, Q>`` (or ``<QUORUM, l, Q>``) output.

    Attributes:
        time: simulation time of issuance.
        process: the process that issued the event.
        epoch: the issuer's epoch at issuance (Theorem 3/9 accounting).
        quorum: the selected set ``Q`` of size ``q``.
        leader: designated leader for Follower Selection outputs
            (``None`` for plain Quorum Selection).
    """

    time: float
    process: int
    epoch: int
    quorum: FrozenSet[int]
    leader: Optional[int] = None

    def describe(self) -> str:
        head = f"p{self.leader}!" if self.leader is not None else ""
        return (
            f"t={self.time:.3f} p{self.process} epoch={self.epoch} "
            f"quorum={head}{format_pset(self.quorum)}"
        )
