"""Algorithm 2 — Follower Selection for leader-centric systems (Sec. VIII).

Requires ``n > 3f`` and FIFO channels between correct processes.  Shares
Algorithm 1's suspicion propagation (the module subclasses
:class:`QuorumSelectionModule`) but replaces quorum computation:

- If the suspect graph has no independent set of size ``q``: advance the
  epoch, cancel failure-detector expectations, fall back to the default
  leader ``p_1`` and default quorum ``{p_1..p_q}``, and re-stamp
  suspicions (lines 9-16).
- Otherwise compute the maximal line subgraph ``L`` (Definition 1).  If
  its designated leader differs from the current one: remember the new
  leader, mark the quorum unstable, cancel expectations, and either
  *expect* a signed ``FOLLOWERS`` message from the new leader (follower
  side, line 23) or select ``q - 1`` possible followers and broadcast the
  signed ``FOLLOWERS`` message (leader side, lines 25-26).
- A received ``FOLLOWERS`` message from the current leader in the current
  epoch is checked for well-formedness (Definition 3); malformed messages
  and equivocation yield ``DETECTED`` (lines 29-32); the first acceptable
  one commits the quorum, is forwarded, and is announced via
  ``<QUORUM, leader, Q>`` (lines 33-37).
"""

from __future__ import annotations

from typing import Any, FrozenSet, Optional

from repro.core.messages import KIND_FOLLOWERS, FollowersPayload
from repro.core.quorum_selection import QuorumSelectionModule
from repro.crypto.authenticator import SignedMessage
from repro.graphs.independent_set import has_independent_set
from repro.graphs.line_subgraph import (
    LineSubgraph,
    is_line_subgraph,
    leader_of,
    maximal_line_subgraph,
    possible_followers,
)
from repro.sim.process import ProcessHost
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId, default_quorum

FD_GROUP = "follower-selection"


class FollowerSelectionModule(QuorumSelectionModule):
    """Algorithm 2 running at one process."""

    def __init__(
        self,
        host: ProcessHost,
        n: int,
        f: int,
        use_fd: bool = True,
        transport=None,
        anti_entropy_period: Optional[float] = None,
    ) -> None:
        super().__init__(
            host,
            n,
            f,
            use_fd=use_fd,
            transport=transport,
            anti_entropy_period=anti_entropy_period,
        )
        if n <= 3 * f:
            raise ConfigurationError(
                f"Follower Selection assumes |Pi| > 3f; got n={n}, f={f}"
            )
        # --- Algorithm 2 extra state ---
        self.leader: ProcessId = 1
        self.stable = True
        self.line: Optional[LineSubgraph] = None
        # Diagnostics: times a leader could not find q-1 possible followers.
        self.insufficient_followers = 0

    def start(self) -> None:
        super().start()
        self.host.subscribe(KIND_FOLLOWERS, self._on_followers)

    # ----------------------------------------------- Algorithm 2, updateQuorum

    def _update_quorum(self) -> None:
        while True:
            graph = self._suspect_graph()
            key = (graph.uid, graph.version, self.epoch, self.q)
            if key == self._memo_key:
                # Unchanged graph ⇒ same maximal line subgraph ⇒ same
                # leader, which line 18 would ignore anyway — skip the
                # (expensive) line-subgraph recomputation entirely.
                self.searches_memoized += 1
                return
            if has_independent_set(graph, self.q):
                break
            # Lines 9-16: inconsistent suspicions -> next epoch, defaults.
            self._advance_epoch(self._next_viable_epoch())
            self._cancel_expectations()
            self.leader = 1
            self.stable = True
            self.qlast = default_quorum(self.n, self.q)
            self._issue(self.qlast, leader=self.leader)
            # Re-stamping own suspicions may break independence again; the
            # loop then advances further, as the self-UPDATE would in the
            # paper's event-at-a-time formulation.
            self._remark_and_broadcast()
        line = maximal_line_subgraph(graph)
        self.quorum_searches += 1
        self._memo_key = (graph.uid, graph.version, self.epoch, self.q)
        new_leader = leader_of(line)
        assert new_leader is not None  # the search always leaves one uncovered
        self.line = line
        if self.leader == new_leader:
            # Line 18: suspicions that do not change the leader are ignored.
            return
        # Lines 19-26.
        self.stable = False
        self.leader = new_leader
        self._cancel_expectations()
        if self.leader != self.pid:
            self._expect_followers_message()
        else:
            self._broadcast_followers(line)

    # -------------------------------------------------------------- leader side

    def _broadcast_followers(self, line: LineSubgraph) -> None:
        """Lines 25-26: pick ``q - 1`` possible followers, broadcast signed."""
        candidates = sorted(possible_followers(line) - {self.pid})
        if len(candidates) < self.q - 1:
            # Cannot form a well-formed FOLLOWERS message.  Stay silent:
            # followers' expectations will time out, we get suspected, the
            # leader moves on.  Instrumented because under an accurate
            # failure detector this should never happen (Lemma 8).
            self.insufficient_followers += 1
            self.host.log.append(
                self.host.now, self.pid, "fs.insufficient", candidates=len(candidates)
            )
            return
        followers = tuple(candidates[: self.q - 1])
        payload = FollowersPayload(
            followers=followers,
            line_edges=tuple(sorted(line.edges())),
            epoch=self.epoch,
        )
        signed = self.host.authenticator.sign(payload)
        self._broadcast_protocol(KIND_FOLLOWERS, signed)

    # ------------------------------------------------------------ follower side

    def _expect_followers_message(self) -> None:
        """Line 23: expect ``<FOLLOWERS, ..., epoch>`` signed by the leader."""
        if self.host.fd is None:
            return
        expected_leader = self.leader
        expected_epoch = self.epoch

        def match(kind: str, payload: Any) -> bool:
            return (
                kind == KIND_FOLLOWERS
                and isinstance(payload, SignedMessage)
                and payload.signer == expected_leader
                and isinstance(payload.payload, FollowersPayload)
                and payload.payload.epoch == expected_epoch
            )

        self.host.fd.expect(
            source=expected_leader,
            predicate=match,
            group=FD_GROUP,
            label=f"followers<-p{expected_leader}@e{expected_epoch}",
        )

    def _cancel_expectations(self) -> None:
        """Line 11 / line 21: ``<CANCEL>`` scoped to this module's group."""
        if self.host.fd is not None:
            self.host.fd.cancel(group=FD_GROUP)

    # ------------------------------------------------ Algorithm 2, lines 27-37

    def _on_followers(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self.host.authenticator.verify(payload):
            return
        sender = payload.signer
        body = payload.payload
        if not isinstance(body, FollowersPayload):
            return
        # Line 28: only the current leader's message for the current epoch.
        if sender != self.leader or body.epoch != self.epoch:
            return
        if not self._well_formed(body, sender):
            # Line 30: malformed -> proof of leader misbehaviour.
            self._detect(sender, reason="malformed-followers")
            return
        quorum = frozenset(body.followers) | {self.leader}
        if self.stable and quorum != self.qlast:
            # Line 31-32: two different accepted FOLLOWERS in one epoch.
            self._detect(sender, reason="followers-equivocation")
            return
        if not self.stable:
            # Lines 33-37: commit, forward, announce.
            self.stable = True
            self.qlast = quorum
            for dst in range(1, self.n + 1):
                if dst not in (self.pid, src):
                    self._send_protocol(dst, KIND_FOLLOWERS, payload)
            self._issue(quorum, leader=self.leader)

    def _well_formed(self, body: FollowersPayload, sender: ProcessId) -> bool:
        """Definition 3 (a)-(d) against the local suspect graph."""
        followers = body.followers
        # (a) leader not among followers, exactly q - 1 of them, all valid ids.
        if len(set(followers)) != self.q - 1 or sender in followers:
            return False
        if any(not isinstance(p, int) or not 1 <= p <= self.n for p in followers):
            return False
        # (b) the edges form a line subgraph of *my* current suspect graph.
        graph = self._suspect_graph()
        if not is_line_subgraph(body.line_edges, graph):
            return False
        line = LineSubgraph(self.n, body.line_edges)
        # (c) the line subgraph designates the sender as leader.
        if leader_of(line) != sender:
            return False
        # (d) every follower is a possible follower for that line subgraph.
        allowed = possible_followers(line)
        return all(p in allowed for p in followers)

    def _detect(self, culprit: ProcessId, reason: str) -> None:
        self.host.log.append(self.host.now, self.pid, "fs.detected", target=culprit, reason=reason)
        if self.host.fd is not None:
            self.host.fd.detected(culprit)
