"""Leader election on top of Quorum Selection (Section IV-A).

"Given a solution for Quorum Selection it is trivial to elect a leader,
e.g., electing the process with lowest identifier in the quorum."  This
module is that triviality, packaged: it wraps any quorum-selection
variant and emits ``TRUST`` events whenever ``min(quorum)`` changes,
giving an Omega-style eventual leader oracle whose accuracy inherits
Quorum Selection's Agreement and No-suspicion properties.

The module also records the paper's contrast with classic leader
election (Section IV-A): here a *single* suspicion inside the quorum can
demote a leader (the no-suspicion property reacts to one accuser), where
``f + 1`` accusers would be required by vote-based election — the cost
Quorum Selection pays for also policing followers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.quorum_selection import QuorumSelectionModule


@dataclass(frozen=True)
class TrustEvent:
    """``<TRUST, leader>``: the wrapped module's quorum minimum changed."""

    time: float
    process: int
    leader: int
    epoch: int


TrustListener = Callable[[TrustEvent], None]


class LeaderElection:
    """Omega-style leader oracle derived from a quorum-selection module."""

    def __init__(self, module: QuorumSelectionModule) -> None:
        self.module = module
        self.leader: int = min(module.qlast)
        self.trust_events: List[TrustEvent] = []
        self._listeners: List[TrustListener] = []
        module.add_quorum_listener(self._on_quorum)

    def subscribe(self, listener: TrustListener) -> None:
        self._listeners.append(listener)

    def _on_quorum(self, event) -> None:
        leader = min(event.quorum)
        if leader == self.leader:
            return
        self.leader = leader
        trust = TrustEvent(
            time=event.time, process=event.process, leader=leader, epoch=event.epoch
        )
        self.trust_events.append(trust)
        self.module.host.log.append(
            event.time, event.process, "omega.trust", leader=leader
        )
        for listener in self._listeners:
            listener(trust)


def leaders_agree(elections) -> bool:
    """Eventual agreement check: all oracles trust the same process."""
    return len({election.leader for election in elections}) == 1


def last_trust_change(elections) -> float:
    """Stabilization time: the latest TRUST event across the oracles."""
    times = [
        event.time
        for election in elections
        for event in election.trust_events
    ]
    return max(times) if times else 0.0
