"""Wire payloads of the Quorum/Follower Selection protocols."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

KIND_UPDATE = "qs.update"
KIND_FOLLOWERS = "fs.followers"
KIND_DIGEST = "qs.digest"
KIND_ROWS = "qs.rows"


@dataclass(frozen=True)
class UpdatePayload:
    """``<UPDATE, suspected[i]>_sigma_i`` — one process's signed row.

    ``row`` is the 1-based-dense tuple produced by
    :meth:`repro.core.suspicion_matrix.SuspicionMatrix.row` (index 0 is a
    placeholder 0).  The signer of the enclosing
    :class:`~repro.crypto.authenticator.SignedMessage` identifies the row
    owner; receivers merge into that row only, so a Byzantine process can
    lie about *its own* suspicions but never write another's row.
    """

    row: Tuple[int, ...]

    def canonical(self):
        return ("update", self.row)


@dataclass(frozen=True)
class FollowersPayload:
    """``<FOLLOWERS, Fw, L, e>_sigma_j`` — a leader's follower choice.

    ``followers`` is the sorted tuple ``Fw`` (``q - 1`` ids, leader
    excluded per Definition 3a); ``line_edges`` is the edge set of the line
    subgraph ``L`` the leader derived its leadership from (receivers check
    Definition 3b-d against it); ``epoch`` binds the message to one epoch.
    """

    followers: Tuple[int, ...]
    line_edges: Tuple[Tuple[int, int], ...]
    epoch: int

    def canonical(self):
        return ("followers", self.followers, self.line_edges, self.epoch)


@dataclass(frozen=True)
class MatrixDigestPayload:
    """``<DIGEST, e, d_0..d_n>`` — anti-entropy summary of the local matrix.

    ``row_digests[l]`` is the digest of row ``l`` of the sender's suspicion
    matrix (index 0 is the digest of the unused placeholder row).  The
    message is deliberately unsigned: a forged digest can at worst trigger
    a redundant row shipment, and max-merge makes redundancy harmless —
    whereas signing every periodic probe would be pure overhead.
    """

    epoch: int
    row_digests: Tuple[str, ...]

    def canonical(self):
        return ("digest", self.epoch, self.row_digests)


@dataclass(frozen=True)
class RowCertsPayload:
    """``<ROWS, certs>`` — anti-entropy response carrying signed rows.

    Third parties cannot re-sign another process's row, so the only way to
    ship merged matrix state is to relay the original signed ``UPDATE``
    messages ("row certificates").  Each cert is verified independently by
    the receiver; the envelope itself needs no signature.
    """

    certs: Tuple[Any, ...]

    def canonical(self):
        return ("rows", tuple(c.canonical() if hasattr(c, "canonical") else c for c in self.certs))
