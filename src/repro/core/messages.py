"""Wire payloads of the Quorum/Follower Selection protocols."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

KIND_UPDATE = "qs.update"
KIND_FOLLOWERS = "fs.followers"


@dataclass(frozen=True)
class UpdatePayload:
    """``<UPDATE, suspected[i]>_sigma_i`` — one process's signed row.

    ``row`` is the 1-based-dense tuple produced by
    :meth:`repro.core.suspicion_matrix.SuspicionMatrix.row` (index 0 is a
    placeholder 0).  The signer of the enclosing
    :class:`~repro.crypto.authenticator.SignedMessage` identifies the row
    owner; receivers merge into that row only, so a Byzantine process can
    lie about *its own* suspicions but never write another's row.
    """

    row: Tuple[int, ...]

    def canonical(self):
        return ("update", self.row)


@dataclass(frozen=True)
class FollowersPayload:
    """``<FOLLOWERS, Fw, L, e>_sigma_j`` — a leader's follower choice.

    ``followers`` is the sorted tuple ``Fw`` (``q - 1`` ids, leader
    excluded per Definition 3a); ``line_edges`` is the edge set of the line
    subgraph ``L`` the leader derived its leadership from (receivers check
    Definition 3b-d against it); ``epoch`` binds the message to one epoch.
    """

    followers: Tuple[int, ...]
    line_edges: Tuple[Tuple[int, int], ...]
    epoch: int

    def canonical(self):
        return ("followers", self.followers, self.line_edges, self.epoch)
