"""Read-only observation surface over a running Quorum Selection world.

The programmable adversary (:mod:`repro.adversary`) is *omniscient but
not omnipotent*: the theorems quantify over adversaries that see the
whole system state — every process's epoch, quorum, suspicion matrix and
failure-detector expectations — yet can only act through the faults the
model allows (false-but-signed suspicions, per-link omission and timing
on faulty processes' traffic, scheduling).  This module is the "see"
half of that contract: immutable snapshots of protocol state, built by
*reading* module fields only, so taking an observation can never perturb
the run (no RNG draws, no writes, no messages).

Snapshots are plain frozen dataclasses rather than live references so a
strategy cannot accidentally mutate protocol state through its view, and
so a recorded observation stays meaningful after the world moves on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

__all__ = ["ProcessView", "WorldView", "observe_process", "observe_world"]


@dataclass(frozen=True)
class ProcessView:
    """One process's protocol state at observation time.

    ``matrix_entries`` is the process's *local* suspicion matrix as
    nonzero ``(suspector, suspectee, stamp)`` triples — each process has
    its own (eventually consistent) copy, so views of two processes may
    legitimately differ mid-gossip.  ``fd_suspected`` and
    ``fd_expectations_pending`` come from the host's failure detector
    when one is mounted (``frozenset()`` / ``0`` otherwise).
    """

    pid: int
    epoch: int
    quorum: FrozenSet[int]
    suspecting: FrozenSet[int]
    fd_suspected: FrozenSet[int]
    fd_expectations_pending: int
    matrix_entries: Tuple[Tuple[int, int, int], ...]

    def suspects(self, suspector: int, suspectee: int) -> bool:
        """Whether this process's matrix holds any stamp for the pair."""
        return any(
            l == suspector and k == suspectee for l, k, _ in self.matrix_entries
        )


@dataclass(frozen=True)
class WorldView:
    """Global snapshot the adversary engine hands each strategy per tick."""

    now: float
    n: int
    f: int
    faulty: FrozenSet[int]
    correct: FrozenSet[int]
    processes: Mapping[int, ProcessView]
    #: The quorum every correct process currently reports, or ``None``
    #: while correct processes disagree (mid-stabilization).
    agreed_quorum: Optional[FrozenSet[int]]

    @property
    def max_epoch(self) -> int:
        return max(view.epoch for view in self.processes.values())

    def quorum_of(self, pid: int) -> FrozenSet[int]:
        return self.processes[pid].quorum


def observe_process(module) -> ProcessView:
    """Snapshot one :class:`~repro.core.quorum_selection.QuorumSelectionModule`."""
    fd = getattr(module.host, "fd", None)
    if fd is not None:
        fd_suspected = frozenset(fd.suspected)
        fd_pending = len(getattr(fd, "_active", ()))
    else:
        fd_suspected = frozenset()
        fd_pending = 0
    return ProcessView(
        pid=module.pid,
        epoch=module.epoch,
        quorum=frozenset(module.qlast),
        suspecting=frozenset(module.suspecting),
        fd_suspected=fd_suspected,
        fd_expectations_pending=fd_pending,
        matrix_entries=tuple(module.matrix.entries()),
    )


def observe_world(now: float, modules: Dict[int, object],
                  faulty: FrozenSet[int], f: int) -> WorldView:
    """Snapshot every process and derive the correct-process agreement.

    ``agreed_quorum`` uses the same predicate as the legacy Theorem-4
    strategy: all correct processes report one identical ``qlast``.
    """
    processes = {pid: observe_process(modules[pid]) for pid in sorted(modules)}
    correct = frozenset(pid for pid in processes if pid not in faulty)
    quorums = {processes[pid].quorum for pid in correct}
    agreed = next(iter(quorums)) if len(quorums) == 1 else None
    return WorldView(
        now=now,
        n=len(processes),
        f=f,
        faulty=frozenset(faulty),
        correct=correct,
        processes=processes,
        agreed_quorum=agreed,
    )
