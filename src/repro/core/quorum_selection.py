"""Algorithm 1 — decentralized Quorum Selection (Section VI).

State per process: ``epoch`` (starts at 1), ``suspecting`` (the failure
detector's current set), the shared :class:`SuspicionMatrix`, and
``Qlast`` (initially ``{p_1 .. p_q}``).

Flow, exactly as in the paper (modulo the row-index typo documented in
DESIGN.md §5.1):

- ``SUSPECTED`` from the failure detector -> ``updateSuspicions``: stamp
  every currently-suspected process with the current epoch in *my* row and
  broadcast the signed row to all, including myself.
- ``UPDATE`` from anyone -> max-merge into the signer's row; if anything
  changed, forward the original signed message to the other processes
  (gossip reliability, Lemma 1) and run ``updateQuorum``.
- ``updateQuorum``: build the suspect graph for the current epoch; if no
  independent set of size ``q`` exists, advance the epoch and re-stamp the
  current suspicions (some correct process must have suspected another —
  accurate suspicions alone always leave the correct set independent);
  otherwise select the lexicographically first independent set of size
  ``q`` and emit ``<QUORUM, Q>`` if it differs from ``Qlast``.

Hot-path engineering (DESIGN.md §5.13): the module reads the matrix's
*maintained* suspect-graph view instead of rebuilding per UPDATE, and
memoizes the last quorum search under a ``(graph uid, graph version,
epoch, q)`` key — a merge that changes no edge of the current band, or a
duplicate gossip forward, therefore skips the search entirely.  Both are
pure caches: decisions are byte-identical to the from-scratch path
(``incremental=False`` restores it, and the equivalence test runs both).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.events import QuorumEvent
from repro.core.messages import KIND_UPDATE, UpdatePayload
from repro.core.suspicion_matrix import SuspicionMatrix
from repro.crypto.authenticator import SignedMessage
from repro.graphs.independent_set import has_independent_set, lex_first_independent_set
from repro.sim.process import Module, ProcessHost
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId, default_quorum

QuorumListener = Callable[[QuorumEvent], None]

# Forwarded-digest memory cap; on overflow the memory is reset, which can
# at worst re-forward an old message once (gossip is idempotent).
FORWARD_MEMORY_LIMIT = 65536


class QuorumSelectionModule(Module):
    """Algorithm 1 running at one process."""

    def __init__(
        self,
        host: ProcessHost,
        n: int,
        f: int,
        use_fd: bool = True,
        epoch_slack: Optional[int] = 1024,
        forward_updates: bool = True,
        incremental: bool = True,
    ) -> None:
        super().__init__(host)
        if not 1 <= f < n - f:
            raise ConfigurationError(
                f"need 1 <= f and q = n - f > f (majority correct); got n={n}, f={f}"
            )
        self.n = n
        self.f = f
        self.q = n - f
        self.use_fd = use_fd
        # Ignore suspicion stamps more than this far in the future (the
        # epoch-inflation defense, DESIGN.md §5.12); None = paper-literal.
        self.epoch_slack = epoch_slack
        # Gossip forwarding (Algorithm 1 line 23) is what makes the matrix
        # eventually consistent under equivocation (Lemma 1); the flag
        # exists only for the E9d ablation.
        self.forward_updates = forward_updates
        # Incremental graph view + quorum memo (DESIGN.md §5.13); False
        # restores the from-scratch seed path for equivalence testing.
        self.incremental = incremental
        # --- Algorithm 1 state ---
        self.epoch = 1
        self.suspecting: FrozenSet[int] = frozenset()
        self.matrix = SuspicionMatrix(n)
        self.qlast: FrozenSet[int] = default_quorum(n, self.q)
        # --- hot-path caches ---
        self._memo_key: Optional[Tuple[int, int, int, int]] = None
        self._memo_quorum: Optional[FrozenSet[int]] = None
        self._forwarded: Dict[Tuple[int, bytes], Set[int]] = {}
        # --- instrumentation ---
        self.quorum_events: List[QuorumEvent] = []
        self.quorums_per_epoch: Dict[int, int] = {}
        self.quorum_searches = 0
        self.searches_memoized = 0
        self.forwards_suppressed = 0
        self._listeners: List[QuorumListener] = []

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self.host.subscribe(KIND_UPDATE, self._on_update)
        if self.use_fd:
            if self.host.fd is None:
                raise ConfigurationError(
                    f"p{self.pid}: QuorumSelectionModule(use_fd=True) needs a failure detector"
                )
            self.host.fd.subscribe_suspected(self.on_suspected)

    def add_quorum_listener(self, listener: QuorumListener) -> None:
        """Consumers (e.g. the replicated application) get QUORUM events."""
        self._listeners.append(listener)

    @property
    def current_quorum(self) -> FrozenSet[int]:
        return self.qlast

    # ------------------------------------------------- Algorithm 1, lines 9-15

    def on_suspected(self, suspected: FrozenSet[int]) -> None:
        """``<SUSPECTED, S>`` from the failure detector (line 9)."""
        self._update_suspicions(frozenset(suspected) - {self.pid})

    def _update_suspicions(self, suspected: FrozenSet[int]) -> None:
        """Lines 11-15: stamp current suspicions, broadcast own row.

        Deviation from the pseudocode as printed (documented in DESIGN.md
        §5): the originator also recomputes its quorum when its own marks
        changed.  In the paper the recomputation is triggered by the
        self-addressed UPDATE, but that message merges as a no-change (the
        matrix was already written on line 14), so without this call the
        *originator* of a suspicion would never react to it.
        """
        self.suspecting = suspected
        changed = self._remark_and_broadcast()
        if changed:
            self._update_quorum()

    def _remark_and_broadcast(self) -> bool:
        """Stamp ``suspecting`` with the current epoch; broadcast own row."""
        changed = False
        for target in sorted(self.suspecting):
            if self.matrix.mark(self.pid, target, self.epoch):
                changed = True
        signed = self.host.authenticator.sign(UpdatePayload(self.matrix.row(self.pid)))
        self.host.broadcast(range(1, self.n + 1), KIND_UPDATE, signed)
        return changed

    # ------------------------------------------------ Algorithm 1, lines 16-24

    def _on_update(self, kind: str, payload: Any, src: ProcessId) -> None:
        """Handle a (pre-authenticated) ``UPDATE`` (lines 16-24).

        The failure detector already verified the signature; ``src`` is the
        signer.  Hosts without a failure detector verify here.
        """
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self.host.authenticator.verify(payload):
            return
        owner = payload.signer
        body = payload.payload
        if not isinstance(body, UpdatePayload):
            return
        changed = self.matrix.merge_row(owner, body.row)
        if changed:
            # Forward the original signed message so peers converge even if
            # the (possibly faulty) owner never sent it to them (Lemma 1).
            if self.forward_updates:
                self._forward_update(payload, src)
            self._update_quorum()

    def _forward_update(self, payload: SignedMessage, src: ProcessId) -> None:
        """Gossip-forward an UPDATE, at most once per (message, peer).

        The signature tag is already a MAC over the signed row, so
        ``(signer, tag)`` identifies the message content without extra
        hashing.  Max-merge idempotence makes re-forwarding harmless but
        wasteful; the memory guarantees each peer is sent a given signed
        UPDATE at most once by this process.
        """
        if len(self._forwarded) >= FORWARD_MEMORY_LIMIT:
            self._forwarded.clear()
        key = (payload.signature.signer, payload.signature.tag)
        sent = self._forwarded.setdefault(key, set())
        for dst in range(1, self.n + 1):
            if dst in (self.pid, src):
                continue
            if dst in sent:
                self.forwards_suppressed += 1
                continue
            sent.add(dst)
            self.host.send(dst, KIND_UPDATE, payload)

    # ------------------------------------------------ Algorithm 1, lines 25-34

    def _update_quorum(self) -> None:
        """Lines 25-34: recompute the quorum for the current epoch.

        When the epoch's suspicions are inconsistent (no independent set —
        some correct process suspected another), the epoch is advanced to
        the next *viable* value and the current suspicions are re-stamped.
        The paper increments by one per pass; jumping over epochs whose
        graphs are identical (delimited by the distinct matrix values) is
        observationally equivalent and caps the work a Byzantine process
        can cause by stamping absurdly high epochs (DESIGN.md §5).
        """
        while True:
            graph = self._suspect_graph()
            key = (graph.uid, graph.version, self.epoch, self.q)
            if key == self._memo_key:
                # Matrix changed but no edge of this epoch's band did: the
                # previous search result stands and qlast is already it.
                self.searches_memoized += 1
                return
            if self._viable(graph):
                break
            self.epoch = self._next_viable_epoch()
            self.host.log.append(self.host.now, self.pid, "qs.epoch", epoch=self.epoch)
            # Re-stamp current suspicions in the new epoch and let peers
            # know (may itself remove the independent set again: loop).
            self._remark_and_broadcast()
        quorum = lex_first_independent_set(graph, self.q, assume_exists=True)
        assert quorum is not None  # existence was just checked
        self.quorum_searches += 1
        self._memo_key = (graph.uid, graph.version, self.epoch, self.q)
        self._memo_quorum = quorum
        if quorum != self.qlast:
            self.qlast = quorum
            self._issue(quorum)

    def _suspect_graph(self, epoch: Optional[int] = None):
        """The suspect graph at an epoch, with the inflation band applied.

        With no explicit epoch this returns the matrix's maintained view
        (O(1) when nothing re-tracked); an explicit epoch always builds
        from scratch — only non-hot paths ask for arbitrary epochs.
        """
        if epoch is None and self.incremental:
            return self.matrix.suspect_graph_view(self.epoch, self.epoch_slack)
        return self.matrix.build_suspect_graph(
            self.epoch if epoch is None else epoch, slack=self.epoch_slack
        )

    def _viable(self, graph) -> bool:
        """Whether a quorum can be selected from this epoch's graph.

        Algorithm 1 needs an independent set of size ``q``; variants
        (e.g. Chain Selection) override this with their weaker existence
        predicate so epochs advance only when *their* structure is gone.
        """
        return has_independent_set(graph, self.q)

    def _next_viable_epoch(self) -> int:
        """Smallest epoch > current whose suspect graph is viable.

        The graph only changes at thresholds ``value + 1`` for values in
        the matrix, so those are the only candidates worth testing; the
        final threshold (max value + 1) yields an empty graph, which is
        always viable.  Candidate graphs are derived from the current one
        by band deltas (:meth:`SuspicionMatrix.iter_probe_graphs`) rather
        than rebuilt per threshold.
        """
        change_points = {self.epoch + 1}
        for _, _, value in self.matrix.entries():
            if value + 1 > self.epoch + 1:
                change_points.add(value + 1)
            if self.epoch_slack is not None:
                # A future-dated stamp *enters* the band at value - slack:
                # the graph also changes there.
                entry = value - self.epoch_slack
                if entry > self.epoch + 1:
                    change_points.add(entry)
        thresholds = sorted(change_points)
        if self.incremental:
            for candidate, graph in self.matrix.iter_probe_graphs(
                self.epoch, thresholds, self.epoch_slack
            ):
                if self._viable(graph):
                    return candidate
        else:
            for candidate in thresholds:
                if self._viable(self._suspect_graph(candidate)):
                    return candidate
        return thresholds[-1]  # pragma: no cover - last is always viable

    def _issue(self, quorum: FrozenSet[int], leader: Optional[int] = None) -> None:
        event = QuorumEvent(
            time=self.host.now,
            process=self.pid,
            epoch=self.epoch,
            quorum=quorum,
            leader=leader,
        )
        self.quorum_events.append(event)
        self.quorums_per_epoch[self.epoch] = self.quorums_per_epoch.get(self.epoch, 0) + 1
        self.host.log.append(
            self.host.now,
            self.pid,
            "qs.quorum",
            epoch=self.epoch,
            quorum=tuple(sorted(quorum)),
            leader=leader,
        )
        for listener in self._listeners:
            listener(event)

    # ------------------------------------------------------------ diagnostics

    def total_quorums_issued(self) -> int:
        return len(self.quorum_events)

    def max_quorums_in_any_epoch(self) -> int:
        return max(self.quorums_per_epoch.values(), default=0)

    def hotpath_stats(self) -> Dict[str, int]:
        """Counters for the E21 hot-path benchmark harness."""
        return {
            "quorum_searches": self.quorum_searches,
            "searches_memoized": self.searches_memoized,
            "graph_builds": self.matrix.graph_builds,
            "graph_reuses": self.matrix.graph_reuses,
            "incremental_edge_updates": self.matrix.incremental_edge_updates,
            "forwards_suppressed": self.forwards_suppressed,
        }
