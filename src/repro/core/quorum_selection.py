"""Algorithm 1 — decentralized Quorum Selection (Section VI).

State per process: ``epoch`` (starts at 1), ``suspecting`` (the failure
detector's current set), the shared :class:`SuspicionMatrix`, and
``Qlast`` (initially ``{p_1 .. p_q}``).

Flow, exactly as in the paper (modulo the row-index typo documented in
DESIGN.md §5.1):

- ``SUSPECTED`` from the failure detector -> ``updateSuspicions``: stamp
  every currently-suspected process with the current epoch in *my* row and
  broadcast the signed row to all, including myself.
- ``UPDATE`` from anyone -> max-merge into the signer's row; if anything
  changed, forward the original signed message to the other processes
  (gossip reliability, Lemma 1) and run ``updateQuorum``.
- ``updateQuorum``: build the suspect graph for the current epoch; if no
  independent set of size ``q`` exists, advance the epoch and re-stamp the
  current suspicions (some correct process must have suspected another —
  accurate suspicions alone always leave the correct set independent);
  otherwise select the lexicographically first independent set of size
  ``q`` and emit ``<QUORUM, Q>`` if it differs from ``Qlast``.

Hot-path engineering (DESIGN.md §5.13): the module reads the matrix's
*maintained* suspect-graph view instead of rebuilding per UPDATE, and
memoizes the last quorum search under a ``(graph uid, graph version,
epoch, q)`` key — a merge that changes no edge of the current band, or a
duplicate gossip forward, therefore skips the search entirely.  Both are
pure caches: decisions are byte-identical to the from-scratch path
(``incremental=False`` restores it, and the equivalence test runs both).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.events import QuorumEvent
from repro.core.messages import (
    KIND_DIGEST,
    KIND_ROWS,
    KIND_UPDATE,
    MatrixDigestPayload,
    RowCertsPayload,
    UpdatePayload,
)
from repro.core.suspicion_matrix import SuspicionMatrix
from repro.crypto.authenticator import SignedMessage
from repro.graphs.independent_set import has_independent_set, lex_first_independent_set
from repro.obs.observability import NULL_OBS, get_obs
from repro.obs.spans import SPAN_EPOCH_ADVANCE, SPAN_QUORUM_CHANGE, SPAN_SUSPICION_EDGE
from repro.sim.process import Module, ProcessHost
from repro.sim.transport import ReliableTransport
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId, default_quorum

QuorumListener = Callable[[QuorumEvent], None]

# Forwarded-digest memory cap; on overflow the memory is reset, which can
# at worst re-forward an old message once (gossip is idempotent).  Primary
# bounding is the per-epoch prune in ``_advance_epoch``; the cap is the
# backstop for very long single epochs.
FORWARD_MEMORY_LIMIT = 65536

# Row certificates retained per owner for anti-entropy.  A correct owner's
# row is monotone, so dominance pruning keeps exactly one cert; only an
# equivocating (Byzantine) owner can accumulate an antichain, and this cap
# bounds the memory it can cost us.
MAX_CERTS_PER_OWNER = 16


class QuorumSelectionModule(Module):
    """Algorithm 1 running at one process."""

    def __init__(
        self,
        host: ProcessHost,
        n: int,
        f: int,
        use_fd: bool = True,
        epoch_slack: Optional[int] = 1024,
        forward_updates: bool = True,
        incremental: bool = True,
        transport: Optional[ReliableTransport] = None,
        anti_entropy_period: Optional[float] = None,
    ) -> None:
        super().__init__(host)
        if not 1 <= f < n - f:
            raise ConfigurationError(
                f"need 1 <= f and q = n - f > f (majority correct); got n={n}, f={f}"
            )
        self.n = n
        self.f = f
        self.q = n - f
        self.use_fd = use_fd
        # Ignore suspicion stamps more than this far in the future (the
        # epoch-inflation defense, DESIGN.md §5.12); None = paper-literal.
        self.epoch_slack = epoch_slack
        # Gossip forwarding (Algorithm 1 line 23) is what makes the matrix
        # eventually consistent under equivocation (Lemma 1); the flag
        # exists only for the E9d ablation.
        self.forward_updates = forward_updates
        # Incremental graph view + quorum memo (DESIGN.md §5.13); False
        # restores the from-scratch seed path for equivalence testing.
        self.incremental = incremental
        # Optional lossy-channel countermeasures (DESIGN.md §5.14): route
        # protocol messages through an ack/retransmit layer, and/or run a
        # periodic digest-based matrix sync.  Both default off — the seed's
        # reliable-channel behaviour (and its traces) are untouched then.
        if anti_entropy_period is not None and anti_entropy_period <= 0:
            raise ConfigurationError(
                f"anti-entropy period must be positive, got {anti_entropy_period}"
            )
        self.transport = transport
        self.anti_entropy_period = anti_entropy_period
        # --- Algorithm 1 state ---
        self.epoch = 1
        self.suspecting: FrozenSet[int] = frozenset()
        self.matrix = SuspicionMatrix(n)
        self.qlast: FrozenSet[int] = default_quorum(n, self.q)
        # --- hot-path caches ---
        self._memo_key: Optional[Tuple[int, int, int, int]] = None
        self._memo_quorum: Optional[FrozenSet[int]] = None
        # (signer, tag) -> [last epoch the message was seen in, peers sent].
        # The epoch tag lets _advance_epoch prune entries for messages that
        # stopped circulating — gossip for a retired epoch dies out fast.
        self._forwarded: Dict[Tuple[int, bytes], List[Any]] = {}
        # --- anti-entropy state ---
        # owner -> dominance-pruned signed UPDATEs proving its row.
        self._row_certs: Dict[int, List[SignedMessage]] = {}
        self._ae_cursor = 0
        self._ae_handle: Optional[Any] = None
        # --- instrumentation ---
        self.quorum_events: List[QuorumEvent] = []
        self.quorums_per_epoch: Dict[int, int] = {}
        self.quorum_searches = 0
        self.searches_memoized = 0
        self.forwards_suppressed = 0
        self.forward_entries_pruned = 0
        self.ae_digests_sent = 0
        self.ae_rows_sent = 0
        self.ae_rows_applied = 0
        self._listeners: List[QuorumListener] = []
        # Bound in start(); NULL_OBS keeps bare stub hosts working.
        self._obs = NULL_OBS

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._obs = get_obs(self.host)
        self._obs.add_collector(self._collect_metrics)
        if self._obs.enabled:
            # Suspicion-edge spans ride the matrix's write observer; the
            # hot path pays one None-check per *actual* entry increase.
            self.matrix.observer = self._on_matrix_write
        self.host.subscribe(KIND_UPDATE, self._on_update)
        if self.use_fd:
            if self.host.fd is None:
                raise ConfigurationError(
                    f"p{self.pid}: QuorumSelectionModule(use_fd=True) needs a failure detector"
                )
            self.host.fd.subscribe_suspected(self.on_suspected)
        if self.anti_entropy_period is not None:
            self.host.subscribe(KIND_DIGEST, self._on_digest)
            self.host.subscribe(KIND_ROWS, self._on_rows)
            # Scheduler-level loop, not a host timer: the sync must keep
            # ticking through crash/recover so a recovered process pulls
            # itself back up to date without waiting for fresh suspicions.
            self._ae_handle = self.host.scheduler.schedule_every(
                self.anti_entropy_period,
                self._anti_entropy_tick,
                label=f"qs-ae@p{self.pid}",
            )

    def add_quorum_listener(self, listener: QuorumListener) -> None:
        """Consumers (e.g. the replicated application) get QUORUM events."""
        self._listeners.append(listener)

    @property
    def current_quorum(self) -> FrozenSet[int]:
        return self.qlast

    # ------------------------------------------------- Algorithm 1, lines 9-15

    def on_suspected(self, suspected: FrozenSet[int]) -> None:
        """``<SUSPECTED, S>`` from the failure detector (line 9)."""
        self._update_suspicions(frozenset(suspected) - {self.pid})

    def _update_suspicions(self, suspected: FrozenSet[int]) -> None:
        """Lines 11-15: stamp current suspicions, broadcast own row.

        Deviation from the pseudocode as printed (documented in DESIGN.md
        §5): the originator also recomputes its quorum when its own marks
        changed.  In the paper the recomputation is triggered by the
        self-addressed UPDATE, but that message merges as a no-change (the
        matrix was already written on line 14), so without this call the
        *originator* of a suspicion would never react to it.
        """
        self.suspecting = suspected
        changed = self._remark_and_broadcast()
        if changed:
            self._update_quorum()

    def _remark_and_broadcast(self) -> bool:
        """Stamp ``suspecting`` with the current epoch; broadcast own row."""
        changed = False
        for target in sorted(self.suspecting):
            if self.matrix.mark(self.pid, target, self.epoch):
                changed = True
        signed = self.host.authenticator.sign(UpdatePayload(self.matrix.row(self.pid)))
        if self.anti_entropy_period is not None:
            self._remember_cert(signed)
        self._broadcast_protocol(KIND_UPDATE, signed)
        return changed

    # ------------------------------------------------------- message routing

    def _send_protocol(self, dst: ProcessId, kind: str, payload: Any) -> None:
        """Send a protocol message, reliably when a transport is attached."""
        if self.transport is not None and dst != self.pid:
            self.transport.send(dst, kind, payload)
        else:
            self.host.send(dst, kind, payload)

    def _broadcast_protocol(self, kind: str, payload: Any) -> None:
        """Broadcast to all (including self), honouring the transport.

        Without a transport this is exactly the host broadcast the paper's
        pseudocode uses; with one, the local copy still takes the host's
        scheduled self-delivery path (ordering preserved) while remote
        copies get retransmission.
        """
        if self.transport is None:
            self.host.broadcast(range(1, self.n + 1), kind, payload)
            return
        self.host.broadcast((self.pid,), kind, payload)
        if not self.host.running:
            return
        for dst in range(1, self.n + 1):
            if dst != self.pid:
                self.transport.send(dst, kind, payload)

    # ------------------------------------------------ Algorithm 1, lines 16-24

    def _on_update(self, kind: str, payload: Any, src: ProcessId) -> None:
        """Handle a (pre-authenticated) ``UPDATE`` (lines 16-24).

        The failure detector already verified the signature; ``src`` is the
        signer.  Hosts without a failure detector verify here.
        """
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self.host.authenticator.verify(payload):
            return
        owner = payload.signer
        body = payload.payload
        if not isinstance(body, UpdatePayload):
            return
        if self.anti_entropy_period is not None:
            self._remember_cert(payload)
        changed = self.matrix.merge_row(owner, body.row)
        if changed:
            # Forward the original signed message so peers converge even if
            # the (possibly faulty) owner never sent it to them (Lemma 1).
            if self.forward_updates:
                self._forward_update(payload, src)
            self._update_quorum()

    def _forward_update(self, payload: SignedMessage, src: ProcessId) -> None:
        """Gossip-forward an UPDATE, at most once per (message, peer).

        The signature tag is already a MAC over the signed row, so
        ``(signer, tag)`` identifies the message content without extra
        hashing.  Max-merge idempotence makes re-forwarding harmless but
        wasteful; the memory guarantees each peer is sent a given signed
        UPDATE at most once by this process.
        """
        key = (payload.signature.signer, payload.signature.tag)
        entry = self._forwarded.get(key)
        if entry is None:
            if len(self._forwarded) >= FORWARD_MEMORY_LIMIT:
                self._forwarded.clear()
            entry = self._forwarded[key] = [self.epoch, set()]
        else:
            entry[0] = self.epoch
        sent = entry[1]
        for dst in range(1, self.n + 1):
            if dst in (self.pid, src):
                continue
            if dst in sent:
                self.forwards_suppressed += 1
                continue
            sent.add(dst)
            self._send_protocol(dst, KIND_UPDATE, payload)

    # ------------------------------------------------ Algorithm 1, lines 25-34

    def _update_quorum(self) -> None:
        """Lines 25-34: recompute the quorum for the current epoch.

        When the epoch's suspicions are inconsistent (no independent set —
        some correct process suspected another), the epoch is advanced to
        the next *viable* value and the current suspicions are re-stamped.
        The paper increments by one per pass; jumping over epochs whose
        graphs are identical (delimited by the distinct matrix values) is
        observationally equivalent and caps the work a Byzantine process
        can cause by stamping absurdly high epochs (DESIGN.md §5).
        """
        while True:
            graph = self._suspect_graph()
            key = (graph.uid, graph.version, self.epoch, self.q)
            if key == self._memo_key:
                # Matrix changed but no edge of this epoch's band did: the
                # previous search result stands and qlast is already it.
                self.searches_memoized += 1
                return
            if self._viable(graph):
                break
            self._advance_epoch(self._next_viable_epoch())
            # Re-stamp current suspicions in the new epoch and let peers
            # know (may itself remove the independent set again: loop).
            self._remark_and_broadcast()
        quorum = lex_first_independent_set(graph, self.q, assume_exists=True)
        assert quorum is not None  # existence was just checked
        self.quorum_searches += 1
        self._memo_key = (graph.uid, graph.version, self.epoch, self.q)
        self._memo_quorum = quorum
        if quorum != self.qlast:
            self.qlast = quorum
            self._issue(quorum)

    def _advance_epoch(self, new_epoch: int) -> None:
        """Move to ``new_epoch`` (logging as the seed did) and collect
        gossip bookkeeping for retired epochs.

        An UPDATE that stopped circulating before the advance will never be
        received again (every peer that held it has forwarded it already),
        so forward-dedup entries last touched in an older epoch are dead
        weight — pruning them is what keeps ``_forwarded`` bounded across
        epoch-inflation runs instead of growing until the overflow reset.
        An entry for a message that *does* arrive again is merely recreated
        with an empty sent-set; re-forwarding is idempotent (max-merge).
        """
        self.epoch = new_epoch
        self.host.log.append(self.host.now, self.pid, "qs.epoch", epoch=new_epoch)
        self._obs.span(SPAN_EPOCH_ADVANCE, self.pid, self.host.now, epoch=new_epoch)
        stale = [key for key, entry in self._forwarded.items() if entry[0] < new_epoch]
        for key in stale:
            del self._forwarded[key]
        self.forward_entries_pruned += len(stale)

    def _suspect_graph(self, epoch: Optional[int] = None):
        """The suspect graph at an epoch, with the inflation band applied.

        With no explicit epoch this returns the matrix's maintained view
        (O(1) when nothing re-tracked); an explicit epoch always builds
        from scratch — only non-hot paths ask for arbitrary epochs.
        """
        if epoch is None and self.incremental:
            return self.matrix.suspect_graph_view(self.epoch, self.epoch_slack)
        return self.matrix.build_suspect_graph(
            self.epoch if epoch is None else epoch, slack=self.epoch_slack
        )

    def _viable(self, graph) -> bool:
        """Whether a quorum can be selected from this epoch's graph.

        Algorithm 1 needs an independent set of size ``q``; variants
        (e.g. Chain Selection) override this with their weaker existence
        predicate so epochs advance only when *their* structure is gone.
        """
        return has_independent_set(graph, self.q)

    def _next_viable_epoch(self) -> int:
        """Smallest epoch > current whose suspect graph is viable.

        The graph only changes at thresholds ``value + 1`` for values in
        the matrix, so those are the only candidates worth testing; the
        final threshold (max value + 1) yields an empty graph, which is
        always viable.  Candidate graphs are derived from the current one
        by band deltas (:meth:`SuspicionMatrix.iter_probe_graphs`) rather
        than rebuilt per threshold.
        """
        change_points = {self.epoch + 1}
        for _, _, value in self.matrix.entries():
            if value + 1 > self.epoch + 1:
                change_points.add(value + 1)
            if self.epoch_slack is not None:
                # A future-dated stamp *enters* the band at value - slack:
                # the graph also changes there.
                entry = value - self.epoch_slack
                if entry > self.epoch + 1:
                    change_points.add(entry)
        thresholds = sorted(change_points)
        if self.incremental:
            for candidate, graph in self.matrix.iter_probe_graphs(
                self.epoch, thresholds, self.epoch_slack
            ):
                if self._viable(graph):
                    return candidate
        else:
            for candidate in thresholds:
                if self._viable(self._suspect_graph(candidate)):
                    return candidate
        return thresholds[-1]  # pragma: no cover - last is always viable

    # ---------------------------------------------- anti-entropy (DESIGN §5.14)

    def _remember_cert(self, signed: SignedMessage) -> None:
        """Retain a signed UPDATE as a row certificate, dominance-pruned.

        Gossip forwards relay the *original* signed messages because nobody
        can re-sign another's row; anti-entropy needs the same originals to
        repair peers later.  A correct owner's row only grows, so its newest
        cert pointwise-dominates all earlier ones and exactly one survives;
        only an equivocator can build an antichain, capped at
        :data:`MAX_CERTS_PER_OWNER` (oldest dropped — its claims are
        usually absorbed into peers' matrices already, and losing them only
        costs convergence of the *liar's* row entries).
        """
        body = signed.payload
        if not isinstance(body, UpdatePayload):
            return
        row = body.row
        kept = self._row_certs.get(signed.signer)
        if kept is None:
            self._row_certs[signed.signer] = [signed]
            return
        survivors: List[SignedMessage] = []
        for cert in kept:
            old_row = cert.payload.row
            if len(old_row) == len(row) and all(a >= b for a, b in zip(old_row, row)):
                return  # an existing cert already proves everything new one does
            if len(old_row) == len(row) and all(b >= a for a, b in zip(old_row, row)):
                continue  # new cert strictly covers this one: drop it
            survivors.append(cert)
        survivors.append(signed)
        if len(survivors) > MAX_CERTS_PER_OWNER:
            survivors = survivors[-MAX_CERTS_PER_OWNER:]
        self._row_certs[signed.signer] = survivors

    def _anti_entropy_tick(self) -> None:
        """Push a matrix digest to the next peer (round-robin).

        Round-robin rather than random keeps the simulation deterministic
        without touching any RNG stream, and guarantees every ordered pair
        of correct processes syncs within ``n - 1`` periods — which is all
        Lemma 1's eventual consistency needs once channels can lose gossip.
        Digests and row replies ride the raw (lossy) channel on purpose: a
        lost probe is retried by the next tick, so reliability here would
        only add traffic.
        """
        if not self.host.running:
            return
        if self.n < 2:
            return
        # index into [1..n] \ {self.pid} without materialising the list
        index = self._ae_cursor % (self.n - 1)
        peer = index + 1 if index + 1 < self.pid else index + 2
        self._ae_cursor += 1
        payload = MatrixDigestPayload(self.epoch, self.matrix.row_digests())
        self.host.send(peer, KIND_DIGEST, payload)
        self.ae_digests_sent += 1

    def _on_digest(self, kind: str, payload: Any, src: ProcessId) -> None:
        """Answer a digest probe with certs for every differing row.

        "Differing" may mean the prober is *ahead* of us — shipping our
        certs is then redundant but harmless (max-merge), and the reverse
        direction is covered when our own cursor reaches the prober.
        """
        if not isinstance(payload, MatrixDigestPayload):
            return
        theirs = payload.row_digests
        mine = self.matrix.row_digests()
        if not isinstance(theirs, tuple) or len(theirs) != len(mine):
            return  # malformed or different n: Byzantine garbage
        certs: List[SignedMessage] = []
        for owner in range(1, self.n + 1):
            if mine[owner] != theirs[owner]:
                certs.extend(self._row_certs.get(owner, ()))
        if certs:
            self.host.send(src, KIND_ROWS, RowCertsPayload(tuple(certs)))
            self.ae_rows_sent += 1

    def _on_rows(self, kind: str, payload: Any, src: ProcessId) -> None:
        """Verify and merge received row certificates; recompute once."""
        if not isinstance(payload, RowCertsPayload):
            return
        certs = payload.certs
        if not isinstance(certs, tuple):
            return
        if len(certs) > self.n * MAX_CERTS_PER_OWNER:
            return  # no honest peer ships more than its full cert store
        changed = False
        for cert in certs:
            if not isinstance(cert, SignedMessage):
                continue
            if not isinstance(cert.payload, UpdatePayload):
                continue
            if not self.host.authenticator.verify(cert):
                continue
            self._remember_cert(cert)
            if self.matrix.merge_row(cert.signer, cert.payload.row):
                changed = True
                self.ae_rows_applied += 1
        if changed:
            # No gossip re-forward here: anti-entropy repairs pairwise and
            # periodically, so flooding certs would defeat its point.
            self._update_quorum()

    def _issue(self, quorum: FrozenSet[int], leader: Optional[int] = None) -> None:
        event = QuorumEvent(
            time=self.host.now,
            process=self.pid,
            epoch=self.epoch,
            quorum=quorum,
            leader=leader,
        )
        self.quorum_events.append(event)
        self.quorums_per_epoch[self.epoch] = self.quorums_per_epoch.get(self.epoch, 0) + 1
        self.host.log.append(
            self.host.now,
            self.pid,
            "qs.quorum",
            epoch=self.epoch,
            quorum=tuple(sorted(quorum)),
            leader=leader,
        )
        self._obs.span(
            SPAN_QUORUM_CHANGE, self.pid, self.host.now,
            epoch=self.epoch, quorum=tuple(sorted(quorum)),
        )
        for listener in self._listeners:
            listener(event)

    # ---------------------------------------------------------- observability

    def _on_matrix_write(self, suspector: int, suspectee: int, value: int) -> None:
        """Matrix write observer: one suspicion-edge span per entry increase."""
        self._obs.span(
            SPAN_SUSPICION_EDGE, self.pid, self.host.now,
            suspector=suspector, suspectee=suspectee, stamp=value,
        )

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: fold the plain-int counters in.

        Runs only when a snapshot is taken (never on the UPDATE hot path);
        every metric is labelled with this process's pid so the sim's
        shared registry and a net node's private one export comparable
        families.
        """
        pid = self.pid
        registry.counter("qs_quorum_changes_total",
                         help="QUORUM events issued", pid=pid
                         ).set(len(self.quorum_events))
        registry.gauge("qs_epoch", help="current epoch", pid=pid).set(self.epoch)
        registry.gauge("qs_quorum_size", help="members in the current quorum",
                       pid=pid).set(len(self.qlast))
        registry.gauge("qs_suspecting", help="processes currently suspected",
                       pid=pid).set(len(self.suspecting))
        registry.gauge("qs_max_changes_per_epoch",
                       help="worst per-epoch quorum-change count (Thm 3 subject)",
                       pid=pid).set(self.max_quorums_in_any_epoch())
        for name, value in (
            ("qs_quorum_searches_total", self.quorum_searches),
            ("qs_searches_memoized_total", self.searches_memoized),
            ("qs_forwards_suppressed_total", self.forwards_suppressed),
            ("qs_forward_entries_pruned_total", self.forward_entries_pruned),
            ("qs_ae_digests_sent_total", self.ae_digests_sent),
            ("qs_ae_rows_sent_total", self.ae_rows_sent),
            ("qs_ae_rows_applied_total", self.ae_rows_applied),
            ("matrix_entry_writes_total", self.matrix.version),
            ("matrix_graph_builds_total", self.matrix.graph_builds),
            ("matrix_graph_reuses_total", self.matrix.graph_reuses),
            ("matrix_edge_updates_total", self.matrix.incremental_edge_updates),
        ):
            registry.counter(name, help="quorum-selection hot-path counter",
                             pid=pid).set(value)

    # ------------------------------------------------------------ diagnostics

    def total_quorums_issued(self) -> int:
        return len(self.quorum_events)

    def max_quorums_in_any_epoch(self) -> int:
        return max(self.quorums_per_epoch.values(), default=0)

    def hotpath_stats(self) -> Dict[str, int]:
        """Counters for the E21 hot-path benchmark harness."""
        return {
            "quorum_searches": self.quorum_searches,
            "searches_memoized": self.searches_memoized,
            "graph_builds": self.matrix.graph_builds,
            "graph_reuses": self.matrix.graph_reuses,
            "incremental_edge_updates": self.matrix.incremental_edge_updates,
            "forwards_suppressed": self.forwards_suppressed,
        }

    def robustness_stats(self) -> Dict[str, int]:
        """Counters for the lossy-gossip (E22) benchmark harness."""
        return {
            "forward_entries_pruned": self.forward_entries_pruned,
            "forward_entries_live": len(self._forwarded),
            "ae_digests_sent": self.ae_digests_sent,
            "ae_rows_sent": self.ae_rows_sent,
            "ae_rows_applied": self.ae_rows_applied,
        }
