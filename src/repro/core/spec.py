"""Checkers for the Quorum Selection specification (Section IV-A).

- **Termination** — a correct process changes the quorum only finitely
  often; on a finite run we check quorum events stop before a deadline.
- **Agreement** — eventually correct processes always output the same
  quorum; we check all correct processes' final quorums coincide and that
  no quorum event occurs after the stabilization point.
- **No suspicion** — for every correct ``j``: eventually ``j`` is never in
  the quorum, or eventually ``j`` never suspects anyone in the quorum; we
  check the final quorum against each correct member's final suspicions.
- **No leader suspicion** (Follower Selection) — eventually no correct
  quorum member suspects the leader, and a correct leader suspects no
  quorum member.

All functions take the *modules* of correct processes (and their hosts'
failure detectors), inspecting end-of-run state plus the shared event log.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.quorum_selection import QuorumSelectionModule
from repro.util.eventlog import EventLog


def termination_holds(modules: Sequence[QuorumSelectionModule], after: float) -> bool:
    """No correct process issues a quorum after time ``after``."""
    for module in modules:
        for event in module.quorum_events:
            if event.time > after:
                return False
    return True


def agreement_holds(modules: Sequence[QuorumSelectionModule]) -> bool:
    """All correct processes ended the run with the same quorum (and, for
    Follower Selection, the same leader)."""
    quorums = {module.qlast for module in modules}
    if len(quorums) != 1:
        return False
    leaders = {getattr(module, "leader", None) for module in modules}
    return len(leaders) == 1


def no_suspicion_holds(modules: Sequence[QuorumSelectionModule]) -> bool:
    """Final check of the *no suspicion* property.

    For every correct process j: j is outside the final quorum, or j's
    final suspected set is disjoint from the quorum.
    """
    for module in modules:
        if module.pid not in module.qlast:
            continue
        fd = module.host.fd
        suspected = fd.suspected if fd is not None else frozenset()
        if suspected & module.qlast:
            return False
    return True


def no_leader_suspicion_holds(modules: Sequence[QuorumSelectionModule]) -> bool:
    """Final check of *no leader suspicion* (Section VIII).

    Followers (correct, in quorum) must not suspect the leader; a correct
    leader must not suspect any quorum member.
    """
    for module in modules:
        leader = getattr(module, "leader", None)
        if leader is None:
            return False  # not a Follower Selection module
        fd = module.host.fd
        suspected = fd.suspected if fd is not None else frozenset()
        if module.pid == leader:
            if suspected & module.qlast:
                return False
        elif module.pid in module.qlast:
            if leader in suspected:
                return False
    return True


def no_link_suspicion_holds(modules) -> bool:
    """Final check of *no link suspicion* (Chain Selection extension).

    For every correct chain member: its final suspected set contains none
    of its chain *neighbours* (non-adjacent members may be suspected).
    """
    for module in modules:
        chain = getattr(module, "chain", None)
        if chain is None:
            return False  # not a Chain Selection module
        if module.pid not in chain:
            continue
        index = chain.index(module.pid)
        neighbours = set()
        if index > 0:
            neighbours.add(chain[index - 1])
        if index + 1 < len(chain):
            neighbours.add(chain[index + 1])
        fd = module.host.fd
        suspected = fd.suspected if fd is not None else frozenset()
        if suspected & neighbours:
            return False
    return True


def quorums_issued_after(
    modules: Sequence[QuorumSelectionModule], after: float
) -> Dict[int, int]:
    """Per-process count of quorum events strictly after ``after``.

    This is the quantity bounded by Theorem 3 (``O(f^2)``) and
    Corollary 10 (``6f + 2``) once the failure detector is accurate.
    """
    return {
        module.pid: sum(1 for event in module.quorum_events if event.time > after)
        for module in modules
    }


def quorums_per_epoch(modules: Sequence[QuorumSelectionModule]) -> Dict[int, Dict[int, int]]:
    """Per-process, per-epoch quorum counts (Theorem 3 / Theorem 9)."""
    return {module.pid: dict(module.quorums_per_epoch) for module in modules}


def final_quorum(modules: Sequence[QuorumSelectionModule]) -> Optional[frozenset]:
    """The agreed final quorum, or ``None`` when processes disagree."""
    quorums = {module.qlast for module in modules}
    return next(iter(quorums)) if len(quorums) == 1 else None


def quorum_change_times(log: EventLog, correct: Iterable[int]) -> List[float]:
    """Times of all quorum events at correct processes (stabilization
    analysis for E5/E8)."""
    correct_set = set(correct)
    return [
        event.time
        for event in log.events(kind="qs.quorum")
        if event.process in correct_set
    ]
