"""The eventually consistent ``suspected`` matrix (Section VI-A).

``suspected[l][k]`` holds the last epoch in which process ``l`` (claimed
it) suspected process ``k``; 0 means never.  Each process owns and signs
its *row*; received rows are merged entry-wise by maximum, which makes the
matrix a join-semilattice replica: merges are commutative, associative,
and idempotent, so all correct processes converge to the same matrix no
matter the delivery order — even when faulty processes equivocate,
sending different rows to different peers (the union of the claims wins
everywhere).

The matrix deliberately keeps suspicions that were later cancelled by the
failure detector: "we take not only current suspicions into account, but
also suspicions previously raised and canceled" (Section I) — a process
that repeatedly delays messages keeps re-stamping recent epochs and is
eventually kept out of the quorum until the epoch moves past its entries.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.graphs.suspect_graph import SuspectGraph
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId, validate_pid


class SuspicionMatrix:
    """``n x n`` epoch matrix with row-max merge."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"matrix needs n >= 1, got {n}")
        self.n = n
        self._rows: List[List[int]] = [[0] * (n + 1) for _ in range(n + 1)]

    # ----------------------------------------------------------------- access

    def get(self, suspector: ProcessId, suspectee: ProcessId) -> int:
        validate_pid(suspector, self.n)
        validate_pid(suspectee, self.n)
        return self._rows[suspector][suspectee]

    def row(self, suspector: ProcessId) -> Tuple[int, ...]:
        """Copy of a row as a 1-based-dense tuple (index 0 unused, kept 0)."""
        validate_pid(suspector, self.n)
        return tuple(self._rows[suspector])

    def mark(self, suspector: ProcessId, suspectee: ProcessId, epoch: int) -> bool:
        """Record "suspector suspects suspectee in ``epoch``" (max-write).

        Returns ``True`` if the entry increased.  Diagonal writes are
        rejected: self-suspicion is meaningless and would put self-loops in
        the suspect graph.
        """
        validate_pid(suspector, self.n)
        validate_pid(suspectee, self.n)
        if suspector == suspectee:
            raise ConfigurationError(f"p{suspector} cannot suspect itself")
        if epoch < 0:
            raise ConfigurationError(f"epoch must be >= 0, got {epoch}")
        if epoch > self._rows[suspector][suspectee]:
            self._rows[suspector][suspectee] = epoch
            return True
        return False

    def merge_row(self, suspector: ProcessId, values: Sequence[int]) -> bool:
        """Entry-wise max-merge of a received row; returns "changed".

        ``values`` may be 0-based dense of length ``n`` or 1-based dense of
        length ``n + 1`` (the wire format of :meth:`row`).  Diagonal and
        malformed entries are ignored rather than rejected — the row may
        come from a Byzantine peer and dropping garbage silently is the
        correct protocol response.
        """
        validate_pid(suspector, self.n)
        if len(values) == self.n:
            dense = [0, *values]
        elif len(values) == self.n + 1:
            dense = list(values)
        else:
            return False  # wrong arity: Byzantine garbage, ignore
        changed = False
        row = self._rows[suspector]
        for suspectee in range(1, self.n + 1):
            if suspectee == suspector:
                continue
            value = dense[suspectee]
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                continue
            if value > row[suspectee]:
                row[suspectee] = value
                changed = True
        return changed

    # ----------------------------------------------------------- graph & views

    def build_suspect_graph(self, epoch: int, slack: Optional[int] = None) -> SuspectGraph:
        """Suspect graph for ``epoch`` (Section VI-B).

        Nodes ``l`` and ``k`` are connected iff either suspected the other
        in ``epoch`` or later: ``suspected[l][k] >= epoch or
        suspected[k][l] >= epoch``.

        ``slack`` (optional) additionally requires ``value <= epoch +
        slack``: *future-dated* suspicions far beyond the local epoch are
        ignored until epochs legitimately catch up.  Correct processes
        only ever stamp (roughly) their current epoch, so a generous
        slack never discounts honest suspicions — but it defuses the
        epoch-inflation attack, where a Byzantine row stamped with an
        absurd epoch would otherwise pin its edges through a
        correspondingly absurd number of epoch advances (DESIGN.md §5.12).
        ``None`` gives the paper-literal unbounded semantics.
        """
        if epoch < 1:
            raise ConfigurationError(f"epoch must be >= 1, got {epoch}")
        if slack is not None and slack < 0:
            raise ConfigurationError(f"slack must be >= 0, got {slack}")
        upper = None if slack is None else epoch + slack

        def in_band(value: int) -> bool:
            return value >= epoch and (upper is None or value <= upper)

        graph = SuspectGraph(self.n)
        for l in range(1, self.n + 1):
            row = self._rows[l]
            for k in range(l + 1, self.n + 1):
                if in_band(row[k]) or in_band(self._rows[k][l]):
                    graph.add_edge(l, k)
        return graph

    def entries(self) -> Iterable[Tuple[int, int, int]]:
        """Yield all nonzero ``(suspector, suspectee, epoch)`` entries."""
        for l in range(1, self.n + 1):
            for k in range(1, self.n + 1):
                if self._rows[l][k]:
                    yield (l, k, self._rows[l][k])

    def copy(self) -> "SuspicionMatrix":
        clone = SuspicionMatrix(self.n)
        clone._rows = [list(row) for row in self._rows]
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SuspicionMatrix):
            return NotImplemented
        return self.n == other.n and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self.n, tuple(tuple(row) for row in self._rows)))

    def __repr__(self) -> str:
        return f"SuspicionMatrix(n={self.n}, entries={list(self.entries())})"
