"""The eventually consistent ``suspected`` matrix (Section VI-A).

``suspected[l][k]`` holds the last epoch in which process ``l`` (claimed
it) suspected process ``k``; 0 means never.  Each process owns and signs
its *row*; received rows are merged entry-wise by maximum, which makes the
matrix a join-semilattice replica: merges are commutative, associative,
and idempotent, so all correct processes converge to the same matrix no
matter the delivery order — even when faulty processes equivocate,
sending different rows to different peers (the union of the claims wins
everywhere).

The matrix deliberately keeps suspicions that were later cancelled by the
failure detector: "we take not only current suspicions into account, but
also suspicions previously raised and canceled" (Section I) — a process
that repeatedly delays messages keeps re-stamping recent epochs and is
eventually kept out of the quorum until the epoch moves past its entries.

Beyond the from-scratch :meth:`build_suspect_graph`, the matrix can
*maintain* one epoch's suspect graph incrementally
(:meth:`suspect_graph_view`): because entries are monotone (max-writes
only), a write to ``suspected[l][k]`` can change exactly one edge of the
tracked graph — the pair ``(l, k)`` — so ``mark``/``merge_row`` refresh
only the touched pairs instead of triggering an O(n²) rebuild.  The
DESIGN.md §5.13 notes spell out the band argument.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.crypto.digests import digest
from repro.graphs.suspect_graph import SuspectGraph
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId, validate_pid


class SuspicionMatrix:
    """``n x n`` epoch matrix with row-max merge."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"matrix needs n >= 1, got {n}")
        self.n = n
        self._rows: List[List[int]] = [[0] * (n + 1) for _ in range(n + 1)]
        # Monotone change counter: +1 per entry that actually increased.
        self.version = 0
        # --- incremental suspect-graph view (one tracked epoch band) ---
        self._view_graph: Optional[SuspectGraph] = None
        self._view_epoch: Optional[int] = None
        self._view_slack: Optional[int] = None
        # --- instrumentation for the hot-path benchmarks ---
        self.graph_builds = 0
        self.graph_reuses = 0
        self.incremental_edge_updates = 0
        # --- per-version row-digest cache (anti-entropy summaries) ---
        self._digests: Optional[Tuple[str, ...]] = None
        self._digests_version = -1
        # Optional write observer, called as ``observer(suspector,
        # suspectee, value)`` after an entry actually increased (never on
        # no-op writes).  The QS module installs one when observability is
        # enabled; ``None`` costs a single load-and-test per real write.
        self.observer: Optional[Callable[[int, int, int], None]] = None

    # ----------------------------------------------------------------- access

    def get(self, suspector: ProcessId, suspectee: ProcessId) -> int:
        validate_pid(suspector, self.n)
        validate_pid(suspectee, self.n)
        return self._rows[suspector][suspectee]

    def row(self, suspector: ProcessId) -> Tuple[int, ...]:
        """Copy of a row as a 1-based-dense tuple (index 0 unused, kept 0)."""
        validate_pid(suspector, self.n)
        return tuple(self._rows[suspector])

    def mark(self, suspector: ProcessId, suspectee: ProcessId, epoch: int) -> bool:
        """Record "suspector suspects suspectee in ``epoch``" (max-write).

        Returns ``True`` if the entry increased.  Diagonal writes are
        rejected: self-suspicion is meaningless and would put self-loops in
        the suspect graph.
        """
        validate_pid(suspector, self.n)
        validate_pid(suspectee, self.n)
        if suspector == suspectee:
            raise ConfigurationError(f"p{suspector} cannot suspect itself")
        if epoch < 0:
            raise ConfigurationError(f"epoch must be >= 0, got {epoch}")
        if epoch > self._rows[suspector][suspectee]:
            self._rows[suspector][suspectee] = epoch
            self.version += 1
            self._refresh_view_edge(suspector, suspectee)
            if self.observer is not None:
                self.observer(suspector, suspectee, epoch)
            return True
        return False

    def merge_row(self, suspector: ProcessId, values: Sequence[int]) -> bool:
        """Entry-wise max-merge of a received row; returns "changed".

        ``values`` may be 0-based dense of length ``n`` or 1-based dense of
        length ``n + 1`` (the wire format of :meth:`row`).  Diagonal and
        malformed entries are ignored rather than rejected — the row may
        come from a Byzantine peer and dropping garbage silently is the
        correct protocol response.
        """
        validate_pid(suspector, self.n)
        if len(values) == self.n:
            dense = [0, *values]
        elif len(values) == self.n + 1:
            dense = list(values)
        else:
            return False  # wrong arity: Byzantine garbage, ignore
        row = self._rows[suspector]
        if dense == row:
            return False  # gossip echo of exactly what we already hold
        # type-is-int rejects bools and Byzantine garbage in one check;
        # entries are >= 0, so value > entry already implies value > 0,
        # which makes a separate negative-value test redundant.  The zip
        # comprehension scans at C speed — most received rows change
        # nothing.  ``i`` guards the padding slot: a Byzantine 1-based row
        # may carry a nonzero index 0, which must never become an entry.
        increased = [
            i
            for i, (value, entry) in enumerate(zip(dense, row))
            if i and type(value) is int and value > entry
        ]
        changed = False
        observer = self.observer
        for suspectee in increased:
            if suspectee == suspector:
                continue
            row[suspectee] = dense[suspectee]
            changed = True
            self.version += 1
            self._refresh_view_edge(suspector, suspectee)
            if observer is not None:
                observer(suspector, suspectee, dense[suspectee])
        return changed

    # ----------------------------------------------------------- graph & views

    @staticmethod
    def _in_band(value: int, epoch: int, slack: Optional[int]) -> bool:
        return value >= epoch and (slack is None or value <= epoch + slack)

    def build_suspect_graph(self, epoch: int, slack: Optional[int] = None) -> SuspectGraph:
        """Suspect graph for ``epoch`` (Section VI-B), built from scratch.

        Nodes ``l`` and ``k`` are connected iff either suspected the other
        in ``epoch`` or later: ``suspected[l][k] >= epoch or
        suspected[k][l] >= epoch``.

        ``slack`` (optional) additionally requires ``value <= epoch +
        slack``: *future-dated* suspicions far beyond the local epoch are
        ignored until epochs legitimately catch up.  Correct processes
        only ever stamp (roughly) their current epoch, so a generous
        slack never discounts honest suspicions — but it defuses the
        epoch-inflation attack, where a Byzantine row stamped with an
        absurd epoch would otherwise pin its edges through a
        correspondingly absurd number of epoch advances (DESIGN.md §5.12).
        ``None`` gives the paper-literal unbounded semantics.
        """
        if epoch < 1:
            raise ConfigurationError(f"epoch must be >= 1, got {epoch}")
        if slack is not None and slack < 0:
            raise ConfigurationError(f"slack must be >= 0, got {slack}")
        upper = None if slack is None else epoch + slack

        def in_band(value: int) -> bool:
            return value >= epoch and (upper is None or value <= upper)

        graph = SuspectGraph(self.n)
        for l in range(1, self.n + 1):
            row = self._rows[l]
            for k in range(l + 1, self.n + 1):
                if in_band(row[k]) or in_band(self._rows[k][l]):
                    graph.add_edge(l, k)
        return graph

    def suspect_graph_view(self, epoch: int, slack: Optional[int] = None) -> SuspectGraph:
        """The *maintained* suspect graph for ``epoch`` (Section VI-B).

        Equal to :meth:`build_suspect_graph` at every point in time, but
        kept up to date edge-by-edge as entries change, so repeated calls
        for the same ``(epoch, slack)`` cost O(1) instead of O(n²).
        Switching to a different epoch (or slack) re-tracks with one full
        rebuild.  The returned graph is live — callers must not mutate it
        and must not hold it across epoch switches.
        """
        if (
            self._view_graph is not None
            and self._view_epoch == epoch
            and self._view_slack == slack
        ):
            self.graph_reuses += 1
            return self._view_graph
        self._view_graph = self.build_suspect_graph(epoch, slack)
        self._view_epoch = epoch
        self._view_slack = slack
        self.graph_builds += 1
        return self._view_graph

    def _refresh_view_edge(self, l: ProcessId, k: ProcessId) -> None:
        """Re-derive the tracked graph's ``(l, k)`` edge after an entry write.

        An entry write can change the band membership of exactly one pair,
        so this is the entire incremental maintenance step.
        """
        graph = self._view_graph
        if graph is None:
            return
        epoch, slack = self._view_epoch, self._view_slack
        present = self._in_band(self._rows[l][k], epoch, slack) or self._in_band(
            self._rows[k][l], epoch, slack
        )
        if present:
            if graph.add_edge(l, k):
                self.incremental_edge_updates += 1
        elif graph.remove_edge(l, k):
            self.incremental_edge_updates += 1

    def iter_probe_graphs(
        self, start_epoch: int, candidates: Sequence[int], slack: Optional[int] = None
    ) -> Iterator[Tuple[int, SuspectGraph]]:
        """Yield ``(epoch, graph)`` for ascending candidate epochs.

        Used by the next-viable-epoch probe: instead of rebuilding the
        suspect graph from scratch at every candidate threshold, one
        working graph is carried forward and only the pairs whose band
        membership can change between consecutive candidates are
        re-derived.  A pair's edge presence is a step function of the
        epoch, changing only at ``value + 1`` (the entry leaves the band)
        and ``value - slack`` (a future-dated entry enters it), so those
        boundaries are the only refresh points.

        ``candidates`` must be ascending and all ``> start_epoch``.  The
        yielded graph is the same (mutating) working object each time —
        consume it before advancing the iterator.
        """
        working = self.suspect_graph_view(start_epoch, slack).copy()
        boundaries: List[Tuple[int, int, int]] = []
        for l in range(1, self.n + 1):
            row = self._rows[l]
            for k in range(l + 1, self.n + 1):
                for value in (row[k], self._rows[k][l]):
                    if not value:
                        continue
                    if value + 1 > start_epoch:
                        boundaries.append((value + 1, l, k))
                    if slack is not None and value - slack > start_epoch:
                        boundaries.append((value - slack, l, k))
        boundaries.sort()
        index = 0
        for candidate in candidates:
            touched = set()
            while index < len(boundaries) and boundaries[index][0] <= candidate:
                touched.add(boundaries[index][1:])
                index += 1
            for l, k in touched:
                present = self._in_band(self._rows[l][k], candidate, slack) or (
                    self._in_band(self._rows[k][l], candidate, slack)
                )
                if present:
                    working.add_edge(l, k)
                else:
                    working.remove_edge(l, k)
            yield candidate, working

    def row_digests(self) -> Tuple[str, ...]:
        """Digest of every row (index 0 included), for anti-entropy probes.

        Two replicas hold identical row ``l`` iff their ``row_digests()[l]``
        agree (collision-resistance caveat aside), so a periodic digest
        exchange can identify exactly which rows diverge without shipping
        the matrix.  Cached per :attr:`version` — the monotone change
        counter — so quiescent periods recompute nothing.
        """
        if self._digests_version != self.version:
            self._digests = tuple(digest(tuple(row)) for row in self._rows)
            self._digests_version = self.version
        assert self._digests is not None
        return self._digests

    def entries(self) -> Iterable[Tuple[int, int, int]]:
        """Yield all nonzero ``(suspector, suspectee, epoch)`` entries."""
        for l in range(1, self.n + 1):
            for k in range(1, self.n + 1):
                if self._rows[l][k]:
                    yield (l, k, self._rows[l][k])

    def copy(self) -> "SuspicionMatrix":
        clone = SuspicionMatrix(self.n)
        clone._rows = [list(row) for row in self._rows]
        clone.version = self.version
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SuspicionMatrix):
            return NotImplemented
        return self.n == other.n and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self.n, tuple(tuple(row) for row in self._rows)))

    def __repr__(self) -> str:
        return f"SuspicionMatrix(n={self.n}, entries={list(self.entries())})"
