"""Simulated cryptographic primitives.

The paper assumes "cryptographic primitives cannot be broken" (Section IV).
We enforce exactly that assumption by construction: signatures are MACs
computed over a canonical encoding with a per-process secret held in a
:class:`KeyRegistry`, and the simulation hands each process an
:class:`Authenticator` that can *sign only as itself* but verify anyone.
A Byzantine process can therefore equivocate (sign two conflicting messages
of its own) but can never forge another process's signature — matching the
adversary model of the paper.
"""

from repro.crypto.digests import digest, canonical_encode
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import Signature, sign_payload, verify_payload
from repro.crypto.authenticator import Authenticator, SignedMessage

__all__ = [
    "digest",
    "canonical_encode",
    "KeyRegistry",
    "Signature",
    "sign_payload",
    "verify_payload",
    "Authenticator",
    "SignedMessage",
]
