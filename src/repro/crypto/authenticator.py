"""Per-process signing/verification capability and signed envelopes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import Signature, sign_payload, verify_payload
from repro.util.errors import AuthenticationError
from repro.util.ids import ProcessId, validate_pid


@dataclass(frozen=True)
class SignedMessage:
    """A payload together with its signature — the paper's ``<m>_sigma_i``.

    ``payload`` is expected to be canonically encodable (see
    :mod:`repro.crypto.digests`); protocol message dataclasses implement
    ``canonical()`` for this purpose.
    """

    payload: Any
    signature: Signature

    @property
    def signer(self) -> ProcessId:
        return self.signature.signer

    def canonical(self) -> Any:
        return ("signed", self.payload, self.signature.canonical())


# Per-object verification memo.  A broadcast hands the *same*
# SignedMessage object to every receiver; keying by ``id`` (with the
# message and registry pinned in the value, so a recycled id can never
# alias) answers the n-1 repeat verifications with one dict hit and no
# payload re-hashing.  Cleared wholesale when full.
_VERIFY_MEMO: dict = {}
_VERIFY_MEMO_LIMIT = 65536


class Authenticator:
    """Signing capability bound to one process id.

    The simulation constructs one authenticator per process.  Because the
    instance holds only its own id (the registry's secrets are reached via
    the registry it shares with everyone), a Byzantine process exercising
    this API can equivocate but cannot impersonate others — the paper's
    "cryptographic primitives cannot be broken" assumption.
    """

    def __init__(self, registry: KeyRegistry, pid: ProcessId) -> None:
        validate_pid(pid, registry.n)
        self._registry = registry
        self.pid = pid

    @property
    def registry(self) -> KeyRegistry:
        """The shared key registry (read-only; used to derive link MACs)."""
        return self._registry

    def sign(self, payload: Any) -> SignedMessage:
        """Sign a payload as this process."""
        return SignedMessage(payload, sign_payload(self._registry, self.pid, payload))

    def verify(self, message: SignedMessage) -> bool:
        """Check a signed message; ``False`` on any mismatch."""
        key = id(message)
        hit = _VERIFY_MEMO.get(key)
        if hit is not None and hit[0] is message and hit[1] is self._registry:
            return hit[2]
        result = verify_payload(self._registry, message.signature, message.payload)
        if len(_VERIFY_MEMO) >= _VERIFY_MEMO_LIMIT:
            _VERIFY_MEMO.clear()
        _VERIFY_MEMO[key] = (message, self._registry, result)
        return result

    def require_valid(self, message: SignedMessage) -> SignedMessage:
        """Verify or raise :class:`AuthenticationError` (harness helper)."""
        if not self.verify(message):
            raise AuthenticationError(
                f"signature of p{message.signer} failed verification at p{self.pid}"
            )
        return message
