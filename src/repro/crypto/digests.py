"""Canonical encoding and digests for message payloads.

Signatures and request hashes must be computed over a *canonical* byte
encoding so that logically equal payloads produce equal digests regardless
of dict insertion order or set iteration order.  The encoder handles the
small vocabulary of types protocol messages are built from: ``None``,
bools, ints, floats, strings, bytes, and (possibly nested) tuples, lists,
sets, frozensets, and dicts.  Dataclasses used in messages expose a
``canonical()`` method returning such a structure.
"""

from __future__ import annotations

import hashlib
from typing import Any


def canonical_encode(value: Any) -> bytes:
    """Encode a payload structure into canonical bytes.

    The encoding is injective on the supported vocabulary: each value is
    prefixed with a type tag and variable-length parts carry their length,
    so distinct structures never collide.
    """
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += b"N"
    elif isinstance(value, bool):
        out += b"T" if value else b"F"
    elif isinstance(value, int):
        text = str(value).encode("ascii")
        out += b"I" + str(len(text)).encode("ascii") + b":" + text
    elif isinstance(value, float):
        text = repr(value).encode("ascii")
        out += b"D" + str(len(text)).encode("ascii") + b":" + text
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out += b"S" + str(len(data)).encode("ascii") + b":" + data
    elif isinstance(value, bytes):
        out += b"B" + str(len(value)).encode("ascii") + b":" + value
    elif isinstance(value, (tuple, list)):
        out += b"L" + str(len(value)).encode("ascii") + b":"
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, (set, frozenset)):
        encoded_items = sorted(canonical_encode(item) for item in value)
        out += b"E" + str(len(encoded_items)).encode("ascii") + b":"
        for item in encoded_items:
            out += item
    elif isinstance(value, dict):
        encoded_pairs = sorted(
            (canonical_encode(k), canonical_encode(v)) for k, v in value.items()
        )
        out += b"M" + str(len(encoded_pairs)).encode("ascii") + b":"
        for key_bytes, value_bytes in encoded_pairs:
            out += key_bytes
            out += value_bytes
    elif hasattr(value, "canonical"):
        out += b"O"
        _encode_into(value.canonical(), out)
    else:
        raise TypeError(f"cannot canonically encode {type(value).__name__}: {value!r}")


# Encoding memo for signing/verification.  A broadcast signs one payload
# object and every receiver re-encodes it to verify; at n=30 that made
# canonical encoding the single largest cost on the UPDATE hot path.  The
# cache is keyed by payload *equality* (message payloads are frozen
# dataclasses and heartbeat tuples, both hashing by value), so it is a
# pure memo of a pure function — a tampered copy is a different key and
# still encodes/verifies honestly.  The cache is cleared wholesale when
# full, which only costs re-encodes, never correctness.
_ENCODE_CACHE: dict = {}
_ENCODE_LIMIT = 65536


def canonical_encode_cached(value: Any) -> bytes:
    """Memoized :func:`canonical_encode` for hashable values.

    Unhashable containers fall back to a direct encode; the result is
    always identical to :func:`canonical_encode`.
    """
    try:
        cached = _ENCODE_CACHE.get(value)
    except TypeError:  # unhashable: cannot memoize at all
        return canonical_encode(value)
    if cached is None:
        cached = canonical_encode(value)
        if len(_ENCODE_CACHE) >= _ENCODE_LIMIT:
            _ENCODE_CACHE.clear()
        _ENCODE_CACHE[value] = cached
    return cached


def digest(value: Any) -> str:
    """Hex digest of a payload's canonical encoding (SHA-256, truncated).

    Truncation to 16 bytes keeps traces readable; collision resistance at
    simulation scale is untouched.
    """
    return hashlib.sha256(canonical_encode_cached(value)).hexdigest()[:32]
