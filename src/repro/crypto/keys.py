"""Per-process secret keys for the simulated signature scheme."""

from __future__ import annotations

import hashlib
from typing import Dict

from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId, validate_pid


class KeyRegistry:
    """Holds the secret MAC key of every process in one system instance.

    The registry is the simulation's stand-in for a PKI: signing requires
    the signer's secret, verification is done *through the registry* (the
    analogue of knowing everyone's public key).  Processes never see the
    registry directly — they get an :class:`~repro.crypto.Authenticator`
    bound to their own id, so the type system enforces that process ``i``
    can only produce signatures attributable to ``i``.
    """

    def __init__(self, n: int, system_nonce: str = "qs-repro") -> None:
        if n < 1:
            raise ConfigurationError(f"key registry needs n >= 1, got {n}")
        self.n = n
        self._keys: Dict[int, bytes] = {
            pid: hashlib.sha256(f"{system_nonce}|key|{pid}".encode()).digest()
            for pid in range(1, n + 1)
        }

    def secret_for(self, pid: ProcessId) -> bytes:
        """Return the secret key of ``pid`` (harness use only)."""
        validate_pid(pid, self.n)
        return self._keys[pid]

    def __contains__(self, pid: object) -> bool:
        return isinstance(pid, int) and 1 <= pid <= self.n
