"""MAC-based simulated signatures over canonical payload encodings."""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from repro.crypto.digests import canonical_encode_cached
from repro.crypto.keys import KeyRegistry
from repro.util.ids import ProcessId


@dataclass(frozen=True)
class Signature:
    """A signature: claimed signer id plus MAC tag over the payload.

    Equality/hash make signatures usable in sets and as message parts; the
    tag alone is never trusted — verification always recomputes it from the
    claimed signer's registry key.
    """

    signer: ProcessId
    tag: bytes

    def canonical(self) -> Any:
        return ("sig", self.signer, self.tag)


def sign_payload(registry: KeyRegistry, signer: ProcessId, payload: Any) -> Signature:
    """Sign a payload with the signer's registry secret."""
    secret = registry.secret_for(signer)
    tag = hmac.new(secret, canonical_encode_cached(payload), hashlib.sha256).digest()
    return Signature(signer=signer, tag=tag)


# Verification memo.  A broadcast's signature is verified once per
# receiver, i.e. n-1 times for identical inputs; the outcome is a pure
# function of (secret, encoded payload, tag), so the full triple is the
# memo key — registries with different secrets can never collide.  Cleared
# wholesale when full (re-verification, never a wrong answer).
_VERIFY_CACHE: dict = {}
_VERIFY_LIMIT = 65536


def verify_payload(registry: KeyRegistry, signature: Signature, payload: Any) -> bool:
    """Check a signature against a payload.

    Returns ``False`` (never raises) for unknown signers or wrong tags, so
    protocol code can treat bad signatures as silently droppable, matching
    the "correctly authenticated" filter in the paper's failure detector.
    """
    if signature.signer not in registry:
        return False
    secret = registry.secret_for(signature.signer)
    encoded = canonical_encode_cached(payload)
    key = (secret, signature.tag, encoded)
    cached = _VERIFY_CACHE.get(key)
    if cached is None:
        expected = hmac.new(secret, encoded, hashlib.sha256).digest()
        cached = hmac.compare_digest(expected, signature.tag)
        if len(_VERIFY_CACHE) >= _VERIFY_LIMIT:
            _VERIFY_CACHE.clear()
        _VERIFY_CACHE[key] = cached
    return cached
