"""MAC-based simulated signatures over canonical payload encodings."""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from repro.crypto.digests import canonical_encode
from repro.crypto.keys import KeyRegistry
from repro.util.ids import ProcessId


@dataclass(frozen=True)
class Signature:
    """A signature: claimed signer id plus MAC tag over the payload.

    Equality/hash make signatures usable in sets and as message parts; the
    tag alone is never trusted — verification always recomputes it from the
    claimed signer's registry key.
    """

    signer: ProcessId
    tag: bytes

    def canonical(self) -> Any:
        return ("sig", self.signer, self.tag)


def sign_payload(registry: KeyRegistry, signer: ProcessId, payload: Any) -> Signature:
    """Sign a payload with the signer's registry secret."""
    secret = registry.secret_for(signer)
    tag = hmac.new(secret, canonical_encode(payload), hashlib.sha256).digest()
    return Signature(signer=signer, tag=tag)


def verify_payload(registry: KeyRegistry, signature: Signature, payload: Any) -> bool:
    """Check a signature against a payload.

    Returns ``False`` (never raises) for unknown signers or wrong tags, so
    protocol code can treat bad signatures as silently droppable, matching
    the "correctly authenticated" filter in the paper's failure detector.
    """
    if signature.signer not in registry:
        return False
    secret = registry.secret_for(signature.signer)
    expected = hmac.new(secret, canonical_encode(payload), hashlib.sha256).digest()
    return hmac.compare_digest(expected, signature.tag)
