"""Fault injection: the paper's failure taxonomy made executable.

- :mod:`repro.failures.classification` — Section II's failure classes
  (commission, omission, repeated omission, timing, increasing timing)
  and their detectability levels.
- :class:`Adversary` — attaches failure *behaviours* to chosen processes:
  crashes, per-link (possibly probabilistic or time-bounded) omission,
  fixed and increasing delays, and payload rewriting, all enforced through
  the network's interceptor hook so only faulty processes' traffic is
  touched.
- :mod:`repro.failures.strategies` — protocol-aware attack strategies,
  including the Theorem 4 lower-bound adversary that concentrates false
  suspicions on an ``F+2`` node set to force the maximum number of quorum
  changes.

.. deprecated:: E28
   For *new* adversarial scenarios prefer :mod:`repro.adversary` — the
   programmable engine whose strategies observe the world each tick
   instead of replaying static rule lists.  Everything here keeps
   working (the engine itself runs on this module's rule layer, and
   :class:`LowerBoundStrategy` remains the scripted reference that the
   engine port is equivalence-tested against), but the scripted
   strategies are frozen: new attack policies land in
   :mod:`repro.adversary.strategies`.
"""

from repro.failures.classification import FailureClass, Detectability, DETECTABILITY
from repro.failures.adversary import Adversary, LinkRule
from repro.failures.strategies import (
    FalseSuspicionInjector,
    LowerBoundStrategy,
    RandomSuspicionStrategy,
)

__all__ = [
    "FailureClass",
    "Detectability",
    "DETECTABILITY",
    "Adversary",
    "LinkRule",
    "FalseSuspicionInjector",
    "LowerBoundStrategy",
    "RandomSuspicionStrategy",
]
