"""The adversary: attaches failure behaviours to faulty processes.

All manipulation flows through :meth:`repro.sim.network.Network.set_interceptor`,
so the adversary can only touch traffic *sent by* processes it controls —
channels between correct processes stay reliable, per the system model.

Behaviours are expressed as ordered :class:`LinkRule` lists.  The match
contract, which matters once several behaviours stack on one faulty
process (audited for the E28 adversary engine):

- Rules are consulted in **attach order**; the first rule that *matches*
  the envelope (destination, kind, time window) **and passes its
  probability draw** decides the message's fate.  Effects never combine:
  a matching drop rule shadows a later delay rule for the same traffic,
  and two delay rules never add up.
- A probabilistic rule whose coin fails **falls through** to later rules
  rather than delivering outright — "sporadically omit, otherwise apply
  the next behaviour" is expressible, but so is accidental shadowing, so
  strategies that stack behaviours should scope rules by ``dsts``/
  ``kinds`` or use distinct :attr:`LinkRule.tag` values and
  :meth:`Adversary.clear_rules` to replace only their own rules.
- An *adaptive* behaviour must not just keep appending: attach order
  means its oldest (stale) rules would shadow every refresh.  Re-point
  it with ``clear_rules(pid, tag=...)`` + ``add_rule`` instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.failures.classification import FailureClass
from repro.sim.network import DELIVER, DROP, Envelope, SendAction
from repro.sim.runtime import Simulation
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId


@dataclass
class LinkRule:
    """One traffic-manipulation rule for a faulty process's sends.

    Attributes:
        dsts: destinations the rule applies to (``None`` = every peer) —
            per-link granularity is the point: the paper's detector must
            catch omissions "even if they only affect individual links".
        kinds: message kinds the rule applies to (``None`` = all).
        start/end: simulation-time window in which the rule is active.
        drop: omission failure — the message is never sent.
        extra_delay: timing failure — constant extra latency.
        delay_growth: increasing timing failure — extra latency grows by
            this much per time unit elapsed since ``start``.
        probability: apply the rule to each message with this probability
            (sporadic omission vs. repeated omission).  When the draw
            fails the message falls through to the *next* rule, it is not
            delivered outright.
        failure_class: taxonomy tag, for traces and tests.
        tag: owner label for stacked behaviours — lets one strategy
            replace its own rules (:meth:`Adversary.clear_rules`) without
            clobbering rules other strategies attached to the same pid.
    """

    dsts: Optional[Set[int]] = None
    kinds: Optional[Set[str]] = None
    start: float = 0.0
    end: float = math.inf
    drop: bool = False
    extra_delay: float = 0.0
    delay_growth: float = 0.0
    probability: float = 1.0
    failure_class: FailureClass = FailureClass.OMISSION
    tag: Optional[str] = None

    def matches(self, envelope: Envelope) -> bool:
        if not self.start <= envelope.sent_at < self.end:
            return False
        if self.dsts is not None and envelope.dst not in self.dsts:
            return False
        if self.kinds is not None and envelope.kind not in self.kinds:
            return False
        return True

    def action_for(self, envelope: Envelope) -> SendAction:
        if self.drop:
            return SendAction(verdict=DROP)
        delay = self.extra_delay + self.delay_growth * max(
            0.0, envelope.sent_at - self.start
        )
        return SendAction(verdict=DELIVER, extra_delay=delay)


class Adversary:
    """Controls up to ``f`` faulty processes in one simulation."""

    def __init__(self, sim: Simulation, f_max: Optional[int] = None) -> None:
        self.sim = sim
        self.f_max = f_max
        self.faulty: Set[int] = set()
        self._rules: Dict[int, List[LinkRule]] = {}
        self._rng = sim.rng.child("adversary")

    # --------------------------------------------------------------- control

    def corrupt(self, pid: ProcessId) -> None:
        """Mark a process faulty (idempotent); installs the interceptor."""
        if pid in self.faulty:
            return
        if self.f_max is not None and len(self.faulty) >= self.f_max:
            raise ConfigurationError(
                f"adversary already controls {self.f_max} processes"
            )
        self.faulty.add(pid)
        self._rules.setdefault(pid, [])
        self.sim.network.set_interceptor(pid, self._make_interceptor(pid))
        self.sim.log.append(self.sim.now, 0, "adv.corrupt", target=pid)

    def correct_processes(self) -> List[int]:
        return [pid for pid in self.sim.pids if pid not in self.faulty]

    def add_rule(self, pid: ProcessId, rule: LinkRule) -> None:
        """Attach a rule to a faulty process (corrupts it if needed).

        Rules are consulted in attach order — see the module docstring
        for the stacking contract.
        """
        self.corrupt(pid)
        self._rules[pid].append(rule)

    def rules(self, pid: ProcessId) -> Tuple[LinkRule, ...]:
        """The rules currently attached to ``pid``, in match order."""
        return tuple(self._rules.get(pid, ()))

    def clear_rules(self, pid: ProcessId, tag: Optional[str] = None) -> int:
        """Detach rules from ``pid``; returns how many were removed.

        With a ``tag`` only that owner's rules go (relative order of the
        survivors is preserved); with ``None`` every rule goes.  The pid
        stays corrupted — a faulty process never becomes correct again —
        so its interceptor remains installed and simply delivers until
        new rules arrive.
        """
        existing = self._rules.get(pid)
        if not existing:
            return 0
        if tag is None:
            removed = len(existing)
            existing.clear()
            return removed
        survivors = [rule for rule in existing if rule.tag != tag]
        removed = len(existing) - len(survivors)
        self._rules[pid] = survivors
        return removed

    # ----------------------------------------------------- behaviour shortcuts

    def crash(self, pid: ProcessId, at: float) -> None:
        """Benign crash at a given time (stops the host entirely)."""
        self.corrupt(pid)
        self.sim.at(at, lambda: self.sim.host(pid).crash(), label=f"crash-p{pid}")

    def omit_links(
        self,
        pid: ProcessId,
        dsts: Optional[Set[int]] = None,
        kinds: Optional[Set[str]] = None,
        start: float = 0.0,
        end: float = math.inf,
        probability: float = 1.0,
    ) -> None:
        """Omission on selected links: repeated when the window is open-ended."""
        failure_class = (
            FailureClass.REPEATED_OMISSION if end == math.inf else FailureClass.OMISSION
        )
        self.add_rule(
            pid,
            LinkRule(
                dsts=dsts,
                kinds=kinds,
                start=start,
                end=end,
                drop=True,
                probability=probability,
                failure_class=failure_class,
            ),
        )

    def delay_links(
        self,
        pid: ProcessId,
        extra_delay: float,
        dsts: Optional[Set[int]] = None,
        kinds: Optional[Set[str]] = None,
        start: float = 0.0,
        end: float = math.inf,
    ) -> None:
        """Bounded timing failure on selected links."""
        self.add_rule(
            pid,
            LinkRule(
                dsts=dsts,
                kinds=kinds,
                start=start,
                end=end,
                extra_delay=extra_delay,
                failure_class=FailureClass.TIMING,
            ),
        )

    def increasing_delay(
        self, pid: ProcessId, growth_per_unit: float, start: float = 0.0
    ) -> None:
        """Increasing timing failure: delay grows without bound over time."""
        self.add_rule(
            pid,
            LinkRule(
                start=start,
                delay_growth=growth_per_unit,
                failure_class=FailureClass.INCREASING_TIMING,
            ),
        )

    # -------------------------------------------------------------- plumbing

    def _make_interceptor(self, pid: ProcessId) -> Callable[[Envelope], SendAction]:
        def intercept(envelope: Envelope) -> SendAction:
            # First rule that matches AND passes its probability draw wins;
            # a failed draw falls through (module docstring contract).
            for rule in self._rules.get(pid, ()):
                if not rule.matches(envelope):
                    continue
                if rule.probability < 1.0 and not self._rng.coin(rule.probability):
                    continue
                return rule.action_for(envelope)
            return SendAction()

        return intercept
