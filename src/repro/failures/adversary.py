"""The adversary: attaches failure behaviours to faulty processes.

All manipulation flows through :meth:`repro.sim.network.Network.set_interceptor`,
so the adversary can only touch traffic *sent by* processes it controls —
channels between correct processes stay reliable, per the system model.
Behaviours are expressed as ordered :class:`LinkRule` lists; the first
matching rule decides a message's fate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.failures.classification import FailureClass
from repro.sim.network import DELIVER, DROP, Envelope, SendAction
from repro.sim.runtime import Simulation
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId


@dataclass
class LinkRule:
    """One traffic-manipulation rule for a faulty process's sends.

    Attributes:
        dsts: destinations the rule applies to (``None`` = every peer) —
            per-link granularity is the point: the paper's detector must
            catch omissions "even if they only affect individual links".
        kinds: message kinds the rule applies to (``None`` = all).
        start/end: simulation-time window in which the rule is active.
        drop: omission failure — the message is never sent.
        extra_delay: timing failure — constant extra latency.
        delay_growth: increasing timing failure — extra latency grows by
            this much per time unit elapsed since ``start``.
        probability: apply the rule to each message with this probability
            (sporadic omission vs. repeated omission).
        failure_class: taxonomy tag, for traces and tests.
    """

    dsts: Optional[Set[int]] = None
    kinds: Optional[Set[str]] = None
    start: float = 0.0
    end: float = math.inf
    drop: bool = False
    extra_delay: float = 0.0
    delay_growth: float = 0.0
    probability: float = 1.0
    failure_class: FailureClass = FailureClass.OMISSION

    def matches(self, envelope: Envelope) -> bool:
        if not self.start <= envelope.sent_at < self.end:
            return False
        if self.dsts is not None and envelope.dst not in self.dsts:
            return False
        if self.kinds is not None and envelope.kind not in self.kinds:
            return False
        return True

    def action_for(self, envelope: Envelope) -> SendAction:
        if self.drop:
            return SendAction(verdict=DROP)
        delay = self.extra_delay + self.delay_growth * max(
            0.0, envelope.sent_at - self.start
        )
        return SendAction(verdict=DELIVER, extra_delay=delay)


class Adversary:
    """Controls up to ``f`` faulty processes in one simulation."""

    def __init__(self, sim: Simulation, f_max: Optional[int] = None) -> None:
        self.sim = sim
        self.f_max = f_max
        self.faulty: Set[int] = set()
        self._rules: Dict[int, List[LinkRule]] = {}
        self._rng = sim.rng.child("adversary")

    # --------------------------------------------------------------- control

    def corrupt(self, pid: ProcessId) -> None:
        """Mark a process faulty (idempotent); installs the interceptor."""
        if pid in self.faulty:
            return
        if self.f_max is not None and len(self.faulty) >= self.f_max:
            raise ConfigurationError(
                f"adversary already controls {self.f_max} processes"
            )
        self.faulty.add(pid)
        self._rules.setdefault(pid, [])
        self.sim.network.set_interceptor(pid, self._make_interceptor(pid))
        self.sim.log.append(self.sim.now, 0, "adv.corrupt", target=pid)

    def correct_processes(self) -> List[int]:
        return [pid for pid in self.sim.pids if pid not in self.faulty]

    def add_rule(self, pid: ProcessId, rule: LinkRule) -> None:
        """Attach a rule to a faulty process (corrupts it if needed)."""
        self.corrupt(pid)
        self._rules[pid].append(rule)

    # ----------------------------------------------------- behaviour shortcuts

    def crash(self, pid: ProcessId, at: float) -> None:
        """Benign crash at a given time (stops the host entirely)."""
        self.corrupt(pid)
        self.sim.at(at, lambda: self.sim.host(pid).crash(), label=f"crash-p{pid}")

    def omit_links(
        self,
        pid: ProcessId,
        dsts: Optional[Set[int]] = None,
        kinds: Optional[Set[str]] = None,
        start: float = 0.0,
        end: float = math.inf,
        probability: float = 1.0,
    ) -> None:
        """Omission on selected links: repeated when the window is open-ended."""
        failure_class = (
            FailureClass.REPEATED_OMISSION if end == math.inf else FailureClass.OMISSION
        )
        self.add_rule(
            pid,
            LinkRule(
                dsts=dsts,
                kinds=kinds,
                start=start,
                end=end,
                drop=True,
                probability=probability,
                failure_class=failure_class,
            ),
        )

    def delay_links(
        self,
        pid: ProcessId,
        extra_delay: float,
        dsts: Optional[Set[int]] = None,
        kinds: Optional[Set[str]] = None,
        start: float = 0.0,
        end: float = math.inf,
    ) -> None:
        """Bounded timing failure on selected links."""
        self.add_rule(
            pid,
            LinkRule(
                dsts=dsts,
                kinds=kinds,
                start=start,
                end=end,
                extra_delay=extra_delay,
                failure_class=FailureClass.TIMING,
            ),
        )

    def increasing_delay(
        self, pid: ProcessId, growth_per_unit: float, start: float = 0.0
    ) -> None:
        """Increasing timing failure: delay grows without bound over time."""
        self.add_rule(
            pid,
            LinkRule(
                start=start,
                delay_growth=growth_per_unit,
                failure_class=FailureClass.INCREASING_TIMING,
            ),
        )

    # -------------------------------------------------------------- plumbing

    def _make_interceptor(self, pid: ProcessId) -> Callable[[Envelope], SendAction]:
        def intercept(envelope: Envelope) -> SendAction:
            for rule in self._rules.get(pid, ()):  # first match wins
                if not rule.matches(envelope):
                    continue
                if rule.probability < 1.0 and not self._rng.coin(rule.probability):
                    continue
                return rule.action_for(envelope)
            return SendAction()

        return intercept
