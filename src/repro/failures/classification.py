"""Failure classification (Section II of the paper).

The paper distinguishes five failure classes and argues which can be
detected, and how *permanently*.  The enums below encode that taxonomy so
tests and documentation can reference it; fault behaviours in
:mod:`repro.failures.adversary` are tagged with the class they realize,
and the failure-detector property tests assert the promised detectability
for each class.
"""

from __future__ import annotations

import enum
from typing import Dict


class FailureClass(enum.Enum):
    """Section II failure classes."""

    COMMISSION = "commission"
    """A correctly authenticated message that should not have been sent
    (fabrication, altered parameters, equivocation)."""

    OMISSION = "omission"
    """A message that should have been sent was not (finitely often)."""

    REPEATED_OMISSION = "repeated-omission"
    """Infinitely many omissions — e.g. a crashed process, or a link the
    faulty process permanently mutes."""

    TIMING = "timing"
    """Sending or processing of a message is delayed (boundedly)."""

    INCREASING_TIMING = "increasing-timing"
    """No bound Delta exists on the process's response delay."""


class Detectability(enum.Enum):
    """How strongly a failure class can be detected (Section II).

    *Permanent*: a suspicion is raised and never cancelled.  *Eventual*:
    suspicions are raised (and possibly cancelled) infinitely often, the
    crash-recovery style of detection.  *None*: detection is impossible in
    general (e.g. a single omission that is later compensated, or any
    timing failure in a fully asynchronous system).
    """

    PERMANENT = "permanent"
    EVENTUAL = "eventual"
    NONE = "none"


DETECTABILITY: Dict[FailureClass, Detectability] = {
    # Provable deviations (equivocation, malformed messages) are detected
    # permanently via <DETECTED>; many commission failures remain
    # undetectable, so this records the *achievable* level for the
    # detectable subset the paper's protocols exploit.
    FailureClass.COMMISSION: Detectability.PERMANENT,
    # The paper deliberately does NOT detect single omissions permanently:
    # correct processes must be free to drop some messages (e.g. while
    # catching up after a short downtime).
    FailureClass.OMISSION: Detectability.NONE,
    FailureClass.REPEATED_OMISSION: Detectability.EVENTUAL,
    # Timing failures are undetectable in an asynchronous system; under
    # eventual synchrony a *bounded* delay eventually stops being
    # suspected once adaptive timeouts exceed it.
    FailureClass.TIMING: Detectability.NONE,
    FailureClass.INCREASING_TIMING: Detectability.EVENTUAL,
}
