"""Protocol-aware adversary strategies against Quorum Selection.

The key one is :class:`LowerBoundStrategy`, the Theorem 4 adversary: it
fixes ``f`` faulty processes and two correct *targets* (the set
``F+2``), waits for the correct processes to agree on a quorum, then
causes exactly one new suspicion between two quorum members inside
``F+2`` (never reusing a pair).  Every such suspicion violates the *no
suspicion* property for the current quorum and forces a change; the
theorem shows this can be repeated until ``C(f+2, 2)`` quorums have been
proposed, and the paper's simulations say Algorithm 1 meets that number
exactly.

Suspicions are caused in the way the proof allows:

- a faulty suspector issues a *false suspicion* against the other member
  (signing a dishonest ``UPDATE`` row — :class:`FalseSuspicionInjector`);
- both directions of a pair are interchangeable, so the faulty endpoint is
  always made the suspector.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.quorum_selection import QuorumSelectionModule
from repro.sim.runtime import Simulation
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId


class FalseSuspicionInjector:
    """Drives a faulty process's own QS module to emit false suspicions.

    A Byzantine process participating in Algorithm 1 can always stamp any
    victim in its *own* signed row — that is not a protocol violation that
    can be proven, merely a lie.  We reuse the module's code path so the
    lie is wire-format-perfect (correctly signed, monotone row).
    """

    def __init__(self, module: QuorumSelectionModule) -> None:
        self.module = module

    def suspect(self, victim: ProcessId) -> None:
        """Falsely suspect ``victim`` (keeps previous suspicions active)."""
        if victim == self.module.pid:
            raise ConfigurationError("cannot self-suspect: the matrix rejects it")
        current = self.module.suspecting
        self.module._update_suspicions(frozenset(current | {victim}))


class LowerBoundStrategy:
    """Theorem 4 adversary running online against a live simulation.

    Parameters:
        sim: the running simulation.
        modules: QS module per pid (faulty ones included — the adversary
            uses its processes' modules to sign false suspicions).
        faulty: the set ``F`` (size ``f``).
        targets: the two chosen correct processes (``F+2 = F | targets``).
        check_period: how often to poll for correct-process agreement.

    The strategy fires one suspicion per stabilization: once all correct
    processes report the same quorum and the previously fired pair is no
    longer jointly inside it, pick the next unused pair ``(a, b)`` with
    ``a, b`` in the current quorum, both in ``F+2``, at least one faulty —
    and have a faulty endpoint falsely suspect the other.  When both
    endpoints are faulty we could also use omissions; a false suspicion is
    observationally equivalent for Quorum Selection and keeps runs fast.
    """

    def __init__(
        self,
        sim: Simulation,
        modules: Dict[int, QuorumSelectionModule],
        faulty: Set[int],
        targets: Tuple[int, int],
        check_period: float = 1.0,
    ) -> None:
        if set(targets) & faulty:
            raise ConfigurationError("targets must be correct processes")
        if len(targets) != 2:
            raise ConfigurationError("exactly two correct targets required")
        self.sim = sim
        self.modules = modules
        self.faulty = set(faulty)
        self.targets = tuple(targets)
        self.f_plus_2: Set[int] = self.faulty | set(targets)
        self.check_period = check_period
        self.used_pairs: Set[Tuple[int, int]] = set()
        self.fired: List[Tuple[float, int, int]] = []
        self._last_pair: Optional[Tuple[int, int]] = None
        self.done = False

    # ------------------------------------------------------------ lifecycle

    def install(self) -> None:
        """Arm the polling loop (call before ``sim.run_until``)."""
        self.sim.at(self.check_period, self._tick, label="thm4-adversary")

    def _tick(self) -> None:
        if not self.done:
            self._maybe_fire()
            self.sim.scheduler.schedule(self.check_period, self._tick, label="thm4-adversary")

    # ------------------------------------------------------------- strategy

    def _correct_modules(self) -> List[QuorumSelectionModule]:
        return [m for pid, m in self.modules.items() if pid not in self.faulty]

    def _agreed_quorum(self) -> Optional[FrozenSet[int]]:
        quorums = {m.qlast for m in self._correct_modules()}
        return next(iter(quorums)) if len(quorums) == 1 else None

    def _maybe_fire(self) -> None:
        quorum = self._agreed_quorum()
        if quorum is None:
            return
        if self._last_pair is not None:
            a, b = self._last_pair
            if a in quorum and b in quorum:
                return  # previous suspicion not yet reflected
        pair = self._next_pair(quorum)
        if pair is None:
            self.done = True
            self.sim.log.append(self.sim.now, 0, "adv.thm4-done", fired=len(self.fired))
            return
        suspector, victim = pair
        FalseSuspicionInjector(self.modules[suspector]).suspect(victim)
        key = (min(suspector, victim), max(suspector, victim))
        self.used_pairs.add(key)
        self._last_pair = key
        self.fired.append((self.sim.now, suspector, victim))
        self.sim.log.append(
            self.sim.now, 0, "adv.false-suspicion", suspector=suspector, victim=victim
        )

    def _next_pair(self, quorum: FrozenSet[int]) -> Optional[Tuple[int, int]]:
        """Next unused (suspector, victim): suspector faulty, both in the
        quorum, both in ``F+2``."""
        members = sorted(self.f_plus_2 & quorum)
        for a, b in itertools.combinations(members, 2):
            if (a, b) in self.used_pairs:
                continue
            if a in self.faulty:
                return (a, b)
            if b in self.faulty:
                return (b, a)
        return None


class PartitionScheduleStrategy:
    """Replay a scripted sequence of network partitions and heals.

    ``timeline`` is a sequence of ``(time, groups)`` entries, ascending in
    time: ``groups`` is a sequence of process-id groups to partition into
    at that time, or ``None`` to heal.  Consecutive partition entries
    *re-partition* without healing in between — exactly the layout-change
    path whose held-traffic handling the network must get right — so this
    strategy doubles as the driver for partition churn experiments and the
    regression scenarios around it.
    """

    def __init__(
        self,
        sim: Simulation,
        timeline: Sequence[Tuple[float, Optional[Sequence[Sequence[int]]]]],
    ) -> None:
        previous = None
        for time, _ in timeline:
            if previous is not None and time < previous:
                raise ConfigurationError("partition timeline must be ascending in time")
            previous = time
        self.sim = sim
        self.timeline = list(timeline)
        self.applied: List[Tuple[float, Optional[Tuple[Tuple[int, ...], ...]]]] = []

    def install(self) -> None:
        for time, groups in self.timeline:
            frozen = (
                None if groups is None else tuple(tuple(group) for group in groups)
            )
            self.sim.at(time, lambda g=frozen: self._apply(g), label="partition-schedule")

    def _apply(self, groups: Optional[Tuple[Tuple[int, ...], ...]]) -> None:
        if groups is None:
            self.sim.network.heal()
        else:
            self.sim.network.partition(*[set(group) for group in groups])
        self.applied.append((self.sim.now, groups))


class RandomSuspicionStrategy:
    """Random adversary for the Theorem 3 sweep (E3).

    Every ``period`` time units, each faulty process falsely suspects a
    uniformly chosen victim with probability ``rate`` — unstructured
    background noise against which Algorithm 1's per-epoch bound must
    still hold.
    """

    def __init__(
        self,
        sim: Simulation,
        modules: Dict[int, QuorumSelectionModule],
        faulty: Set[int],
        period: float = 2.0,
        rate: float = 0.5,
        stop_at: float = float("inf"),
    ) -> None:
        self.sim = sim
        self.modules = modules
        self.faulty = sorted(faulty)
        self.period = period
        self.rate = rate
        self.stop_at = stop_at
        self._rng = sim.rng.child("random-strategy")
        self.fired: List[Tuple[float, int, int]] = []

    def install(self) -> None:
        self.sim.at(self.period, self._tick, label="random-adversary")

    def _tick(self) -> None:
        if self.sim.now >= self.stop_at:
            return
        n = self.sim.config.n
        for pid in self.faulty:
            if not self._rng.coin(self.rate):
                continue
            victim = self._rng.choice([v for v in range(1, n + 1) if v != pid])
            FalseSuspicionInjector(self.modules[pid]).suspect(victim)
            self.fired.append((self.sim.now, pid, victim))
        self.sim.scheduler.schedule(self.period, self._tick, label="random-adversary")
