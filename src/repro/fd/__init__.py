"""The paper's Byzantine failure detector (Section IV-B).

Doudou et al. showed Byzantine failure detection cannot be separated from
the application, so this detector is *expectation driven*: the application
tells it which message to expect from whom (``EXPECT``), reports proofs of
misbehaviour (``DETECTED``), and withdraws expectations around protocol
transitions (``CANCEL``).  The detector authenticates incoming messages,
delivers them upwards (``DELIVER``), and publishes the currently suspected
set (``SUSPECTED``) whenever it changes.

Properties implemented (and checkable via :mod:`repro.fd.properties`):

- *Expectation completeness* — an uncancelled expectation either gets a
  matching delivery or its source is (at least once) suspected.
- *Detection completeness* — a ``DETECTED`` process is suspected forever.
- *Eventual strong accuracy* — with eventually synchronous links and the
  adaptive timeout policy (timeouts double whenever a suspicion proves
  false), correct processes eventually never suspect each other.
"""

from repro.fd.expectations import Expectation, ExpectationHandle
from repro.fd.timers import TimeoutPolicy
from repro.fd.detector import FailureDetector
from repro.fd.heartbeat import HeartbeatModule, PingPongModule
from repro.fd.properties import (
    eventual_strong_accuracy_holds,
    detection_is_permanent,
    expectation_completeness_holds,
)

__all__ = [
    "Expectation",
    "ExpectationHandle",
    "TimeoutPolicy",
    "FailureDetector",
    "HeartbeatModule",
    "PingPongModule",
    "eventual_strong_accuracy_holds",
    "detection_is_permanent",
    "expectation_completeness_holds",
]
