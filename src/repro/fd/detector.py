"""The expectation-driven Byzantine failure detector (Section IV-B).

One :class:`FailureDetector` instance sits between the network and the
modules of a single process (Figure 1).  Responsibilities:

- authenticate received messages, dropping forgeries
  (``RECEIVE`` -> ``DELIVER``);
- track expectations registered by the application (``EXPECT``), arming a
  deadline timer per expectation from the adaptive
  :class:`~repro.fd.timers.TimeoutPolicy`;
- suspect a source whose expectation deadline passes, and *cancel* that
  suspicion if a matching message arrives late (eventual detection of
  omission/timing failures; the timeout doubles on such false alarms);
- keep ``DETECTED`` processes suspected forever (permanent detection of
  commission failures);
- publish the currently-suspected set on every change (``SUSPECTED``).

Attribution note: for signed payloads the *signer* is the source used for
expectation matching and delivery, so an expected message that reaches the
process via a third party still fulfils the expectation — the behaviour
the paper adopts from PeerReview (suspicions are cancelled when omitted
messages arrive late or indirectly).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set

from repro.crypto.authenticator import SignedMessage
from repro.fd.expectations import Expectation, ExpectationHandle, Predicate
from repro.obs.observability import get_obs
from repro.obs.spans import SPAN_EXPECTATION
from repro.fd.timers import TimeoutPolicy
from repro.util.ids import ProcessId

SuspectedCallback = Callable[[FrozenSet[int]], None]


class FailureDetector:
    """Failure detector module for one process."""

    def __init__(
        self,
        host: Any,
        timeout_policy: Optional[TimeoutPolicy] = None,
        require_signatures: bool = False,
    ) -> None:
        self.host = host
        self.policy = timeout_policy or TimeoutPolicy()
        self.require_signatures = require_signatures
        self._active: Dict[int, Expectation] = {}
        # Source-indexed view of _active: on_receive only ever matches
        # expectations whose source is the message's signer, so the
        # per-message scan walks one bucket instead of every expectation.
        self._by_source: Dict[ProcessId, Dict[int, Expectation]] = {}
        self._detected: Set[int] = set()
        self._published: FrozenSet[int] = frozenset()
        self._subscribers: List[SuspectedCallback] = []
        # Statistics for tests/benchmarks.
        self.expectations_issued = 0
        self.expectations_fulfilled = 0
        self.suspicions_raised = 0
        self.suspicions_cancelled = 0
        self._obs = get_obs(host)
        self._obs.add_collector(self._collect_metrics)
        host.fd = self

    # ------------------------------------------------------------- lifecycle

    @property
    def pid(self) -> ProcessId:
        return self.host.pid

    def start(self) -> None:
        """Nothing to arm until the application issues expectations."""

    def recover(self) -> None:
        """After a crash-recovery, every pre-crash expectation is stale
        (its deadline timer died with the crash): withdraw them all.
        Permanent ``DETECTED`` knowledge survives the restart."""
        self.cancel()

    def subscribe_suspected(self, callback: SuspectedCallback) -> None:
        """Register a consumer of ``SUSPECTED`` events (e.g. the QS module)."""
        self._subscribers.append(callback)

    @property
    def suspected(self) -> FrozenSet[int]:
        """The most recently published suspected set."""
        return self._published

    # ----------------------------------------------------- application inputs

    def expect(
        self,
        source: ProcessId,
        predicate: Predicate,
        group: str = "default",
        label: str = "",
        timeout: Optional[float] = None,
    ) -> ExpectationHandle:
        """Register ``<EXPECT, P, source>``; arms a deadline timer."""
        host = self.host
        now = host.now
        wait = self.policy.timeout_for(source) if timeout is None else timeout
        expectation = Expectation(
            source=source,
            predicate=predicate,
            group=group,
            deadline=now + wait,
            label=label,
            issued_at=now,
        )
        self._active[expectation.eid] = expectation
        self._by_source.setdefault(source, {})[expectation.eid] = expectation
        self.expectations_issued += 1
        host.log.append(
            now, host.pid, "fd.expect", source=source, label=label, group=group
        )
        host.set_timer(
            wait, partial(self._on_deadline, expectation), label=label or "fd-exp"
        )
        return ExpectationHandle(expectation, self._cancel_one)

    def cancel(self, group: Optional[str] = None) -> int:
        """``<CANCEL>``: withdraw expectations (all, or one group's).

        Open suspicions whose only cause was a now-cancelled expectation
        are withdrawn too; permanent ``DETECTED`` suspicions are not.
        Returns the number of expectations cancelled.
        """
        cancelled = 0
        for expectation in list(self._active.values()):
            if group is not None and expectation.group != group:
                continue
            expectation.cancelled = True
            self._forget(expectation)
            cancelled += 1
        if cancelled:
            self.host.log.append(
                self.host.now, self.pid, "fd.cancel", group=group or "*", count=cancelled
            )
            self._publish_if_changed()
        return cancelled

    def detected(self, source: ProcessId) -> None:
        """``<DETECTED, source>``: application proof of misbehaviour.

        Permanent: detection completeness requires the process to be
        suspected forever.
        """
        if source in self._detected:
            return
        self._detected.add(source)
        self.host.log.append(self.host.now, self.pid, "fd.detected", target=source)
        self._publish_if_changed()

    # ------------------------------------------------------------ network path

    def on_receive(self, kind: str, payload: Any, src: ProcessId) -> None:
        """``<RECEIVE, m, i>``: authenticate, match expectations, deliver."""
        source = src
        if isinstance(payload, SignedMessage):
            if not self.host.authenticator.verify(payload):
                self.host.log.append(
                    self.host.now, self.pid, "fd.authfail", claimed=payload.signer, via=src
                )
                return
            source = payload.signer
        elif self.require_signatures:
            self.host.log.append(self.host.now, self.pid, "fd.unsigned", msg=kind, via=src)
            return
        fulfilled_open = False
        bucket = self._by_source.get(source)
        for expectation in list(bucket.values()) if bucket else ():
            if not expectation.matches(kind, payload, source):
                continue
            was_open = expectation.open_suspicion
            expectation.fulfilled = True
            self._forget(expectation)
            self.expectations_fulfilled += 1
            if was_open:
                # Late arrival: the suspicion was premature; widen timeout.
                fulfilled_open = True
                self.policy.record_false_suspicion(source)
                self._obs.span(
                    SPAN_EXPECTATION, self.pid, expectation.issued_at,
                    end=self.host.now, source=source,
                    label=expectation.label, outcome="fulfilled_late",
                )
        self.host.deliver(kind, payload, source)
        if fulfilled_open:
            self._publish_if_changed()

    # --------------------------------------------------------------- internals

    def _forget(self, expectation: Expectation) -> None:
        """Drop an expectation from both the flat map and the source index."""
        self._active.pop(expectation.eid, None)
        bucket = self._by_source.get(expectation.source)
        if bucket is not None:
            bucket.pop(expectation.eid, None)
            if not bucket:
                del self._by_source[expectation.source]

    def _cancel_one(self, expectation: Expectation) -> None:
        if expectation.fulfilled or expectation.cancelled:
            return
        expectation.cancelled = True
        self._forget(expectation)
        self._publish_if_changed()

    def _on_deadline(self, expectation: Expectation) -> None:
        if not expectation.pending:
            return
        expectation.timed_out = True
        # Keep it active: a late matching message must still cancel the
        # suspicion (eventual, not permanent, omission detection).
        self.host.log.append(
            self.host.now,
            self.pid,
            "fd.timeout",
            source=expectation.source,
            label=expectation.label,
        )
        self._obs.span(
            SPAN_EXPECTATION, self.pid, expectation.issued_at,
            end=self.host.now, source=expectation.source,
            label=expectation.label, outcome="timeout",
        )
        # Publish even when the *set* is unchanged: each timeout is a fresh
        # <SUSPECTED, S> event, and consumers (e.g. XPaxos' enumeration
        # policy) must be re-notified that the still-suspected process keeps
        # failing expectations in the new view/epoch.
        self._publish(force=True)

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector for the detector's plain-int counters."""
        pid = self.pid
        for name, value in (
            ("fd_expectations_issued_total", self.expectations_issued),
            ("fd_expectations_fulfilled_total", self.expectations_fulfilled),
            ("fd_suspicions_raised_total", self.suspicions_raised),
            ("fd_suspicions_cancelled_total", self.suspicions_cancelled),
        ):
            registry.counter(name, help="failure-detector counter", pid=pid).set(value)
        registry.gauge("fd_suspected", help="currently suspected processes",
                       pid=pid).set(len(self._published))
        registry.gauge("fd_detected", help="permanently detected processes",
                       pid=pid).set(len(self._detected))
        registry.gauge("fd_expectations_pending", help="open expectations",
                       pid=pid).set(len(self._active))

    def _current_suspected(self) -> FrozenSet[int]:
        suspected = set(self._detected)
        for expectation in self._active.values():
            if expectation.open_suspicion:
                suspected.add(expectation.source)
        return frozenset(suspected)

    def _publish_if_changed(self) -> None:
        self._publish(force=False)

    def _publish(self, force: bool) -> None:
        current = self._current_suspected()
        if current == self._published and not force:
            return
        for target in current - self._published:
            self.suspicions_raised += 1
            self.host.log.append(self.host.now, self.pid, "fd.suspect", target=target)
            # Fault-to-suspicion latency: completes the sample when this
            # target's crash was injected through the same observability
            # instance (always true in the sim; a live node only sees its
            # own faults, so the sim carries the cross-process histogram).
            self._obs.detection_observed(self.pid, target, self.host.now)
        for target in self._published - current:
            self.suspicions_cancelled += 1
            self.host.log.append(self.host.now, self.pid, "fd.unsuspect", target=target)
        self._published = current
        for callback in self._subscribers:
            callback(current)
