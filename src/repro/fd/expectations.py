"""Expectation records — the paper's ``<EXPECT, P, i>`` events."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.util.ids import ProcessId

Predicate = Callable[[str, Any], bool]

_next_expectation_id = itertools.count(1)
_next_eid = _next_expectation_id.__next__


@dataclass(slots=True)
class Expectation:
    """One registered expectation.

    Attributes:
        source: the process the message is expected *from* (attribution is
            by signer for signed messages, so late/forwarded copies count,
            matching the paper's eventual-detection stance).
        predicate: ``predicate(kind, payload) -> bool`` deciding whether a
            delivered message satisfies the expectation (the paper's ``P``).
        group: cancellation scope — ``CANCEL`` from one module must not
            tear down another module's expectations.
        deadline: absolute simulation time at which the source becomes
            suspected if no match arrived.
        label: human-readable tag for traces.
    """

    source: ProcessId
    predicate: Predicate
    group: str
    deadline: float
    label: str = ""
    #: Host time the expectation was registered (span start for the
    #: expectation-lifecycle traces; 0.0 for hand-built test instances).
    issued_at: float = 0.0
    eid: int = field(default_factory=_next_eid)
    fulfilled: bool = False
    timed_out: bool = False
    cancelled: bool = False

    @property
    def pending(self) -> bool:
        """Still waiting: not fulfilled, not timed out, not cancelled."""
        return not (self.fulfilled or self.timed_out or self.cancelled)

    @property
    def open_suspicion(self) -> bool:
        """Timed out and never subsequently matched or cancelled."""
        return self.timed_out and not self.fulfilled and not self.cancelled

    def matches(self, kind: str, payload: Any, source: ProcessId) -> bool:
        return source == self.source and self.predicate(kind, payload)


class ExpectationHandle:
    """Caller-facing handle: inspect status, cancel individually."""

    __slots__ = ("_expectation", "_canceller")

    def __init__(self, expectation: Expectation, canceller: Callable[[Expectation], None]) -> None:
        self._expectation = expectation
        self._canceller = canceller

    @property
    def fulfilled(self) -> bool:
        return self._expectation.fulfilled

    @property
    def timed_out(self) -> bool:
        return self._expectation.timed_out

    @property
    def pending(self) -> bool:
        return self._expectation.pending

    @property
    def source(self) -> ProcessId:
        return self._expectation.source

    @property
    def label(self) -> str:
        return self._expectation.label

    def cancel(self) -> None:
        self._canceller(self._expectation)


def kind_is(kind: str) -> Predicate:
    """Predicate matching any message of one kind."""
    return lambda k, payload: k == kind


def kind_and(kind: str, check: Callable[[Any], bool]) -> Predicate:
    """Predicate matching a kind plus a payload condition."""
    return lambda k, payload: k == kind and check(payload)
