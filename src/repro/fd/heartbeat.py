"""Heartbeat application driving the failure detector.

Section II opens by assuming "every process is expected to send infinitely
many messages ... systems that use heartbeats to detect crash failures".
This module is that minimal application: every process periodically
broadcasts a signed heartbeat and, for every peer, keeps an expectation
for the peer's next heartbeat open with the failure detector.  It turns
crashes, (per-link) omissions, and timing failures into ``SUSPECTED``
events without needing a full BFT protocol on top — the workhorse of the
pure Quorum Selection experiments (E2-E4).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.crypto.authenticator import SignedMessage
from repro.fd.expectations import ExpectationHandle
from repro.obs.observability import get_obs
from repro.sim.process import Module, ProcessHost
from repro.util.ids import ProcessId

HEARTBEAT = "heartbeat"
PING = "fd.ping"
PONG = "fd.pong"


def _is_heartbeat(kind: str, payload: Any) -> bool:
    """Shared predicate — one function object instead of one per EXPECT."""
    return kind == HEARTBEAT


class HeartbeatModule(Module):
    """Periodic signed heartbeats plus rolling expectations for peers."""

    def __init__(self, host: ProcessHost, n: int, period: float = 2.0) -> None:
        super().__init__(host)
        self.n = n
        self.period = period
        self.sequence = 0
        self._expectations: Dict[int, ExpectationHandle] = {}

    def start(self) -> None:
        if self.host.fd is None:
            raise RuntimeError("HeartbeatModule requires a failure detector on the host")
        get_obs(self.host).add_collector(self._collect_metrics)
        self.host.subscribe(HEARTBEAT, self._on_heartbeat)
        for peer in range(1, self.n + 1):
            if peer != self.pid:
                self._expect_next(peer)
        self._beat()

    def recover(self) -> None:
        """Re-arm the beat loop and peer expectations after a restart."""
        for peer in range(1, self.n + 1):
            if peer != self.pid:
                self._expect_next(peer)
        self._beat()

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: beats emitted by this process."""
        registry.counter("hb_beats_sent_total", help="heartbeat rounds emitted",
                         pid=self.pid).set(self.sequence)

    # ------------------------------------------------------------------ beats

    def _beat(self) -> None:
        if not self.host.running:
            return
        self.sequence += 1
        payload = self.host.authenticator.sign(("heartbeat", self.pid, self.sequence))
        for peer in range(1, self.n + 1):
            if peer != self.pid:
                self.host.send(peer, HEARTBEAT, payload)
        self.host.set_timer(self.period, self._beat, label=f"hb@p{self.pid}")

    def _expect_next(self, peer: ProcessId) -> None:
        """Expect *some* next heartbeat from ``peer`` (any sequence)."""
        self._expectations[peer] = self.host.fd.expect(
            source=peer,
            predicate=_is_heartbeat,
            group="heartbeat",
            label=f"hb<-p{peer}",
        )

    def _on_heartbeat(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage) or src == self.pid:
            return
        # The just-delivered beat satisfied the open expectation (the FD
        # matched it already); roll the window forward by expecting the
        # next one.
        handle = self._expectations.get(src)
        if handle is None or not handle.pending:
            self._expect_next(src)


class PingPongModule(Module):
    """Request/response probing: detects *increasing timing failures*.

    :class:`HeartbeatModule` expects "some next heartbeat", which measures
    inter-arrival spacing — a process whose delay grows without bound but
    keeps emitting stale beats is suspected at most once there.  Section
    II's increasing-timing failure is about *response* time ("processes
    and responds to any received message within Delta"), so this module
    sends a nonce'd PING to every peer each period and expects the PONG
    echoing that exact nonce.  A growing response delay beats every
    (doubling, but always finite) timeout again and again: suspicions are
    raised and cancelled infinitely often — eventual detection, exactly
    as the paper's classification promises.
    """

    def __init__(self, host: ProcessHost, n: int, period: float = 4.0) -> None:
        super().__init__(host)
        self.n = n
        self.period = period
        self._nonce = 0

    def start(self) -> None:
        if self.host.fd is None:
            raise RuntimeError("PingPongModule requires a failure detector on the host")
        self.host.subscribe(PING, self._on_ping)
        self.host.subscribe(PONG, lambda kind, payload, src: None)  # matched by FD
        self._probe()

    def recover(self) -> None:
        """Re-arm the probe loop after a restart."""
        self._probe()

    def _probe(self) -> None:
        if not self.host.running:
            return
        for peer in range(1, self.n + 1):
            if peer == self.pid:
                continue
            self._nonce += 1
            nonce = (self.pid, self._nonce)
            self.host.send(peer, PING, self.host.authenticator.sign(("ping", nonce)))
            self.host.fd.expect(
                source=peer,
                predicate=self._pong_matcher(nonce),
                group="pingpong",
                label=f"pong<-p{peer}#{self._nonce}",
            )
        self.host.set_timer(self.period, self._probe, label=f"pingpong@p{self.pid}")

    @staticmethod
    def _pong_matcher(nonce):
        def match(kind: str, payload: Any) -> bool:
            return (
                kind == PONG
                and isinstance(payload, SignedMessage)
                and isinstance(payload.payload, tuple)
                and len(payload.payload) == 2
                and payload.payload[0] == "pong"
                and payload.payload[1] == nonce
            )

        return match

    def _on_ping(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        body = payload.payload
        if not isinstance(body, tuple) or len(body) != 2 or body[0] != "ping":
            return
        self.host.send(src, PONG, self.host.authenticator.sign(("pong", body[1])))
