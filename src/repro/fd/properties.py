"""Checkers for the failure detector's specification (Section IV-B).

These functions read the simulation's :class:`~repro.util.eventlog.EventLog`
after a run and decide whether the run exhibits the paper's properties.
"Eventually" is interpreted against a caller-supplied stabilization time
(typically GST plus a few timeout-doubling periods): the property must hold
from that time to the end of the (finite) run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.util.eventlog import EventLog


def eventual_strong_accuracy_holds(
    log: EventLog, correct: Iterable[int], after: float
) -> bool:
    """No correct process raises a suspicion against a correct process
    after time ``after`` (raises only — cancelling old suspicions is fine)."""
    correct_set = set(correct)
    for event in log.events(kind="fd.suspect"):
        if event.time < after:
            continue
        observer = event.process
        target = event.payload.get("target")
        if observer in correct_set and target in correct_set:
            return False
    return True


def false_suspicions(
    log: EventLog, correct: Iterable[int], after: float = 0.0
) -> List[Tuple[float, int, int]]:
    """All (time, observer, target) correct-suspects-correct raises."""
    correct_set = set(correct)
    out = []
    for event in log.events(kind="fd.suspect"):
        if event.time < after:
            continue
        target = event.payload.get("target")
        if event.process in correct_set and target in correct_set:
            out.append((event.time, event.process, target))
    return out


def detection_is_permanent(log: EventLog) -> bool:
    """Detection completeness: once ``fd.detected`` fires at an observer
    for a target, that observer never publishes an unsuspect for it."""
    detected_at: Dict[Tuple[int, int], float] = {}
    for event in log.events(kind="fd.detected"):
        key = (event.process, event.payload.get("target"))
        detected_at.setdefault(key, event.time)
    for event in log.events(kind="fd.unsuspect"):
        key = (event.process, event.payload.get("target"))
        if key in detected_at and event.time >= detected_at[key]:
            return False
    return True


def expectation_completeness_holds(detector) -> bool:
    """Every closed-out expectation at this detector was fulfilled,
    cancelled, or raised a suspicion (checked on live state at run end).

    An expectation still pending at the end of a finite run is not a
    violation — completeness is a liveness property — but an expectation
    that silently disappeared would be.  With this implementation that
    cannot happen structurally; the checker exists to pin the invariant in
    property-based tests.
    """
    issued = detector.expectations_issued
    fulfilled = detector.expectations_fulfilled
    live = len(detector._active)  # pending or open suspicions
    # Cancelled expectations are not tracked individually; derive them.
    accounted = fulfilled + live
    return accounted <= issued


def suspicion_intervals(
    log: EventLog, observer: int, target: int
) -> List[Tuple[float, float]]:
    """Time intervals during which ``observer`` suspected ``target``.

    The last interval is open-ended (``float('inf')``) if the suspicion was
    never cancelled before the run ended — i.e. permanent detection.
    """
    intervals: List[Tuple[float, float]] = []
    open_since = None
    for event in log.events():
        if event.process != observer or event.payload.get("target") != target:
            continue
        if event.kind == "fd.suspect" and open_since is None:
            open_since = event.time
        elif event.kind == "fd.unsuspect" and open_since is not None:
            intervals.append((open_since, event.time))
            open_since = None
    if open_since is not None:
        intervals.append((open_since, float("inf")))
    return intervals


def eventually_detects(log: EventLog, observer: int, target: int) -> bool:
    """Eventual detection: observer raised (and possibly re-raised)
    suspicions against target — at least one raise exists."""
    return bool(suspicion_intervals(log, observer, target))


def permanently_detects(log: EventLog, observer: int, target: int) -> bool:
    """Permanent detection: the final suspicion interval never closes."""
    intervals = suspicion_intervals(log, observer, target)
    return bool(intervals) and intervals[-1][1] == float("inf")
