"""Adaptive timeout policy for expectations.

In an eventually synchronous system the failure detector cannot know the
post-GST delay bound in advance.  The standard remedy, used here, is to
keep a per-source timeout that doubles every time a suspicion against that
source turns out to be false (the expected message arrived after the
deadline).  After GST, once the timeout for a correct source exceeds the
paper's two-communication-round bound (accuracy requirements, Section
IV-B), that source is never falsely suspected again — giving eventual
strong accuracy.  Processes that *increasingly delay* keep getting
suspected (each time with a doubled, but always finite, deadline), which
realizes "increasing timing failures can be eventually detected"
(Section II) as eventual detection.
"""

from __future__ import annotations

from typing import Dict

from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId


class TimeoutPolicy:
    """Per-source doubling timeouts with a configurable cap."""

    def __init__(
        self,
        base_timeout: float = 4.0,
        multiplier: float = 2.0,
        max_timeout: float = 1024.0,
    ) -> None:
        if base_timeout <= 0:
            raise ConfigurationError(f"base timeout must be positive, got {base_timeout}")
        if multiplier < 1.0:
            raise ConfigurationError(f"multiplier must be >= 1, got {multiplier}")
        if max_timeout < base_timeout:
            raise ConfigurationError("max timeout must be >= base timeout")
        self.base_timeout = base_timeout
        self.multiplier = multiplier
        self.max_timeout = max_timeout
        self._current: Dict[int, float] = {}
        self.false_suspicions: Dict[int, int] = {}

    def timeout_for(self, source: ProcessId) -> float:
        """Current expectation timeout towards ``source``."""
        return self._current.get(source, self.base_timeout)

    def record_false_suspicion(self, source: ProcessId) -> float:
        """A suspicion of ``source`` was cancelled: grow its timeout.

        Returns the new timeout value.
        """
        grown = min(self.timeout_for(source) * self.multiplier, self.max_timeout)
        self._current[source] = grown
        self.false_suspicions[source] = self.false_suspicions.get(source, 0) + 1
        return grown
