"""Suspect graphs and the graph algorithms of Sections VI and VIII.

- :class:`SuspectGraph` — the simple undirected graph on the process set
  whose edges are (current-epoch) suspicions.
- :func:`has_independent_set` / :func:`lex_first_independent_set` —
  quorum existence and the paper's "first independent set of size q in
  lexicographic order" (Algorithm 1, line 31), implemented with an
  FPT vertex-cover bound for the existence check (the complement of an
  independent set of size ``q`` is a vertex cover of size ``n - q``).
- :func:`maximal_line_subgraph` and friends — Definition 1 (line
  subgraph, leader), Definition 2 (possible followers), and the
  well-formedness predicate of Definition 3 used by Follower Selection.
"""

from repro.graphs.suspect_graph import SuspectGraph
from repro.graphs.vertex_cover import vertex_cover_at_most, minimum_vertex_cover_size
from repro.graphs.independent_set import (
    has_independent_set,
    lex_first_independent_set,
    all_independent_sets,
)
from repro.graphs.chain_path import (
    has_chain,
    lex_first_chain,
    is_valid_chain,
    sensitive_pairs,
)
from repro.graphs.line_subgraph import (
    LineSubgraph,
    leader_of,
    is_line_subgraph,
    maximal_line_subgraph,
    possible_followers,
    extend_with_edge,
)

__all__ = [
    "SuspectGraph",
    "vertex_cover_at_most",
    "minimum_vertex_cover_size",
    "has_independent_set",
    "lex_first_independent_set",
    "all_independent_sets",
    "has_chain",
    "lex_first_chain",
    "is_valid_chain",
    "sensitive_pairs",
    "LineSubgraph",
    "leader_of",
    "is_line_subgraph",
    "maximal_line_subgraph",
    "possible_followers",
    "extend_with_edge",
]
