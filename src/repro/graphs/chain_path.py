"""Conflict-free chains: paths avoiding suspect edges (extension).

The paper's conclusion names "processes communicating along a chain"
(the BChain pattern) as a special case of Quorum Selection worth its own
treatment.  A chain deployment only exercises the *consecutive* links,
so the natural selection target is an ordered sequence of ``q`` distinct
processes in which no two *adjacent* members suspect each other — a
``q``-vertex path in the complement of the suspect graph, restricted to
consecutive pairs.

Key consequences (exploited by
:class:`repro.core.chain_selection.ChainSelectionModule`):

- every independent set of size ``q`` yields a chain (sort it), so
  chains exist at least as often as Algorithm 1's quorums — epochs
  advance strictly less often;
- a suspicion between *non-adjacent* chain members changes nothing, so
  an adversary gets fewer productive moves per selection.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.graphs.suspect_graph import SuspectGraph
from repro.util.errors import ConfigurationError


def is_valid_chain(chain: Tuple[int, ...], graph: SuspectGraph) -> bool:
    """All members distinct and in range; no suspect edge between
    consecutive members."""
    if len(set(chain)) != len(chain):
        return False
    if any(not 1 <= member <= graph.n for member in chain):
        return False
    return all(
        not graph.has_edge(a, b) for a, b in zip(chain, chain[1:])
    )


def has_chain(graph: SuspectGraph, q: int) -> bool:
    """Does a conflict-free chain of length ``q`` exist?"""
    return lex_first_chain(graph, q) is not None


def lex_first_chain(graph: SuspectGraph, q: int) -> Optional[Tuple[int, ...]]:
    """Lexicographically first conflict-free chain of length ``q``.

    Sequences are compared elementwise, so the search fills positions in
    order, always trying the smallest unused process whose link to the
    previous member is suspicion-free — the first complete sequence the
    DFS reaches is the lexicographic minimum.  Correct processes with
    equal suspect graphs therefore select equal chains.
    """
    if q < 0:
        raise ConfigurationError(f"chain length must be >= 0, got {q}")
    if q == 0:
        return ()
    if q > graph.n:
        return None
    chain: List[int] = []
    used = [False] * (graph.n + 1)

    def extend() -> bool:
        if len(chain) == q:
            return True
        previous = chain[-1] if chain else None
        for candidate in range(1, graph.n + 1):
            if used[candidate]:
                continue
            if previous is not None and graph.has_edge(previous, candidate):
                continue
            chain.append(candidate)
            used[candidate] = True
            if extend():
                return True
            chain.pop()
            used[candidate] = False
        return False

    if not extend():
        return None
    return tuple(chain)


def sensitive_pairs(chain: Tuple[int, ...]) -> List[Tuple[int, int]]:
    """The consecutive (normalized) pairs whose suspicion breaks a chain."""
    return [
        (a, b) if a < b else (b, a) for a, b in zip(chain, chain[1:])
    ]
