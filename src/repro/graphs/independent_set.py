"""Independent-set search for quorum finding (Algorithm 1, lines 26-31).

A quorum is "the first independent set of size ``q`` in lexicographic
order" of the suspect graph.  Existence is decided through the vertex-cover
dual (complement of an independent set of size ``q`` is a cover of size
``n - q``), and the lexicographically-first set is found by an id-ordered
backtracking search — the first complete set the search reaches is the
lexicographic minimum because candidates are always tried in ascending id
order.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional, Set

from repro.graphs.suspect_graph import SuspectGraph
from repro.graphs.vertex_cover import vertex_cover_at_most
from repro.util.errors import ConfigurationError


def has_independent_set(graph: SuspectGraph, q: int) -> bool:
    """Does the graph contain an independent set of ``q`` nodes?"""
    if q < 0:
        raise ConfigurationError(f"independent set size must be >= 0, got {q}")
    if q == 0:
        return True
    if q > graph.n:
        return False
    return vertex_cover_at_most(graph, graph.n - q)


def lex_first_independent_set(graph: SuspectGraph, q: int) -> Optional[FrozenSet[int]]:
    """Lexicographically first independent set of size ``q``, or ``None``.

    Lexicographic order is on sorted id tuples: ``{1,3,4} < {1,3,5} <
    {2,3,4}`` — the order Algorithm 1 uses so that correct processes with
    equal suspect graphs select equal quorums.
    """
    if q == 0:
        return frozenset()
    if q > graph.n:
        return None
    if not has_independent_set(graph, q):
        return None
    chosen: List[int] = []
    blocked: Set[int] = set()
    if not _extend_lex(graph, q, 1, chosen, blocked):
        return None
    return frozenset(chosen)


def _extend_lex(
    graph: SuspectGraph, q: int, start: int, chosen: List[int], blocked: Set[int]
) -> bool:
    """Depth-first extension trying candidate ids in ascending order."""
    if len(chosen) == q:
        return True
    needed = q - len(chosen)
    for v in range(start, graph.n + 1):
        # Not enough ids left even if all were available.
        if graph.n - v + 1 < needed:
            return False
        if v in blocked:
            continue
        newly_blocked = [u for u in graph.neighbors(v) if u > v and u not in blocked]
        chosen.append(v)
        blocked.update(newly_blocked)
        if _extend_lex(graph, q, v + 1, chosen, blocked):
            return True
        chosen.pop()
        blocked.difference_update(newly_blocked)
    return False


def all_independent_sets(graph: SuspectGraph, q: int) -> Iterator[FrozenSet[int]]:
    """Yield every independent set of size ``q`` in lexicographic order.

    Exponential in general — intended for tests and small worked examples
    (e.g. verifying Figure 4 and Lemma 8 on concrete graphs).
    """
    def recurse(start: int, chosen: List[int], blocked: Set[int]) -> Iterator[FrozenSet[int]]:
        if len(chosen) == q:
            yield frozenset(chosen)
            return
        needed = q - len(chosen)
        for v in range(start, graph.n + 1):
            if graph.n - v + 1 < needed:
                return
            if v in blocked:
                continue
            newly_blocked = [u for u in graph.neighbors(v) if u > v and u not in blocked]
            chosen.append(v)
            blocked.update(newly_blocked)
            yield from recurse(v + 1, chosen, blocked)
            chosen.pop()
            blocked.difference_update(newly_blocked)

    if 0 <= q <= graph.n:
        yield from recurse(1, [], set())
