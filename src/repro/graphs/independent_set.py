"""Independent-set search for quorum finding (Algorithm 1, lines 26-31).

A quorum is "the first independent set of size ``q`` in lexicographic
order" of the suspect graph.  Existence is decided through the vertex-cover
dual (complement of an independent set of size ``q`` is a cover of size
``n - q``), and the lexicographically-first set is found by an id-ordered
backtracking search — the first complete set the search reaches is the
lexicographic minimum because candidates are always tried in ascending id
order.

The search runs on the graph's neighbor bitmasks: the blocked set is a
single int, so descending into a branch is one ``|`` and backtracking is
free (the caller's mask is untouched) — no per-call set allocations in
the inner loop.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional

from repro.graphs.suspect_graph import SuspectGraph
from repro.graphs.vertex_cover import vertex_cover_at_most
from repro.util.errors import ConfigurationError


def has_independent_set(graph: SuspectGraph, q: int) -> bool:
    """Does the graph contain an independent set of ``q`` nodes?"""
    if q < 0:
        raise ConfigurationError(f"independent set size must be >= 0, got {q}")
    if q == 0:
        return True
    if q > graph.n:
        return False
    return vertex_cover_at_most(graph, graph.n - q)


def lex_first_independent_set(
    graph: SuspectGraph, q: int, assume_exists: bool = False
) -> Optional[FrozenSet[int]]:
    """Lexicographically first independent set of size ``q``, or ``None``.

    Lexicographic order is on sorted id tuples: ``{1,3,4} < {1,3,5} <
    {2,3,4}`` — the order Algorithm 1 uses so that correct processes with
    equal suspect graphs select equal quorums.

    ``assume_exists`` skips the vertex-cover existence pre-check; pass it
    only when :func:`has_independent_set` was already confirmed for this
    exact graph (the hot path checks viability immediately beforehand).
    The search itself is complete either way — the pre-check only prunes
    the hopeless-graph case quickly.
    """
    if q == 0:
        return frozenset()
    if q > graph.n:
        return None
    if not assume_exists and not has_independent_set(graph, q):
        return None
    chosen: List[int] = []
    if not _extend_lex(graph.adjacency_bitmasks(), graph.n, q, 1, chosen, 0):
        return None
    return frozenset(chosen)


def _extend_lex(
    adj: List[int], n: int, q: int, start: int, chosen: List[int], blocked: int
) -> bool:
    """Depth-first extension trying candidate ids in ascending order.

    ``blocked`` is a bitmask of ids excluded by earlier choices; it is
    passed by value, so backtracking needs no undo.
    """
    if len(chosen) == q:
        return True
    needed = q - len(chosen)
    for v in range(start, n + 1):
        # Not enough ids left even if all were available.
        if n - v + 1 < needed:
            return False
        if (blocked >> v) & 1:
            continue
        chosen.append(v)
        if _extend_lex(adj, n, q, v + 1, chosen, blocked | adj[v]):
            return True
        chosen.pop()
    return False


def all_independent_sets(graph: SuspectGraph, q: int) -> Iterator[FrozenSet[int]]:
    """Yield every independent set of size ``q`` in lexicographic order.

    Exponential in general — intended for tests and small worked examples
    (e.g. verifying Figure 4 and Lemma 8 on concrete graphs).
    """
    adj = graph.adjacency_bitmasks()

    def recurse(start: int, chosen: List[int], blocked: int) -> Iterator[FrozenSet[int]]:
        if len(chosen) == q:
            yield frozenset(chosen)
            return
        needed = q - len(chosen)
        for v in range(start, graph.n + 1):
            if graph.n - v + 1 < needed:
                return
            if (blocked >> v) & 1:
                continue
            chosen.append(v)
            yield from recurse(v + 1, chosen, blocked | adj[v])
            chosen.pop()

    if 0 <= q <= graph.n:
        yield from recurse(1, [], 0)
