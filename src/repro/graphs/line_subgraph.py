"""Line subgraphs, leaders, and possible followers (Section VIII).

Definition 1: a *line subgraph* of a simple graph ``G`` is an acyclic
subgraph with maximum degree 2 (a disjoint union of simple paths).  It
designates a leader — the minimum node of degree 0.  A *maximal* line
subgraph is one whose leader id cannot be beaten by any other line
subgraph of ``G``.

Definition 2: a node is a *possible follower* for ``L`` unless it is
connected (in ``L``) to two nodes of degree 1 — i.e. unless it is the
center of a two-edge path component.  Degree-0 nodes (not contained in
``L``) are possible followers; Example 1 of the paper shows the exclusion.

Computing the maximal line subgraph amounts to finding the largest ``j``
such that all of ``1..j-1`` can be simultaneously covered (given nonzero
degree) by a vertex-disjoint union of paths that leaves ``j`` untouched.
We solve that coverability question exactly with a backtracking search
that only ever attaches edges at currently-uncovered (degree-0) nodes —
a complete restriction, because an edge between two already-covered nodes
never helps coverage and attaching at a degree-0 endpoint can never close
a cycle.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graphs.suspect_graph import SuspectGraph, _normalize_edge
from repro.util.errors import ConfigurationError

Edge = Tuple[int, int]


class LineSubgraph:
    """An edge set forming a disjoint union of paths on nodes ``1..n``."""

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        self.n = n
        self._edges: FrozenSet[Edge] = frozenset(
            _normalize_edge(u, v) for u, v in edges
        )
        self._degree: Dict[int, int] = {}
        self._adjacency: Dict[int, Set[int]] = {}
        for u, v in self._edges:
            self._degree[u] = self._degree.get(u, 0) + 1
            self._degree[v] = self._degree.get(v, 0) + 1
            self._adjacency.setdefault(u, set()).add(v)
            self._adjacency.setdefault(v, set()).add(u)
        self._validate()

    def _validate(self) -> None:
        for node, degree in self._degree.items():
            if not 1 <= node <= self.n:
                raise ConfigurationError(f"node p{node} outside 1..{self.n}")
            if degree > 2:
                raise ConfigurationError(f"p{node} has degree {degree} > 2")
        if _has_cycle(self._edges):
            raise ConfigurationError("line subgraph must be acyclic")

    # ---------------------------------------------------------------- queries

    def edges(self) -> FrozenSet[Edge]:
        return self._edges

    def degree(self, node: int) -> int:
        return self._degree.get(node, 0)

    def neighbors(self, node: int) -> FrozenSet[int]:
        return frozenset(self._adjacency.get(node, ()))

    def contains(self, node: int) -> bool:
        """Paper's "contains": nonzero degree (Section IX)."""
        return self.degree(node) > 0

    def contained_nodes(self) -> FrozenSet[int]:
        return frozenset(self._degree)

    def leader(self) -> Optional[int]:
        """Minimum degree-0 node (Definition 1), ``None`` if all covered."""
        return leader_of(self)

    def canonical(self):
        """Canonical form for signing inside FOLLOWERS messages."""
        return ("line-subgraph", self.n, tuple(sorted(self._edges)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LineSubgraph):
            return NotImplemented
        return self.n == other.n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self.n, self._edges))

    def __repr__(self) -> str:
        return f"LineSubgraph(n={self.n}, edges={sorted(self._edges)})"


def _has_cycle(edges: Iterable[Edge]) -> bool:
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru == rv:
            return True
        parent[ru] = rv
    return False


def leader_of(line: LineSubgraph) -> Optional[int]:
    """The leader designated by a line subgraph: min node of degree 0."""
    for node in range(1, line.n + 1):
        if line.degree(node) == 0:
            return node
    return None


def is_line_subgraph(edges: Iterable[Edge], graph: SuspectGraph) -> bool:
    """Definition 3b check: the edges form a line subgraph *of* ``graph``."""
    edge_list = [
        _normalize_edge(u, v) for u, v in edges
    ]
    if not graph.contains_edges(edge_list):
        return False
    try:
        LineSubgraph(graph.n, edge_list)
    except ConfigurationError:
        return False
    return True


def maximal_line_subgraph(graph: SuspectGraph) -> LineSubgraph:
    """A maximal line subgraph of ``graph`` (Definition 1).

    Deterministic: the same graph always yields the same subgraph, so every
    correct process computing locally reaches not just the same leader but
    the same edge set.  (The paper only needs leader agreement; determinism
    is free and simplifies testing.)
    """
    for candidate_leader in range(graph.n, 0, -1):
        required = list(range(1, candidate_leader))
        allowed = graph.without_node_edges(candidate_leader)
        edges = _cover_with_paths(allowed, required)
        if edges is not None:
            line = LineSubgraph(graph.n, edges)
            # The construction covers 1..j-1 and leaves j untouched.
            assert line.leader() == candidate_leader
            return line
    raise ConfigurationError("unreachable: leader 1 always feasible")  # pragma: no cover


def _cover_with_paths(graph: SuspectGraph, required: List[int]) -> Optional[List[Edge]]:
    """Edges of a linear forest giving every required node degree >= 1.

    Returns ``None`` when impossible.  Backtracking is restricted to edges
    incident to the smallest currently-uncovered required node, which is
    complete (see module docstring) and keeps the search deterministic.
    """
    degree: Dict[int, int] = {}
    chosen: List[Edge] = []
    uncovered = [node for node in required if graph.degree(node) > 0]
    if len(uncovered) != len(required):
        return None  # some required node is isolated: no cover can exist

    def covered(node: int) -> bool:
        return degree.get(node, 0) > 0

    def search(index: int) -> bool:
        while index < len(uncovered) and covered(uncovered[index]):
            index += 1
        if index == len(uncovered):
            return True
        w = uncovered[index]
        for x in sorted(graph.neighbors(w)):
            if degree.get(x, 0) >= 2:
                continue
            edge = _normalize_edge(w, x)
            chosen.append(edge)
            degree[w] = degree.get(w, 0) + 1
            degree[x] = degree.get(x, 0) + 1
            if search(index + 1):
                return True
            chosen.pop()
            degree[w] -= 1
            degree[x] -= 1
        return False

    return chosen if search(0) else None


def possible_followers(line: LineSubgraph) -> FrozenSet[int]:
    """All possible followers for ``line`` (Definition 2).

    Every node of ``1..n`` qualifies except centers of two-edge path
    components — nodes whose two neighbors in ``L`` both have degree 1.
    The leader itself *is* returned when it qualifies; callers exclude it
    per Definition 3a.
    """
    excluded = set()
    for node in line.contained_nodes():
        neighbors = line.neighbors(node)
        if len(neighbors) == 2 and all(line.degree(x) == 1 for x in neighbors):
            excluded.add(node)
    return frozenset(node for node in range(1, line.n + 1) if node not in excluded)


def extend_with_edge(
    line: LineSubgraph, graph: SuspectGraph, leader: int, follower: int
) -> LineSubgraph:
    """Rebuild a line subgraph after a new suspicion (leader, follower).

    This realizes the paper's argument for Definition 2: when the new edge
    ``(leader, follower)`` joins ``graph`` and ``follower`` was a possible
    follower, a line subgraph exists in which the old leader has nonzero
    degree — hence the maximal leader strictly increases.  Used by tests
    and by the Theorem 9 analysis; the production path simply recomputes
    :func:`maximal_line_subgraph`.
    """
    if not graph.has_edge(leader, follower):
        raise ConfigurationError("graph must already contain the new suspicion edge")
    edges = set(line.edges())
    follower_degree = line.degree(follower)
    if follower_degree >= 2:
        # Drop one follower edge towards a degree-2 neighbor; Definition 2
        # guarantees such a neighbor exists for a possible follower.
        droppable = [x for x in line.neighbors(follower) if line.degree(x) == 2]
        if not droppable:
            raise ConfigurationError(
                f"p{follower} is not a possible follower: both neighbors have degree 1"
            )
        edges.discard(_normalize_edge(follower, min(droppable)))
    edges.add(_normalize_edge(leader, follower))
    return LineSubgraph(line.n, edges)
