"""Simple undirected graphs over the process set ``{1..n}``.

A *suspect graph* (Section VI-B) connects processes ``l`` and ``k`` when
one of them suspected the other in the current epoch or later.  The class
below is a minimal graph tailored to that use: nodes are the fixed set
``1..n`` (isolated nodes matter — they are the well-behaved processes),
and edges are unordered pairs.

Adjacency is stored as one bitmask per node (bit ``k`` of
``adjacency_bitmasks()[u]`` set iff ``(u, k)`` is an edge).  The quorum
searches (:mod:`repro.graphs.independent_set`,
:mod:`repro.graphs.vertex_cover`) run directly on these masks, which keeps
their inner loops free of per-call set allocations.  ``neighbors()`` /
``edges()`` answers are cached frozensets, invalidated on mutation — they
used to be rebuilt on every call from inside the backtracking search.

Each graph carries a ``(uid, version)`` identity: ``uid`` is unique per
instance and ``version`` increments on every actual edge change.  Callers
(the quorum memo in :class:`repro.core.quorum_selection`) use the pair as
a cheap "has this graph changed since I last searched it?" key.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId, validate_pid

Edge = Tuple[int, int]

try:  # Python >= 3.10
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - 3.9 fallback
    def _popcount(x: int) -> int:
        return bin(x).count("1")


def _normalize_edge(u: int, v: int) -> Edge:
    if u == v:
        raise ConfigurationError(f"self-loop on p{u} not allowed in a simple graph")
    return (u, v) if u < v else (v, u)


def _bits_to_ids(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class SuspectGraph:
    """Mutable simple undirected graph on nodes ``1..n``."""

    _uid_counter = itertools.count()

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 1:
            raise ConfigurationError(f"graph needs n >= 1 nodes, got {n}")
        self.n = n
        self._adj_bits: List[int] = [0] * (n + 1)
        self._edges: Set[Edge] = set()
        self.uid = next(SuspectGraph._uid_counter)
        self.version = 0
        self._edges_cache: Optional[FrozenSet[Edge]] = None
        self._nbr_cache: List[Optional[FrozenSet[int]]] = [None] * (n + 1)
        for u, v in edges:
            self.add_edge(u, v)

    # --------------------------------------------------------------- mutation

    def add_edge(self, u: ProcessId, v: ProcessId) -> bool:
        """Add an edge; returns ``True`` if it was new."""
        validate_pid(u, self.n)
        validate_pid(v, self.n)
        edge = _normalize_edge(u, v)
        if edge in self._edges:
            return False
        self._edges.add(edge)
        self._adj_bits[edge[0]] |= 1 << edge[1]
        self._adj_bits[edge[1]] |= 1 << edge[0]
        self._touch(edge)
        return True

    def remove_edge(self, u: ProcessId, v: ProcessId) -> bool:
        """Remove an edge; returns ``True`` if it existed."""
        edge = _normalize_edge(u, v)
        if edge not in self._edges:
            return False
        self._edges.discard(edge)
        self._adj_bits[edge[0]] &= ~(1 << edge[1])
        self._adj_bits[edge[1]] &= ~(1 << edge[0])
        self._touch(edge)
        return True

    def _touch(self, edge: Edge) -> None:
        self.version += 1
        self._edges_cache = None
        self._nbr_cache[edge[0]] = None
        self._nbr_cache[edge[1]] = None

    # ---------------------------------------------------------------- queries

    def nodes(self) -> range:
        return range(1, self.n + 1)

    def edges(self) -> FrozenSet[Edge]:
        if self._edges_cache is None:
            self._edges_cache = frozenset(self._edges)
        return self._edges_cache

    def has_edge(self, u: ProcessId, v: ProcessId) -> bool:
        return _normalize_edge(u, v) in self._edges

    def neighbors(self, u: ProcessId) -> FrozenSet[int]:
        validate_pid(u, self.n)
        cached = self._nbr_cache[u]
        if cached is None:
            cached = frozenset(_bits_to_ids(self._adj_bits[u]))
            self._nbr_cache[u] = cached
        return cached

    def adjacency_bits(self, u: ProcessId) -> int:
        """Neighbor bitmask of ``u`` (bit ``k`` set iff ``(u, k)`` is an edge)."""
        validate_pid(u, self.n)
        return self._adj_bits[u]

    def adjacency_bitmasks(self) -> List[int]:
        """The per-node neighbor bitmasks, indexed by node id (index 0 unused).

        This is the live internal list — callers must treat it as
        read-only; it is exposed for the search inner loops.
        """
        return self._adj_bits

    def degree(self, u: ProcessId) -> int:
        validate_pid(u, self.n)
        return _popcount(self._adj_bits[u])

    def edge_count(self) -> int:
        return len(self._edges)

    def isolated_nodes(self) -> List[int]:
        """Nodes with no incident suspicion — always quorum-eligible."""
        return [u for u in self.nodes() if not self._adj_bits[u]]

    def is_independent(self, nodes: Iterable[ProcessId]) -> bool:
        """True iff no two of the given nodes are adjacent."""
        mask = 0
        members = list(nodes)
        for u in members:
            mask |= 1 << u
        return all(not self._adj_bits[u] & mask for u in members)

    def contains_edges(self, edges: Iterable[Edge]) -> bool:
        """True iff every given edge is present (Definition 3b check)."""
        return all(_normalize_edge(u, v) in self._edges for u, v in edges)

    def without_node_edges(self, node: ProcessId) -> "SuspectGraph":
        """Copy of the graph with all edges incident to ``node`` removed.

        Used by the maximal-line-subgraph search, which must leave the
        candidate leader with degree 0.
        """
        return SuspectGraph._from_known_edges(
            self.n, [edge for edge in self._edges if node not in edge]
        )

    def copy(self) -> "SuspectGraph":
        return SuspectGraph._from_known_edges(self.n, self._edges)

    @classmethod
    def _from_known_edges(cls, n: int, edges: Iterable[Edge]) -> "SuspectGraph":
        """Fast constructor for edges already known to be valid/normalized."""
        graph = cls(n)
        adj = graph._adj_bits
        for edge in edges:
            graph._edges.add(edge)
            adj[edge[0]] |= 1 << edge[1]
            adj[edge[1]] |= 1 << edge[0]
        graph.version = len(graph._edges)
        return graph

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SuspectGraph):
            return NotImplemented
        return self.n == other.n and self._edges == other._edges

    def __hash__(self) -> int:  # immutability is by convention here
        return hash((self.n, frozenset(self._edges)))

    def __iter__(self) -> Iterator[Edge]:
        return iter(sorted(self._edges))

    def __repr__(self) -> str:
        return f"SuspectGraph(n={self.n}, edges={sorted(self._edges)})"
