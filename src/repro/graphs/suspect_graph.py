"""Simple undirected graphs over the process set ``{1..n}``.

A *suspect graph* (Section VI-B) connects processes ``l`` and ``k`` when
one of them suspected the other in the current epoch or later.  The class
below is a minimal adjacency-set graph tailored to that use: nodes are the
fixed set ``1..n`` (isolated nodes matter — they are the well-behaved
processes), and edges are unordered pairs.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId, validate_pid

Edge = Tuple[int, int]


def _normalize_edge(u: int, v: int) -> Edge:
    if u == v:
        raise ConfigurationError(f"self-loop on p{u} not allowed in a simple graph")
    return (u, v) if u < v else (v, u)


class SuspectGraph:
    """Mutable simple undirected graph on nodes ``1..n``."""

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 1:
            raise ConfigurationError(f"graph needs n >= 1 nodes, got {n}")
        self.n = n
        self._adj: List[Set[int]] = [set() for _ in range(n + 1)]
        self._edges: Set[Edge] = set()
        for u, v in edges:
            self.add_edge(u, v)

    # --------------------------------------------------------------- mutation

    def add_edge(self, u: ProcessId, v: ProcessId) -> bool:
        """Add an edge; returns ``True`` if it was new."""
        validate_pid(u, self.n)
        validate_pid(v, self.n)
        edge = _normalize_edge(u, v)
        if edge in self._edges:
            return False
        self._edges.add(edge)
        self._adj[edge[0]].add(edge[1])
        self._adj[edge[1]].add(edge[0])
        return True

    def remove_edge(self, u: ProcessId, v: ProcessId) -> bool:
        """Remove an edge; returns ``True`` if it existed."""
        edge = _normalize_edge(u, v)
        if edge not in self._edges:
            return False
        self._edges.discard(edge)
        self._adj[edge[0]].discard(edge[1])
        self._adj[edge[1]].discard(edge[0])
        return True

    # ---------------------------------------------------------------- queries

    def nodes(self) -> range:
        return range(1, self.n + 1)

    def edges(self) -> FrozenSet[Edge]:
        return frozenset(self._edges)

    def has_edge(self, u: ProcessId, v: ProcessId) -> bool:
        return _normalize_edge(u, v) in self._edges

    def neighbors(self, u: ProcessId) -> FrozenSet[int]:
        validate_pid(u, self.n)
        return frozenset(self._adj[u])

    def degree(self, u: ProcessId) -> int:
        validate_pid(u, self.n)
        return len(self._adj[u])

    def edge_count(self) -> int:
        return len(self._edges)

    def isolated_nodes(self) -> List[int]:
        """Nodes with no incident suspicion — always quorum-eligible."""
        return [u for u in self.nodes() if not self._adj[u]]

    def is_independent(self, nodes: Iterable[ProcessId]) -> bool:
        """True iff no two of the given nodes are adjacent."""
        members = set(nodes)
        for u in members:
            if self._adj[u] & members:
                return False
        return True

    def contains_edges(self, edges: Iterable[Edge]) -> bool:
        """True iff every given edge is present (Definition 3b check)."""
        return all(_normalize_edge(u, v) in self._edges for u, v in edges)

    def without_node_edges(self, node: ProcessId) -> "SuspectGraph":
        """Copy of the graph with all edges incident to ``node`` removed.

        Used by the maximal-line-subgraph search, which must leave the
        candidate leader with degree 0.
        """
        return SuspectGraph(
            self.n, (edge for edge in self._edges if node not in edge)
        )

    def copy(self) -> "SuspectGraph":
        return SuspectGraph(self.n, self._edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SuspectGraph):
            return NotImplemented
        return self.n == other.n and self._edges == other._edges

    def __hash__(self) -> int:  # immutability is by convention here
        return hash((self.n, frozenset(self._edges)))

    def __iter__(self) -> Iterator[Edge]:
        return iter(sorted(self._edges))

    def __repr__(self) -> str:
        return f"SuspectGraph(n={self.n}, edges={sorted(self._edges)})"
