"""Bounded vertex-cover search (FPT branching).

Section VI-B / Theorem 4 use the classic duality: a set ``Q`` of size ``q``
is independent in ``G`` iff its complement (size ``n - q``) is a vertex
cover.  Quorum existence therefore reduces to "does ``G`` have a vertex
cover of size at most ``f``?", which the standard degree-branching
algorithm answers in ``O(2^f * |E|)`` — comfortably fast at the paper's
"consortium blockchain" scale, where ``f`` is small.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.graphs.suspect_graph import SuspectGraph


def vertex_cover_at_most(graph: SuspectGraph, k: int) -> bool:
    """Does ``graph`` have a vertex cover of size <= ``k``?"""
    if k < 0:
        return False
    adjacency: Dict[int, Set[int]] = {
        u: set(graph.neighbors(u)) for u in graph.nodes() if graph.degree(u) > 0
    }
    return _cover_search(adjacency, k)


def minimum_vertex_cover_size(graph: SuspectGraph) -> int:
    """Size of a minimum vertex cover (linear scan over ``k``).

    Used by analysis code and tests; the scan keeps the FPT structure so
    the cost is dominated by the final (successful) check.
    """
    for k in range(0, graph.n + 1):
        if vertex_cover_at_most(graph, k):
            return k
    return graph.n  # unreachable: all nodes always cover everything


def _cover_search(adjacency: Dict[int, Set[int]], k: int) -> bool:
    """Branching search; ``adjacency`` maps only nodes of nonzero degree."""
    # Simplification loop: remove degree-0 entries, take degree-1 neighbors
    # greedily (covering a pendant edge via the non-pendant endpoint is
    # never worse than via the pendant).
    while True:
        adjacency = {u: nbrs for u, nbrs in adjacency.items() if nbrs}
        if not adjacency:
            return True
        if k <= 0:
            return False
        pendant = next((u for u, nbrs in adjacency.items() if len(nbrs) == 1), None)
        if pendant is None:
            break
        neighbor = next(iter(adjacency[pendant]))
        adjacency = _remove_node(adjacency, neighbor)
        k -= 1
    # Branch on a maximum-degree vertex v: either v is in the cover, or all
    # of its neighbors are.
    v = max(adjacency, key=lambda u: (len(adjacency[u]), -u))
    neighbors = sorted(adjacency[v])
    if len(neighbors) > k:
        # v must be in the cover: excluding it would force > k neighbors in.
        return _cover_search(_remove_node(adjacency, v), k - 1)
    if _cover_search(_remove_node(adjacency, v), k - 1):
        return True
    reduced = adjacency
    for u in neighbors:
        reduced = _remove_node(reduced, u)
    return _cover_search(reduced, k - len(neighbors))


def _remove_node(adjacency: Dict[int, Set[int]], node: int) -> Dict[int, Set[int]]:
    """Adjacency copy with ``node`` (and its incident edges) deleted."""
    out: Dict[int, Set[int]] = {}
    for u, nbrs in adjacency.items():
        if u == node:
            continue
        out[u] = nbrs - {node} if node in nbrs else set(nbrs)
    return out


def greedy_cover_upper_bound(graph: SuspectGraph) -> int:
    """Cheap 2-approximate cover size via maximal matching (diagnostics)."""
    matched: Set[int] = set()
    size = 0
    for u, v in sorted(graph.edges()):
        if u not in matched and v not in matched:
            matched.update((u, v))
            size += 2
    return size
