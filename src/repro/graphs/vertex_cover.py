"""Bounded vertex-cover search (FPT branching).

Section VI-B / Theorem 4 use the classic duality: a set ``Q`` of size ``q``
is independent in ``G`` iff its complement (size ``n - q``) is a vertex
cover.  Quorum existence therefore reduces to "does ``G`` have a vertex
cover of size at most ``f``?", which the standard degree-branching
algorithm answers in ``O(2^f * |E|)`` — comfortably fast at the paper's
"consortium blockchain" scale, where ``f`` is small.

The working adjacency is a ``node -> neighbor-bitmask`` dict, mirroring
:meth:`SuspectGraph.adjacency_bitmasks`: node removal is a single
``mask &= ~bit`` per entry and degree is a popcount, so the branching
inner loop allocates no sets.  Branching order (pendant rule first, then
a maximum-degree vertex with smallest-id tie-break) is unchanged from the
set-based implementation, so the same graphs take the same decisions.
"""

from __future__ import annotations

from typing import Dict

from repro.graphs.suspect_graph import SuspectGraph, _bits_to_ids, _popcount


def vertex_cover_at_most(graph: SuspectGraph, k: int) -> bool:
    """Does ``graph`` have a vertex cover of size <= ``k``?"""
    if k < 0:
        return False
    bits = graph.adjacency_bitmasks()
    adjacency: Dict[int, int] = {
        u: bits[u] for u in graph.nodes() if bits[u]
    }
    return _cover_search(adjacency, k)


def minimum_vertex_cover_size(graph: SuspectGraph) -> int:
    """Size of a minimum vertex cover (linear scan over ``k``).

    Used by analysis code and tests; the scan keeps the FPT structure so
    the cost is dominated by the final (successful) check.
    """
    for k in range(0, graph.n + 1):
        if vertex_cover_at_most(graph, k):
            return k
    return graph.n  # unreachable: all nodes always cover everything


def _cover_search(adjacency: Dict[int, int], k: int) -> bool:
    """Branching search; ``adjacency`` maps only nodes of nonzero degree."""
    # Simplification loop: remove degree-0 entries, take degree-1 neighbors
    # greedily (covering a pendant edge via the non-pendant endpoint is
    # never worse than via the pendant).
    while True:
        adjacency = {u: mask for u, mask in adjacency.items() if mask}
        if not adjacency:
            return True
        if k <= 0:
            return False
        pendant_mask = next(
            (mask for mask in adjacency.values() if not mask & (mask - 1)), None
        )
        if pendant_mask is None:
            break
        neighbor = pendant_mask.bit_length() - 1
        adjacency = _remove_node(adjacency, neighbor)
        k -= 1
    # Branch on a maximum-degree vertex v: either v is in the cover, or all
    # of its neighbors are.
    v = max(adjacency, key=lambda u: (_popcount(adjacency[u]), -u))
    neighbors_mask = adjacency[v]
    degree = _popcount(neighbors_mask)
    if degree > k:
        # v must be in the cover: excluding it would force > k neighbors in.
        return _cover_search(_remove_node(adjacency, v), k - 1)
    if _cover_search(_remove_node(adjacency, v), k - 1):
        return True
    reduced = adjacency
    for u in _bits_to_ids(neighbors_mask):
        reduced = _remove_node(reduced, u)
    return _cover_search(reduced, k - degree)


def _remove_node(adjacency: Dict[int, int], node: int) -> Dict[int, int]:
    """Adjacency copy with ``node`` (and its incident edges) deleted."""
    clear = ~(1 << node)
    return {u: mask & clear for u, mask in adjacency.items() if u != node}


def greedy_cover_upper_bound(graph: SuspectGraph) -> int:
    """Cheap 2-approximate cover size via maximal matching (diagnostics)."""
    matched = 0
    size = 0
    for u, v in sorted(graph.edges()):
        pair = (1 << u) | (1 << v)
        if not matched & pair:
            matched |= pair
            size += 2
    return size
