"""The host API contract shared by every runtime.

Protocol modules (:class:`repro.sim.process.Module` subclasses — the
failure detector, Quorum/Follower Selection, heartbeats, applications)
never talk to a network or an event loop directly: they go through the
*host* they are mounted on.  Two runtimes implement the contract today:

- :class:`repro.sim.process.ProcessHost` — the deterministic
  discrete-event simulator (virtual time, in-memory channels);
- :class:`repro.net.host.NetHost` — the live asyncio runtime (wall-clock
  time, length-prefixed JSON frames over TCP).

Because modules are written against this surface only, the exact same
module objects run unchanged on either runtime; the sim<->net parity
harness (:mod:`repro.net.parity`) is the executable proof.

The contract, as exercised by the in-tree modules:

====================  =====================================================
member                behaviour required of every host
====================  =====================================================
``pid``               1-based process id.
``running``           ``False`` after :meth:`crash` until :meth:`recover`.
``fd``                the failure detector, or ``None`` (set by the FD).
``authenticator``     :class:`repro.crypto.authenticator.Authenticator`.
``log``               :class:`repro.util.eventlog.EventLog`-compatible.
``obs``               :class:`repro.obs.Observability` for this run (the
                      sim shares one across all hosts; a net node owns one).
``now``               current time (simulated or wall seconds since start).
``scheduler``         exposes ``schedule_every(period, action, label)``.
``subscribe``         route delivered messages of a kind to a handler.
``add_module``        attach a module; started with the host.
``send``              one message to one process (no implicit signing).
``broadcast``         to targets; self-delivery is *scheduled*, not inline.
``set_timer``         one-shot timer; dies with the process on crash.
``crash``             silence the process: no receives, sends, or timers.
``recover``           resume with state intact; re-runs module ``recover``.
``deliver``           dispatch to subscribers (FDs call this post-auth).
====================  =====================================================
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Tuple

from repro.util.ids import ProcessId

DeliveryHandler = Callable[[str, Any, ProcessId], None]

#: Attributes every host must expose (checked by :func:`missing_host_api`).
HOST_API_ATTRS: Tuple[str, ...] = (
    "pid",
    "running",
    "fd",
    "authenticator",
    "log",
    "obs",
    "now",
    "scheduler",
    "subscribe",
    "add_module",
    "send",
    "broadcast",
    "set_timer",
    "crash",
    "recover",
    "deliver",
)


def missing_host_api(host: Any) -> Tuple[str, ...]:
    """Names from :data:`HOST_API_ATTRS` the candidate host lacks.

    Returns an empty tuple for a conforming host.  Used by tests and by
    harnesses that accept "any host" to fail fast with a readable message
    instead of an :class:`AttributeError` deep inside a module.
    """
    return tuple(name for name in HOST_API_ATTRS if not hasattr(host, name))


def require_host_api(host: Any) -> Any:
    """Validate a host against the contract; returns it unchanged."""
    missing = missing_host_api(host)
    if missing:
        raise TypeError(
            f"{type(host).__name__} does not implement the host API; "
            f"missing: {', '.join(missing)}"
        )
    return host


def broadcast_targets(n: int) -> Iterable[ProcessId]:
    """The paper's "to all processes, including self" target set."""
    return range(1, n + 1)
