"""An IBFT-style 3-phase protocol backend behind the QS interface (E29).

Istanbul BFT (Moniz, "The Istanbul BFT Consensus Algorithm") decides
each slot in three phases — the round's leader broadcasts a
``PRE-PREPARE``, members echo a ``PREPARE`` vote, and once *prepared*
everyone broadcasts a ``COMMIT`` vote — with a ``ROUND-CHANGE``
sub-protocol replacing a faulty round.  This package transplants that
shape into the paper's XFT setting:

- rounds map to quorums through the **shared** enumeration
  (:mod:`repro.protocol.enumeration`) and the **shared** quorum policies
  (:mod:`repro.protocol.policy`), so a ``<QUORUM, Q>`` event from the
  unchanged Quorum Selection module drives IBFT round changes exactly
  like XPaxos view changes — the property the differential suite pins;
- the normal case runs inside the active quorum of ``q = n - f``
  replicas and requires a vote from *every* member (XFT thresholds, not
  IBFT's ``2f + 1`` of ``3f + 1`` — the FD detects silent members, and
  Quorum Selection replaces them);
- expectation issuing follows Section V-A under the backend's own FD
  group: accepting a PRE-PREPARE expects PREPAREs, becoming prepared
  expects COMMITs, a vote overtaking its PRE-PREPARE expects the
  PRE-PREPARE from the leader;
- everything rides the existing host-API contract, so the same replica
  runs unchanged on the simulator and the live asyncio runtime, and the
  unchanged client stack (``xp.request``/``xp.reply``) drives it.

See DESIGN.md §5.21 for the message tables and the delta from Istanbul
BFT proper.
"""

from repro.ibft.messages import (
    KIND_COMMIT,
    KIND_NEWROUND,
    KIND_PREPARE,
    KIND_PREPREPARE,
    KIND_ROUNDCHANGE,
    IbftCommitCertificate,
    IbftCommitPayload,
    IbftPreparePayload,
    NewRoundPayload,
    PrePreparePayload,
    RoundChangePayload,
    ibft_certificate_is_valid,
)
from repro.ibft.replica import IbftReplica

__all__ = [
    "KIND_PREPREPARE",
    "KIND_PREPARE",
    "KIND_COMMIT",
    "KIND_ROUNDCHANGE",
    "KIND_NEWROUND",
    "PrePreparePayload",
    "IbftPreparePayload",
    "IbftCommitPayload",
    "IbftCommitCertificate",
    "RoundChangePayload",
    "NewRoundPayload",
    "ibft_certificate_is_valid",
    "IbftReplica",
]
