"""IBFT as a :class:`~repro.protocol.backend.ProtocolBackend` (E29)."""

from __future__ import annotations

from typing import Any, Optional

from repro.ibft import replica as replica_mod
from repro.ibft.messages import (
    KIND_COMMIT,
    KIND_NEWROUND,
    KIND_PREPARE,
    KIND_PREPREPARE,
    KIND_ROUNDCHANGE,
)
from repro.ibft.replica import IbftReplica
from repro.protocol.backend import ProtocolBackend, ReplicaStatus, register_backend
from repro.protocol.policy import EnumerationPolicy, SelectionPolicy


class IbftBackend(ProtocolBackend):
    """Istanbul-style 3-phase agreement in the active quorum."""

    name = "ibft"
    decision_term = "round"
    fd_group = replica_mod.FD_GROUP
    replica_kinds = (
        KIND_PREPREPARE,
        KIND_PREPARE,
        KIND_COMMIT,
        KIND_ROUNDCHANGE,
        KIND_NEWROUND,
    )

    def build_replica(
        self,
        host: Any,
        n: int,
        f: int,
        qs_module: Optional[Any] = None,
        *,
        batch_size: int = 1,
        batch_window: float = 0.0,
        checkpoint_interval: Optional[int] = None,
        state_machine: Optional[Any] = None,
    ) -> IbftReplica:
        policy = SelectionPolicy(n, f) if qs_module is not None else EnumerationPolicy(n, f)
        return host.add_module(
            IbftReplica(
                host, n=n, f=f, policy=policy, qs_module=qs_module,
                batch_size=batch_size, batch_window=batch_window,
                checkpoint_interval=checkpoint_interval,
                state_machine=state_machine,
            )
        )

    def observe(self, replica: IbftReplica) -> ReplicaStatus:
        return ReplicaStatus(
            protocol=self.name,
            decision_number=replica.round,
            quorum=replica.quorum,
            leader=replica.leader,
            status=replica.status,
            commits=replica.commits,
            decision_changes=replica.round_changes,
            executed=replica.executed_base + len(replica.executed),
            checkpoints=replica.checkpoints_made,
        )

    def analytic_messages_per_decision(self, quorum_size: int) -> int:
        # PRE-PREPARE to q-1 members, q-1 PREPARE broadcasts to q-1
        # peers each, q-1 COMMIT broadcasts likewise:
        # (q-1) + 2(q-1)^2 = (q-1)(2q-1).
        return (quorum_size - 1) * (2 * quorum_size - 1)


register_backend(IbftBackend())
