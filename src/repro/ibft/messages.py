"""IBFT wire payloads.

Unlike XPaxos — whose COMMIT embeds the full signed PREPARE — IBFT's
PREPARE and COMMIT are *votes*: small signed payloads carrying only the
round, slot, and batch digest.  That makes the normal case cheaper per
message but means a vote overtaking its PRE-PREPARE cannot be adopted
(there is nothing to adopt); the receiver parks the vote and expects
the PRE-PREPARE from the leader instead.

Client traffic reuses the protocol-neutral envelope from
:mod:`repro.xpaxos.messages` (``xp.request``/``xp.reply`` with
``ClientRequest``/``ReplyPayload``), so the existing clients, service
layer, and load generator drive either backend unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.crypto.authenticator import SignedMessage
from repro.crypto.digests import digest
from repro.xpaxos.messages import ClientRequest

KIND_PREPREPARE = "ibft.preprepare"
KIND_PREPARE = "ibft.prepare"
KIND_COMMIT = "ibft.commit"
KIND_ROUNDCHANGE = "ibft.roundchange"
KIND_NEWROUND = "ibft.newround"


def _enc(value: Any) -> Any:
    return value.canonical() if hasattr(value, "canonical") else value


@dataclass(frozen=True)
class PrePreparePayload:
    """``PRE-PREPARE(round, slot, signed_requests)`` from the round's leader.

    ``signed_requests`` is a batch of client-signed request envelopes;
    members verify every client signature before voting, so a leader
    cannot fabricate operations (a forged request is a provable
    commission failure).
    """

    round: int
    slot: int
    signed_requests: Tuple[SignedMessage, ...]  # client-signed ClientRequests

    @property
    def requests(self) -> Tuple[ClientRequest, ...]:
        return tuple(sm.payload for sm in self.signed_requests)

    def canonical(self):
        return (
            "ibft-preprepare", self.round, self.slot,
            tuple(_enc(sm) for sm in self.signed_requests),
        )

    def request_digest(self) -> str:
        return digest(self.canonical())


@dataclass(frozen=True)
class IbftPreparePayload:
    """``PREPARE(round, slot, digest)`` — a member's echo vote."""

    round: int
    slot: int
    request_digest: str

    def canonical(self):
        return ("ibft-prepare", self.round, self.slot, self.request_digest)


@dataclass(frozen=True)
class IbftCommitPayload:
    """``COMMIT(round, slot, digest)`` — a member's commit vote."""

    round: int
    slot: int
    request_digest: str

    def canonical(self):
        return ("ibft-commit", self.round, self.slot, self.request_digest)


@dataclass(frozen=True)
class IbftCommitCertificate:
    """Proof that one batch committed at one (round, slot).

    ``preprepare`` is the leader-signed PRE-PREPARE; ``commits`` are the
    signed COMMIT votes of every non-leader member of that round's
    quorum (the leader's commitment is the PRE-PREPARE itself, mirroring
    the XPaxos certificate shape).  Anyone can verify the certificate
    against the public round -> quorum mapping, so round-change state
    transfer cannot be poisoned by invented history.
    """

    preprepare: SignedMessage
    commits: Tuple[SignedMessage, ...]

    def canonical(self):
        return (
            "ibft-commit-certificate",
            _enc(self.preprepare),
            tuple(_enc(c) for c in self.commits),
        )


def ibft_certificate_is_valid(
    certificate: IbftCommitCertificate,
    expected_slot: int,
    quorum_of,
    verify,
) -> bool:
    """Check an IBFT commit certificate.

    ``quorum_of(round)`` returns the round's quorum; ``verify`` checks
    signatures.  Valid iff: the PRE-PREPARE is signed by the round's
    leader for ``expected_slot`` and embeds only client-signed requests;
    every non-leader quorum member contributed a signed COMMIT vote
    whose digest matches the PRE-PREPARE.
    """
    if not isinstance(certificate, IbftCommitCertificate):
        return False
    preprepare = certificate.preprepare
    if not isinstance(preprepare, SignedMessage) or not verify(preprepare):
        return False
    body = preprepare.payload
    if not isinstance(body, PrePreparePayload) or body.slot != expected_slot:
        return False
    if not body.signed_requests:
        return False
    for inner in body.signed_requests:
        if not isinstance(inner, SignedMessage) or not verify(inner):
            return False
        request = inner.payload
        if not isinstance(request, ClientRequest) or inner.signer != request.client:
            return False
    quorum = quorum_of(body.round)
    if preprepare.signer != min(quorum):
        return False
    wanted_digest = body.request_digest()
    signers = set()
    for commit in certificate.commits:
        if not isinstance(commit, SignedMessage) or not verify(commit):
            return False
        vote = commit.payload
        if not isinstance(vote, IbftCommitPayload):
            return False
        if vote.round != body.round or vote.slot != body.slot:
            return False
        if vote.request_digest != wanted_digest:
            return False
        if commit.signer not in quorum or commit.signer == preprepare.signer:
            return False
        signers.add(commit.signer)
    return signers == quorum - {preprepare.signer}


@dataclass(frozen=True)
class RoundChangePayload:
    """``ROUND-CHANGE(new_round, committed, prepared)``.

    ``committed`` is the sender's certified execution history — one
    :class:`IbftCommitCertificate` per committed slot, in order from
    slot 0 (IBFT here carries no checkpoint layer; histories are
    absolute).  ``prepared`` maps uncommitted slots to the signed
    PRE-PREPAREs the sender accepted, so the new leader can re-propose
    in-flight requests.
    """

    new_round: int
    committed: Tuple[IbftCommitCertificate, ...]
    prepared: Tuple[Tuple[int, SignedMessage], ...]

    def canonical(self):
        # Byzantine senders may put arbitrary values where certificates
        # belong; the payload must still be signable so receivers can
        # authenticate it and then reject the content.
        return (
            "ibft-round-change",
            self.new_round,
            tuple(_enc(cert) for cert in self.committed),
            tuple((slot, _enc(sm)) for slot, sm in self.prepared),
        )


@dataclass(frozen=True)
class NewRoundPayload:
    """``NEW-ROUND(round, committed)`` from the new leader (certified)."""

    round: int
    committed: Tuple[IbftCommitCertificate, ...]

    def canonical(self):
        return (
            "ibft-new-round",
            self.round,
            tuple(_enc(cert) for cert in self.committed),
        )


def vote_is_wellformed(vote: Any, payload_type: type) -> Optional[Any]:
    """The typed vote body if ``vote`` is a well-shaped signed vote, else None."""
    if not isinstance(vote, SignedMessage):
        return None
    body = vote.payload
    if not isinstance(body, payload_type):
        return None
    if not isinstance(body.round, int) or not isinstance(body.slot, int):
        return None
    if not isinstance(body.request_digest, str):
        return None
    return body
