"""The IBFT replica: 3-phase normal case, FD wiring, round changes.

Normal case in round ``r`` with active quorum ``Q`` and leader
``l = min(Q)``:

1. the leader assigns the next slot to a batch of client requests and
   sends a signed ``PRE-PREPARE`` to the quorum (the PRE-PREPARE doubles
   as the leader's PREPARE *and* COMMIT, mirroring the XPaxos pattern);
2. members verify the batch and broadcast a ``PREPARE`` vote (round,
   slot, batch digest) to the quorum;
3. once a member holds matching PREPAREs from every non-leader member it
   is *prepared* and broadcasts a ``COMMIT`` vote;
4. a slot commits at a member once it holds matching COMMITs from every
   non-leader member, and executes in slot order.

Thresholds are XFT-style (every quorum member, not IBFT's ``2f + 1`` of
``3f + 1``): within the active quorum all members must cooperate for
progress, the failure detector notices the ones that do not, and Quorum
Selection replaces them — exactly the division of labour the paper
prescribes for XPaxos, transplanted to a 3-phase message pattern.

Failure-detector integration follows Section V-A under the backend's own
expectation group: accepting a PRE-PREPARE expects PREPAREs from members
whose vote has not already arrived; becoming prepared expects COMMITs
likewise; a vote overtaking its PRE-PREPARE cannot be adopted (votes
carry only the digest) so the receiver parks it and expects the
PRE-PREPARE from the leader.

Round changes reuse the shared quorum policies: a ``<QUORUM, Q>`` event
jumps to the smallest future round whose quorum is ``Q`` (selection
mode), or suspicion advances to the next enumerated round (enumeration
mode).  State transfer exchanges signed ``ROUND-CHANGE`` histories —
one :class:`IbftCommitCertificate` per slot from slot 0; no checkpoint
layer — merged by the new leader into a ``NEW-ROUND``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.crypto.authenticator import SignedMessage
from repro.ibft.messages import (
    KIND_COMMIT,
    KIND_NEWROUND,
    KIND_PREPARE,
    KIND_PREPREPARE,
    KIND_ROUNDCHANGE,
    IbftCommitCertificate,
    IbftCommitPayload,
    IbftPreparePayload,
    NewRoundPayload,
    PrePreparePayload,
    RoundChangePayload,
    ibft_certificate_is_valid,
    vote_is_wellformed,
)
from repro.obs.observability import NULL_OBS, get_obs
from repro.obs.spans import SPAN_VIEW_CHANGE
from repro.protocol.policy import QuorumPolicy
from repro.sim.process import Module, ProcessHost
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId
from repro.xpaxos.messages import (
    KIND_REPLY,
    KIND_REQUEST,
    ClientRequest,
    ReplyPayload,
)
from repro.xpaxos.state_machine import KeyValueStore, StateMachine

FD_GROUP = "ibft"

STATUS_NORMAL = "normal"
STATUS_ROUND_CHANGE = "round-change"


@dataclass
class RoundSlotState:
    """Per-(round, slot) agreement state.

    Votes are indexed by signer; digest matching happens at threshold
    time (a vote may arrive before the PRE-PREPARE that defines the
    digest, and a mismatching vote must simply never count).
    """

    preprepare: Optional[SignedMessage] = None
    requests: Tuple[ClientRequest, ...] = ()
    request_digest: str = ""
    prepare_votes: Dict[int, SignedMessage] = field(default_factory=dict)
    commit_votes: Dict[int, SignedMessage] = field(default_factory=dict)
    preprepare_expected: bool = False
    own_prepare_sent: bool = False
    own_commit_sent: bool = False
    prepared: bool = False
    committed: bool = False


class IbftReplica(Module):
    """One IBFT replica (process ids ``1..n`` are replicas)."""

    def __init__(
        self,
        host: ProcessHost,
        n: int,
        f: int,
        policy: QuorumPolicy,
        qs_module: Optional[Any] = None,
        batch_size: int = 1,
        batch_window: float = 0.0,
        checkpoint_interval: Optional[int] = None,
        state_machine: Optional[StateMachine] = None,
    ) -> None:
        super().__init__(host)
        if n != 2 * f + 1 and n <= 2 * f:
            raise ConfigurationError(f"IBFT needs n >= 2f + 1; got n={n}, f={f}")
        self.n = n
        self.f = f
        self.q = n - f
        self.policy = policy
        self.qs = qs_module
        if batch_size < 1:
            raise ConfigurationError(f"batch size must be >= 1, got {batch_size}")
        if batch_window < 0:
            raise ConfigurationError(f"batch window must be >= 0, got {batch_window}")
        self.batch_size = batch_size
        self.batch_window = batch_window
        self._batch_timer_armed = False
        # Interface-compat only: this backend keeps full histories (no
        # log compaction); the parameter is accepted so world builders
        # need no per-protocol branches.
        self.checkpoint_interval = checkpoint_interval
        self.checkpoints_made = 0
        # --- round state ---
        self.round = 0
        self.status = STATUS_NORMAL
        # --- log & execution state ---
        self.slots: Dict[int, RoundSlotState] = {}
        self.next_slot = 0
        self.kv: StateMachine = state_machine if state_machine is not None else KeyValueStore()
        self._apply_request = getattr(self.kv, "apply_request", None)
        self.executed: List[ClientRequest] = []
        self.executed_base = 0  # always 0: histories are absolute here
        self.executed_certs: List[IbftCommitCertificate] = []
        self._executed_ids: Set[Tuple[int, int]] = set()
        self._reply_cache: Dict[Tuple[int, int], Any] = {}
        self.pending: List[SignedMessage] = []  # leader queue of signed requests
        self._queued_ids: Set[Tuple[int, int]] = set()
        # --- round change bookkeeping ---
        self._rc_received: Dict[int, Dict[int, RoundChangePayload]] = {}
        self._newround_done_for: int = -1
        # --- instrumentation ---
        self.round_changes = 0
        self.commits = 0
        self.detected_events: List[Tuple[float, int, str]] = []
        self._execution_cursor = 0
        self._obs = NULL_OBS  # bound in start()

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._obs = get_obs(self.host)
        self._obs.add_collector(self._collect_metrics)
        self.host.subscribe(KIND_REQUEST, self._on_request)
        self.host.subscribe(KIND_PREPREPARE, self._on_preprepare)
        self.host.subscribe(KIND_PREPARE, self._on_prepare)
        self.host.subscribe(KIND_COMMIT, self._on_commit)
        self.host.subscribe(KIND_ROUNDCHANGE, self._on_roundchange)
        self.host.subscribe(KIND_NEWROUND, self._on_newround)
        if self.host.fd is not None:
            self.host.fd.subscribe_suspected(self._on_suspected)
        if self.qs is not None:
            self.qs.add_quorum_listener(self._on_selected_quorum)

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector for the replica's plain-int counters."""
        pid = self.pid
        registry.counter("ibft_commits_total", help="operations committed",
                         pid=pid).set(self.commits)
        registry.counter("ibft_round_changes_total", help="round changes completed",
                         pid=pid).set(self.round_changes)
        registry.gauge("ibft_round", help="current round", pid=pid).set(self.round)

    # --------------------------------------------------------------- helpers

    @property
    def quorum(self) -> FrozenSet[int]:
        return self.policy.quorum_of(self.round)

    @property
    def leader(self) -> ProcessId:
        return self.policy.leader_of(self.round)

    @property
    def is_leader(self) -> bool:
        return self.pid == self.leader

    @property
    def in_quorum(self) -> bool:
        return self.pid in self.quorum

    @property
    def view(self) -> int:
        """Protocol-neutral alias: IBFT's decision number is its round."""
        return self.round

    @property
    def view_changes(self) -> int:
        return self.round_changes

    @property
    def total_slots(self) -> int:
        """Absolute number of committed slots (histories are absolute)."""
        return len(self.executed_certs)

    def _verify(self, message: SignedMessage) -> bool:
        return self.host.authenticator.verify(message)

    def _detect(self, culprit: ProcessId, reason: str) -> None:
        self.detected_events.append((self.host.now, culprit, reason))
        self.host.log.append(self.host.now, self.pid, "ibft.detected",
                             target=culprit, reason=reason)
        if self.host.fd is not None:
            self.host.fd.detected(culprit)

    # =================================================================
    # Normal case
    # =================================================================

    def _on_request(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self._verify(payload):
            return
        request = payload.payload
        if not isinstance(request, ClientRequest) or payload.signer != request.client:
            return
        rid = request.request_id()
        if rid in self._reply_cache:
            self._send_reply(request, self._reply_cache[rid])
            return
        if not self.is_leader or self.status != STATUS_NORMAL:
            # Forward to whoever we currently believe leads (clients may
            # address a stale leader or broadcast on retry).
            if self.pid != self.leader and src == request.client:
                self.host.send(self.leader, KIND_REQUEST, payload)
            return
        if rid in self._queued_ids:
            return
        self._queued_ids.add(rid)
        self.pending.append(payload)
        self._propose_pending()

    def _propose_pending(self) -> None:
        """Leader: assign slots to queued requests and send PRE-PREPAREs."""
        if not self.is_leader or self.status != STATUS_NORMAL:
            return
        if self.batch_window > 0 and 0 < len(self.pending) < self.batch_size:
            if not self._batch_timer_armed:
                self._batch_timer_armed = True

                def flush() -> None:
                    self._batch_timer_armed = False
                    self._propose_now()

                self.host.set_timer(self.batch_window, flush, label="ibft-batch")
            return
        self._propose_now()

    def _propose_now(self) -> None:
        while self.pending:
            batch: List[SignedMessage] = []
            while self.pending and len(batch) < self.batch_size:
                signed_request = self.pending.pop(0)
                if signed_request.payload.request_id() in self._executed_ids:
                    continue
                batch.append(signed_request)
            if not batch:
                return
            slot = self.next_slot
            self.next_slot += 1
            body = PrePreparePayload(
                round=self.round, slot=slot, signed_requests=tuple(batch)
            )
            preprepare = self.host.authenticator.sign(body)
            state = self._slot(slot)
            state.preprepare = preprepare
            state.requests = body.requests
            state.request_digest = body.request_digest()
            # The PRE-PREPARE is the leader's PREPARE and COMMIT in one.
            state.own_prepare_sent = True
            state.own_commit_sent = True
            for member in sorted(self.quorum - {self.pid}):
                self.host.send(member, KIND_PREPREPARE, preprepare)
            self._expect_votes(slot, self.round, KIND_PREPARE,
                               IbftPreparePayload, state.prepare_votes)
            self._maybe_prepared(slot)

    def _slot(self, slot: int) -> RoundSlotState:
        return self.slots.setdefault(slot, RoundSlotState())

    def _expect_votes(
        self,
        slot: int,
        round_: int,
        vote_kind: str,
        payload_type: type,
        arrived: Dict[int, SignedMessage],
    ) -> None:
        """Section V-A: expect a vote from every other non-leader member.

        Subtlety #1 carries over from XPaxos: no expectation for members
        whose vote for this slot already arrived.
        """
        if self.host.fd is None:
            return
        for member in sorted(self.quorum):
            if member in (self.pid, self.leader):
                continue
            if member in arrived:
                continue

            def match(kind: str, payload: Any,
                      member=member, round_=round_, slot=slot,
                      vote_kind=vote_kind, payload_type=payload_type) -> bool:
                return (
                    kind == vote_kind
                    and isinstance(payload, SignedMessage)
                    and payload.signer == member
                    and isinstance(payload.payload, payload_type)
                    and payload.payload.round == round_
                    and payload.payload.slot == slot
                )

            self.host.fd.expect(
                source=member,
                predicate=match,
                group=FD_GROUP,
                label=f"{vote_kind}<-p{member}@r{round_}s{slot}",
            )

    def _expect_preprepare(self, slot: int, round_: int) -> None:
        """A vote overtook the PRE-PREPARE — expect it from the leader."""
        if self.host.fd is None:
            return
        leader = self.leader

        def match(kind: str, payload: Any) -> bool:
            return (
                kind == KIND_PREPREPARE
                and isinstance(payload, SignedMessage)
                and payload.signer == leader
                and isinstance(payload.payload, PrePreparePayload)
                and payload.payload.round == round_
                and payload.payload.slot == slot
            )

        self.host.fd.expect(
            source=leader,
            predicate=match,
            group=FD_GROUP,
            label=f"preprepare<-p{leader}@r{round_}s{slot}",
        )

    def _on_preprepare(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self._verify(payload):
            return
        body = payload.payload
        if not isinstance(body, PrePreparePayload):
            return
        if body.round != self.round or self.status != STATUS_NORMAL or not self.in_quorum:
            return
        if payload.signer != self.leader:
            return
        self._accept_preprepare(payload, body)

    def _accept_preprepare(self, preprepare: SignedMessage, body: PrePreparePayload) -> None:
        state = self._slot(body.slot)
        incoming_digest = body.request_digest()
        if state.preprepare is not None:
            if state.request_digest != incoming_digest:
                # Two leader-signed PRE-PREPAREs for one (round, slot):
                # equivocation, provable from the two signatures.
                self._detect(self.leader, "preprepare-equivocation")
            return
        # A leader cannot invent operations: the PRE-PREPARE must embed
        # requests correctly signed by the claimed clients.
        if not body.signed_requests:
            self._detect(preprepare.signer, "empty-batch")
            return
        for inner in body.signed_requests:
            if (
                not isinstance(inner, SignedMessage)
                or not self._verify(inner)
                or not isinstance(inner.payload, ClientRequest)
                or inner.signer != inner.payload.client
            ):
                self._detect(preprepare.signer, "forged-client-request")
                return
        state.preprepare = preprepare
        state.requests = body.requests
        state.request_digest = incoming_digest
        if not state.own_prepare_sent:
            state.own_prepare_sent = True
            vote = self.host.authenticator.sign(
                IbftPreparePayload(
                    round=body.round, slot=body.slot,
                    request_digest=incoming_digest,
                )
            )
            state.prepare_votes[self.pid] = vote
            for member in sorted(self.quorum - {self.pid}):
                self.host.send(member, KIND_PREPARE, vote)
        self._expect_votes(body.slot, body.round, KIND_PREPARE,
                           IbftPreparePayload, state.prepare_votes)
        self._maybe_prepared(body.slot)

    def _on_prepare(self, kind: str, payload: Any, src: ProcessId) -> None:
        if self.host.fd is None and isinstance(payload, SignedMessage) \
                and not self._verify(payload):
            return
        body = vote_is_wellformed(payload, IbftPreparePayload)
        if body is None:
            return
        if body.round != self.round or self.status != STATUS_NORMAL or not self.in_quorum:
            return
        sender = payload.signer
        # The leader never votes PREPARE: its PRE-PREPARE is the vote.
        if sender not in self.quorum or sender == self.leader:
            return
        state = self._slot(body.slot)
        state.prepare_votes.setdefault(sender, payload)
        if state.preprepare is None and not state.preprepare_expected:
            # The vote overtook the leader's PRE-PREPARE: nothing to
            # adopt (votes carry only the digest) — expect the original.
            state.preprepare_expected = True
            self._expect_preprepare(body.slot, body.round)
        self._maybe_prepared(body.slot)

    def _matching_votes(
        self, votes: Dict[int, SignedMessage], state: RoundSlotState
    ) -> Set[int]:
        return {
            member
            for member, vote in votes.items()
            if member in self.quorum
            and (member == self.pid
                 or vote.payload.request_digest == state.request_digest)
        }

    def _maybe_prepared(self, slot: int) -> None:
        state = self._slot(slot)
        if state.prepared or state.preprepare is None or not state.own_prepare_sent:
            return
        needed = self.quorum - {self.leader}
        if needed - self._matching_votes(state.prepare_votes, state):
            return
        state.prepared = True
        if not state.own_commit_sent:
            state.own_commit_sent = True
            vote = self.host.authenticator.sign(
                IbftCommitPayload(
                    round=self.round, slot=slot,
                    request_digest=state.request_digest,
                )
            )
            state.commit_votes[self.pid] = vote
            for member in sorted(self.quorum - {self.pid}):
                self.host.send(member, KIND_COMMIT, vote)
        self._expect_votes(slot, self.round, KIND_COMMIT,
                           IbftCommitPayload, state.commit_votes)
        self._maybe_commit(slot)

    def _on_commit(self, kind: str, payload: Any, src: ProcessId) -> None:
        if self.host.fd is None and isinstance(payload, SignedMessage) \
                and not self._verify(payload):
            return
        body = vote_is_wellformed(payload, IbftCommitPayload)
        if body is None:
            return
        if body.round != self.round or self.status != STATUS_NORMAL or not self.in_quorum:
            return
        sender = payload.signer
        if sender not in self.quorum or sender == self.leader:
            return
        state = self._slot(body.slot)
        state.commit_votes.setdefault(sender, payload)
        if state.preprepare is None and not state.preprepare_expected:
            state.preprepare_expected = True
            self._expect_preprepare(body.slot, body.round)
        self._maybe_commit(body.slot)

    def _maybe_commit(self, slot: int) -> None:
        state = self._slot(slot)
        if state.committed or not state.prepared or not state.own_commit_sent:
            return
        if not state.requests:
            return
        needed = self.quorum - {self.leader}
        if needed - self._matching_votes(state.commit_votes, state):
            return
        state.committed = True
        self.commits += 1
        self.host.log.append(
            self.host.now, self.pid, "ibft.commit",
            round=self.round, slot=slot,
            requests=tuple(r.request_id() for r in state.requests),
        )
        self._execute_ready()

    def _certificate_for(self, state: RoundSlotState) -> IbftCommitCertificate:
        """Assemble the commit certificate for a just-committed slot.

        Commit votes come from every non-leader member (the replica's own
        vote is recorded when sent); the leader's commitment is the
        PRE-PREPARE itself.
        """
        commits = tuple(
            state.commit_votes[member]
            for member in sorted(state.commit_votes)
            if member in self.quorum and member != self.leader
        )
        return IbftCommitCertificate(preprepare=state.preprepare, commits=commits)

    def _execute_ready(self) -> None:
        """Execute the contiguous committed prefix, replying per request."""
        while True:
            slot = self._execution_cursor
            state = self.slots.get(slot)
            if state is None or not state.committed or not state.requests:
                return
            self._apply_batch(state.requests, self._certificate_for(state))
            self._execution_cursor = slot + 1

    def _apply_batch(self, requests, certificate: IbftCommitCertificate) -> None:
        for request in requests:
            self._execute_one(request)
        self.executed_certs.append(certificate)

    def _execute_one(self, request: ClientRequest) -> None:
        rid = request.request_id()
        if rid in self._executed_ids:
            result = self._reply_cache.get(rid)
        else:
            # Service state machines dedup per client (at-most-once) and
            # need the request id; plain ones only see the operation.
            if self._apply_request is not None:
                result = self._apply_request(request.client, request.sequence, request.op)
            else:
                result = self.kv.apply(request.op)
            self.executed.append(request)
            self._executed_ids.add(rid)
            self._reply_cache[rid] = result
            self.host.log.append(
                self.host.now, self.pid, "ibft.execute",
                request=rid, total=len(self.executed),
            )
        self._send_reply(request, result)

    def _send_reply(self, request: ClientRequest, result: Any) -> None:
        reply = self.host.authenticator.sign(
            ReplyPayload(
                client=request.client,
                sequence=request.sequence,
                result=result,
                replica=self.pid,
                view=self.round,  # clients learn the decision number
            )
        )
        self.host.send(request.client, KIND_REPLY, reply)

    # =================================================================
    # Round changes
    # =================================================================

    def _on_suspected(self, suspected: FrozenSet[int]) -> None:
        target = self.policy.next_view_on_suspicion(self.round, suspected)
        if target is not None and target > self.round:
            self._start_round_change(target)

    def _on_selected_quorum(self, event: Any) -> None:
        target = self.policy.view_for_selected_quorum(event.quorum, self.round)
        if target is not None and target > self.round:
            self._start_round_change(target)

    def _acceptable_round(self, target: int) -> bool:
        """Whether to join a round change announced by a peer."""
        if target <= self.round:
            return False
        if self.qs is not None:
            # Selection mode: only rounds matching the QS module's verdict.
            return self.policy.quorum_of(target) == self.qs.current_quorum
        return True

    def _start_round_change(self, target: int) -> None:
        self.round = target
        self.status = STATUS_ROUND_CHANGE
        self.round_changes += 1
        # Report prepared-but-uncommitted entries *before* clearing the
        # per-round log, so the new leader can re-propose them.
        prepared = self._prepared_entries()
        self.slots = {}
        self.next_slot = self.total_slots
        self._execution_cursor = self.total_slots
        # Requests that were assigned round-local slots but not committed
        # must become acceptable again (clients retransmit them).
        self._queued_ids = {
            signed.payload.request_id() for signed in self.pending
        }
        self.host.log.append(
            self.host.now, self.pid, "ibft.roundchange",
            round=target, quorum=tuple(sorted(self.policy.quorum_of(target))),
        )
        self._obs.span(SPAN_VIEW_CHANGE, self.pid, self.host.now,
                       view=target, protocol="ibft")
        if self.host.fd is not None:
            # During a round change processes legitimately stop sending
            # expected normal-case messages (Section V-B).
            self.host.fd.cancel(group=FD_GROUP)
        rc_body = RoundChangePayload(
            new_round=target,
            committed=tuple(self.executed_certs),
            prepared=prepared,
        )
        signed = self.host.authenticator.sign(rc_body)
        for replica in range(1, self.n + 1):
            if replica != self.pid:
                self.host.send(replica, KIND_ROUNDCHANGE, signed)
        self._record_roundchange(self.pid, rc_body)
        if not self.is_leader and self.pid in self.quorum:
            self._expect_newround(target)

    def _prepared_entries(self) -> Tuple[Tuple[int, SignedMessage], ...]:
        entries = []
        for slot in sorted(self.slots):
            state = self.slots[slot]
            if state.preprepare is not None and not state.committed:
                entries.append((slot, state.preprepare))
        return tuple(entries)

    def _expect_newround(self, round_: int) -> None:
        if self.host.fd is None:
            return
        leader = self.policy.leader_of(round_)

        def match(kind: str, payload: Any) -> bool:
            return (
                kind == KIND_NEWROUND
                and isinstance(payload, SignedMessage)
                and payload.signer == leader
                and isinstance(payload.payload, NewRoundPayload)
                and payload.payload.round == round_
            )

        self.host.fd.expect(
            source=leader, predicate=match, group=FD_GROUP,
            label=f"newround<-p{leader}@r{round_}",
        )

    def _on_roundchange(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self._verify(payload):
            return
        body = payload.payload
        if not isinstance(body, RoundChangePayload):
            return
        sender = payload.signer
        if body.new_round > self.round and self._acceptable_round(body.new_round):
            self._start_round_change(body.new_round)
        self._record_roundchange(sender, body)

    def _record_roundchange(self, sender: ProcessId, body: RoundChangePayload) -> None:
        bucket = self._rc_received.setdefault(body.new_round, {})
        bucket.setdefault(sender, body)
        self._maybe_finish_round_change()

    def _maybe_finish_round_change(self) -> None:
        """New leader: once every quorum member reported, emit NEW-ROUND."""
        if self.status != STATUS_ROUND_CHANGE or not self.is_leader:
            return
        if self._newround_done_for >= self.round:
            return
        bucket = self._rc_received.get(self.round, {})
        if not all(member in bucket for member in self.quorum):
            return
        self._newround_done_for = self.round
        # Pick the longest *certified* history: every entry must verify,
        # so a Byzantine member cannot smuggle fabricated requests in.
        best: Tuple[IbftCommitCertificate, ...] = ()
        best_length = -1
        for rc in bucket.values():
            length = self._history_flat_length(rc.committed)
            if length is not None and length > best_length:
                best_length = length
                best = rc.committed
        newround = self.host.authenticator.sign(
            NewRoundPayload(round=self.round, committed=best)
        )
        for member in sorted(self.quorum - {self.pid}):
            self.host.send(member, KIND_NEWROUND, newround)
        self._install_history(best)
        self.status = STATUS_NORMAL
        self.host.log.append(self.host.now, self.pid, "ibft.newround", round=self.round)
        # Re-propose uncommitted prepared requests reported by members.
        reproposals: Dict[Tuple[int, int], SignedMessage] = {}
        for rc in bucket.values():
            for _, preprepare in rc.prepared:
                if not isinstance(preprepare, SignedMessage) or not self._verify(preprepare):
                    continue
                inner = preprepare.payload
                if not isinstance(inner, PrePreparePayload):
                    continue
                for signed_request in inner.signed_requests:
                    if (
                        not isinstance(signed_request, SignedMessage)
                        or not self._verify(signed_request)
                        or not isinstance(signed_request.payload, ClientRequest)
                        or signed_request.signer != signed_request.payload.client
                    ):
                        continue
                    rid = signed_request.payload.request_id()
                    if rid not in self._executed_ids and rid not in self._queued_ids:
                        reproposals[rid] = signed_request
        for rid, signed_request in sorted(reproposals.items()):
            # The request keeps its original client signature.
            self._queued_ids.add(rid)
            self.pending.append(signed_request)
        self._propose_pending()

    def _on_newround(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self._verify(payload):
            return
        body = payload.payload
        if not isinstance(body, NewRoundPayload):
            return
        if body.round != self.round or payload.signer != self.leader:
            return
        if self.status != STATUS_ROUND_CHANGE:
            return
        if self._history_flat_length(body.committed) is None:
            # The leader signed a NEW-ROUND with an uncertified history:
            # provable misbehaviour.
            self._detect(payload.signer, "invalid-newround-certificates")
            return
        self._install_history(body.committed)
        self.status = STATUS_NORMAL
        self.host.log.append(self.host.now, self.pid, "ibft.newround", round=self.round)

    def _history_flat_length(self, committed: Tuple[Any, ...]) -> Optional[int]:
        """Validate an absolute certified history; return its flat length.

        ``None`` means invalid: any entry without a valid commit
        certificate for its absolute slot.
        """
        total = 0
        for index, cert in enumerate(committed):
            if not ibft_certificate_is_valid(
                cert, index, self.policy.quorum_of, self._verify
            ):
                return None
            total += len(cert.preprepare.payload.requests)
        return total

    def _install_history(self, committed: Tuple[IbftCommitCertificate, ...]) -> None:
        """Adopt the merged certified history (longest-prefix semantics).

        ``committed`` holds one certificate per absolute *slot* (batch)
        from slot 0; correct histories are batch-aligned, so comparison
        happens on the flattened request sequence (request counts in
        service mode, where the state machine's at-most-once table
        deduplicates replay).
        """

        def requests_of(cert: IbftCommitCertificate):
            return cert.preprepare.payload.requests

        if self._apply_request is not None:
            theirs_len = sum(len(requests_of(cert)) for cert in committed)
            if theirs_len > len(self.executed):
                for index, cert in enumerate(committed):
                    if index < self.total_slots:
                        continue
                    self._apply_batch(requests_of(cert), cert)
            self.next_slot = self.total_slots
            self._execution_cursor = self.total_slots
            return
        mine = tuple(request.canonical() for request in self.executed)
        theirs = tuple(
            request.canonical() for cert in committed for request in requests_of(cert)
        )
        if len(theirs) <= len(mine):
            if theirs != mine[: len(theirs)]:
                self.host.log.append(self.host.now, self.pid, "ibft.divergence")
            self.next_slot = self.total_slots
            self._execution_cursor = self.total_slots
            return
        if theirs[: len(mine)] != mine:
            self.host.log.append(self.host.now, self.pid, "ibft.divergence")
        for index, cert in enumerate(committed):
            if index < self.total_slots:
                continue
            self._apply_batch(requests_of(cert), cert)
        self.next_slot = self.total_slots
        self._execution_cursor = self.total_slots
