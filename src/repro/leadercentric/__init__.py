"""A leader-centric (star) replication protocol on Follower Selection.

Section VIII motivates Follower Selection with applications "where a
single leader communicates with several followers, but followers do not
directly communicate with each other".  This package is such an
application: a star-topology state-machine replication protocol whose
only links are leader<->follower.

Why it matters for the paper's story:

- follower-follower omissions are *physically impossible* to matter
  (there are no such links), so the relaxed *no leader suspicion*
  property is exactly the right specification;
- every request costs ``3 (q - 1)`` messages (PROPOSE + ACK + DECIDE on
  the star) instead of the quadratic COMMIT exchange of XPaxos;
- reconfiguration churn under attack is Follower Selection's ``O(f)``
  (Theorem 9 / benchmark E20) instead of Quorum Selection's ``Θ(f²)``.

State transfer on reconfiguration is deliberately lean (histories are
exchanged as client-signed requests and cross-checked, not certified) —
the fully-certified variant is demonstrated in :mod:`repro.xpaxos`; this
protocol's job is the message pattern and the interruption counts.
"""

from repro.leadercentric.replica import StarReplica, StarClient
from repro.leadercentric.system import StarSystem, build_star_system

__all__ = ["StarReplica", "StarClient", "StarSystem", "build_star_system"]
