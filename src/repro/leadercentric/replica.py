"""The star replica: leader-centric normal case on Follower Selection.

Normal case in configuration ``C = (leader, followers)``:

1. the leader assigns a slot to a client-signed request and sends
   ``PROPOSE(C, slot, request)`` to each follower;
2. each follower replies ``ACK(C, slot, digest)`` *to the leader only*
   and expects the matching ``DECIDE`` (per-link liveness through the
   shared failure detector);
3. once the leader holds ACKs from **all** followers (they were selected
   as well-functioning — the quorum-selection premise), it sends
   ``DECIDE(C, slot, request)``; everyone executes in slot order and
   replies to the client, who accepts on ``f + 1`` matching replies.

Expectations mirror Section V's pattern on the star's links: the leader
expects an ACK from every follower it PROPOSEd to; a follower that ACKed
expects the DECIDE.  Timeouts feed the failure detector, whose
suspicions drive Follower Selection: a suspicion on any leader link
moves the maximal-line-subgraph leader strictly upward (Definition 2),
while follower-follower suspicions cannot even arise.

Reconfiguration: when the Follower Selection module announces a new
``(leader, quorum)``, members send the new leader a ``SYNC`` carrying
their executed history (client-signed requests).  The leader adopts the
longest client-authenticated history, redistributes it in ``ADOPT``, and
resumes proposing.  (Lean by design — see the package docstring.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.follower_selection import FollowerSelectionModule
from repro.crypto.authenticator import SignedMessage
from repro.crypto.digests import digest
from repro.sim.process import Module, ProcessHost
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId
from repro.xpaxos.messages import ClientRequest
from repro.xpaxos.state_machine import KeyValueStore, StateMachine

KIND_STAR_REQUEST = "st.request"
KIND_STAR_PROPOSE = "st.propose"
KIND_STAR_ACK = "st.ack"
KIND_STAR_DECIDE = "st.decide"
KIND_STAR_SYNC = "st.sync"
KIND_STAR_ADOPT = "st.adopt"
KIND_STAR_REPLY = "st.reply"

STAR_KINDS = (KIND_STAR_PROPOSE, KIND_STAR_ACK, KIND_STAR_DECIDE,
              KIND_STAR_SYNC, KIND_STAR_ADOPT)

FD_GROUP = "star"

Config = Tuple[int, Tuple[int, ...]]  # (leader, sorted members)


@dataclass(frozen=True)
class ProposePayload:
    config: Config
    slot: int
    signed_request: SignedMessage

    def canonical(self):
        return ("st-propose", self.config, self.slot, self.signed_request.canonical())

    def request_digest(self) -> str:
        return digest(self.signed_request.canonical())


@dataclass(frozen=True)
class AckPayload:
    config: Config
    slot: int
    request_digest: str

    def canonical(self):
        return ("st-ack", self.config, self.slot, self.request_digest)


@dataclass(frozen=True)
class DecidePayload:
    config: Config
    slot: int
    signed_request: SignedMessage

    def canonical(self):
        return ("st-decide", self.config, self.slot, self.signed_request.canonical())


@dataclass(frozen=True)
class SyncPayload:
    """A member's history offered to a freshly elected leader."""

    config: Config
    history: Tuple[SignedMessage, ...]  # client-signed requests, in order

    def canonical(self):
        return ("st-sync", self.config, tuple(sm.canonical() for sm in self.history))


@dataclass(frozen=True)
class AdoptPayload:
    """The new leader's merged history, redistributed to the members."""

    config: Config
    history: Tuple[SignedMessage, ...]

    def canonical(self):
        return ("st-adopt", self.config, tuple(sm.canonical() for sm in self.history))


@dataclass(frozen=True)
class StarReplyPayload:
    client: int
    sequence: int
    result: Any
    replica: int

    def canonical(self):
        return ("st-reply", self.client, self.sequence, self.result, self.replica)


class StarReplica(Module):
    """One member of the star-replicated service."""

    def __init__(
        self,
        host: ProcessHost,
        n: int,
        f: int,
        fs_module: FollowerSelectionModule,
        state_machine: Optional[StateMachine] = None,
    ) -> None:
        super().__init__(host)
        if n <= 3 * f:
            raise ConfigurationError(f"the star protocol rides on Follower "
                                     f"Selection: need n > 3f, got n={n}, f={f}")
        self.n = n
        self.f = f
        self.q = n - f
        self.fs = fs_module
        self.kv: StateMachine = state_machine if state_machine is not None else KeyValueStore()
        self.config: Config = (1, tuple(range(1, self.q + 1)))
        self.next_slot = 0
        self._slots: Dict[Tuple[Config, int], SignedMessage] = {}
        self._acks: Dict[Tuple[Config, int], Set[int]] = {}
        self._decided: Dict[int, SignedMessage] = {}  # absolute slot -> request
        self.executed: List[ClientRequest] = []
        self._executed_ids: Set[Tuple[int, int]] = set()
        self._reply_cache: Dict[Tuple[int, int], Any] = {}
        self.pending: List[SignedMessage] = []
        self._queued_ids: Set[Tuple[int, int]] = set()
        self.reconfigurations = 0
        self._synced_for: Optional[Config] = None

    # ---------------------------------------------------------------- wiring

    def start(self) -> None:
        self.host.subscribe(KIND_STAR_REQUEST, self._on_request)
        self.host.subscribe(KIND_STAR_PROPOSE, self._on_propose)
        self.host.subscribe(KIND_STAR_ACK, self._on_ack)
        self.host.subscribe(KIND_STAR_DECIDE, self._on_decide)
        self.host.subscribe(KIND_STAR_SYNC, self._on_sync)
        self.host.subscribe(KIND_STAR_ADOPT, self._on_adopt)
        self.fs.add_quorum_listener(self._on_new_quorum)

    @property
    def leader(self) -> ProcessId:
        return self.config[0]

    @property
    def members(self) -> Tuple[int, ...]:
        return self.config[1]

    @property
    def is_leader(self) -> bool:
        return self.pid == self.leader

    @property
    def followers(self) -> Tuple[int, ...]:
        return tuple(m for m in self.members if m != self.leader)

    def _valid_client_request(self, signed: Any) -> bool:
        return (
            isinstance(signed, SignedMessage)
            and self.host.authenticator.verify(signed)
            and isinstance(signed.payload, ClientRequest)
            and signed.signer == signed.payload.client
        )

    # ------------------------------------------------------------ normal case

    def _on_request(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not self._valid_client_request(payload):
            return
        request = payload.payload
        rid = request.request_id()
        if rid in self._reply_cache:
            self._reply(request, self._reply_cache[rid])
            return
        if not self.is_leader:
            if src == request.client:
                self.host.send(self.leader, KIND_STAR_REQUEST, payload)
            return
        if rid in self._queued_ids:
            return
        self._queued_ids.add(rid)
        self.pending.append(payload)
        self._propose_pending()

    def _propose_pending(self) -> None:
        if not self.is_leader or self._synced_for != self.config:
            return
        while self.pending:
            signed_request = self.pending.pop(0)
            if signed_request.payload.request_id() in self._executed_ids:
                continue
            slot = self.next_slot
            self.next_slot += 1
            body = ProposePayload(
                config=self.config, slot=slot, signed_request=signed_request
            )
            self._slots[(self.config, slot)] = signed_request
            self._acks.setdefault((self.config, slot), set())
            signed = self.host.authenticator.sign(body)
            for follower in self.followers:
                self.host.send(follower, KIND_STAR_PROPOSE, signed)
                self._expect_ack(self.config, slot, follower, body.request_digest())
            self._maybe_decide(slot)

    def _expect_ack(self, config: Config, slot: int, follower: int, wanted: str) -> None:
        if self.host.fd is None:
            return

        def match(kind: str, payload: Any) -> bool:
            return (
                kind == KIND_STAR_ACK
                and isinstance(payload, SignedMessage)
                and payload.signer == follower
                and isinstance(payload.payload, AckPayload)
                and payload.payload.config == config
                and payload.payload.slot == slot
                and payload.payload.request_digest == wanted
            )

        self.host.fd.expect(
            source=follower, predicate=match, group=FD_GROUP,
            label=f"st-ack<-p{follower}s{slot}",
        )

    def _on_propose(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self.host.authenticator.verify(payload):
            return
        body = payload.payload
        if not isinstance(body, ProposePayload) or body.config != self.config:
            return
        if payload.signer != self.leader or self.pid not in self.members:
            return
        if not self._valid_client_request(body.signed_request):
            if self.host.fd is not None:
                self.host.fd.detected(payload.signer)
            return
        ack = self.host.authenticator.sign(
            AckPayload(config=body.config, slot=body.slot,
                       request_digest=body.request_digest())
        )
        self.host.send(self.leader, KIND_STAR_ACK, ack)
        self._expect_decide(body.config, body.slot)

    def _expect_decide(self, config: Config, slot: int) -> None:
        if self.host.fd is None:
            return
        leader = config[0]

        def match(kind: str, payload: Any) -> bool:
            return (
                kind == KIND_STAR_DECIDE
                and isinstance(payload, SignedMessage)
                and payload.signer == leader
                and isinstance(payload.payload, DecidePayload)
                and payload.payload.config == config
                and payload.payload.slot == slot
            )

        self.host.fd.expect(
            source=leader, predicate=match, group=FD_GROUP,
            label=f"st-decide<-p{leader}s{slot}",
        )

    def _on_ack(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self.host.authenticator.verify(payload):
            return
        body = payload.payload
        if not isinstance(body, AckPayload) or body.config != self.config:
            return
        if not self.is_leader or payload.signer not in self.followers:
            return
        key = (body.config, body.slot)
        stored = self._slots.get(key)
        if stored is None or digest(stored.canonical()) != body.request_digest:
            return
        self._acks.setdefault(key, set()).add(payload.signer)
        self._maybe_decide(body.slot)

    def _maybe_decide(self, slot: int) -> None:
        key = (self.config, slot)
        if set(self.followers) - self._acks.get(key, set()):
            return
        signed_request = self._slots.get(key)
        if signed_request is None or slot in self._decided:
            return
        body = DecidePayload(config=self.config, slot=slot, signed_request=signed_request)
        signed = self.host.authenticator.sign(body)
        for follower in self.followers:
            self.host.send(follower, KIND_STAR_DECIDE, signed)
        self._deliver(slot, signed_request)

    def _on_decide(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self.host.authenticator.verify(payload):
            return
        body = payload.payload
        if not isinstance(body, DecidePayload) or body.config != self.config:
            return
        if payload.signer != self.leader:
            return
        if not self._valid_client_request(body.signed_request):
            if self.host.fd is not None:
                self.host.fd.detected(payload.signer)
            return
        self._deliver(body.slot, body.signed_request)

    def _deliver(self, slot: int, signed_request: SignedMessage) -> None:
        self._decided.setdefault(slot, signed_request)
        # Execute the contiguous decided prefix.
        while len(self.executed) in self._decided:
            self._execute_one(self._decided[len(self.executed)].payload)

    def _execute_one(self, request: ClientRequest) -> None:
        rid = request.request_id()
        if rid in self._executed_ids:
            result = self._reply_cache.get(rid)
        else:
            result = self.kv.apply(request.op)
            self.executed.append(request)
            self._executed_ids.add(rid)
            self._reply_cache[rid] = result
        self._reply(request, result)

    def _reply(self, request: ClientRequest, result: Any) -> None:
        reply = self.host.authenticator.sign(
            StarReplyPayload(client=request.client, sequence=request.sequence,
                             result=result, replica=self.pid)
        )
        self.host.send(request.client, KIND_STAR_REPLY, reply)

    # --------------------------------------------------------- reconfiguration

    def _on_new_quorum(self, event: Any) -> None:
        config: Config = (event.leader, tuple(sorted(event.quorum)))
        if config == self.config:
            return
        self.config = config
        self.reconfigurations += 1
        self._synced_for = None
        self.pending.clear()
        self._queued_ids = set()
        if self.host.fd is not None:
            self.host.fd.cancel(group=FD_GROUP)
        self.host.log.append(
            self.host.now, self.pid, "st.reconfigure",
            leader=config[0], members=config[1],
        )
        if self.pid in self.members and not self.is_leader:
            sync = SyncPayload(
                config=config,
                history=tuple(self._decided[s] for s in range(len(self.executed))),
            )
            self.host.send(config[0], KIND_STAR_SYNC, self.host.authenticator.sign(sync))
        if self.is_leader:
            self._sync_votes: Dict[int, Tuple[SignedMessage, ...]] = {
                self.pid: tuple(self._decided[s] for s in range(len(self.executed)))
            }
            self._maybe_adopt()

    def _on_sync(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self.host.authenticator.verify(payload):
            return
        body = payload.payload
        if not isinstance(body, SyncPayload) or body.config != self.config:
            return
        if not self.is_leader or payload.signer not in self.members:
            return
        if not all(self._valid_client_request(sm) for sm in body.history):
            return
        self._sync_votes[payload.signer] = body.history
        self._maybe_adopt()

    def _maybe_adopt(self) -> None:
        if self._synced_for == self.config or not self.is_leader:
            return
        if set(self.members) - set(self._sync_votes):
            return
        merged = max(self._sync_votes.values(), key=len)
        adopt = AdoptPayload(config=self.config, history=merged)
        signed = self.host.authenticator.sign(adopt)
        for follower in self.followers:
            self.host.send(follower, KIND_STAR_ADOPT, signed)
        self._install(merged)
        self._synced_for = self.config
        self.next_slot = len(self.executed)
        self._propose_pending()

    def _on_adopt(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self.host.authenticator.verify(payload):
            return
        body = payload.payload
        if not isinstance(body, AdoptPayload) or body.config != self.config:
            return
        if payload.signer != self.leader:
            return
        if not all(self._valid_client_request(sm) for sm in body.history):
            return
        self._install(body.history)
        self._synced_for = self.config

    def _install(self, history: Tuple[SignedMessage, ...]) -> None:
        mine = tuple(request.canonical() for request in self.executed)
        theirs = tuple(sm.payload.canonical() for sm in history)
        if theirs[: len(mine)] != mine and mine[: len(theirs)] != theirs:
            self.host.log.append(self.host.now, self.pid, "st.divergence")
        for index, signed_request in enumerate(history):
            self._decided.setdefault(index, signed_request)
        while len(self.executed) in self._decided:
            self._execute_one(self._decided[len(self.executed)].payload)


class StarClient(Module):
    """Closed-loop client for the star protocol (f+1 matching replies)."""

    def __init__(self, host, n, f, ops, retry_timeout: float = 30.0) -> None:
        super().__init__(host)
        self.n = n
        self.f = f
        self.ops = list(ops)
        self.retry_timeout = retry_timeout
        self.next_sequence = 0
        self.current: Optional[ClientRequest] = None
        self._votes: Dict[Any, Set[int]] = {}
        self._sent_at = 0.0
        self.completed: List[Tuple[int, Tuple[Any, ...], Any, float, float]] = []

    def start(self) -> None:
        self.host.subscribe(KIND_STAR_REPLY, self._on_reply)
        self._next_request()

    @property
    def done(self) -> bool:
        return self.current is None and not self.ops

    def _next_request(self) -> None:
        if not self.ops:
            self.current = None
            return
        self.current = ClientRequest(
            client=self.pid, sequence=self.next_sequence, op=self.ops.pop(0)
        )
        self.next_sequence += 1
        self._votes = {}
        self._sent_at = self.host.now
        self._send(broadcast=False)
        self._arm_retry(self.current.sequence)

    def _send(self, broadcast: bool) -> None:
        if self.current is None:
            return
        signed = self.host.authenticator.sign(self.current)
        targets = range(1, self.n + 1) if broadcast else (1,)
        for replica in targets:
            self.host.send(replica, KIND_STAR_REQUEST, signed)

    def _arm_retry(self, sequence: int) -> None:
        def retry() -> None:
            if self.current is not None and self.current.sequence == sequence:
                self._send(broadcast=True)
                self._arm_retry(sequence)

        self.host.set_timer(self.retry_timeout, retry, label=f"st-retry@p{self.pid}")

    def _on_reply(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage) or not self.host.authenticator.verify(payload):
            return
        reply = payload.payload
        if not isinstance(reply, StarReplyPayload) or reply.client != self.pid:
            return
        if self.current is None or reply.sequence != self.current.sequence:
            return
        votes = self._votes.setdefault(reply.result, set())
        votes.add(reply.replica)
        if len(votes) >= self.f + 1:
            self.completed.append(
                (self.current.sequence, self.current.op, reply.result,
                 self.host.now - self._sent_at, self.host.now)
            )
            self.current = None
            self._next_request()
