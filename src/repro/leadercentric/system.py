"""Assembly of the star-replicated service (Follower Selection inside)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.follower_selection import FollowerSelectionModule
from repro.failures.adversary import Adversary
from repro.fd.detector import FailureDetector
from repro.fd.heartbeat import HeartbeatModule
from repro.fd.timers import TimeoutPolicy
from repro.leadercentric.replica import StarClient, StarReplica
from repro.sim.runtime import Simulation, SimulationConfig
from repro.util.errors import ConfigurationError


@dataclass
class StarSystem:
    sim: Simulation
    n: int
    f: int
    replicas: Dict[int, StarReplica]
    fs_modules: Dict[int, FollowerSelectionModule]
    clients: Dict[int, StarClient]
    adversary: Adversary

    def run(self, until: float) -> None:
        self.sim.run_until(until)

    def total_completed(self) -> int:
        return sum(len(client.completed) for client in self.clients.values())

    def correct_replicas(self) -> List[StarReplica]:
        faulty = self.adversary.faulty
        return [r for pid, r in sorted(self.replicas.items()) if pid not in faulty]

    def histories_consistent(self) -> bool:
        histories = sorted(
            (
                tuple(request.canonical() for request in replica.executed)
                for replica in self.correct_replicas()
            ),
            key=len,
        )
        return all(
            longer[: len(shorter)] == shorter
            for shorter, longer in zip(histories, histories[1:])
        )

    def star_messages(self) -> int:
        from repro.leadercentric.replica import STAR_KINDS

        return self.sim.stats.total_sent(STAR_KINDS)

    def current_config(self):
        configs = {
            replica.config
            for pid, replica in self.replicas.items()
            if replica.host.running and pid not in self.adversary.faulty
        }
        if len(configs) != 1:
            raise ConfigurationError(f"configuration disagreement: {configs}")
        return configs.pop()


def build_star_system(
    n: int,
    f: int,
    clients: int = 1,
    client_ops: Optional[Sequence[Sequence[Tuple[Any, ...]]]] = None,
    seed: int = 1,
    gst: float = 0.0,
    delta: float = 1.0,
    heartbeat_period: float = 4.0,
    fd_base_timeout: float = 8.0,
    client_retry: float = 30.0,
) -> StarSystem:
    """Build the star service: Follower Selection requires ``n > 3f``."""
    sim = Simulation(SimulationConfig(n=n + clients, seed=seed, gst=gst, delta=delta))
    replicas: Dict[int, StarReplica] = {}
    fs_modules: Dict[int, FollowerSelectionModule] = {}
    for pid in range(1, n + 1):
        host = sim.host(pid)
        FailureDetector(host, TimeoutPolicy(base_timeout=fd_base_timeout))
        host.add_module(HeartbeatModule(host, n=n, period=heartbeat_period))
        fs_modules[pid] = host.add_module(FollowerSelectionModule(host, n=n, f=f))
        replicas[pid] = host.add_module(
            StarReplica(host, n=n, f=f, fs_module=fs_modules[pid])
        )
        # The initial configuration is implicitly synced (everyone empty).
        replicas[pid]._synced_for = replicas[pid].config
    client_modules: Dict[int, StarClient] = {}
    for index in range(clients):
        pid = n + 1 + index
        host = sim.host(pid)
        ops = (
            list(client_ops[index])
            if client_ops is not None
            else [("put", f"k{index}-{i}", i) for i in range(20)]
        )
        client_modules[pid] = host.add_module(
            StarClient(host, n=n, f=f, ops=ops, retry_timeout=client_retry)
        )
    return StarSystem(
        sim=sim, n=n, f=f, replicas=replicas, fs_modules=fs_modules,
        clients=client_modules, adversary=Adversary(sim, f_max=f),
    )
