"""Live asyncio network runtime: the module stack over real TCP sockets.

Every protocol module in this repository is written against the host API
(:mod:`repro.hostapi`); this package provides the second implementation
of that API — real sockets, real clocks, real process crashes — so
:class:`~repro.core.quorum_selection.QuorumSelectionModule`, the failure
detector, and Follower Selection run *unchanged* outside the simulator.

Layers, bottom up:

- :mod:`repro.net.wire` — length-prefixed tagged-JSON framing of the
  existing signed envelopes (same payload dataclasses, same signatures).
- :mod:`repro.net.peer` — per-peer connections: dial-on-demand,
  reconnect with exponential backoff + jitter, bounded outbound queues
  whose overflow policy is *drop* (an omission failure — exactly the
  fault class Quorum Selection is built to tolerate).
- :mod:`repro.net.timers` — wall-clock timer service with the simulator
  scheduler's timer semantics.
- :mod:`repro.net.host` — :class:`NetHost`, the host-API implementation.
- :mod:`repro.net.node` — one replica: host + stack + JSON event stream.
- :mod:`repro.net.cluster` — multi-OS-process loopback/LAN harness with
  scheduled crash/recovery injection (``python -m repro cluster``).
- :mod:`repro.net.parity` — the sim<->net parity harness: one crash
  schedule, both runtimes, same final quorum, Thm 3 bound respected.
"""

from repro.net.host import NetHost
from repro.net.peer import PeerManager, ReconnectPolicy
from repro.net.timers import NetTimerService
from repro.net.wire import (
    FrameDecoder,
    WireError,
    decode_value,
    encode_frame,
    encode_value,
)

__all__ = [
    "NetHost",
    "PeerManager",
    "ReconnectPolicy",
    "NetTimerService",
    "FrameDecoder",
    "WireError",
    "encode_frame",
    "encode_value",
    "decode_value",
]
