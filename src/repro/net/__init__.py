"""Live asyncio network runtime: the module stack over real TCP sockets.

Every protocol module in this repository is written against the host API
(:mod:`repro.hostapi`); this package provides the second implementation
of that API — real sockets, real clocks, real process crashes — so
:class:`~repro.core.quorum_selection.QuorumSelectionModule`, the failure
detector, and Follower Selection run *unchanged* outside the simulator.

Layers, bottom up:

- :mod:`repro.net.wire` — length-prefixed framing with two negotiable
  codecs: tagged-JSON ``WIRE_V1`` and the compact binary ``WIRE_V2``
  (struct-packed headers, varint-coded payloads), plus the multi-frame
  batch envelope authenticated by a single link-level HMAC.
- :mod:`repro.net.batch` — batching policy/buffer, the batch
  authenticator, and the hot-path wire statistics.
- :mod:`repro.net.loop` — optional uvloop activation (``--uvloop`` /
  ``REPRO_UVLOOP=1``) with a clean fallback where it is not installed.
- :mod:`repro.net.peer` — per-peer connections: dial-on-demand,
  per-connection codec negotiation, coalesced + pipelined sends,
  reconnect with exponential backoff + jitter, bounded outbound queues
  whose overflow policy is *drop* (an omission failure — exactly the
  fault class Quorum Selection is built to tolerate).
- :mod:`repro.net.timers` — wall-clock timer service with the simulator
  scheduler's timer semantics.
- :mod:`repro.net.host` — :class:`NetHost`, the host-API implementation.
- :mod:`repro.net.node` — one replica: host + stack + JSON event stream.
- :mod:`repro.net.cluster` — multi-OS-process loopback/LAN harness with
  scheduled crash/recovery injection (``python -m repro cluster``).
- :mod:`repro.net.parity` — the sim<->net parity harness: one crash
  schedule, both runtimes, same final quorum, Thm 3 bound respected.
"""

from repro.net.batch import BatchAuthenticator, BatchBuffer, BatchPolicy, WireStats
from repro.net.host import NetHost
from repro.net.loop import maybe_install_uvloop, uvloop_active, uvloop_available
from repro.net.peer import PeerManager, ReconnectPolicy
from repro.net.timers import NetTimerService
from repro.net.wire import (
    DEFAULT_WIRE_VERSION,
    WIRE_V1,
    WIRE_V2,
    WIRE_VERSIONS,
    BatchAuthError,
    FrameDecoder,
    WireError,
    decode_frame_body,
    decode_value,
    encode_frame,
    encode_frame_body,
    encode_value,
    resolve_wire_version,
)

__all__ = [
    "NetHost",
    "PeerManager",
    "ReconnectPolicy",
    "NetTimerService",
    "FrameDecoder",
    "WireError",
    "BatchAuthError",
    "encode_frame",
    "encode_frame_body",
    "decode_frame_body",
    "encode_value",
    "decode_value",
    "WIRE_V1",
    "WIRE_V2",
    "WIRE_VERSIONS",
    "DEFAULT_WIRE_VERSION",
    "resolve_wire_version",
    "BatchPolicy",
    "BatchBuffer",
    "BatchAuthenticator",
    "WireStats",
    "maybe_install_uvloop",
    "uvloop_active",
    "uvloop_available",
]
