"""Send-side batching policy, link-level batch MAC, and wire statistics.

The peer layer (:mod:`repro.net.peer`) coalesces each link's outbound
frames into one write — and, on a WIRE_V2 connection, one batch envelope
carrying a single HMAC — instead of one write (and one per-frame
signature check on the receiving ingress) per frame.  Everything that
parameterizes or observes that behaviour lives here:

- :class:`BatchPolicy` — *when* to flush: frame-count budget, byte
  budget, or time budget, whichever trips first;
- :class:`BatchBuffer` — the coalescing buffer those triggers query
  (pure data, unit-testable without sockets or an event loop);
- :class:`BatchAuthenticator` — HMAC-SHA256 over a whole envelope, keyed
  per sender from the shared :class:`~repro.crypto.keys.KeyRegistry`;
- :class:`WireStats` — plain-int/array hot-path counters folded into the
  metrics registry only at snapshot time (the E25 collect-on-snapshot
  discipline), via ``wire_stats_collector`` in
  :mod:`repro.obs.observability`.
"""

from __future__ import annotations

import hashlib
import hmac
from bisect import bisect_left
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from repro.obs.registry import BATCH_FRAME_BUCKETS, ENCODE_SECONDS_BUCKETS

#: Per-member framing overhead a batch envelope pays (length prefix).
MEMBER_OVERHEAD = 4


@dataclass(frozen=True)
class BatchPolicy:
    """Flush triggers for one link's coalescing buffer.

    A buffer is flushed as soon as it holds ``max_frames`` frames or
    ``max_bytes`` encoded bytes, or once ``max_delay`` seconds have
    passed since its first frame arrived — whichever trips first.  The
    defaults trade at most 2 ms of added latency (far below any protocol
    timeout) for an order-of-magnitude fewer writes and MACs under load.
    """

    max_frames: int = 128
    max_bytes: int = 1 << 17
    max_delay: float = 0.002

    def __post_init__(self) -> None:
        if self.max_frames < 1 or self.max_bytes < 1 or self.max_delay < 0:
            raise ValueError(f"invalid batch policy {self}")

    @classmethod
    def disabled(cls) -> "BatchPolicy":
        """One frame per flush: the pre-E27 write-per-frame behaviour."""
        return cls(max_frames=1, max_bytes=1, max_delay=0.0)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


class BatchBuffer:
    """Coalescing buffer for one flush; the policy triggers are queries."""

    __slots__ = ("policy", "bodies", "nbytes", "first_at")

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self.bodies: List[bytes] = []
        self.nbytes = 0
        self.first_at: Optional[float] = None

    def __len__(self) -> int:
        return len(self.bodies)

    def add(self, body: bytes, now: float) -> None:
        if self.first_at is None:
            self.first_at = now
        self.bodies.append(body)
        self.nbytes += len(body) + MEMBER_OVERHEAD

    def full(self) -> bool:
        """Frame-count or byte budget exhausted: flush immediately."""
        return (
            len(self.bodies) >= self.policy.max_frames
            or self.nbytes >= self.policy.max_bytes
        )

    def deadline(self) -> Optional[float]:
        """When the time budget of the oldest buffered frame runs out."""
        if self.first_at is None:
            return None
        return self.first_at + self.policy.max_delay

    def expired(self, now: float) -> bool:
        deadline = self.deadline()
        return deadline is not None and now >= deadline

    def drain(self) -> List[bytes]:
        bodies = self.bodies
        self.bodies = []
        self.nbytes = 0
        self.first_at = None
        return bodies


class BatchAuthenticator:
    """One HMAC-SHA256 per batch envelope, keyed by the sender's secret.

    Link-level, not protocol-level: the MAC proves the envelope came from
    the peer it claims and arrived intact (tampering with any member
    frame invalidates the whole batch).  Protocol signatures inside the
    payloads are still checked by the host ingress and the failure
    detector — a Byzantine peer with a valid link key can still only
    equivocate as itself.
    """

    __slots__ = ("registry", "pid", "_secret")

    def __init__(self, registry: Any, pid: int) -> None:
        self.registry = registry
        self.pid = pid
        self._secret = registry.secret_for(pid)

    def mac(self, data: bytes) -> bytes:
        return hmac.new(self._secret, data, hashlib.sha256).digest()

    def verify(self, src: int, data: bytes, tag: bytes) -> bool:
        try:
            secret = self.registry.secret_for(src)
        except Exception:
            return False  # unknown sender: no key, no trust
        return hmac.compare_digest(hmac.new(secret, data, hashlib.sha256).digest(), tag)


class WireStats:
    """Hot-path codec/batching counters for one :class:`PeerManager`.

    Plain ints and fixed arrays only — no registry objects are touched on
    the send path.  ``wire_stats_collector`` folds these into
    ``net_batch_frames`` / ``wire_encode_seconds`` histograms and the
    ``net_bytes_*`` counters at snapshot time.
    """

    __slots__ = (
        "encode_seconds_sum",
        "encode_count",
        "encode_bucket_counts",
        "batch_frames_sum",
        "batch_flushes",
        "batch_bucket_counts",
        "negotiated_versions",
    )

    def __init__(self) -> None:
        self.encode_seconds_sum = 0.0
        self.encode_count = 0
        self.encode_bucket_counts = [0] * (len(ENCODE_SECONDS_BUCKETS) + 1)
        self.batch_frames_sum = 0
        self.batch_flushes = 0
        self.batch_bucket_counts = [0] * (len(BATCH_FRAME_BUCKETS) + 1)
        self.negotiated_versions: Dict[int, int] = {}

    def record_encode(self, seconds: float) -> None:
        self.encode_seconds_sum += seconds
        self.encode_count += 1
        self.encode_bucket_counts[bisect_left(ENCODE_SECONDS_BUCKETS, seconds)] += 1

    def record_encode_bulk(self, total_seconds: float, count: int) -> None:
        """``count`` encode samples in one shot (one bisect per flush).

        Frames coalesced into one flush encode back-to-back with nearly
        identical costs, so bucketing all of them at their mean keeps the
        histogram honest while taking the recording overhead off the
        per-frame path.
        """
        if count <= 0:
            return
        self.encode_seconds_sum += total_seconds
        self.encode_count += count
        bucket = bisect_left(ENCODE_SECONDS_BUCKETS, total_seconds / count)
        self.encode_bucket_counts[bucket] += count

    def record_flush(self, frames: int) -> None:
        self.batch_frames_sum += frames
        self.batch_flushes += 1
        self.batch_bucket_counts[bisect_left(BATCH_FRAME_BUCKETS, frames)] += 1

    def record_negotiation(self, version: int) -> None:
        self.negotiated_versions[version] = self.negotiated_versions.get(version, 0) + 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "encode_count": self.encode_count,
            "encode_seconds_sum": self.encode_seconds_sum,
            "batch_flushes": self.batch_flushes,
            "batch_frames_sum": self.batch_frames_sum,
            "negotiated_versions": dict(self.negotiated_versions),
        }
