"""Loopback/LAN cluster harness: one OS process per replica.

:func:`run_cluster` launches ``n`` replica processes (``python -m repro
node``), performs the ephemeral-port rendezvous (each node binds port 0,
reports its port, and receives the full peer map on stdin once everyone
listens), streams every node's JSON events into memory and a run
directory, injects the crash/recovery schedule, and returns a
:class:`ClusterResult` with per-node outcomes plus cluster-level
verdicts (agreement on the final quorum, Theorem 3's per-epoch bound).

Two kill modes:

- ``host`` (default): the *node schedules its own* host crash — the
  process stays alive but silent, state intact, so a later recovery
  resumes it exactly like the simulator's crash-recovery model.  This is
  the mode the sim<->net parity harness uses.
- ``process``: the harness SIGKILLs the replica at the scheduled time —
  a real OS-level crash: sockets reset, peers' reconnect loops start
  backing off, no recovery possible (state is gone).

All timings in the schedule are seconds after the cluster-wide start
barrier (every node ready).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError

#: Extra wall time allowed beyond ``duration`` before children are reaped.
GRACE_SECONDS = 20.0


@dataclass(frozen=True)
class ClusterConfig:
    """One cluster run: size, timing, and the fault schedule."""

    n: int
    f: int
    duration: float = 10.0
    #: Free-form tag carried into the summary (e.g. ``"shard-2"`` when a
    #: sharded deployment runs several clusters side by side).
    label: str = ""
    #: (pid, seconds-after-ready) pairs.
    kills: Tuple[Tuple[int, float], ...] = ()
    recovers: Tuple[Tuple[int, float], ...] = ()
    kill_mode: str = "host"  # "host" | "process"
    follower_mode: bool = False
    heartbeat_period: float = 0.3
    base_timeout: float = 2.0
    queue_capacity: int = 1024
    anti_entropy_period: Optional[float] = None
    run_dir: Optional[Path] = None
    startup_timeout: float = 30.0
    #: Wire codec offered by every node (``None``: each node resolves its
    #: own default).  ``wire_versions`` overrides per pid, which is how
    #: the mixed-version interop test pins one replica to V1.
    wire_version: Optional[int] = None
    wire_versions: Optional[Dict[int, int]] = None
    uvloop: bool = False
    #: Replicated service every node runs (``"kv"``) or ``None``.
    service: Optional[str] = None
    #: Logical client pids reserved in every node's key registry.
    service_clients: int = 0
    #: Extra (pid, "host:port") entries merged into the rendezvous peer
    #: map — how client pids and the gateway pid route to the gateway
    #: process, which binds *before* the cluster launches.
    extra_peers: Tuple[Tuple[int, str], ...] = ()
    #: Service-mode consensus tuning, passed through to every node.
    batch_size: int = 8
    batch_window: float = 0.002
    checkpoint_interval: Optional[int] = 128
    #: Protocol backend every node executes in service mode.
    protocol: str = "xpaxos"

    def validate(self) -> None:
        from repro.net.wire import WIRE_VERSIONS
        from repro.protocol.backend import backend_names

        if not 1 <= self.f < self.n - self.f:
            raise ConfigurationError(
                f"need 1 <= f and q = n - f > f; got n={self.n}, f={self.f}"
            )
        versions = dict(self.wire_versions or {})
        if self.wire_version is not None:
            versions[0] = self.wire_version
        for pid, version in versions.items():
            if version not in WIRE_VERSIONS:
                raise ConfigurationError(
                    f"wire version must be one of {WIRE_VERSIONS}, got {version}"
                )
            if pid and not 1 <= pid <= self.n:
                raise ConfigurationError(
                    f"wire_versions pid {pid} out of range for n={self.n}"
                )
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if self.kill_mode not in ("host", "process"):
            raise ConfigurationError(f"kill mode must be host|process, got {self.kill_mode!r}")
        for pid, t in (*self.kills, *self.recovers):
            if not 1 <= pid <= self.n:
                raise ConfigurationError(f"schedule pid {pid} out of range for n={self.n}")
            if t < 0 or t >= self.duration:
                raise ConfigurationError(
                    f"schedule time {t} outside the run window [0, {self.duration})"
                )
        if self.recovers and self.kill_mode == "process":
            raise ConfigurationError(
                "recovery requires kill_mode='host' (a SIGKILLed process has no state)"
            )
        if self.service not in (None, "kv"):
            raise ConfigurationError(
                f"service must be 'kv' or omitted, got {self.service!r}"
            )
        if self.service_clients < 0:
            raise ConfigurationError(
                f"service_clients must be >= 0, got {self.service_clients}"
            )
        if self.protocol not in backend_names():
            raise ConfigurationError(
                f"protocol must be one of {backend_names()}, got {self.protocol!r}"
            )
        for pid, _addr in self.extra_peers:
            if pid <= self.n:
                raise ConfigurationError(
                    f"extra_peers pid {pid} collides with replica pids 1..{self.n}"
                )

    def crashed_at_end(self) -> FrozenSet[int]:
        """Pids whose last scheduled transition leaves them crashed."""
        last: Dict[int, Tuple[float, str]] = {}
        for pid, t in self.kills:
            if pid not in last or t >= last[pid][0]:
                last[pid] = (t, "kill")
        for pid, t in self.recovers:
            if pid not in last or t >= last[pid][0]:
                last[pid] = (t, "recover")
        return frozenset(pid for pid, (_, what) in last.items() if what == "kill")


@dataclass
class NodeOutcome:
    """Everything observed about one replica process."""

    pid: int
    events: List[dict] = field(default_factory=list)
    final: Optional[dict] = None
    exit_code: Optional[int] = None
    sigkilled: bool = False

    @property
    def quorum_events(self) -> List[dict]:
        return [e for e in self.events if e.get("event") == "quorum"]

    @property
    def final_quorum(self) -> Optional[FrozenSet[int]]:
        if self.final is None:
            return None
        return frozenset(self.final["quorum"])

    @property
    def metrics(self) -> Optional[dict]:
        """The node's last metrics-registry snapshot, if it emitted one."""
        for record in reversed(self.events):
            if record.get("event") == "metrics":
                return record.get("snapshot")
        return None


@dataclass
class ClusterResult:
    """Cluster-level view over all node outcomes."""

    config: ClusterConfig
    nodes: Dict[int, NodeOutcome]
    run_dir: Optional[Path]
    started_at: float
    wall_seconds: float

    def correct_pids(self) -> List[int]:
        """Replicas running (never killed, or recovered) at run end."""
        return sorted(
            pid
            for pid, node in self.nodes.items()
            if node.final is not None and node.final.get("running")
        )

    def final_quorums(self) -> Dict[int, FrozenSet[int]]:
        return {
            pid: self.nodes[pid].final_quorum  # type: ignore[misc]
            for pid in self.correct_pids()
        }

    def agreement(self) -> bool:
        """Every correct replica ended on the same quorum."""
        quorums = set(self.final_quorums().values())
        return len(quorums) == 1

    def final_quorum(self) -> Optional[FrozenSet[int]]:
        quorums = set(self.final_quorums().values())
        return next(iter(quorums)) if len(quorums) == 1 else None

    def max_changes_per_epoch(self) -> int:
        """Max quorum changes any correct replica saw in one epoch."""
        return max(
            (
                self.nodes[pid].final.get("max_changes_per_epoch", 0)
                for pid in self.correct_pids()
            ),
            default=0,
        )

    def active_quorum(self) -> bool:
        """The agreed final quorum contains no process crashed at the end."""
        quorum = self.final_quorum()
        if quorum is None:
            return False
        return not (quorum & self.config.crashed_at_end())

    def metrics_snapshots(self) -> Dict[int, dict]:
        """Per-node metrics snapshots (only nodes that emitted one)."""
        return {
            pid: node.metrics
            for pid, node in sorted(self.nodes.items())
            if node.metrics is not None
        }

    def merged_metrics(self) -> Optional[dict]:
        """One cluster-wide snapshot: per-node registries merged.

        Metric families are pid-labelled, so the merge is mostly a
        union; genuinely shared names (none today) would sum.
        """
        from repro.obs.registry import merge_snapshots

        snapshots = list(self.metrics_snapshots().values())
        return merge_snapshots(snapshots) if snapshots else None

    def summary(self) -> dict:
        quorum = self.final_quorum()
        return {
            **({"label": self.config.label} if self.config.label else {}),
            **({"protocol": self.config.protocol} if self.config.service else {}),
            "n": self.config.n,
            "f": self.config.f,
            "duration": self.config.duration,
            "kill_mode": self.config.kill_mode,
            "kills": list(self.config.kills),
            "recovers": list(self.config.recovers),
            "correct_pids": self.correct_pids(),
            "agreement": self.agreement(),
            "final_quorum": sorted(quorum) if quorum is not None else None,
            "active_quorum": self.active_quorum(),
            "max_changes_per_epoch": self.max_changes_per_epoch(),
            "wall_seconds": round(self.wall_seconds, 3),
            "exit_codes": {str(p): self.nodes[p].exit_code for p in sorted(self.nodes)},
        }


def _node_command(config: ClusterConfig, pid: int) -> List[str]:
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "node",
        "--pid", str(pid),
        "--n", str(config.n),
        "--f", str(config.f),
        "--port", "0",
        "--peers", "-",
        "--duration", str(config.duration),
        "--heartbeat", str(config.heartbeat_period),
        "--timeout", str(config.base_timeout),
        "--queue-capacity", str(config.queue_capacity),
    ]
    if config.follower_mode:
        cmd.append("--follower-mode")
    if config.run_dir is not None:
        cmd += ["--metrics-prom", str(Path(config.run_dir) / f"node_{pid}.prom")]
    if config.anti_entropy_period is not None:
        cmd += ["--anti-entropy", str(config.anti_entropy_period)]
    wire_version = (config.wire_versions or {}).get(pid, config.wire_version)
    if wire_version is not None:
        cmd += ["--wire-version", str(wire_version)]
    if config.service is not None:
        cmd += [
            "--service", config.service,
            "--service-clients", str(config.service_clients),
            "--batch-size", str(config.batch_size),
            "--batch-window", str(config.batch_window),
            "--protocol", config.protocol,
        ]
        if config.checkpoint_interval is not None:
            cmd += ["--checkpoint-interval", str(config.checkpoint_interval)]
    if config.uvloop:
        cmd.append("--uvloop")
    if config.kill_mode == "host":
        for kpid, t in config.kills:
            if kpid == pid:
                cmd += ["--kill-at", str(t)]
        for rpid, t in config.recovers:
            if rpid == pid:
                cmd += ["--recover-at", str(t)]
    return cmd


def _child_env() -> Dict[str, str]:
    """Child environment with the repro package importable.

    The harness may run from a source tree (``PYTHONPATH=src``) or an
    installed package; deriving the path from the imported package keeps
    both working without caring which.
    """
    import repro

    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    parts = [package_root] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def _reader(proc: subprocess.Popen, outcome: NodeOutcome, sink, lock) -> None:
    """Drain one child's stdout into its outcome (and the run dir)."""
    assert proc.stdout is not None
    for raw in proc.stdout:
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            record = {"event": "noise", "raw": line}
        with lock:
            outcome.events.append(record)
            if sink is not None:
                sink.write(line + "\n")
            if record.get("event") == "final":
                outcome.final = record
    if sink is not None:
        with lock:
            sink.flush()


def run_cluster(config: ClusterConfig, on_ready=None) -> ClusterResult:
    """Launch, rendezvous, inject, collect.  Blocking; returns the result.

    ``on_ready(addresses)`` — if given — is called right after the peer
    map is distributed, with the full ``{pid: "host:port"}`` map
    (replicas plus ``extra_peers``).  The service gateway uses it to
    learn replica addresses and start driving load.
    """
    config.validate()
    started_at = time.time()

    run_dir = config.run_dir
    if run_dir is not None:
        run_dir = Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)

    env = _child_env()
    procs: Dict[int, subprocess.Popen] = {}
    outcomes = {pid: NodeOutcome(pid) for pid in range(1, config.n + 1)}
    sinks: Dict[int, object] = {}
    lock = threading.Lock()
    threads: List[threading.Thread] = []
    timers: List[threading.Timer] = []

    try:
        for pid in range(1, config.n + 1):
            procs[pid] = subprocess.Popen(
                _node_command(config, pid),
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL if run_dir is None else open(
                    run_dir / f"node_{pid}.stderr", "w"
                ),
                env=env,
                text=True,
            )

        # ---- rendezvous: collect every node's ephemeral port ----------
        addresses: Dict[int, str] = {}
        deadline = time.time() + config.startup_timeout
        for pid, proc in procs.items():
            assert proc.stdout is not None
            while True:
                if time.time() > deadline:
                    raise ConfigurationError(
                        f"node {pid} did not report a listening port in time"
                    )
                line = proc.stdout.readline()
                if not line:
                    raise ConfigurationError(
                        f"node {pid} exited before listening (see stderr)"
                    )
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                outcomes[pid].events.append(record)
                if record.get("event") == "listening":
                    addresses[pid] = f"{record['host']}:{record['port']}"
                    break

        for pid, addr in config.extra_peers:
            addresses[pid] = addr
        peer_map = json.dumps({str(pid): addr for pid, addr in addresses.items()})
        for pid, proc in procs.items():
            assert proc.stdin is not None
            proc.stdin.write(peer_map + "\n")
            proc.stdin.flush()
        if on_ready is not None:
            on_ready(dict(addresses))

        # ---- stream events -------------------------------------------
        for pid, proc in procs.items():
            sink = open(run_dir / f"node_{pid}.jsonl", "w") if run_dir else None
            sinks[pid] = sink
            thread = threading.Thread(
                target=_reader, args=(proc, outcomes[pid], sink, lock), daemon=True
            )
            thread.start()
            threads.append(thread)

        # ---- process-mode kill injection -----------------------------
        if config.kill_mode == "process":
            for pid, t in config.kills:
                def _kill(p=procs[pid], o=outcomes[pid]) -> None:
                    o.sigkilled = True
                    try:
                        p.send_signal(signal.SIGKILL)
                    except (ProcessLookupError, OSError):
                        pass

                timer = threading.Timer(t, _kill)
                timer.daemon = True
                timer.start()
                timers.append(timer)

        # ---- wait ----------------------------------------------------
        reap_deadline = time.time() + config.duration + GRACE_SECONDS
        for pid, proc in procs.items():
            remaining = max(0.1, reap_deadline - time.time())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
            outcomes[pid].exit_code = proc.returncode
        for thread in threads:
            thread.join(timeout=5)
    finally:
        for timer in timers:
            timer.cancel()
        for proc in procs.values():
            if proc.poll() is None:
                proc.kill()
        for sink in sinks.values():
            if sink is not None:
                try:
                    sink.close()  # type: ignore[union-attr]
                except Exception:
                    pass

    result = ClusterResult(
        config=config,
        nodes=outcomes,
        run_dir=run_dir,
        started_at=started_at,
        wall_seconds=time.time() - started_at,
    )
    if run_dir is not None:
        (run_dir / "cluster.json").write_text(
            json.dumps(result.summary(), indent=2) + "\n"
        )
    return result


def parse_schedule(entries: Sequence[str], what: str) -> Tuple[Tuple[int, float], ...]:
    """Parse CLI ``PID@T`` schedule entries (e.g. ``--kill 1@2.5``)."""
    parsed: List[Tuple[int, float]] = []
    for entry in entries:
        pid_part, sep, time_part = entry.partition("@")
        try:
            if not sep:
                raise ValueError
            parsed.append((int(pid_part), float(time_part)))
        except ValueError:
            raise ConfigurationError(
                f"--{what} expects PID@SECONDS (e.g. 1@2.5), got {entry!r}"
            ) from None
    return tuple(parsed)
