"""The live runtime's host: the host API over sockets and wall clocks.

:class:`NetHost` is a line-for-line semantic twin of
:class:`repro.sim.process.ProcessHost` (see :mod:`repro.hostapi` for the
contract), with the simulator's substrate swapped out:

- sends go through a :class:`~repro.net.peer.PeerManager` (TCP frames)
  instead of the simulated network;
- timers come from :class:`~repro.net.timers.NetTimerService` (asyncio
  ``call_later``) instead of the discrete-event scheduler;
- self-delivery on broadcast is scheduled onto the event loop
  (``call_soon``), preserving the simulator's "events processed in the
  order produced" discipline rather than recursing inline.

Ingress hardening, per the paper's authentication assumption: frames
whose payload claims a signature are verified *here*, before any module
(even the failure detector) sees them; failures are counted in the peer
stats and dropped.  Unsigned payloads pass through — deliberately so,
because the anti-entropy digest probe is unsigned by design — and the
failure detector applies its own ``require_signatures`` policy next.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.crypto.authenticator import Authenticator, SignedMessage
from repro.net.batch import BatchAuthenticator
from repro.net.peer import PeerManager
from repro.obs.observability import (
    Observability,
    peer_stats_collector,
    wire_stats_collector,
)
from repro.net.timers import NetTimerService
from repro.sim.events import TimerHandle
from repro.util.errors import SimulationError
from repro.util.eventlog import EventLog
from repro.util.ids import ProcessId

DeliveryHandler = Callable[[str, Any, ProcessId], None]


class NetHost:
    """One live process: identity, module stack, wall timers, TCP links."""

    def __init__(
        self,
        pid: ProcessId,
        manager: PeerManager,
        authenticator: Authenticator,
        timers: NetTimerService,
        log: Optional[EventLog] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.pid = pid
        self.manager = manager
        self.authenticator = authenticator
        self.timers = timers
        self.log = log if log is not None else EventLog()
        # Per-node observability (one registry per OS process; the node
        # runner exports it as a JSONL event and Prometheus text).  Wire
        # statistics are folded in at snapshot time.
        self.obs = obs if obs is not None else Observability()
        self.obs.add_collector(peer_stats_collector(manager.stats, pid))
        self.obs.add_collector(wire_stats_collector(manager, pid))
        # Derive the link-level batch MAC key from the same registry the
        # protocol signatures use: batches from any registered peer can
        # then be verified wholesale with one HMAC per envelope.
        if manager.batch_auth is None:
            registry = getattr(authenticator, "registry", None)
            if registry is not None:
                manager.batch_auth = BatchAuthenticator(registry, pid)
        self.running = True
        self.fd: Optional[Any] = None  # duck-typed FailureDetector
        self._subscribers: Dict[str, List[DeliveryHandler]] = {}
        self._modules: List[Any] = []
        self._timers: List[TimerHandle] = []
        # Ingress drops while crashed (a crashed process reads nothing).
        self.frames_ignored_crashed = 0
        manager.ingress = self.ingress

    # --------------------------------------------------------------- modules

    @property
    def scheduler(self) -> NetTimerService:
        """Environment-level scheduling surface (``schedule_every`` etc.)."""
        return self.timers

    @property
    def now(self) -> float:
        return self.timers.now

    def add_module(self, module: Any) -> Any:
        """Attach a module; it will be started with the node."""
        self._modules.append(module)
        return module

    def subscribe(self, kind: str, handler: DeliveryHandler) -> None:
        """Route delivered messages of ``kind`` to ``handler``."""
        self._subscribers.setdefault(kind, []).append(handler)

    def start(self) -> None:
        """Start the failure detector (if any) and all modules."""
        if self.fd is not None and hasattr(self.fd, "start"):
            self.fd.start()
        for module in self._modules:
            module.start()

    # -------------------------------------------------------------- receiving

    def ingress(self, kind: str, payload: Any, src: ProcessId) -> None:
        """Wire entry point: authenticate signed envelopes, then receive.

        The signer is re-verified by the failure detector too (the
        verification memo makes the second check a dict hit), but doing
        it at ingress lets the runtime count unauthenticated frames as a
        *wire*-level statistic and drop them before any protocol code.
        """
        if not self.running:
            self.frames_ignored_crashed += 1
            return
        if isinstance(payload, SignedMessage) and not self.authenticator.verify(payload):
            self.manager.stats.frames_auth_rejected += 1
            self.log.append(self.now, self.pid, "net.authfail", claimed=payload.signer, via=src)
            return
        self.on_receive(kind, payload, src)

    def on_receive(self, kind: str, payload: Any, src: ProcessId) -> None:
        """The paper's ``<RECEIVE, m, i>`` event (same flow as the sim)."""
        if not self.running:
            return
        if self.fd is not None:
            self.fd.on_receive(kind, payload, src)
        else:
            self.deliver(kind, payload, src)

    def deliver(self, kind: str, payload: Any, src: ProcessId) -> None:
        """Dispatch a delivered message — the paper's ``<DELIVER, m, i>``."""
        if not self.running:
            return
        for handler in self._subscribers.get(kind, ()):
            handler(kind, payload, src)

    # ---------------------------------------------------------------- sending

    def send(self, dst: ProcessId, kind: str, payload: Any) -> None:
        """Send one message (no implicit signing); self-sends are scheduled."""
        if not self.running:
            return
        if dst == self.pid:
            self._schedule_self_delivery(kind, payload)
        else:
            self.manager.send(dst, kind, payload)

    def broadcast(self, targets: Iterable[ProcessId], kind: str, payload: Any) -> None:
        """Send to every target; include ``self.pid`` for "to all incl. self"."""
        if not self.running:
            return
        for dst in sorted(set(targets)):
            if dst == self.pid:
                self._schedule_self_delivery(kind, payload)
            else:
                self.manager.send(dst, kind, payload)

    def _schedule_self_delivery(self, kind: str, payload: Any) -> None:
        # call_soon, not inline: preserves the simulator's module-ordering
        # path (a self-addressed UPDATE is processed after the handler
        # that produced it returns, exactly like the sim's 0-delay event).
        self.timers._loop.call_soon(lambda: self.on_receive(kind, payload, self.pid))

    # ----------------------------------------------------------------- timers

    def set_timer(self, delay: float, action: Callable[[], None], label: str = "") -> TimerHandle:
        """Arm a one-shot wall-clock timer; returns a cancellation handle."""
        if delay < 0:
            raise SimulationError(f"negative timer delay {delay}")
        handle: Optional[TimerHandle] = None

        def fire() -> None:
            if not self.running:
                return
            handle._mark_fired()  # closure cell: bound before any fire time
            action()

        event = self.timers.schedule(delay, fire, label=label or "timer")
        handle = TimerHandle(event)
        self._timers.append(handle)
        return handle

    # ------------------------------------------------------------------ crash

    def crash(self) -> None:
        """Silence the process: no further receives, sends, or timers.

        Connections stay as they are — from the peers' point of view the
        process simply goes quiet (the benign-crash fault of the paper;
        an actual SIGKILL additionally resets its sockets, which the
        cluster harness exercises in ``process`` kill mode).
        """
        self.running = False
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self.log.append(self.now, self.pid, "crash")
        self.obs.fault_injected(self.pid, self.now)

    def recover(self) -> None:
        """Resume with state intact (crash-recovery, as in the simulator)."""
        if self.running:
            return
        self.running = True
        self.log.append(self.now, self.pid, "recover")
        self.obs.fault_cleared(self.pid, self.now)
        if self.fd is not None and hasattr(self.fd, "recover"):
            self.fd.recover()
        for module in self._modules:
            module.recover()
