"""Optional uvloop event-loop policy with a clean stdlib fallback.

uvloop is a drop-in libuv-based replacement for the default asyncio loop
that roughly doubles socket throughput on Linux.  It is deliberately an
*optional* accelerator: nothing in the runtime requires it, the
container images do not ship it, and every call here degrades to the
stdlib loop silently (recorded, not raised), so the same node command
runs everywhere.

Activation is explicit: pass ``--uvloop`` to ``repro node``/``cluster``
or set ``REPRO_UVLOOP=1``.  Benchmarks record whether it was active so a
BENCH_net_loopback.json number is never compared across loop
implementations unknowingly.
"""

from __future__ import annotations

import os
from typing import Optional

_ACTIVE = False


def uvloop_requested(flag: Optional[bool] = None) -> bool:
    """Explicit flag, else the ``REPRO_UVLOOP`` environment toggle."""
    if flag is not None:
        return flag
    return os.environ.get("REPRO_UVLOOP", "").strip().lower() in ("1", "true", "yes", "on")


def uvloop_available() -> bool:
    try:
        import uvloop  # noqa: F401
    except Exception:
        return False
    return True


def maybe_install_uvloop(flag: Optional[bool] = None) -> bool:
    """Install the uvloop policy if requested and importable.

    Returns ``True`` only when uvloop is actually active afterwards;
    a request on a machine without uvloop is a recorded no-op, never an
    error — the stdlib loop is the universal fallback.
    """
    global _ACTIVE
    if not uvloop_requested(flag):
        return False
    try:
        import asyncio

        import uvloop
    except Exception:
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    _ACTIVE = True
    return True


def uvloop_active() -> bool:
    """Whether :func:`maybe_install_uvloop` actually installed uvloop."""
    return _ACTIVE
