"""One live replica: host + Figure-1 stack + JSON event stream.

A node is one OS process hosting one :class:`~repro.net.host.NetHost`
with the exact module stack the simulator uses
(:func:`repro.sim.worlds.attach_qs_stack`): failure detector, heartbeat
application, and Quorum (or Follower) Selection.  It speaks the
length-prefixed JSON wire protocol with its peers and narrates itself as
JSON lines on stdout — one line per protocol transition — so the cluster
harness (and any log shipper) can consume the run structurally.

Stdout protocol, in order:

1. ``{"event": "listening", "pid": P, "port": N}`` — the server is up.
2. (when ``peers`` is deferred) one JSON line is *read from stdin*
   mapping pid -> "host:port" for every replica — the cluster harness's
   rendezvous, which makes ephemeral (collision-safe) ports possible.
3. ``{"event": "ready", ...}`` — peers warmed up, modules started.
4. Streamed transitions: ``quorum``, ``epoch``, ``suspect``,
   ``unsuspect``, ``crash``, ``recover`` — each stamped with node time
   ``t`` (seconds since ready) and absolute ``wall`` time.
5. ``{"event": "metrics", "pid": P, "snapshot": {...}}`` — the node's
   full metrics-registry snapshot (schema ``repro.metrics/1``), taken
   after the run window closes.  Optionally also written as Prometheus
   text exposition to ``NodeConfig.metrics_prom_path``.
6. ``{"event": "final", ...}`` — end-of-run summary: final quorum and
   epoch, per-epoch quorum-change counts, wire statistics.

Crash/recovery injection (``kills_at`` / ``recovers_at``, in seconds
after ready) runs on the *environment* timer service, not host timers —
a crash cancels host timers, and the recovery must still fire.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.crypto.authenticator import Authenticator
from repro.crypto.keys import KeyRegistry
from repro.net.batch import BatchAuthenticator
from repro.net.host import NetHost
from repro.net.loop import maybe_install_uvloop, uvloop_active
from repro.net.peer import PeerManager
from repro.net.timers import NetTimerService
from repro.net.wire import WIRE_VERSIONS
from repro.obs.observability import Observability
from repro.obs.registry import render_prometheus
from repro.protocol.backend import backend_names
from repro.sim.worlds import attach_kv_service_stack, attach_qs_stack
from repro.util.errors import ConfigurationError
from repro.util.eventlog import EventLog
from repro.util.files import atomic_write_text

#: Event-log kinds mirrored onto the JSON stream, log kind -> event name.
STREAMED_KINDS = {
    "qs.quorum": "quorum",
    "qs.epoch": "epoch",
    "fd.suspect": "suspect",
    "fd.unsuspect": "unsuspect",
    "crash": "crash",
    "recover": "recover",
}


@dataclass
class NodeConfig:
    """Everything one replica needs to join a cluster."""

    pid: int
    n: int
    f: int
    port: int = 0
    bind_host: str = "127.0.0.1"
    #: pid -> (host, port); ``None`` means "read the map from stdin".
    peers: Optional[Dict[int, Tuple[str, int]]] = None
    follower_mode: bool = False
    heartbeat_period: float = 0.3
    base_timeout: float = 2.0
    duration: float = 10.0
    warmup_timeout: float = 10.0
    queue_capacity: int = 1024
    anti_entropy_period: Optional[float] = None
    #: Seconds after ready at which this node's host crashes / recovers.
    kills_at: Tuple[float, ...] = field(default_factory=tuple)
    recovers_at: Tuple[float, ...] = field(default_factory=tuple)
    #: Where to write this node's final metrics in Prometheus text
    #: exposition format (``None`` disables the file; the JSONL
    #: ``metrics`` event is emitted regardless).
    metrics_prom_path: Optional[str] = None
    #: Wire codec this node offers/accepts (``None``: REPRO_WIRE_VERSION
    #: or the default).  Connections still negotiate down per peer.
    wire_version: Optional[int] = None
    #: Install uvloop before running (no-op where unavailable).
    uvloop: bool = False
    #: Run a replicated service on top of the QS stack (``"kv"``), or
    #: ``None`` for the bare selection stack.
    service: Optional[str] = None
    #: Logical client pids the key registry must cover in service mode
    #: (clients occupy ``n+1 .. n+service_clients``; the gateway takes
    #: ``n+service_clients+1``).
    service_clients: int = 0
    #: Service-mode consensus tuning (ignored without ``service``).
    batch_size: int = 8
    batch_window: float = 0.002
    checkpoint_interval: Optional[int] = 128
    #: Which protocol backend executes the service (ignored without
    #: ``service``); any name in :func:`repro.protocol.backend.backend_names`.
    protocol: str = "xpaxos"

    def validate(self) -> None:
        if not 1 <= self.f < self.n - self.f:
            raise ConfigurationError(
                f"need 1 <= f and q = n - f > f; got n={self.n}, f={self.f}"
            )
        if not 1 <= self.pid <= self.n:
            raise ConfigurationError(f"pid {self.pid} out of range for n={self.n}")
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if self.heartbeat_period <= 0 or self.base_timeout <= 0:
            raise ConfigurationError("heartbeat period and base timeout must be positive")
        for t in (*self.kills_at, *self.recovers_at):
            if t < 0:
                raise ConfigurationError(f"injection times must be >= 0, got {t}")
        if self.wire_version is not None and self.wire_version not in WIRE_VERSIONS:
            raise ConfigurationError(
                f"wire_version must be one of {WIRE_VERSIONS}, got {self.wire_version}"
            )
        if self.service not in (None, "kv"):
            raise ConfigurationError(f"service must be 'kv' or omitted, got {self.service!r}")
        if self.service_clients < 0:
            raise ConfigurationError(
                f"service_clients must be >= 0, got {self.service_clients}"
            )
        if self.service is not None and self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.protocol not in backend_names():
            raise ConfigurationError(
                f"protocol must be one of {backend_names()}, got {self.protocol!r}"
            )


class StreamingEventLog(EventLog):
    """EventLog that mirrors protocol transitions as JSON stream events."""

    def __init__(self, emit, pid: int) -> None:
        super().__init__()
        self._emit = emit
        self._pid = pid

    def append(self, time_: float, process: int, kind: str, **payload: Any):
        event = super().append(time_, process, kind, **payload)
        name = STREAMED_KINDS.get(kind)
        if name is not None:
            record = {"event": name, "pid": self._pid, "t": round(time_, 6)}
            for key, value in payload.items():
                if isinstance(value, (tuple, frozenset, set)):
                    value = sorted(value)
                record[key] = value
            self._emit(record)
        return event


def parse_peer_map(raw: Dict[str, Any]) -> Dict[int, Tuple[str, int]]:
    """Decode the rendezvous line: ``{"1": "127.0.0.1:4242", ...}``."""
    peers: Dict[int, Tuple[str, int]] = {}
    for key, value in raw.items():
        host, _, port = str(value).rpartition(":")
        peers[int(key)] = (host or "127.0.0.1", int(port))
    return peers


def make_emitter(stream=None):
    """A line emitter that also wall-stamps every record."""
    out = stream if stream is not None else sys.stdout

    def emit(record: Dict[str, Any]) -> None:
        record.setdefault("wall", round(time.time(), 6))
        out.write(json.dumps(record, separators=(",", ":")) + "\n")
        out.flush()

    return emit


async def run_node(config: NodeConfig, emit=None) -> Dict[str, Any]:
    """Run one replica to completion; returns (and emits) the final record."""
    config.validate()
    emit = emit if emit is not None else make_emitter()
    loop = asyncio.get_running_loop()

    # The key registry exists before the server does, so streams accepted
    # during warm-up already verify link-level batch MACs.  In service
    # mode it also covers the logical client pids and the gateway pid —
    # keys are derived per pid, so differently-sized registries agree on
    # every pid they share.
    registry_size = config.n
    if config.service is not None:
        registry_size = config.n + config.service_clients + 1
    registry = KeyRegistry(registry_size)
    manager = PeerManager(
        config.pid,
        queue_capacity=config.queue_capacity,
        rng_seed=config.pid,  # reproducible backoff per replica
        wire_version=config.wire_version,
        batch_auth=BatchAuthenticator(registry, config.pid),
    )
    host_addr, port = await manager.start_server(config.bind_host, config.port)
    emit({"event": "listening", "pid": config.pid, "host": host_addr, "port": port})

    peers = config.peers
    if peers is None:
        line = await loop.run_in_executor(None, sys.stdin.readline)
        if not line.strip():
            raise ConfigurationError("expected a peer-map JSON line on stdin")
        peers = parse_peer_map(json.loads(line))
    manager.addresses = {pid: addr for pid, addr in peers.items() if pid != config.pid}

    # Warm the mesh before starting modules: the live analogue of GST
    # already holding at t=0 (dial-on-demand still covers latecomers).
    # Service mode warms only the replica mesh — every client pid in the
    # map routes to one gateway that is dialed on the first reply.
    warm_targets = range(1, config.n + 1) if config.service is not None else None
    warmed = await manager.warm_up(timeout=config.warmup_timeout, peers=warm_targets)

    timers = NetTimerService(loop)
    log = StreamingEventLog(emit, config.pid)
    obs = Observability()
    host = NetHost(
        config.pid, manager, Authenticator(registry, config.pid), timers,
        log=log, obs=obs,
    )
    replica = None
    if config.service is not None:
        module, replica = attach_kv_service_stack(
            host,
            config.n,
            config.f,
            heartbeat_period=config.heartbeat_period,
            base_timeout=config.base_timeout,
            batch_size=config.batch_size,
            batch_window=config.batch_window,
            checkpoint_interval=config.checkpoint_interval,
            protocol=config.protocol,
        )
    else:
        module = attach_qs_stack(
            host,
            config.n,
            config.f,
            follower_mode=config.follower_mode,
            heartbeat_period=config.heartbeat_period,
            base_timeout=config.base_timeout,
            anti_entropy_period=config.anti_entropy_period,
        )
    host.start()
    emit({"event": "ready", "pid": config.pid, "t": round(timers.now, 6), "warmed": warmed})

    for t in config.kills_at:
        timers.schedule(t, host.crash, label=f"inject-kill@p{config.pid}")
    for t in config.recovers_at:
        timers.schedule(t, host.recover, label=f"inject-recover@p{config.pid}")

    await asyncio.sleep(config.duration)

    snapshot = obs.snapshot()
    emit({
        "event": "metrics",
        "pid": config.pid,
        "t": round(timers.now, 6),
        "snapshot": snapshot,
        "spans": len(obs.spans),
        "spans_dropped": obs.spans.dropped,
    })
    if config.metrics_prom_path:
        # Atomic so a scraper (or a crash mid-write) never sees a torn file.
        atomic_write_text(config.metrics_prom_path, render_prometheus(snapshot))

    stats = manager.stats.as_dict()
    stats["frames_ignored_crashed"] = host.frames_ignored_crashed
    stats["timers_fired"] = timers.timers_fired
    final = {
        "event": "final",
        "pid": config.pid,
        "t": round(timers.now, 6),
        "running": host.running,
        "epoch": module.epoch,
        "quorum": sorted(module.qlast),
        "quorum_changes": module.total_quorums_issued(),
        "max_changes_per_epoch": module.max_quorums_in_any_epoch(),
        "quorums_per_epoch": {str(e): c for e, c in sorted(module.quorums_per_epoch.items())},
        "suspecting": sorted(module.suspecting),
        "stats": stats,
        "wire": {
            "version": manager.wire_version,
            "uvloop": uvloop_active(),
            "batch_policy": manager.batch_policy.as_dict(),
            **manager.wire_stats.as_dict(),
        },
    }
    if replica is not None:
        final["service"] = {
            "kind": config.service,
            "protocol": config.protocol,
            "view": replica.view,
            "executed": replica.executed_base + len(replica.executed),
            "applied_requests": replica.kv.applied_requests,
            "duplicates_refused": replica.kv.duplicates_refused,
            "known_clients": replica.kv.known_clients,
            "at_most_once": replica.kv.at_most_once_intact(),
            "state_digest": replica.kv.state_digest(),
        }
    emit(final)
    await manager.close()
    return final


def run_node_blocking(config: NodeConfig, emit=None) -> Dict[str, Any]:
    """Synchronous wrapper: run the node on a fresh event loop."""
    # ``--uvloop`` (or REPRO_UVLOOP=1) swaps the loop policy before the
    # loop exists; on machines without uvloop this is a recorded no-op.
    maybe_install_uvloop(config.uvloop or None)
    return asyncio.run(run_node(config, emit=emit))
