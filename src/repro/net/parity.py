"""Sim<->net parity: one crash schedule, two runtimes, same answer.

The point of the live runtime is that it changes *nothing* about the
protocol — so the same scripted crash schedule, executed by the
discrete-event simulator and by a real loopback cluster, must select the
same final quorum, and both executions must respect Theorem 3's
``f(f+1)`` per-epoch quorum-change bound.

Schedules are expressed in **heartbeat periods**, not seconds: the sim
runs with its canonical 2.0-unit period while the cluster runs with a
sub-second wall period, and scaling by period keeps the *relative*
timing (how many beats a process was dead for) identical across
runtimes.  Exact quorum-change *counts* are not required to match —
wall-clock detection latencies differ from simulated ones, so the two
runtimes may pass through different intermediate quorums — but both
must stay inside the theorem's envelope and land on the same final
quorum.

:data:`METRIC_PARITY_SCHEDULE` adds a stricter observability check on
top: under a schedule that never forces a quorum change, the registry
values ``qs_quorum_changes_total`` and ``qs_epoch`` must be *equal*
across runtimes for every correct replica
(:func:`metric_parity_problems`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.net.cluster import ClusterConfig, ClusterResult, run_cluster
from repro.sim.worlds import build_qs_world


@dataclass(frozen=True)
class ParitySchedule:
    """A crash/recovery script in heartbeat-period units."""

    n: int
    f: int
    #: (pid, periods-after-start) pairs.
    kills: Tuple[Tuple[int, float], ...] = ()
    recovers: Tuple[Tuple[int, float], ...] = ()
    duration_periods: float = 40.0

    def crashed_at_end(self) -> FrozenSet[int]:
        last: Dict[int, Tuple[float, str]] = {}
        for pid, t in self.kills:
            if pid not in last or t >= last[pid][0]:
                last[pid] = (t, "kill")
        for pid, t in self.recovers:
            if pid not in last or t >= last[pid][0]:
                last[pid] = (t, "recover")
        return frozenset(pid for pid, (_, what) in last.items() if what == "kill")


@dataclass
class RuntimeOutcome:
    """What one runtime concluded, reduced to the parity-relevant facts."""

    runtime: str
    final_quorums: Dict[int, FrozenSet[int]]  # correct pid -> final quorum
    max_changes_per_epoch: int
    final_epochs: Dict[int, int]

    @property
    def agreed_quorum(self) -> Optional[FrozenSet[int]]:
        quorums = set(self.final_quorums.values())
        return next(iter(quorums)) if len(quorums) == 1 else None


def run_sim_schedule(
    schedule: ParitySchedule,
    seed: int = 3,
    heartbeat_period: float = 2.0,
    base_timeout: float = 4.0,
) -> RuntimeOutcome:
    """Execute the schedule on the discrete-event simulator."""
    sim, modules = build_qs_world(
        schedule.n,
        schedule.f,
        seed=seed,
        heartbeat_period=heartbeat_period,
        base_timeout=base_timeout,
    )
    for pid, periods in schedule.kills:
        sim.at(periods * heartbeat_period, lambda p=pid: sim.host(p).crash())
    for pid, periods in schedule.recovers:
        sim.at(periods * heartbeat_period, lambda p=pid: sim.host(p).recover())
    sim.run_until(schedule.duration_periods * heartbeat_period)

    crashed = schedule.crashed_at_end()
    correct = [pid for pid in sim.pids if pid not in crashed]
    return RuntimeOutcome(
        runtime="sim",
        final_quorums={pid: modules[pid].qlast for pid in correct},
        max_changes_per_epoch=max(
            modules[pid].max_quorums_in_any_epoch() for pid in correct
        ),
        final_epochs={pid: modules[pid].epoch for pid in correct},
    )


def run_net_schedule(
    schedule: ParitySchedule,
    heartbeat_period: float = 0.3,
    base_timeout: float = 2.0,
    run_dir=None,
    wire_version: Optional[int] = None,
    wire_versions: Optional[Dict[int, int]] = None,
) -> Tuple[RuntimeOutcome, ClusterResult]:
    """Execute the schedule on a live loopback cluster."""
    config = ClusterConfig(
        n=schedule.n,
        f=schedule.f,
        duration=schedule.duration_periods * heartbeat_period,
        kills=tuple((pid, t * heartbeat_period) for pid, t in schedule.kills),
        recovers=tuple((pid, t * heartbeat_period) for pid, t in schedule.recovers),
        kill_mode="host",
        heartbeat_period=heartbeat_period,
        base_timeout=base_timeout,
        run_dir=run_dir,
        wire_version=wire_version,
        wire_versions=wire_versions,
    )
    result = run_cluster(config)
    outcome = RuntimeOutcome(
        runtime="net",
        final_quorums=result.final_quorums(),
        max_changes_per_epoch=result.max_changes_per_epoch(),
        final_epochs={
            pid: result.nodes[pid].final["epoch"] for pid in result.correct_pids()
        },
    )
    return outcome, result


#: Schedule for the *metric* parity check.  The killed process (pid 5)
#: is outside the lexicographically-first initial quorum {1, 2, 3}, so
#: no quorum change is ever required: every correct replica must end
#: with exactly the same ``qs_quorum_changes_total`` and ``qs_epoch``
#: values in both runtimes — equality, not just bounded-envelope parity.
METRIC_PARITY_SCHEDULE = ParitySchedule(
    n=5, f=2, kills=((5, 5.0),), duration_periods=25.0
)

#: Registry metrics that must be identical across runtimes for every
#: correct replica.  Wall-clock-valued families (latency histograms)
#: are deliberately excluded — only protocol-logic counters compare.
PARITY_METRIC_NAMES = ("qs_quorum_changes_total", "qs_epoch")


def run_sim_metrics(
    schedule: ParitySchedule,
    seed: int = 3,
    heartbeat_period: float = 2.0,
    base_timeout: float = 4.0,
) -> dict:
    """Execute the schedule on the simulator; return the metrics snapshot."""
    sim, _modules = build_qs_world(
        schedule.n,
        schedule.f,
        seed=seed,
        heartbeat_period=heartbeat_period,
        base_timeout=base_timeout,
    )
    for pid, periods in schedule.kills:
        sim.at(periods * heartbeat_period, lambda p=pid: sim.host(p).crash())
    for pid, periods in schedule.recovers:
        sim.at(periods * heartbeat_period, lambda p=pid: sim.host(p).recover())
    sim.run_until(schedule.duration_periods * heartbeat_period)
    return sim.obs.snapshot()


def run_net_metrics(
    schedule: ParitySchedule,
    heartbeat_period: float = 0.3,
    base_timeout: float = 2.0,
    run_dir=None,
    wire_version: Optional[int] = None,
    wire_versions: Optional[Dict[int, int]] = None,
) -> Tuple[Dict[int, dict], ClusterResult]:
    """Execute the schedule on a live cluster; return per-node snapshots."""
    _outcome, result = run_net_schedule(
        schedule,
        heartbeat_period=heartbeat_period,
        base_timeout=base_timeout,
        run_dir=run_dir,
        wire_version=wire_version,
        wire_versions=wire_versions,
    )
    return result.metrics_snapshots(), result


def metric_parity_problems(
    sim_snapshot: dict,
    net_snapshots: Dict[int, dict],
    schedule: ParitySchedule,
) -> List[str]:
    """Ways the runtimes' registries disagree; empty means metric parity.

    The sim carries one shared registry (all pids in one snapshot); each
    net node owns its registry, so its values are looked up in its own
    snapshot.  Only correct (never-crashed-at-end) replicas compare.
    """
    from repro.obs.registry import metric_value

    problems: List[str] = []
    crashed = schedule.crashed_at_end()
    correct = [pid for pid in range(1, schedule.n + 1) if pid not in crashed]

    for pid in correct:
        net_snapshot = net_snapshots.get(pid)
        if net_snapshot is None:
            problems.append(f"net: node {pid} emitted no metrics snapshot")
            continue
        for name in PARITY_METRIC_NAMES:
            sim_value = metric_value(sim_snapshot, name, pid=pid)
            net_value = metric_value(net_snapshot, name, pid=pid)
            if sim_value is None or net_value is None:
                problems.append(
                    f"{name}{{pid={pid}}}: missing from "
                    f"{'sim' if sim_value is None else 'net'} snapshot"
                )
            elif sim_value != net_value:
                problems.append(
                    f"{name}{{pid={pid}}}: sim={sim_value} net={net_value}"
                )

    # Vacuousness guard: both runtimes must actually have *observed* the
    # injected fault (equal-because-nothing-happened is not parity).
    for runtime, lookup in (
        ("sim", lambda pid: metric_value(sim_snapshot, "fd_suspicions_raised_total", pid=pid)),
        ("net", lambda pid: metric_value(net_snapshots.get(pid) or {"metrics": []},
                                         "fd_suspicions_raised_total", pid=pid)),
    ):
        raised = sum(lookup(pid) or 0 for pid in correct)
        if not raised:
            problems.append(
                f"{runtime}: no correct replica raised a suspicion — "
                "the injected crash went unobserved"
            )
    return problems


def thm3_bound(f: int) -> int:
    """Theorem 3: at most ``f(f+1)`` quorum changes per epoch."""
    return f * (f + 1)


def parity_problems(
    sim: RuntimeOutcome, net: RuntimeOutcome, schedule: ParitySchedule
) -> List[str]:
    """Every way the two executions disagree; empty means parity holds."""
    problems: List[str] = []
    bound = thm3_bound(schedule.f)

    for outcome in (sim, net):
        if not outcome.final_quorums:
            problems.append(f"{outcome.runtime}: no correct replica reported a final quorum")
            continue
        if outcome.agreed_quorum is None:
            problems.append(
                f"{outcome.runtime}: correct replicas disagree on the final quorum: "
                f"{ {p: sorted(q) for p, q in outcome.final_quorums.items()} }"
            )
        if outcome.max_changes_per_epoch > bound:
            problems.append(
                f"{outcome.runtime}: {outcome.max_changes_per_epoch} quorum changes in "
                f"one epoch exceeds Thm 3's f(f+1) = {bound}"
            )

    sim_quorum, net_quorum = sim.agreed_quorum, net.agreed_quorum
    if sim_quorum is not None and net_quorum is not None and sim_quorum != net_quorum:
        problems.append(
            f"final quorum differs: sim={sorted(sim_quorum)} net={sorted(net_quorum)}"
        )
    if sim_quorum is not None:
        crashed = schedule.crashed_at_end()
        if sim_quorum & crashed:
            problems.append(
                f"sim final quorum {sorted(sim_quorum)} contains crashed {sorted(crashed)}"
            )
    return problems
