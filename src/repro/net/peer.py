"""Per-peer TCP connections: dial-on-demand, backoff, batched sends.

One :class:`PeerManager` serves one replica.  It owns:

- a listening server (ephemeral port by default — port-collision-safe
  for CI) whose inbound streams are parsed by
  :class:`~repro.net.wire.FrameDecoder` and handed to the host's ingress
  callback;
- one :class:`PeerConnection` per remote process for *outbound* traffic.

Outbound design choices, all in service of the paper's fault model:

- **Dial-on-demand**: a connection attempt starts when the first frame
  for that peer is enqueued (or eagerly via :meth:`PeerManager.warm_up`).
- **Reconnect with exponential backoff + jitter**: a dead peer costs a
  bounded, de-synchronized dial rate instead of a thundering herd.
- **Bounded outbound queue, drop-oldest-rejected policy**: when the
  queue is full the new frame is *dropped and counted*.  A drop is an
  omission failure on that link — precisely what the failure detector
  suspects and Quorum Selection tolerates — so backpressure degrades
  into the protocol's own fault model instead of unbounded memory.

E27 adds the hot-path machinery on top:

- **Per-connection codec negotiation** (hello/ack over WIRE_V1, the
  lowest common denominator): a dialer offering WIRE_V2 settles on the
  highest version the listener also speaks, and falls back to WIRE_V1
  on timeout — so mixed-version clusters interoperate frame-for-frame.
- **Deferred encoding + batched, pipelined writes**: ``send`` enqueues
  ``(kind, payload)``; the writer task encodes with the *negotiated*
  codec, coalesces frames per :class:`~repro.net.batch.BatchPolicy`,
  and flushes one write (on WIRE_V2: one batch envelope under a single
  link-level HMAC) per batch.  Senders never wait for a round trip —
  the next round's frames pile into the queue while earlier batches are
  still in flight.

Frames already written to a socket that later dies are simply lost
(in-flight messages of a crashing link), again an omission.
"""

from __future__ import annotations

import asyncio
import random
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.net.batch import MEMBER_OVERHEAD, BatchPolicy, WireStats
from repro.net.wire import (
    _CONTROL_PREFIX,
    KIND_ACK,
    KIND_HELLO,
    WIRE_V1,
    WIRE_V2,
    WIRE_VERSIONS,
    FrameDecoder,
    WireError,
    encode_ack,
    encode_batch,
    encode_hello,
    frame_bytes,
    make_frame_encoder,
    negotiate_ack_version,
    parse_ack_version,
    resolve_wire_version,
)

IngressHandler = Callable[[str, Any, int], None]


@dataclass(frozen=True)
class ReconnectPolicy:
    """Exponential backoff with jitter for redialing a peer."""

    initial_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25  # +/- fraction of the computed delay

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before reconnect ``attempt`` (0-based), jittered."""
        base = min(self.max_delay, self.initial_delay * (self.multiplier ** attempt))
        if self.jitter <= 0:
            return base
        spread = base * self.jitter
        return max(0.0, base + rng.uniform(-spread, spread))


@dataclass
class PeerStats:
    """Counters one manager accumulates; surfaced in node final reports."""

    frames_sent: int = 0
    frames_received: int = 0
    frames_dropped_backpressure: int = 0
    frames_malformed: int = 0
    frames_auth_rejected: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    dials: int = 0
    reconnects: int = 0
    connections_accepted: int = 0
    connections_dropped: int = 0
    send_errors: int = 0
    batches_sent: int = 0
    batches_received: int = 0
    batches_rejected: int = 0
    handshakes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class PeerConnection:
    """Outbound side of one directed link ``self -> peer``."""

    def __init__(self, manager: "PeerManager", peer: int, addr: Tuple[str, int]) -> None:
        self.manager = manager
        self.peer = peer
        self.addr = addr
        self.stats = manager.stats
        self.policy = manager.policy
        self.rng = manager.rng
        # A plain deque + wake event instead of asyncio.Queue: enqueue is
        # the per-frame hot path, and a deque append costs a fraction of
        # the Queue's getter/putter bookkeeping.
        self.queue: Deque[Tuple[str, Any]] = deque()
        self._wake = asyncio.Event()
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.task: Optional[asyncio.Task] = None
        self.closed = False
        #: Codec settled by the hello/ack handshake; ``None`` until then.
        self.negotiated_version: Optional[int] = None

    def enqueue(self, kind: str, payload: Any) -> bool:
        """Queue a frame; drop (and count) when the buffer is full.

        Encoding is deferred to the writer task: the codec depends on the
        per-connection negotiation, and a dropped frame should not pay
        for bytes that will never reach a socket.
        """
        if self.closed:
            return False
        queue = self.queue
        if len(queue) >= self.manager.queue_capacity:
            self.stats.frames_dropped_backpressure += 1
            return False
        if not queue:
            # The writer only ever sleeps on an empty queue, so the
            # empty->nonempty edge is the only one that needs a wakeup.
            self._wake.set()
        queue.append((kind, payload))
        if self.task is None:  # _run clears it on every exit path
            self.task = asyncio.get_running_loop().create_task(self._run())
        return True

    @property
    def connected(self) -> bool:
        return self.writer is not None and not self.writer.is_closing()

    async def _dial(self) -> bool:
        """One connect attempt; ``True`` when a writer is established."""
        host, port = self.addr
        self.stats.dials += 1
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError:
            return False
        self.reader = reader
        self.writer = writer
        self.negotiated_version = None  # renegotiate per (re)connect
        return True

    async def ensure_connected(self, deadline: Optional[float] = None) -> bool:
        """Dial (with backoff) until connected or ``deadline`` loop-time."""
        loop = asyncio.get_running_loop()
        attempt = 0
        while not self.closed:
            if self.connected or await self._dial():
                return True
            self.stats.reconnects += 1
            delay = self.policy.delay(attempt, self.rng)
            attempt += 1
            if deadline is not None and loop.time() + delay >= deadline:
                return False
            await asyncio.sleep(delay)
        return False

    async def _negotiate(self) -> None:
        """Settle the codec for this connection (idempotent per dial).

        A listener that never acks (an old node, a half-dead link) costs
        one handshake timeout, after which the connection speaks WIRE_V1
        — the version every peer in any mixed cluster understands.
        """
        if self.negotiated_version is not None:
            return
        offered = self.manager.wire_version
        if offered <= WIRE_V1:
            self.negotiated_version = WIRE_V1
        else:
            try:
                assert self.writer is not None
                self.writer.write(encode_hello(self.manager.pid, offered))
                await self.writer.drain()
                self.negotiated_version = await asyncio.wait_for(
                    self._read_ack(offered), self.manager.handshake_timeout
                )
                self.stats.handshakes += 1
            except (
                asyncio.TimeoutError,
                ConnectionError,
                OSError,
                WireError,
                AssertionError,
            ):
                self.negotiated_version = WIRE_V1
        self.manager.wire_stats.record_negotiation(self.negotiated_version)

    async def _read_ack(self, offered: int) -> int:
        """Wait for the listener's ack on the connection's return path."""
        assert self.reader is not None
        decoder = FrameDecoder(accept_versions=(WIRE_V1,))
        while True:
            chunk = await self.reader.read(4096)
            if not chunk:
                raise ConnectionResetError("peer closed during handshake")
            for kind, payload, _src in decoder.feed(chunk):
                if kind == KIND_ACK:
                    return parse_ack_version(payload, offered)

    async def _collect(self) -> List[bytes]:
        """Block for the first frame, then coalesce per the batch policy.

        The inner drain loop is the per-frame hot path, so the batch
        buffer is inlined (a list and a byte counter) and the encode
        histogram is fed one bulk sample per flush instead of one bisect
        per frame; :class:`~repro.net.batch.BatchBuffer` stays the
        reference (and unit-tested) statement of the same triggers.
        """
        queue = self.queue
        wake = self._wake
        while not queue:
            wake.clear()
            await wake.wait()
        manager = self.manager
        policy = manager.batch_policy
        version = self.negotiated_version or WIRE_V1
        encode = manager.frame_encoder(version)
        max_frames = policy.max_frames
        max_bytes = policy.max_bytes
        bodies: List[bytes] = []
        nbytes = 0
        encode_seconds = 0.0
        loop = asyncio.get_running_loop()
        deadline = loop.time() + policy.max_delay
        while True:
            started = perf_counter()
            while queue:
                kind, payload = queue.popleft()
                try:
                    body = encode(kind, payload)
                except WireError:
                    self.stats.send_errors += 1
                    continue
                bodies.append(body)
                nbytes += len(body) + MEMBER_OVERHEAD
                if len(bodies) >= max_frames or nbytes >= max_bytes:
                    encode_seconds += perf_counter() - started
                    manager.wire_stats.record_encode_bulk(encode_seconds, len(bodies))
                    return bodies
            encode_seconds += perf_counter() - started
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            wake.clear()
            try:
                await asyncio.wait_for(wake.wait(), remaining)
            except asyncio.TimeoutError:
                break
        manager.wire_stats.record_encode_bulk(encode_seconds, len(bodies))
        return bodies

    async def _flush(self, bodies: List[bytes]) -> None:
        """One write (and at most one link MAC) for the whole batch."""
        assert self.writer is not None
        version = self.negotiated_version or WIRE_V1
        data: Optional[bytes] = None
        if version >= WIRE_V2 and len(bodies) > 1:
            try:
                data = encode_batch(bodies, self.manager.pid, auth=self.manager.batch_auth)
                self.stats.batches_sent += 1
            except WireError:
                data = None  # oversized envelope: fall back to plain frames
        if data is None:
            data = b"".join(frame_bytes(body) for body in bodies)
        self.writer.write(data)
        await self.writer.drain()
        self.stats.frames_sent += len(bodies)
        self.stats.bytes_sent += len(data)
        self.manager.wire_stats.record_flush(len(bodies))

    async def _run(self) -> None:
        """Writer loop: dial on demand, batch the queue, survive resets."""
        try:
            while not self.closed:
                if not self.connected and not await self.ensure_connected():
                    return
                try:
                    await self._negotiate()
                    bodies = await self._collect()
                except (asyncio.CancelledError, RuntimeError):
                    return
                if not bodies:
                    continue
                try:
                    await self._flush(bodies)
                except (ConnectionError, OSError, asyncio.CancelledError):
                    # The batch is lost (omission on a dying link); redial
                    # for the next one rather than retrying this one —
                    # reliability above best-effort is the protocol's job,
                    # not the link's.
                    self.stats.send_errors += 1
                    self._drop_writer()
        finally:
            # Let the next enqueue respawn the loop (cheaper than a
            # liveness check on every enqueue).
            self.task = None

    def _drop_writer(self) -> None:
        if self.writer is not None:
            try:
                self.writer.close()
            except Exception:
                pass
            self.writer = None
        self.reader = None
        self.negotiated_version = None

    async def close(self) -> None:
        self.closed = True
        if self.task is not None:
            self.task.cancel()
            try:
                await self.task
            except (asyncio.CancelledError, Exception):
                pass
            self.task = None
        self._drop_writer()


class PeerManager:
    """All connections of one replica: a server plus per-peer outbounds."""

    def __init__(
        self,
        pid: int,
        addresses: Optional[Dict[int, Tuple[str, int]]] = None,
        ingress: Optional[IngressHandler] = None,
        queue_capacity: int = 1024,
        policy: Optional[ReconnectPolicy] = None,
        rng_seed: Optional[int] = None,
        wire_version: Optional[int] = None,
        batch_policy: Optional[BatchPolicy] = None,
        batch_auth: Optional[Any] = None,
        handshake_timeout: float = 3.0,
    ) -> None:
        self.pid = pid
        self.addresses: Dict[int, Tuple[str, int]] = dict(addresses or {})
        self.ingress = ingress
        self.queue_capacity = queue_capacity
        self.policy = policy or ReconnectPolicy()
        # Seedable for reproducible backoff in tests; wall-clock runs can
        # leave it None for OS entropy.
        self.rng = random.Random(rng_seed)
        self.stats = PeerStats()
        self.wire_version = resolve_wire_version(wire_version)
        self.batch_policy = batch_policy if batch_policy is not None else BatchPolicy()
        self.batch_auth = batch_auth
        self.handshake_timeout = handshake_timeout
        self.wire_stats = WireStats()
        self._connections: Dict[int, PeerConnection] = {}
        self._enqueues: Dict[int, Callable[[str, Any], bool]] = {}
        self._encoders: Dict[int, Callable[[str, Any], bytes]] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._reader_tasks: set = set()

    def frame_encoder(self, version: int) -> Callable[[str, Any], bytes]:
        """The (cached) ``(kind, payload) -> body`` encoder for a codec."""
        encoder = self._encoders.get(version)
        if encoder is None:
            encoder = make_frame_encoder(self.pid, version)
            self._encoders[version] = encoder
        return encoder

    # -------------------------------------------------------------- serving

    async def start_server(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Listen for inbound peer streams; returns the bound address.

        ``port=0`` (the default) asks the OS for an ephemeral port — the
        collision-safe choice for parallel CI jobs.
        """
        self._server = await asyncio.start_server(self._serve, host, port)
        sock = self._server.sockets[0]
        bound = sock.getsockname()
        return bound[0], bound[1]

    def _accepted_versions(self) -> Tuple[int, ...]:
        """Codec versions this node decodes: everything up to its own."""
        return tuple(v for v in WIRE_VERSIONS if v <= self.wire_version)

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.stats.connections_accepted += 1
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        # batch_auth is read through a provider per batch, so a host that
        # wires the authenticator up after this stream was accepted still
        # gets its batches verified.
        decoder = FrameDecoder(
            accept_versions=self._accepted_versions(),
            batch_auth_provider=lambda: self.batch_auth,
        )
        seen_malformed = 0
        seen_batches = 0
        seen_rejected = 0
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                try:
                    frames = decoder.feed(chunk)
                except WireError:
                    # Framing desync: the stream is garbage from here on.
                    self.stats.connections_dropped += 1
                    return
                if decoder.malformed != seen_malformed:
                    self.stats.frames_malformed += decoder.malformed - seen_malformed
                    seen_malformed = decoder.malformed
                if decoder.batches_decoded != seen_batches:
                    self.stats.batches_received += decoder.batches_decoded - seen_batches
                    seen_batches = decoder.batches_decoded
                if decoder.batches_rejected != seen_rejected:
                    self.stats.batches_rejected += decoder.batches_rejected - seen_rejected
                    seen_rejected = decoder.batches_rejected
                self.stats.bytes_received += len(chunk)
                ingress = self.ingress
                delivered = 0
                for kind, payload, src in frames:
                    # inline is_control_kind: this loop is per-frame hot
                    if kind.startswith(_CONTROL_PREFIX):
                        self._handle_control(kind, payload, writer)
                        continue
                    delivered += 1
                    if ingress is not None:
                        ingress(kind, payload, src)
                self.stats.frames_received += delivered
        except (ConnectionError, asyncio.CancelledError, asyncio.IncompleteReadError):
            self.stats.connections_dropped += 1
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _handle_control(self, kind: str, payload: Any, writer: asyncio.StreamWriter) -> None:
        """Negotiation frames: answered on the same stream, never delivered."""
        if kind != KIND_HELLO:
            return  # unknown control traffic is dropped, not forwarded
        version = negotiate_ack_version(payload, self.wire_version)
        try:
            writer.write(encode_ack(self.pid, version))
        except Exception:
            pass  # a dead return path just means the dialer times out to V1

    # ----------------------------------------------------------- outbound

    def connection(self, peer: int) -> PeerConnection:
        conn = self._connections.get(peer)
        if conn is None:
            addr = self.addresses.get(peer)
            if addr is None:
                raise KeyError(f"no address registered for peer {peer}")
            conn = PeerConnection(self, peer, addr)
            self._connections[peer] = conn
            self._enqueues[peer] = conn.enqueue
        return conn

    def send(self, dst: int, kind: str, payload: Any) -> bool:
        """Enqueue one frame for ``dst`` (dial-on-demand, deferred encode)."""
        enqueue = self._enqueues.get(dst)
        if enqueue is None:  # first frame for this peer: build the link
            enqueue = self.connection(dst).enqueue
        return enqueue(kind, payload)

    async def warm_up(
        self, timeout: float = 10.0, peers: Optional[Iterable[int]] = None
    ) -> bool:
        """Eagerly dial known peers; ``True`` if all connected.

        Used by the cluster harness as a start barrier: modules begin
        after the mesh is up, so the first heartbeats are not lost to
        dial latency and the failure detector starts from a connected
        world (the live analogue of GST already holding at t=0).
        Dial-on-demand still covers peers that come up later.

        ``peers`` restricts the eager dial to a subset (a service node
        warms only the replica mesh, not the client pids whose frames
        all route to one gateway); ``None`` dials every known address.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        targets = sorted(self.addresses) if peers is None else [
            peer for peer in sorted(peers) if peer in self.addresses
        ]
        results = await asyncio.gather(
            *(
                self.connection(peer).ensure_connected(deadline=deadline)
                for peer in targets
                if peer != self.pid
            ),
            return_exceptions=True,
        )
        return all(result is True for result in results)

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:
                pass
            self._server = None
        for task in list(self._reader_tasks):
            task.cancel()
        for conn in self._connections.values():
            await conn.close()
