"""Per-peer TCP connections: dial-on-demand, backoff, bounded queues.

One :class:`PeerManager` serves one replica.  It owns:

- a listening server (ephemeral port by default — port-collision-safe
  for CI) whose inbound streams are parsed by
  :class:`~repro.net.wire.FrameDecoder` and handed to the host's ingress
  callback;
- one :class:`PeerConnection` per remote process for *outbound* traffic.

Outbound design choices, all in service of the paper's fault model:

- **Dial-on-demand**: a connection attempt starts when the first frame
  for that peer is enqueued (or eagerly via :meth:`PeerManager.warm_up`).
- **Reconnect with exponential backoff + jitter**: a dead peer costs a
  bounded, de-synchronized dial rate instead of a thundering herd.
- **Bounded outbound queue, drop-oldest-rejected policy**: when the
  queue is full the new frame is *dropped and counted*.  A drop is an
  omission failure on that link — precisely what the failure detector
  suspects and Quorum Selection tolerates — so backpressure degrades
  into the protocol's own fault model instead of unbounded memory.

Frames already written to a socket that later dies are simply lost
(in-flight messages of a crashing link), again an omission.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.net.wire import FrameDecoder, WireError, encode_frame

IngressHandler = Callable[[str, Any, int], None]


@dataclass(frozen=True)
class ReconnectPolicy:
    """Exponential backoff with jitter for redialing a peer."""

    initial_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25  # +/- fraction of the computed delay

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before reconnect ``attempt`` (0-based), jittered."""
        base = min(self.max_delay, self.initial_delay * (self.multiplier ** attempt))
        if self.jitter <= 0:
            return base
        spread = base * self.jitter
        return max(0.0, base + rng.uniform(-spread, spread))


@dataclass
class PeerStats:
    """Counters one manager accumulates; surfaced in node final reports."""

    frames_sent: int = 0
    frames_received: int = 0
    frames_dropped_backpressure: int = 0
    frames_malformed: int = 0
    frames_auth_rejected: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    dials: int = 0
    reconnects: int = 0
    connections_accepted: int = 0
    connections_dropped: int = 0
    send_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class PeerConnection:
    """Outbound side of one directed link ``self -> peer``."""

    def __init__(
        self,
        peer: int,
        addr: Tuple[str, int],
        stats: PeerStats,
        policy: ReconnectPolicy,
        rng: random.Random,
        queue_capacity: int,
    ) -> None:
        self.peer = peer
        self.addr = addr
        self.stats = stats
        self.policy = policy
        self.rng = rng
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_capacity)
        self.writer: Optional[asyncio.StreamWriter] = None
        self.task: Optional[asyncio.Task] = None
        self.closed = False

    def enqueue(self, frame: bytes) -> bool:
        """Queue a frame; drop (and count) when the buffer is full."""
        if self.closed:
            return False
        try:
            self.queue.put_nowait(frame)
        except asyncio.QueueFull:
            self.stats.frames_dropped_backpressure += 1
            return False
        if self.task is None or self.task.done():
            self.task = asyncio.get_running_loop().create_task(self._run())
        return True

    @property
    def connected(self) -> bool:
        return self.writer is not None and not self.writer.is_closing()

    async def _dial(self) -> bool:
        """One connect attempt; ``True`` when a writer is established."""
        host, port = self.addr
        self.stats.dials += 1
        try:
            _, writer = await asyncio.open_connection(host, port)
        except OSError:
            return False
        self.writer = writer
        return True

    async def ensure_connected(self, deadline: Optional[float] = None) -> bool:
        """Dial (with backoff) until connected or ``deadline`` loop-time."""
        loop = asyncio.get_running_loop()
        attempt = 0
        while not self.closed:
            if self.connected or await self._dial():
                return True
            self.stats.reconnects += 1
            delay = self.policy.delay(attempt, self.rng)
            attempt += 1
            if deadline is not None and loop.time() + delay >= deadline:
                return False
            await asyncio.sleep(delay)
        return False

    async def _run(self) -> None:
        """Writer loop: dial on demand, drain the queue, survive resets."""
        while not self.closed:
            if not self.connected and not await self.ensure_connected():
                return
            try:
                frame = await self.queue.get()
            except (asyncio.CancelledError, RuntimeError):
                return
            try:
                assert self.writer is not None
                self.writer.write(frame)
                await self.writer.drain()
                self.stats.frames_sent += 1
                self.stats.bytes_sent += len(frame)
            except (ConnectionError, OSError, asyncio.CancelledError):
                # The frame is lost (omission on a dying link); redial for
                # the next one rather than retrying this one — reliability
                # above best-effort is the protocol's job, not the link's.
                self.stats.send_errors += 1
                self._drop_writer()

    def _drop_writer(self) -> None:
        if self.writer is not None:
            try:
                self.writer.close()
            except Exception:
                pass
            self.writer = None

    async def close(self) -> None:
        self.closed = True
        if self.task is not None:
            self.task.cancel()
            try:
                await self.task
            except (asyncio.CancelledError, Exception):
                pass
            self.task = None
        self._drop_writer()


class PeerManager:
    """All connections of one replica: a server plus per-peer outbounds."""

    def __init__(
        self,
        pid: int,
        addresses: Optional[Dict[int, Tuple[str, int]]] = None,
        ingress: Optional[IngressHandler] = None,
        queue_capacity: int = 1024,
        policy: Optional[ReconnectPolicy] = None,
        rng_seed: Optional[int] = None,
    ) -> None:
        self.pid = pid
        self.addresses: Dict[int, Tuple[str, int]] = dict(addresses or {})
        self.ingress = ingress
        self.queue_capacity = queue_capacity
        self.policy = policy or ReconnectPolicy()
        # Seedable for reproducible backoff in tests; wall-clock runs can
        # leave it None for OS entropy.
        self.rng = random.Random(rng_seed)
        self.stats = PeerStats()
        self._connections: Dict[int, PeerConnection] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._reader_tasks: set = set()

    # -------------------------------------------------------------- serving

    async def start_server(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Listen for inbound peer streams; returns the bound address.

        ``port=0`` (the default) asks the OS for an ephemeral port — the
        collision-safe choice for parallel CI jobs.
        """
        self._server = await asyncio.start_server(self._serve, host, port)
        sock = self._server.sockets[0]
        bound = sock.getsockname()
        return bound[0], bound[1]

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.stats.connections_accepted += 1
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        decoder = FrameDecoder()
        seen_malformed = 0
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                try:
                    frames = decoder.feed(chunk)
                except WireError:
                    # Framing desync: the stream is garbage from here on.
                    self.stats.connections_dropped += 1
                    return
                if decoder.malformed != seen_malformed:
                    self.stats.frames_malformed += decoder.malformed - seen_malformed
                    seen_malformed = decoder.malformed
                for kind, payload, src in frames:
                    self.stats.frames_received += 1
                    if self.ingress is not None:
                        self.ingress(kind, payload, src)
                self.stats.bytes_received += len(chunk)
        except (ConnectionError, asyncio.CancelledError, asyncio.IncompleteReadError):
            self.stats.connections_dropped += 1
        finally:
            try:
                writer.close()
            except Exception:
                pass

    # ----------------------------------------------------------- outbound

    def connection(self, peer: int) -> PeerConnection:
        conn = self._connections.get(peer)
        if conn is None:
            addr = self.addresses.get(peer)
            if addr is None:
                raise KeyError(f"no address registered for peer {peer}")
            conn = PeerConnection(
                peer, addr, self.stats, self.policy, self.rng, self.queue_capacity
            )
            self._connections[peer] = conn
        return conn

    def send(self, dst: int, kind: str, payload: Any) -> bool:
        """Encode and enqueue one frame for ``dst`` (dial-on-demand)."""
        frame = encode_frame(kind, payload, self.pid)
        return self.connection(dst).enqueue(frame)

    async def warm_up(self, timeout: float = 10.0) -> bool:
        """Eagerly dial every known peer; ``True`` if all connected.

        Used by the cluster harness as a start barrier: modules begin
        after the mesh is up, so the first heartbeats are not lost to
        dial latency and the failure detector starts from a connected
        world (the live analogue of GST already holding at t=0).
        Dial-on-demand still covers peers that come up later.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        results = await asyncio.gather(
            *(
                self.connection(peer).ensure_connected(deadline=deadline)
                for peer in sorted(self.addresses)
                if peer != self.pid
            ),
            return_exceptions=True,
        )
        return all(result is True for result in results)

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:
                pass
            self._server = None
        for task in list(self._reader_tasks):
            task.cancel()
        for conn in self._connections.values():
            await conn.close()
