"""Wall-clock timer service with the simulator scheduler's semantics.

The simulator's :class:`~repro.sim.scheduler.Scheduler` gives modules
three guarantees their logic depends on:

- :meth:`schedule` returns a :class:`~repro.sim.events.ScheduledEvent`
  whose ``cancelled`` flag is checked *at fire time* (lazy cancellation —
  :class:`~repro.sim.events.TimerHandle` relies on it);
- fired events are one-shot and drop their callback reference;
- :meth:`schedule_every` re-arms *after* the action runs, so a slow
  action never overlaps itself and a ``cancel()`` from inside the action
  stops the loop.

:class:`NetTimerService` reproduces those semantics on top of an asyncio
event loop: ``now`` is wall seconds since service start (so timestamps
read like simulation time starting at 0), and firing happens on the loop
thread — the same single-threaded execution discipline modules enjoy in
the simulator.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from repro.sim.events import ScheduledEvent
from repro.sim.scheduler import RepeatingHandle
from repro.util.errors import SimulationError


class NetTimerService:
    """Scheduler-compatible timers driven by an asyncio event loop."""

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._t0 = self._loop.time()
        self._next_seq = 0
        self.timers_fired = 0
        self.timers_cancelled = 0

    @property
    def now(self) -> float:
        """Wall seconds since the service was created."""
        return self._loop.time() - self._t0

    # ------------------------------------------------------------- one-shots

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Run ``action`` after ``delay`` wall seconds; lazy-cancellable."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = ScheduledEvent(
            time=self.now + delay, seq=self._next_seq, action=action, label=label
        )
        self._next_seq += 1

        def fire() -> None:
            if event.cancelled:
                self.timers_cancelled += 1
                return
            callback = event.action
            event.action = None  # one-shot, as in the simulator
            self.timers_fired += 1
            if callback is not None:
                callback()

        self._loop.call_later(max(0.0, delay), fire)
        return event

    def schedule_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule at an absolute service time (seconds since start)."""
        return self.schedule(time - self.now, action, label=label)

    # ------------------------------------------------------------- repeating

    def schedule_every(
        self, period: float, action: Callable[[], None], label: str = ""
    ) -> RepeatingHandle:
        """Run ``action`` every ``period`` seconds until cancelled.

        Matches :meth:`Scheduler.schedule_every`: first firing one period
        from now, re-armed after the action returns, cancel-safe from
        inside the action.
        """
        if period <= 0:
            raise SimulationError(f"repeating period must be positive, got {period}")
        handle = RepeatingHandle()

        def fire() -> None:
            if handle.cancelled:
                return
            action()
            if not handle.cancelled:
                handle._event = self.schedule(period, fire, label=label)

        handle._event = self.schedule(period, fire, label=label)
        return handle
