"""Length-prefixed tagged-JSON wire codec for the live runtime.

A frame on the wire is a 4-byte big-endian length followed by one UTF-8
JSON object ``{"v": 1, "k": kind, "s": src, "p": payload}``.  The payload
vocabulary is exactly the one :mod:`repro.crypto.digests` canonically
encodes — ``None``/bool/int/float/str plus bytes, tuples, lists, sets,
frozensets, dicts, and the protocol dataclasses (signed envelopes,
signatures, UPDATE/FOLLOWERS/DIGEST/ROWS payloads).  Python-only types
are wrapped in single-key tag objects (``{"__tuple__": [...]}`` etc.) so
a decoded payload is *type-identical* to the sent one — which matters
because signature verification re-derives the canonical encoding from
the decoded object: a tuple that came back as a list would change the
bytes under the MAC and reject every valid signature.

Decoding is strict and defensive: unknown tags, wrong arities, oversized
frames, and over-deep nesting raise :class:`WireError` — receivers drop
the frame (or connection) and count it, never crash.  Anything a
Byzantine peer can put on a socket goes through this gauntlet before any
protocol module sees it.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Iterator, List, Tuple

from repro.core.messages import (
    FollowersPayload,
    MatrixDigestPayload,
    RowCertsPayload,
    UpdatePayload,
)
from repro.crypto.authenticator import SignedMessage
from repro.crypto.signatures import Signature

#: Wire protocol version; bumped on any incompatible framing change.
WIRE_VERSION = 1

#: Upper bound on one frame's JSON body.  Honest traffic is tiny (a
#: signed row for n=100 is ~1 KiB); the cap bounds what a malicious or
#: broken peer can make a receiver buffer.
MAX_FRAME_BYTES = 1 << 20

#: Maximum nesting depth accepted while decoding (stack-bomb guard).
MAX_DEPTH = 32

_LEN = struct.Struct(">I")


class WireError(ValueError):
    """A frame violated the wire protocol (malformed, oversized, unknown)."""


# --------------------------------------------------------------- value codec


def encode_value(value: Any, _depth: int = 0) -> Any:
    """Map a payload structure onto JSON-representable tagged values."""
    if _depth > MAX_DEPTH:
        raise WireError(f"payload nesting exceeds {MAX_DEPTH}")
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v, _depth + 1) for v in value]}
    if isinstance(value, list):
        return {"__list__": [encode_value(v, _depth + 1) for v in value]}
    if isinstance(value, (set, frozenset)):
        tag = "__frozenset__" if isinstance(value, frozenset) else "__set__"
        items = sorted(
            (encode_value(v, _depth + 1) for v in value),
            key=lambda item: json.dumps(item, sort_keys=True),
        )
        return {tag: items}
    if isinstance(value, dict):
        return {
            "__map__": [
                [encode_value(k, _depth + 1), encode_value(v, _depth + 1)]
                for k, v in value.items()
            ]
        }
    if isinstance(value, SignedMessage):
        return {
            "__signed__": [
                encode_value(value.payload, _depth + 1),
                encode_value(value.signature, _depth + 1),
            ]
        }
    if isinstance(value, Signature):
        return {"__sig__": [value.signer, value.tag.hex()]}
    if isinstance(value, UpdatePayload):
        return {"__update__": list(value.row)}
    if isinstance(value, FollowersPayload):
        return {
            "__followers__": [
                list(value.followers),
                [list(edge) for edge in value.line_edges],
                value.epoch,
            ]
        }
    if isinstance(value, MatrixDigestPayload):
        return {"__digest__": [value.epoch, list(value.row_digests)]}
    if isinstance(value, RowCertsPayload):
        return {"__rows__": [encode_value(c, _depth + 1) for c in value.certs]}
    raise WireError(f"cannot encode {type(value).__name__} for the wire")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise WireError(message)


def _int(value: Any, what: str) -> int:
    _require(isinstance(value, int) and not isinstance(value, bool), f"{what} must be an int")
    return value


def _int_tuple(value: Any, what: str) -> Tuple[int, ...]:
    _require(isinstance(value, list), f"{what} must be a list")
    return tuple(_int(v, what) for v in value)


def decode_value(value: Any, _depth: int = 0) -> Any:
    """Inverse of :func:`encode_value`; raises :class:`WireError` on garbage."""
    if _depth > MAX_DEPTH:
        raise WireError(f"payload nesting exceeds {MAX_DEPTH}")
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        raise WireError("bare JSON arrays are not in the vocabulary (use a tag)")
    _require(isinstance(value, dict) and len(value) == 1, "expected a single-key tag object")
    tag, body = next(iter(value.items()))
    if tag == "__bytes__":
        _require(isinstance(body, str), "__bytes__ body must be a hex string")
        try:
            return bytes.fromhex(body)
        except ValueError as exc:
            raise WireError("__bytes__ body is not valid hex") from exc
    if tag == "__tuple__":
        _require(isinstance(body, list), "__tuple__ body must be a list")
        return tuple(decode_value(v, _depth + 1) for v in body)
    if tag == "__list__":
        _require(isinstance(body, list), "__list__ body must be a list")
        return [decode_value(v, _depth + 1) for v in body]
    if tag in ("__set__", "__frozenset__"):
        _require(isinstance(body, list), f"{tag} body must be a list")
        items = [decode_value(v, _depth + 1) for v in body]
        return frozenset(items) if tag == "__frozenset__" else set(items)
    if tag == "__map__":
        _require(isinstance(body, list), "__map__ body must be a list of pairs")
        out = {}
        for pair in body:
            _require(isinstance(pair, list) and len(pair) == 2, "__map__ entries must be pairs")
            out[decode_value(pair[0], _depth + 1)] = decode_value(pair[1], _depth + 1)
        return out
    if tag == "__signed__":
        _require(isinstance(body, list) and len(body) == 2, "__signed__ needs [payload, sig]")
        signature = decode_value(body[1], _depth + 1)
        _require(isinstance(signature, Signature), "__signed__ second element must be a __sig__")
        return SignedMessage(decode_value(body[0], _depth + 1), signature)
    if tag == "__sig__":
        _require(isinstance(body, list) and len(body) == 2, "__sig__ needs [signer, tag]")
        _require(isinstance(body[1], str), "__sig__ tag must be a hex string")
        try:
            mac = bytes.fromhex(body[1])
        except ValueError as exc:
            raise WireError("__sig__ tag is not valid hex") from exc
        return Signature(signer=_int(body[0], "signer"), tag=mac)
    if tag == "__update__":
        return UpdatePayload(row=_int_tuple(body, "__update__ row"))
    if tag == "__followers__":
        _require(
            isinstance(body, list) and len(body) == 3,
            "__followers__ needs [followers, edges, epoch]",
        )
        followers = _int_tuple(body[0], "followers")
        _require(isinstance(body[1], list), "line edges must be a list")
        edges = []
        for edge in body[1]:
            _require(isinstance(edge, list) and len(edge) == 2, "line edges must be pairs")
            edges.append((_int(edge[0], "edge"), _int(edge[1], "edge")))
        return FollowersPayload(
            followers=followers, line_edges=tuple(edges), epoch=_int(body[2], "epoch")
        )
    if tag == "__digest__":
        _require(isinstance(body, list) and len(body) == 2, "__digest__ needs [epoch, digests]")
        _require(isinstance(body[1], list), "row digests must be a list")
        digests = []
        for item in body[1]:
            _require(isinstance(item, str), "row digests must be strings")
            digests.append(item)
        return MatrixDigestPayload(epoch=_int(body[0], "epoch"), row_digests=tuple(digests))
    if tag == "__rows__":
        _require(isinstance(body, list), "__rows__ body must be a list")
        return RowCertsPayload(certs=tuple(decode_value(v, _depth + 1) for v in body))
    raise WireError(f"unknown wire tag {tag!r}")


# -------------------------------------------------------------------- framing


def encode_frame(kind: str, payload: Any, src: int) -> bytes:
    """One wire frame: length prefix + versioned JSON envelope."""
    body = json.dumps(
        {"v": WIRE_VERSION, "k": kind, "s": src, "p": encode_value(payload)},
        separators=(",", ":"),
        allow_nan=False,
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    return _LEN.pack(len(body)) + body


def decode_frame_body(body: bytes) -> Tuple[str, Any, int]:
    """Decode one frame body into ``(kind, payload, src)``."""
    try:
        envelope = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"frame is not valid JSON: {exc}") from exc
    _require(isinstance(envelope, dict), "frame envelope must be an object")
    _require(envelope.get("v") == WIRE_VERSION, "unsupported wire version")
    kind = envelope.get("k")
    _require(isinstance(kind, str) and bool(kind), "frame kind must be a non-empty string")
    src = envelope.get("s")
    _require(
        isinstance(src, int) and not isinstance(src, bool) and src >= 1,
        "frame src must be a 1-based process id",
    )
    return kind, decode_value(envelope.get("p")), src


class FrameDecoder:
    """Incremental frame parser for one TCP stream.

    Feed arbitrary byte chunks; complete frames come back decoded.  Two
    failure modes are distinguished on purpose:

    - a *single* malformed frame (bad JSON, unknown tag) is skipped and
      counted in :attr:`malformed` — resynchronization is safe because
      the length prefix still delimits it;
    - a *framing* violation (length prefix beyond :data:`MAX_FRAME_BYTES`)
      raises :class:`WireError`, because the stream can no longer be
      trusted to resynchronize — the caller should drop the connection.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.malformed = 0
        self.frames_decoded = 0

    def feed(self, data: bytes) -> List[Tuple[str, Any, int]]:
        """Consume bytes; return every complete, valid frame decoded."""
        self._buffer.extend(data)
        return list(self._drain())

    def _drain(self) -> Iterator[Tuple[str, Any, int]]:
        while True:
            if len(self._buffer) < _LEN.size:
                return
            (length,) = _LEN.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise WireError(
                    f"length prefix {length} exceeds MAX_FRAME_BYTES; stream corrupt"
                )
            if len(self._buffer) < _LEN.size + length:
                return
            body = bytes(self._buffer[_LEN.size : _LEN.size + length])
            del self._buffer[: _LEN.size + length]
            try:
                frame = decode_frame_body(body)
            except WireError:
                self.malformed += 1
                continue
            self.frames_decoded += 1
            yield frame
