"""Negotiable wire codecs for the live runtime: tagged JSON and binary.

A frame on the wire is a 4-byte big-endian length followed by one frame
*body*.  Two codecs share that framing and are negotiated per connection
(see :mod:`repro.net.peer`):

- **WIRE_V1** — one UTF-8 JSON object ``{"v": 1, "k": kind, "s": src,
  "p": payload}``.  Python-only types are wrapped in single-key tag
  objects (``{"__tuple__": [...]}`` etc.).  Bodies always start with
  ``{`` (0x7B), which is what makes version dispatch a first-byte check.
- **WIRE_V2** — a compact binary body: a struct-packed fixed header
  (magic byte 0x02, kind tag, source id), then a type-tagged binary
  value encoding (LEB128 varints, zigzag ints, length-prefixed strings
  and bytes).  Encoding reuses a preallocated scratch buffer and a memo
  keyed by payload identity; decoding walks a ``memoryview`` cursor with
  zero-copy slicing and memoizes immutable bodies.

Batches are a third body shape (magic byte 0x03): several frame bodies
in one envelope, optionally authenticated by a single link-level
HMAC-SHA256 over the whole envelope — one MAC per *batch* where the
ingress path previously paid one signature verification per *frame*
(protocol-level signatures inside the payloads are still verified by the
host and failure detector; the batch MAC adds link-origin integrity to
otherwise unsigned frames such as anti-entropy probes).

The payload vocabulary of both codecs is exactly the one
:mod:`repro.crypto.digests` canonically encodes — ``None``/bool/int/
float/str plus bytes, tuples, lists, sets, frozensets, dicts, and the
protocol dataclasses.  A decoded payload is *type-identical* to the sent
one — which matters because signature verification re-derives the
canonical encoding from the decoded object: a tuple that came back as a
list would change the bytes under the MAC and reject every valid
signature.

Decoding is strict and defensive: unknown tags, wrong arities, oversized
frames, and over-deep nesting raise :class:`WireError` — receivers drop
the frame (or connection) and count it, never crash.  Anything a
Byzantine peer can put on a socket goes through this gauntlet before any
protocol module sees it.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.messages import (
    FollowersPayload,
    MatrixDigestPayload,
    RowCertsPayload,
    UpdatePayload,
)
from repro.crypto.authenticator import SignedMessage
from repro.crypto.signatures import Signature
from repro.ibft.messages import (
    IbftCommitCertificate,
    IbftCommitPayload,
    IbftPreparePayload,
    NewRoundPayload,
    PrePreparePayload,
    RoundChangePayload,
)
from repro.xpaxos.messages import (
    CheckpointCertificate,
    CheckpointPayload,
    ClientRequest,
    CommitCertificate,
    CommitPayload,
    NewViewPayload,
    PreparePayload,
    ReplyPayload,
    ViewChangePayload,
)

#: The two negotiable codec versions.  ``WIRE_VERSION`` is kept as an
#: alias of V1 for backward compatibility with earlier imports.
WIRE_V1 = 1
WIRE_V2 = 2
WIRE_VERSIONS = (WIRE_V1, WIRE_V2)
WIRE_VERSION = WIRE_V1

#: What a fresh connection offers when nothing picks a version
#: explicitly (``PeerManager(wire_version=...)`` or ``REPRO_WIRE_VERSION``).
DEFAULT_WIRE_VERSION = WIRE_V2

#: Upper bound on one frame (or batch envelope) body.  Honest traffic is
#: tiny (a signed row for n=100 is ~1 KiB); the cap bounds what a
#: malicious or broken peer can make a receiver buffer.
MAX_FRAME_BYTES = 1 << 20

#: Maximum nesting depth accepted while decoding (stack-bomb guard).
MAX_DEPTH = 32

_LEN = struct.Struct(">I")

#: First body byte of a V2 frame / batch envelope.  V1 JSON bodies start
#: with ``{`` (0x7B), so the three shapes are disjoint on the first byte.
MAGIC_V2 = 0x02
MAGIC_BATCH = 0x03

#: Control frame kinds used by per-connection codec negotiation.  They
#: are consumed by the peer layer and never reach a host's ingress.
KIND_HELLO = "wire.hello"
KIND_ACK = "wire.ack"
_CONTROL_PREFIX = "wire."


class WireError(ValueError):
    """A frame violated the wire protocol (malformed, oversized, unknown)."""


class BatchAuthError(WireError):
    """A batch envelope failed (or lacked) its link-level MAC."""


def resolve_wire_version(version: Optional[int] = None) -> int:
    """Explicit version, else ``REPRO_WIRE_VERSION``, else the default."""
    if version is None:
        raw = os.environ.get("REPRO_WIRE_VERSION", "").strip()
        if not raw:
            return DEFAULT_WIRE_VERSION
        try:
            version = int(raw)
        except ValueError as exc:
            raise WireError(f"REPRO_WIRE_VERSION must be an integer, got {raw!r}") from exc
    if version not in WIRE_VERSIONS:
        raise WireError(f"unsupported wire version {version!r} (have {WIRE_VERSIONS})")
    return version


def is_control_kind(kind: str) -> bool:
    """Negotiation traffic: handled by the peer layer, never delivered."""
    return kind.startswith(_CONTROL_PREFIX)


# ------------------------------------------------------------ V1 value codec


def encode_value(value: Any, _depth: int = 0) -> Any:
    """Map a payload structure onto JSON-representable tagged values."""
    if _depth > MAX_DEPTH:
        raise WireError(f"payload nesting exceeds {MAX_DEPTH}")
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v, _depth + 1) for v in value]}
    if isinstance(value, list):
        return {"__list__": [encode_value(v, _depth + 1) for v in value]}
    if isinstance(value, (set, frozenset)):
        tag = "__frozenset__" if isinstance(value, frozenset) else "__set__"
        items = sorted(
            (encode_value(v, _depth + 1) for v in value),
            key=lambda item: json.dumps(item, sort_keys=True),
        )
        return {tag: items}
    if isinstance(value, dict):
        return {
            "__map__": [
                [encode_value(k, _depth + 1), encode_value(v, _depth + 1)]
                for k, v in value.items()
            ]
        }
    if isinstance(value, SignedMessage):
        return {
            "__signed__": [
                encode_value(value.payload, _depth + 1),
                encode_value(value.signature, _depth + 1),
            ]
        }
    if isinstance(value, Signature):
        return {"__sig__": [value.signer, value.tag.hex()]}
    if isinstance(value, UpdatePayload):
        return {"__update__": list(value.row)}
    if isinstance(value, FollowersPayload):
        return {
            "__followers__": [
                list(value.followers),
                [list(edge) for edge in value.line_edges],
                value.epoch,
            ]
        }
    if isinstance(value, MatrixDigestPayload):
        return {"__digest__": [value.epoch, list(value.row_digests)]}
    if isinstance(value, RowCertsPayload):
        return {"__rows__": [encode_value(c, _depth + 1) for c in value.certs]}
    if isinstance(value, ClientRequest):
        return {
            "__xreq__": [
                _int(value.client, "client"),
                _int(value.sequence, "sequence"),
                encode_value(value.op, _depth + 1),
            ]
        }
    if isinstance(value, PreparePayload):
        return {
            "__xprep__": [
                _int(value.view, "view"),
                _int(value.slot, "slot"),
                [encode_value(sm, _depth + 1) for sm in value.signed_requests],
            ]
        }
    if isinstance(value, CommitPayload):
        return {
            "__xcommit__": [
                _int(value.view, "view"),
                _int(value.slot, "slot"),
                encode_value(value.prepare, _depth + 1),
            ]
        }
    if isinstance(value, CommitCertificate):
        return {
            "__xcert__": [
                encode_value(value.prepare, _depth + 1),
                [encode_value(c, _depth + 1) for c in value.commits],
            ]
        }
    if isinstance(value, CheckpointPayload):
        _require(isinstance(value.state_digest, str), "state digest must be a string")
        return {
            "__xckpt__": [
                _int(value.view, "view"),
                _int(value.slot_count, "slot_count"),
                value.state_digest,
            ]
        }
    if isinstance(value, CheckpointCertificate):
        return {"__xckptcert__": [encode_value(v, _depth + 1) for v in value.votes]}
    if isinstance(value, ViewChangePayload):
        return {
            "__xvc__": [
                _int(value.new_view, "new_view"),
                [encode_value(c, _depth + 1) for c in value.committed],
                _encode_prepared_pairs(value.prepared, _depth + 1),
                encode_value(value.checkpoint, _depth + 1),
                encode_value(value.snapshot, _depth + 1),
            ]
        }
    if isinstance(value, NewViewPayload):
        return {
            "__xnv__": [
                _int(value.view, "view"),
                [encode_value(c, _depth + 1) for c in value.committed],
                encode_value(value.checkpoint, _depth + 1),
                encode_value(value.snapshot, _depth + 1),
            ]
        }
    if isinstance(value, ReplyPayload):
        return {
            "__xreply__": [
                _int(value.client, "client"),
                _int(value.sequence, "sequence"),
                encode_value(value.result, _depth + 1),
                _int(value.replica, "replica"),
                _int(value.view, "view"),
            ]
        }
    if isinstance(value, PrePreparePayload):
        return {
            "__ipp__": [
                _int(value.round, "round"),
                _int(value.slot, "slot"),
                [encode_value(sm, _depth + 1) for sm in value.signed_requests],
            ]
        }
    if isinstance(value, IbftPreparePayload):
        _require(isinstance(value.request_digest, str), "request digest must be a string")
        return {
            "__iprep__": [
                _int(value.round, "round"),
                _int(value.slot, "slot"),
                value.request_digest,
            ]
        }
    if isinstance(value, IbftCommitPayload):
        _require(isinstance(value.request_digest, str), "request digest must be a string")
        return {
            "__icommit__": [
                _int(value.round, "round"),
                _int(value.slot, "slot"),
                value.request_digest,
            ]
        }
    if isinstance(value, IbftCommitCertificate):
        return {
            "__icert__": [
                encode_value(value.preprepare, _depth + 1),
                [encode_value(c, _depth + 1) for c in value.commits],
            ]
        }
    if isinstance(value, RoundChangePayload):
        return {
            "__irc__": [
                _int(value.new_round, "new_round"),
                [encode_value(c, _depth + 1) for c in value.committed],
                _encode_prepared_pairs(value.prepared, _depth + 1),
            ]
        }
    if isinstance(value, NewRoundPayload):
        return {
            "__inr__": [
                _int(value.round, "round"),
                [encode_value(c, _depth + 1) for c in value.committed],
            ]
        }
    raise WireError(f"cannot encode {type(value).__name__} for the wire")


def _encode_prepared_pairs(prepared: Any, depth: int) -> List[List[Any]]:
    pairs = []
    for entry in prepared:
        _require(
            isinstance(entry, tuple) and len(entry) == 2,
            "prepared entries must be (slot, prepare) pairs",
        )
        pairs.append([_int(entry[0], "slot"), encode_value(entry[1], depth)])
    return pairs


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise WireError(message)


def _int(value: Any, what: str) -> int:
    _require(isinstance(value, int) and not isinstance(value, bool), f"{what} must be an int")
    return value


def _int_tuple(value: Any, what: str) -> Tuple[int, ...]:
    _require(isinstance(value, list), f"{what} must be a list")
    return tuple(_int(v, what) for v in value)


def decode_value(value: Any, _depth: int = 0) -> Any:
    """Inverse of :func:`encode_value`; raises :class:`WireError` on garbage."""
    if _depth > MAX_DEPTH:
        raise WireError(f"payload nesting exceeds {MAX_DEPTH}")
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        raise WireError("bare JSON arrays are not in the vocabulary (use a tag)")
    _require(isinstance(value, dict) and len(value) == 1, "expected a single-key tag object")
    tag, body = next(iter(value.items()))
    if tag == "__bytes__":
        _require(isinstance(body, str), "__bytes__ body must be a hex string")
        try:
            return bytes.fromhex(body)
        except ValueError as exc:
            raise WireError("__bytes__ body is not valid hex") from exc
    if tag == "__tuple__":
        _require(isinstance(body, list), "__tuple__ body must be a list")
        return tuple(decode_value(v, _depth + 1) for v in body)
    if tag == "__list__":
        _require(isinstance(body, list), "__list__ body must be a list")
        return [decode_value(v, _depth + 1) for v in body]
    if tag in ("__set__", "__frozenset__"):
        _require(isinstance(body, list), f"{tag} body must be a list")
        items = [decode_value(v, _depth + 1) for v in body]
        return frozenset(items) if tag == "__frozenset__" else set(items)
    if tag == "__map__":
        _require(isinstance(body, list), "__map__ body must be a list of pairs")
        out = {}
        for pair in body:
            _require(isinstance(pair, list) and len(pair) == 2, "__map__ entries must be pairs")
            out[decode_value(pair[0], _depth + 1)] = decode_value(pair[1], _depth + 1)
        return out
    if tag == "__signed__":
        _require(isinstance(body, list) and len(body) == 2, "__signed__ needs [payload, sig]")
        signature = decode_value(body[1], _depth + 1)
        _require(isinstance(signature, Signature), "__signed__ second element must be a __sig__")
        return SignedMessage(decode_value(body[0], _depth + 1), signature)
    if tag == "__sig__":
        _require(isinstance(body, list) and len(body) == 2, "__sig__ needs [signer, tag]")
        _require(isinstance(body[1], str), "__sig__ tag must be a hex string")
        try:
            mac = bytes.fromhex(body[1])
        except ValueError as exc:
            raise WireError("__sig__ tag is not valid hex") from exc
        return Signature(signer=_int(body[0], "signer"), tag=mac)
    if tag == "__update__":
        return UpdatePayload(row=_int_tuple(body, "__update__ row"))
    if tag == "__followers__":
        _require(
            isinstance(body, list) and len(body) == 3,
            "__followers__ needs [followers, edges, epoch]",
        )
        followers = _int_tuple(body[0], "followers")
        _require(isinstance(body[1], list), "line edges must be a list")
        edges = []
        for edge in body[1]:
            _require(isinstance(edge, list) and len(edge) == 2, "line edges must be pairs")
            edges.append((_int(edge[0], "edge"), _int(edge[1], "edge")))
        return FollowersPayload(
            followers=followers, line_edges=tuple(edges), epoch=_int(body[2], "epoch")
        )
    if tag == "__digest__":
        _require(isinstance(body, list) and len(body) == 2, "__digest__ needs [epoch, digests]")
        _require(isinstance(body[1], list), "row digests must be a list")
        digests = []
        for item in body[1]:
            _require(isinstance(item, str), "row digests must be strings")
            digests.append(item)
        return MatrixDigestPayload(epoch=_int(body[0], "epoch"), row_digests=tuple(digests))
    if tag == "__rows__":
        _require(isinstance(body, list), "__rows__ body must be a list")
        return RowCertsPayload(certs=tuple(decode_value(v, _depth + 1) for v in body))
    if tag == "__xreq__":
        _require(isinstance(body, list) and len(body) == 3, "__xreq__ needs [client, seq, op]")
        op = decode_value(body[2], _depth + 1)
        _require(isinstance(op, tuple), "__xreq__ op must be a tuple")
        return ClientRequest(
            client=_int(body[0], "client"), sequence=_int(body[1], "sequence"), op=op
        )
    if tag == "__xprep__":
        _require(
            isinstance(body, list) and len(body) == 3,
            "__xprep__ needs [view, slot, requests]",
        )
        _require(isinstance(body[2], list), "__xprep__ requests must be a list")
        return PreparePayload(
            view=_int(body[0], "view"),
            slot=_int(body[1], "slot"),
            signed_requests=tuple(decode_value(v, _depth + 1) for v in body[2]),
        )
    if tag == "__xcommit__":
        _require(
            isinstance(body, list) and len(body) == 3,
            "__xcommit__ needs [view, slot, prepare]",
        )
        return CommitPayload(
            view=_int(body[0], "view"),
            slot=_int(body[1], "slot"),
            prepare=decode_value(body[2], _depth + 1),
        )
    if tag == "__xcert__":
        _require(
            isinstance(body, list) and len(body) == 2,
            "__xcert__ needs [prepare, commits]",
        )
        _require(isinstance(body[1], list), "__xcert__ commits must be a list")
        return CommitCertificate(
            prepare=decode_value(body[0], _depth + 1),
            commits=tuple(decode_value(v, _depth + 1) for v in body[1]),
        )
    if tag == "__xckpt__":
        _require(
            isinstance(body, list) and len(body) == 3,
            "__xckpt__ needs [view, slot_count, digest]",
        )
        _require(isinstance(body[2], str), "__xckpt__ digest must be a string")
        return CheckpointPayload(
            view=_int(body[0], "view"),
            slot_count=_int(body[1], "slot_count"),
            state_digest=body[2],
        )
    if tag == "__xckptcert__":
        _require(isinstance(body, list), "__xckptcert__ body must be a list")
        return CheckpointCertificate(
            votes=tuple(decode_value(v, _depth + 1) for v in body)
        )
    if tag == "__xvc__":
        _require(
            isinstance(body, list) and len(body) == 5,
            "__xvc__ needs [new_view, committed, prepared, checkpoint, snapshot]",
        )
        _require(isinstance(body[1], list), "__xvc__ committed must be a list")
        _require(isinstance(body[2], list), "__xvc__ prepared must be a list")
        prepared = []
        for pair in body[2]:
            _require(
                isinstance(pair, list) and len(pair) == 2,
                "__xvc__ prepared entries must be pairs",
            )
            prepared.append((_int(pair[0], "slot"), decode_value(pair[1], _depth + 1)))
        snapshot = decode_value(body[4], _depth + 1)
        _require(snapshot is None or isinstance(snapshot, tuple), "snapshot must be a tuple")
        return ViewChangePayload(
            new_view=_int(body[0], "new_view"),
            committed=tuple(decode_value(v, _depth + 1) for v in body[1]),
            prepared=tuple(prepared),
            checkpoint=decode_value(body[3], _depth + 1),
            snapshot=snapshot,
        )
    if tag == "__xnv__":
        _require(
            isinstance(body, list) and len(body) == 4,
            "__xnv__ needs [view, committed, checkpoint, snapshot]",
        )
        _require(isinstance(body[1], list), "__xnv__ committed must be a list")
        snapshot = decode_value(body[3], _depth + 1)
        _require(snapshot is None or isinstance(snapshot, tuple), "snapshot must be a tuple")
        return NewViewPayload(
            view=_int(body[0], "view"),
            committed=tuple(decode_value(v, _depth + 1) for v in body[1]),
            checkpoint=decode_value(body[2], _depth + 1),
            snapshot=snapshot,
        )
    if tag == "__xreply__":
        _require(
            isinstance(body, list) and len(body) == 5,
            "__xreply__ needs [client, seq, result, replica, view]",
        )
        return ReplyPayload(
            client=_int(body[0], "client"),
            sequence=_int(body[1], "sequence"),
            result=decode_value(body[2], _depth + 1),
            replica=_int(body[3], "replica"),
            view=_int(body[4], "view"),
        )
    if tag == "__ipp__":
        _require(
            isinstance(body, list) and len(body) == 3,
            "__ipp__ needs [round, slot, requests]",
        )
        _require(isinstance(body[2], list), "__ipp__ requests must be a list")
        return PrePreparePayload(
            round=_int(body[0], "round"),
            slot=_int(body[1], "slot"),
            signed_requests=tuple(decode_value(v, _depth + 1) for v in body[2]),
        )
    if tag == "__iprep__":
        _require(
            isinstance(body, list) and len(body) == 3,
            "__iprep__ needs [round, slot, digest]",
        )
        _require(isinstance(body[2], str), "__iprep__ digest must be a string")
        return IbftPreparePayload(
            round=_int(body[0], "round"),
            slot=_int(body[1], "slot"),
            request_digest=body[2],
        )
    if tag == "__icommit__":
        _require(
            isinstance(body, list) and len(body) == 3,
            "__icommit__ needs [round, slot, digest]",
        )
        _require(isinstance(body[2], str), "__icommit__ digest must be a string")
        return IbftCommitPayload(
            round=_int(body[0], "round"),
            slot=_int(body[1], "slot"),
            request_digest=body[2],
        )
    if tag == "__icert__":
        _require(
            isinstance(body, list) and len(body) == 2,
            "__icert__ needs [preprepare, commits]",
        )
        _require(isinstance(body[1], list), "__icert__ commits must be a list")
        return IbftCommitCertificate(
            preprepare=decode_value(body[0], _depth + 1),
            commits=tuple(decode_value(v, _depth + 1) for v in body[1]),
        )
    if tag == "__irc__":
        _require(
            isinstance(body, list) and len(body) == 3,
            "__irc__ needs [new_round, committed, prepared]",
        )
        _require(isinstance(body[1], list), "__irc__ committed must be a list")
        _require(isinstance(body[2], list), "__irc__ prepared must be a list")
        prepared = []
        for pair in body[2]:
            _require(
                isinstance(pair, list) and len(pair) == 2,
                "__irc__ prepared entries must be pairs",
            )
            prepared.append((_int(pair[0], "slot"), decode_value(pair[1], _depth + 1)))
        return RoundChangePayload(
            new_round=_int(body[0], "new_round"),
            committed=tuple(decode_value(v, _depth + 1) for v in body[1]),
            prepared=tuple(prepared),
        )
    if tag == "__inr__":
        _require(
            isinstance(body, list) and len(body) == 2,
            "__inr__ needs [round, committed]",
        )
        _require(isinstance(body[1], list), "__inr__ committed must be a list")
        return NewRoundPayload(
            round=_int(body[0], "round"),
            committed=tuple(decode_value(v, _depth + 1) for v in body[1]),
        )
    raise WireError(f"unknown wire tag {tag!r}")


# ------------------------------------------------------------ V2 value codec
# One byte of type tag, then a fixed or length-prefixed binary body.
# Ints are zigzag-mapped then LEB128 varints (arbitrary precision, small
# magnitudes stay small); containers carry an element count; sets are
# encoded in sorted-by-encoding order so equal sets produce equal bytes.

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_SET = 0x09
_T_FROZENSET = 0x0A
_T_MAP = 0x0B
_T_SIGNED = 0x0C
_T_SIG = 0x0D
_T_UPDATE = 0x0E
_T_FOLLOWERS = 0x0F
_T_DIGEST = 0x10
_T_ROWS = 0x11
_T_XREQUEST = 0x12
_T_XPREPARE = 0x13
_T_XCOMMIT = 0x14
_T_XCERT = 0x15
_T_XCKPT = 0x16
_T_XCKPTCERT = 0x17
_T_XVC = 0x18
_T_XNV = 0x19
_T_XREPLY = 0x1A
_T_IPREPREPARE = 0x1B
_T_IPREPARE = 0x1C
_T_ICOMMIT = 0x1D
_T_ICERT = 0x1E
_T_IRC = 0x1F
_T_INR = 0x20

_F64 = struct.Struct(">d")

#: V2 fixed frame header: magic byte, kind tag, source id (uint16).
_HDR_V2 = struct.Struct(">BBH")

#: Batch envelope header: magic byte, flags, source id, member count.
_HDR_BATCH = struct.Struct(">BBHH")
_MAC_BYTES = 32
_FLAG_MAC = 0x01

#: Hot protocol kinds get one-byte tags; anything else (tag 0) carries
#: the kind string inline.  Append-only: ids are wire format.
_KIND_IDS: Dict[str, int] = {
    "heartbeat": 1,
    "fd.ping": 2,
    "fd.pong": 3,
    "qs.update": 4,
    "fs.followers": 5,
    "qs.digest": 6,
    "qs.rows": 7,
    "xp.request": 8,
    "xp.prepare": 9,
    "xp.commit": 10,
    "xp.reply": 11,
    "xp.viewchange": 12,
    "xp.newview": 13,
    "xp.checkpoint": 14,
    "ibft.preprepare": 15,
    "ibft.prepare": 16,
    "ibft.commit": 17,
    "ibft.roundchange": 18,
    "ibft.newround": 19,
}
_KIND_BY_ID = {tag: kind for kind, tag in _KIND_IDS.items()}

#: Longest accepted varint (bytes).  Honest ints are a handful of bytes;
#: the cap stops a hostile stream from making the decoder build huge
#: bignums one 7-bit limb at a time.
_MAX_VARINT_BYTES = 128

# Preallocated encode scratch.  asyncio is single-threaded per loop and
# the codec never re-enters itself, but the busy flag keeps a second
# concurrent encoder (another loop/thread) correct by falling back to a
# fresh buffer.
_SCRATCH = bytearray()
_SCRATCH_BUSY = False

# Encode memo: (kind, id(payload), src) -> (payload, body).  A broadcast
# hands the same payload object to every link, and benchmarks resend one
# object many times; pinning the payload in the value makes a recycled
# id impossible to alias.  Only hashable (in practice immutable) payloads
# are memoized.  Cleared wholesale when full.
_ENCODE_MEMO: Dict[Tuple[str, int, int], Tuple[Any, bytes]] = {}
# Decode memo: body bytes -> decoded frame, again only for hashable
# payloads so a shared decoded object can never be mutated by a receiver.
_DECODE_MEMO: Dict[bytes, Tuple[str, Any, int]] = {}
_MEMO_LIMIT = 8192


def _write_uvarint(buf: bytearray, n: int) -> None:
    while n > 0x7F:
        buf.append((n & 0x7F) | 0x80)
        n >>= 7
    buf.append(n)


def _write_int(buf: bytearray, n: int) -> None:
    _write_uvarint(buf, (n << 1) if n >= 0 else ((-n << 1) - 1))


def _read_uvarint(body, pos: int, end: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    start = pos
    while True:
        if pos >= end:
            raise WireError("truncated varint")
        byte = body[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if pos - start >= _MAX_VARINT_BYTES:
            raise WireError("varint too long")


def _read_int(body, pos: int, end: int) -> Tuple[int, int]:
    unsigned, pos = _read_uvarint(body, pos, end)
    return (unsigned >> 1) if not unsigned & 1 else -((unsigned + 1) >> 1), pos


def _encode_value_v2(buf: bytearray, value: Any, depth: int) -> None:
    if depth > MAX_DEPTH:
        raise WireError(f"payload nesting exceeds {MAX_DEPTH}")
    if value is None:
        buf.append(_T_NONE)
        return
    if isinstance(value, bool):
        buf.append(_T_TRUE if value else _T_FALSE)
        return
    if isinstance(value, int):
        buf.append(_T_INT)
        _write_int(buf, value)
        return
    if isinstance(value, float):
        buf.append(_T_FLOAT)
        buf += _F64.pack(value)
        return
    if isinstance(value, str):
        encoded = value.encode("utf-8")
        buf.append(_T_STR)
        _write_uvarint(buf, len(encoded))
        buf += encoded
        return
    if isinstance(value, bytes):
        buf.append(_T_BYTES)
        _write_uvarint(buf, len(value))
        buf += value
        return
    if isinstance(value, (tuple, list)):
        buf.append(_T_TUPLE if isinstance(value, tuple) else _T_LIST)
        _write_uvarint(buf, len(value))
        for item in value:
            _encode_value_v2(buf, item, depth + 1)
        return
    if isinstance(value, (set, frozenset)):
        parts = []
        for item in value:
            part = bytearray()
            _encode_value_v2(part, item, depth + 1)
            parts.append(bytes(part))
        parts.sort()
        buf.append(_T_FROZENSET if isinstance(value, frozenset) else _T_SET)
        _write_uvarint(buf, len(parts))
        for part in parts:
            buf += part
        return
    if isinstance(value, dict):
        buf.append(_T_MAP)
        _write_uvarint(buf, len(value))
        for key, item in value.items():
            _encode_value_v2(buf, key, depth + 1)
            _encode_value_v2(buf, item, depth + 1)
        return
    if isinstance(value, SignedMessage):
        buf.append(_T_SIGNED)
        _encode_value_v2(buf, value.payload, depth + 1)
        _encode_value_v2(buf, value.signature, depth + 1)
        return
    if isinstance(value, Signature):
        buf.append(_T_SIG)
        _write_int(buf, _int(value.signer, "signer"))
        _require(isinstance(value.tag, bytes), "signature tag must be bytes")
        _write_uvarint(buf, len(value.tag))
        buf += value.tag
        return
    if isinstance(value, UpdatePayload):
        buf.append(_T_UPDATE)
        _write_uvarint(buf, len(value.row))
        for entry in value.row:
            _write_int(buf, _int(entry, "__update__ row"))
        return
    if isinstance(value, FollowersPayload):
        buf.append(_T_FOLLOWERS)
        _write_uvarint(buf, len(value.followers))
        for pid in value.followers:
            _write_int(buf, _int(pid, "followers"))
        _write_uvarint(buf, len(value.line_edges))
        for edge in value.line_edges:
            _require(len(edge) == 2, "line edges must be pairs")
            _write_int(buf, _int(edge[0], "edge"))
            _write_int(buf, _int(edge[1], "edge"))
        _write_int(buf, _int(value.epoch, "epoch"))
        return
    if isinstance(value, MatrixDigestPayload):
        buf.append(_T_DIGEST)
        _write_int(buf, _int(value.epoch, "epoch"))
        _write_uvarint(buf, len(value.row_digests))
        for digest_hex in value.row_digests:
            _require(isinstance(digest_hex, str), "row digests must be strings")
            encoded = digest_hex.encode("utf-8")
            _write_uvarint(buf, len(encoded))
            buf += encoded
        return
    if isinstance(value, RowCertsPayload):
        buf.append(_T_ROWS)
        _write_uvarint(buf, len(value.certs))
        for cert in value.certs:
            _encode_value_v2(buf, cert, depth + 1)
        return
    if isinstance(value, ClientRequest):
        buf.append(_T_XREQUEST)
        _write_int(buf, _int(value.client, "client"))
        _write_int(buf, _int(value.sequence, "sequence"))
        _encode_value_v2(buf, value.op, depth + 1)
        return
    if isinstance(value, PreparePayload):
        buf.append(_T_XPREPARE)
        _write_int(buf, _int(value.view, "view"))
        _write_int(buf, _int(value.slot, "slot"))
        _write_uvarint(buf, len(value.signed_requests))
        for sm in value.signed_requests:
            _encode_value_v2(buf, sm, depth + 1)
        return
    if isinstance(value, CommitPayload):
        buf.append(_T_XCOMMIT)
        _write_int(buf, _int(value.view, "view"))
        _write_int(buf, _int(value.slot, "slot"))
        _encode_value_v2(buf, value.prepare, depth + 1)
        return
    if isinstance(value, CommitCertificate):
        buf.append(_T_XCERT)
        _encode_value_v2(buf, value.prepare, depth + 1)
        _write_uvarint(buf, len(value.commits))
        for commit in value.commits:
            _encode_value_v2(buf, commit, depth + 1)
        return
    if isinstance(value, CheckpointPayload):
        _require(isinstance(value.state_digest, str), "state digest must be a string")
        buf.append(_T_XCKPT)
        _write_int(buf, _int(value.view, "view"))
        _write_int(buf, _int(value.slot_count, "slot_count"))
        encoded = value.state_digest.encode("utf-8")
        _write_uvarint(buf, len(encoded))
        buf += encoded
        return
    if isinstance(value, CheckpointCertificate):
        buf.append(_T_XCKPTCERT)
        _write_uvarint(buf, len(value.votes))
        for vote in value.votes:
            _encode_value_v2(buf, vote, depth + 1)
        return
    if isinstance(value, ViewChangePayload):
        buf.append(_T_XVC)
        _write_int(buf, _int(value.new_view, "new_view"))
        _write_uvarint(buf, len(value.committed))
        for cert in value.committed:
            _encode_value_v2(buf, cert, depth + 1)
        _write_uvarint(buf, len(value.prepared))
        for entry in value.prepared:
            _require(
                isinstance(entry, tuple) and len(entry) == 2,
                "prepared entries must be (slot, prepare) pairs",
            )
            _write_int(buf, _int(entry[0], "slot"))
            _encode_value_v2(buf, entry[1], depth + 1)
        _encode_value_v2(buf, value.checkpoint, depth + 1)
        _encode_value_v2(buf, value.snapshot, depth + 1)
        return
    if isinstance(value, NewViewPayload):
        buf.append(_T_XNV)
        _write_int(buf, _int(value.view, "view"))
        _write_uvarint(buf, len(value.committed))
        for cert in value.committed:
            _encode_value_v2(buf, cert, depth + 1)
        _encode_value_v2(buf, value.checkpoint, depth + 1)
        _encode_value_v2(buf, value.snapshot, depth + 1)
        return
    if isinstance(value, ReplyPayload):
        buf.append(_T_XREPLY)
        _write_int(buf, _int(value.client, "client"))
        _write_int(buf, _int(value.sequence, "sequence"))
        _encode_value_v2(buf, value.result, depth + 1)
        _write_int(buf, _int(value.replica, "replica"))
        _write_int(buf, _int(value.view, "view"))
        return
    if isinstance(value, PrePreparePayload):
        buf.append(_T_IPREPREPARE)
        _write_int(buf, _int(value.round, "round"))
        _write_int(buf, _int(value.slot, "slot"))
        _write_uvarint(buf, len(value.signed_requests))
        for sm in value.signed_requests:
            _encode_value_v2(buf, sm, depth + 1)
        return
    if isinstance(value, (IbftPreparePayload, IbftCommitPayload)):
        _require(isinstance(value.request_digest, str), "request digest must be a string")
        buf.append(_T_IPREPARE if isinstance(value, IbftPreparePayload) else _T_ICOMMIT)
        _write_int(buf, _int(value.round, "round"))
        _write_int(buf, _int(value.slot, "slot"))
        encoded = value.request_digest.encode("utf-8")
        _write_uvarint(buf, len(encoded))
        buf += encoded
        return
    if isinstance(value, IbftCommitCertificate):
        buf.append(_T_ICERT)
        _encode_value_v2(buf, value.preprepare, depth + 1)
        _write_uvarint(buf, len(value.commits))
        for commit in value.commits:
            _encode_value_v2(buf, commit, depth + 1)
        return
    if isinstance(value, RoundChangePayload):
        buf.append(_T_IRC)
        _write_int(buf, _int(value.new_round, "new_round"))
        _write_uvarint(buf, len(value.committed))
        for cert in value.committed:
            _encode_value_v2(buf, cert, depth + 1)
        _write_uvarint(buf, len(value.prepared))
        for entry in value.prepared:
            _require(
                isinstance(entry, tuple) and len(entry) == 2,
                "prepared entries must be (slot, preprepare) pairs",
            )
            _write_int(buf, _int(entry[0], "slot"))
            _encode_value_v2(buf, entry[1], depth + 1)
        return
    if isinstance(value, NewRoundPayload):
        buf.append(_T_INR)
        _write_int(buf, _int(value.round, "round"))
        _write_uvarint(buf, len(value.committed))
        for cert in value.committed:
            _encode_value_v2(buf, cert, depth + 1)
        return
    raise WireError(f"cannot encode {type(value).__name__} for the wire")


def _take(body, pos: int, end: int, n: int) -> Tuple[Any, int]:
    new_pos = pos + n
    if new_pos > end:
        raise WireError("truncated value")
    return body[pos:new_pos], new_pos


def _read_str(body, pos: int, end: int) -> Tuple[str, int]:
    n, pos = _read_uvarint(body, pos, end)
    raw, pos = _take(body, pos, end, n)
    try:
        return bytes(raw).decode("utf-8"), pos
    except UnicodeDecodeError as exc:
        raise WireError("invalid UTF-8 string") from exc


def _read_count(body, pos: int, end: int) -> Tuple[int, int]:
    """A container element count, bounded by the bytes that remain."""
    n, pos = _read_uvarint(body, pos, end)
    if n > end - pos:
        raise WireError("container count exceeds remaining bytes")
    return n, pos


def _decode_value_v2(body, pos: int, end: int, depth: int) -> Tuple[Any, int]:
    if depth > MAX_DEPTH:
        raise WireError(f"payload nesting exceeds {MAX_DEPTH}")
    if pos >= end:
        raise WireError("truncated value")
    tag = body[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        return _read_int(body, pos, end)
    if tag == _T_FLOAT:
        raw, pos = _take(body, pos, end, _F64.size)
        return _F64.unpack(bytes(raw))[0], pos
    if tag == _T_STR:
        return _read_str(body, pos, end)
    if tag == _T_BYTES:
        n, pos = _read_uvarint(body, pos, end)
        raw, pos = _take(body, pos, end, n)
        return bytes(raw), pos
    if tag in (_T_TUPLE, _T_LIST):
        n, pos = _read_count(body, pos, end)
        items = []
        for _ in range(n):
            item, pos = _decode_value_v2(body, pos, end, depth + 1)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag in (_T_SET, _T_FROZENSET):
        n, pos = _read_count(body, pos, end)
        items = []
        for _ in range(n):
            item, pos = _decode_value_v2(body, pos, end, depth + 1)
            items.append(item)
        try:
            return (frozenset(items) if tag == _T_FROZENSET else set(items)), pos
        except TypeError as exc:
            raise WireError("unhashable set member") from exc
    if tag == _T_MAP:
        n, pos = _read_count(body, pos, end)
        out = {}
        for _ in range(n):
            key, pos = _decode_value_v2(body, pos, end, depth + 1)
            item, pos = _decode_value_v2(body, pos, end, depth + 1)
            try:
                out[key] = item
            except TypeError as exc:
                raise WireError("unhashable map key") from exc
        return out, pos
    if tag == _T_SIGNED:
        payload, pos = _decode_value_v2(body, pos, end, depth + 1)
        signature, pos = _decode_value_v2(body, pos, end, depth + 1)
        _require(isinstance(signature, Signature), "signed envelope needs a signature")
        return SignedMessage(payload, signature), pos
    if tag == _T_SIG:
        signer, pos = _read_int(body, pos, end)
        n, pos = _read_uvarint(body, pos, end)
        raw, pos = _take(body, pos, end, n)
        return Signature(signer=signer, tag=bytes(raw)), pos
    if tag == _T_UPDATE:
        n, pos = _read_count(body, pos, end)
        row = []
        for _ in range(n):
            entry, pos = _read_int(body, pos, end)
            row.append(entry)
        return UpdatePayload(row=tuple(row)), pos
    if tag == _T_FOLLOWERS:
        n, pos = _read_count(body, pos, end)
        followers = []
        for _ in range(n):
            pid, pos = _read_int(body, pos, end)
            followers.append(pid)
        n, pos = _read_count(body, pos, end)
        edges = []
        for _ in range(n):
            a, pos = _read_int(body, pos, end)
            b, pos = _read_int(body, pos, end)
            edges.append((a, b))
        epoch, pos = _read_int(body, pos, end)
        return (
            FollowersPayload(
                followers=tuple(followers), line_edges=tuple(edges), epoch=epoch
            ),
            pos,
        )
    if tag == _T_DIGEST:
        epoch, pos = _read_int(body, pos, end)
        n, pos = _read_count(body, pos, end)
        digests = []
        for _ in range(n):
            digest_hex, pos = _read_str(body, pos, end)
            digests.append(digest_hex)
        return MatrixDigestPayload(epoch=epoch, row_digests=tuple(digests)), pos
    if tag == _T_ROWS:
        n, pos = _read_count(body, pos, end)
        certs = []
        for _ in range(n):
            cert, pos = _decode_value_v2(body, pos, end, depth + 1)
            certs.append(cert)
        return RowCertsPayload(certs=tuple(certs)), pos
    if tag == _T_XREQUEST:
        client, pos = _read_int(body, pos, end)
        sequence, pos = _read_int(body, pos, end)
        op, pos = _decode_value_v2(body, pos, end, depth + 1)
        _require(isinstance(op, tuple), "request op must be a tuple")
        return ClientRequest(client=client, sequence=sequence, op=op), pos
    if tag == _T_XPREPARE:
        view, pos = _read_int(body, pos, end)
        slot, pos = _read_int(body, pos, end)
        n, pos = _read_count(body, pos, end)
        requests = []
        for _ in range(n):
            sm, pos = _decode_value_v2(body, pos, end, depth + 1)
            requests.append(sm)
        return PreparePayload(view=view, slot=slot, signed_requests=tuple(requests)), pos
    if tag == _T_XCOMMIT:
        view, pos = _read_int(body, pos, end)
        slot, pos = _read_int(body, pos, end)
        prepare, pos = _decode_value_v2(body, pos, end, depth + 1)
        return CommitPayload(view=view, slot=slot, prepare=prepare), pos
    if tag == _T_XCERT:
        prepare, pos = _decode_value_v2(body, pos, end, depth + 1)
        n, pos = _read_count(body, pos, end)
        commits = []
        for _ in range(n):
            commit, pos = _decode_value_v2(body, pos, end, depth + 1)
            commits.append(commit)
        return CommitCertificate(prepare=prepare, commits=tuple(commits)), pos
    if tag == _T_XCKPT:
        view, pos = _read_int(body, pos, end)
        slot_count, pos = _read_int(body, pos, end)
        state_digest, pos = _read_str(body, pos, end)
        return CheckpointPayload(view=view, slot_count=slot_count, state_digest=state_digest), pos
    if tag == _T_XCKPTCERT:
        n, pos = _read_count(body, pos, end)
        votes = []
        for _ in range(n):
            vote, pos = _decode_value_v2(body, pos, end, depth + 1)
            votes.append(vote)
        return CheckpointCertificate(votes=tuple(votes)), pos
    if tag == _T_XVC:
        new_view, pos = _read_int(body, pos, end)
        n, pos = _read_count(body, pos, end)
        committed = []
        for _ in range(n):
            cert, pos = _decode_value_v2(body, pos, end, depth + 1)
            committed.append(cert)
        n, pos = _read_count(body, pos, end)
        prepared = []
        for _ in range(n):
            slot, pos = _read_int(body, pos, end)
            sm, pos = _decode_value_v2(body, pos, end, depth + 1)
            prepared.append((slot, sm))
        checkpoint, pos = _decode_value_v2(body, pos, end, depth + 1)
        snapshot, pos = _decode_value_v2(body, pos, end, depth + 1)
        _require(snapshot is None or isinstance(snapshot, tuple), "snapshot must be a tuple")
        return (
            ViewChangePayload(
                new_view=new_view,
                committed=tuple(committed),
                prepared=tuple(prepared),
                checkpoint=checkpoint,
                snapshot=snapshot,
            ),
            pos,
        )
    if tag == _T_XNV:
        view, pos = _read_int(body, pos, end)
        n, pos = _read_count(body, pos, end)
        committed = []
        for _ in range(n):
            cert, pos = _decode_value_v2(body, pos, end, depth + 1)
            committed.append(cert)
        checkpoint, pos = _decode_value_v2(body, pos, end, depth + 1)
        snapshot, pos = _decode_value_v2(body, pos, end, depth + 1)
        _require(snapshot is None or isinstance(snapshot, tuple), "snapshot must be a tuple")
        return (
            NewViewPayload(
                view=view,
                committed=tuple(committed),
                checkpoint=checkpoint,
                snapshot=snapshot,
            ),
            pos,
        )
    if tag == _T_XREPLY:
        client, pos = _read_int(body, pos, end)
        sequence, pos = _read_int(body, pos, end)
        result, pos = _decode_value_v2(body, pos, end, depth + 1)
        replica, pos = _read_int(body, pos, end)
        view, pos = _read_int(body, pos, end)
        return (
            ReplyPayload(
                client=client, sequence=sequence, result=result, replica=replica, view=view
            ),
            pos,
        )
    if tag == _T_IPREPREPARE:
        round_, pos = _read_int(body, pos, end)
        slot, pos = _read_int(body, pos, end)
        n, pos = _read_count(body, pos, end)
        requests = []
        for _ in range(n):
            sm, pos = _decode_value_v2(body, pos, end, depth + 1)
            requests.append(sm)
        return PrePreparePayload(round=round_, slot=slot, signed_requests=tuple(requests)), pos
    if tag in (_T_IPREPARE, _T_ICOMMIT):
        round_, pos = _read_int(body, pos, end)
        slot, pos = _read_int(body, pos, end)
        request_digest, pos = _read_str(body, pos, end)
        cls = IbftPreparePayload if tag == _T_IPREPARE else IbftCommitPayload
        return cls(round=round_, slot=slot, request_digest=request_digest), pos
    if tag == _T_ICERT:
        preprepare, pos = _decode_value_v2(body, pos, end, depth + 1)
        n, pos = _read_count(body, pos, end)
        commits = []
        for _ in range(n):
            commit, pos = _decode_value_v2(body, pos, end, depth + 1)
            commits.append(commit)
        return IbftCommitCertificate(preprepare=preprepare, commits=tuple(commits)), pos
    if tag == _T_IRC:
        new_round, pos = _read_int(body, pos, end)
        n, pos = _read_count(body, pos, end)
        committed = []
        for _ in range(n):
            cert, pos = _decode_value_v2(body, pos, end, depth + 1)
            committed.append(cert)
        n, pos = _read_count(body, pos, end)
        prepared = []
        for _ in range(n):
            slot, pos = _read_int(body, pos, end)
            sm, pos = _decode_value_v2(body, pos, end, depth + 1)
            prepared.append((slot, sm))
        return (
            RoundChangePayload(
                new_round=new_round,
                committed=tuple(committed),
                prepared=tuple(prepared),
            ),
            pos,
        )
    if tag == _T_INR:
        round_, pos = _read_int(body, pos, end)
        n, pos = _read_count(body, pos, end)
        committed = []
        for _ in range(n):
            cert, pos = _decode_value_v2(body, pos, end, depth + 1)
            committed.append(cert)
        return NewRoundPayload(round=round_, committed=tuple(committed)), pos
    raise WireError(f"unknown V2 type tag {tag:#x}")


# -------------------------------------------------------------------- framing


def frame_bytes(body: bytes) -> bytes:
    """Length-prefix one already-encoded frame body."""
    return _LEN.pack(len(body)) + body


def _encode_frame_body_v1(kind: str, payload: Any, src: int) -> bytes:
    return json.dumps(
        {"v": WIRE_V1, "k": kind, "s": src, "p": encode_value(payload)},
        separators=(",", ":"),
        allow_nan=False,
    ).encode("utf-8")


def _encode_frame_body_v2(kind: str, payload: Any, src: int) -> bytes:
    global _SCRATCH_BUSY
    memo_key = (kind, id(payload), src)
    hit = _ENCODE_MEMO.get(memo_key)
    if hit is not None and hit[0] is payload:
        return hit[1]
    if not isinstance(kind, str) or not kind:
        raise WireError("frame kind must be a non-empty string")
    if not isinstance(src, int) or isinstance(src, bool) or not 1 <= src <= 0xFFFF:
        raise WireError("V2 frame src must be a pid in [1, 65535]")
    if _SCRATCH_BUSY:
        buf = bytearray()
        reuse = False
    else:
        _SCRATCH_BUSY = True
        buf = _SCRATCH
        del buf[:]
        reuse = True
    try:
        kind_tag = _KIND_IDS.get(kind, 0)
        buf += _HDR_V2.pack(MAGIC_V2, kind_tag, src)
        if kind_tag == 0:
            encoded_kind = kind.encode("utf-8")
            _write_uvarint(buf, len(encoded_kind))
            buf += encoded_kind
        try:
            _encode_value_v2(buf, payload, 0)
        except WireError:
            raise
        except Exception as exc:
            raise WireError(f"cannot encode payload: {exc!r}") from exc
        body = bytes(buf)
    finally:
        if reuse:
            _SCRATCH_BUSY = False
    try:
        hash(payload)
    except TypeError:
        return body  # mutable payload: never memoize identity -> bytes
    if len(_ENCODE_MEMO) >= _MEMO_LIMIT:
        _ENCODE_MEMO.clear()
    _ENCODE_MEMO[memo_key] = (payload, body)
    return body


def encode_frame_body(kind: str, payload: Any, src: int, version: int = WIRE_V1) -> bytes:
    """One frame body (no length prefix) in the requested codec."""
    if version == WIRE_V1:
        body = _encode_frame_body_v1(kind, payload, src)
    elif version == WIRE_V2:
        body = _encode_frame_body_v2(kind, payload, src)
    else:
        raise WireError(f"unsupported wire version {version!r}")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    return body


def encode_frame(kind: str, payload: Any, src: int, version: int = WIRE_V1) -> bytes:
    """One wire frame: length prefix + body (V1 by default, for interop)."""
    return frame_bytes(encode_frame_body(kind, payload, src, version))


def make_frame_encoder(src: int, version: int) -> Callable[[str, Any], bytes]:
    """A ``(kind, payload) -> body`` callable pinned to one (src, version).

    Equivalent to :func:`encode_frame_body` with the memo probe inlined —
    the writer task calls this once per frame, so the closure saves a
    dispatch layer on the hottest path.  The memo dict is cleared in
    place when full, never reassigned, so the closure's reference stays
    live.
    """
    if version == WIRE_V1:

        def encode_v1(kind: str, payload: Any) -> bytes:
            body = _encode_frame_body_v1(kind, payload, src)
            if len(body) > MAX_FRAME_BYTES:
                raise WireError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
            return body

        return encode_v1
    if version != WIRE_V2:
        raise WireError(f"unsupported wire version {version!r}")
    memo = _ENCODE_MEMO

    def encode_v2(kind: str, payload: Any) -> bytes:
        hit = memo.get((kind, id(payload), src))
        if hit is not None and hit[0] is payload:
            return hit[1]
        body = _encode_frame_body_v2(kind, payload, src)
        if len(body) > MAX_FRAME_BYTES:
            raise WireError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
        return body

    return encode_v2


def _decode_frame_body_v1(body: bytes) -> Tuple[str, Any, int]:
    try:
        envelope = json.loads(bytes(body).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"frame is not valid JSON: {exc}") from exc
    _require(isinstance(envelope, dict), "frame envelope must be an object")
    _require(envelope.get("v") == WIRE_V1, "unsupported wire version")
    kind = envelope.get("k")
    _require(isinstance(kind, str) and bool(kind), "frame kind must be a non-empty string")
    src = envelope.get("s")
    _require(
        isinstance(src, int) and not isinstance(src, bool) and src >= 1,
        "frame src must be a 1-based process id",
    )
    return kind, decode_value(envelope.get("p")), src


def _decode_frame_body_v2(body: bytes) -> Tuple[str, Any, int]:
    hit = _DECODE_MEMO.get(body)
    if hit is not None:
        return hit
    try:
        end = len(body)
        _magic, kind_tag, src = _HDR_V2.unpack_from(body, 0)
        if src < 1:
            raise WireError("frame src must be a 1-based process id")
        pos = _HDR_V2.size
        if kind_tag == 0:
            kind, pos = _read_str(body, pos, end)
            if not kind:
                raise WireError("frame kind must be a non-empty string")
        else:
            kind = _KIND_BY_ID.get(kind_tag)
            if kind is None:
                raise WireError(f"unknown kind tag {kind_tag}")
        payload, pos = _decode_value_v2(memoryview(body), pos, end, 0)
        if pos != end:
            raise WireError("trailing bytes after payload")
    except WireError:
        raise
    except Exception as exc:  # defensive: malformed input must stay typed
        raise WireError(f"malformed V2 frame: {exc!r}") from exc
    frame = (kind, payload, src)
    try:
        hash(payload)
    except TypeError:
        return frame  # mutable payload: do not share one object via memo
    if len(_DECODE_MEMO) >= _MEMO_LIMIT:
        _DECODE_MEMO.clear()
    _DECODE_MEMO[body] = frame
    return frame


def decode_frame_body(body: bytes) -> Tuple[str, Any, int]:
    """Decode one frame body into ``(kind, payload, src)``.

    Dispatches on the first byte: 0x02 is a V2 binary frame, ``{`` opens
    a V1 JSON envelope, and anything else (including a batch envelope,
    which is not a *single* frame) is a :class:`WireError`.
    """
    if not body:
        raise WireError("empty frame body")
    lead = body[0]
    if lead == MAGIC_V2:
        return _decode_frame_body_v2(bytes(body))
    if lead == MAGIC_BATCH:
        raise WireError("batch envelope where a single frame was expected")
    return _decode_frame_body_v1(body)


# ------------------------------------------------------------------- batching


def encode_batch(bodies: Sequence[bytes], src: int, auth: Optional[Any] = None) -> bytes:
    """Length-prefixed batch envelope around several frame bodies.

    With ``auth`` (an object exposing ``mac(data) -> bytes``) the
    envelope carries one HMAC-SHA256 over everything before it — a
    single link-level MAC for the whole batch.
    """
    if not isinstance(src, int) or isinstance(src, bool) or not 1 <= src <= 0xFFFF:
        raise WireError("batch src must be a pid in [1, 65535]")
    if not bodies or len(bodies) > 0xFFFF:
        raise WireError(f"batch must hold 1..65535 frames, got {len(bodies)}")
    flags = _FLAG_MAC if auth is not None else 0
    buf = bytearray(_HDR_BATCH.pack(MAGIC_BATCH, flags, src, len(bodies)))
    for body in bodies:
        buf += _LEN.pack(len(body))
        buf += body
    if auth is not None:
        buf += auth.mac(bytes(buf))
    if len(buf) > MAX_FRAME_BYTES:
        raise WireError(f"batch of {len(buf)} bytes exceeds MAX_FRAME_BYTES")
    return frame_bytes(bytes(buf))


def split_batch_body(body: bytes, auth: Optional[Any] = None) -> Tuple[int, List[bytes]]:
    """Validate a batch envelope; return ``(src, member frame bodies)``.

    With ``auth`` (an object exposing ``verify(src, data, tag) -> bool``)
    an envelope without a MAC, or with a MAC that does not verify, raises
    :class:`BatchAuthError` — the whole batch is rejected, so tampering
    with any single member frame kills every frame in the envelope.
    """
    if not isinstance(body, bytes):
        body = bytes(body)  # member slices must be immutable (memo keys)
    try:
        magic, flags, src, count = _HDR_BATCH.unpack_from(body, 0)
    except struct.error as exc:
        raise WireError("truncated batch header") from exc
    if magic != MAGIC_BATCH:
        raise WireError("not a batch envelope")
    if flags not in (0, _FLAG_MAC):
        raise WireError(f"unknown batch flags {flags:#x}")
    if src < 1:
        raise WireError("batch src must be a 1-based process id")
    end = len(body) - (_MAC_BYTES if flags & _FLAG_MAC else 0)
    if end < _HDR_BATCH.size:
        raise WireError("truncated batch envelope")
    if auth is not None:
        if not flags & _FLAG_MAC:
            raise BatchAuthError("batch envelope carries no MAC")
        view = memoryview(body)  # hmac takes any buffer; avoid two copies
        if not auth.verify(src, view[:end], view[end:]):
            raise BatchAuthError(f"batch MAC from p{src} failed verification")
    pos = _HDR_BATCH.size
    members: List[bytes] = []
    lensize = _LEN.size
    for _ in range(count):
        if pos + lensize > end:
            raise WireError("truncated batch member header")
        (length,) = _LEN.unpack_from(body, pos)
        pos += lensize
        if length > MAX_FRAME_BYTES or pos + length > end:
            raise WireError("batch member exceeds envelope")
        members.append(body[pos : pos + length])
        pos += length
    if pos != end:
        raise WireError("trailing bytes in batch envelope")
    return src, members


# ---------------------------------------------------------------- negotiation
# Hello/ack both travel as V1 frames — the lowest common denominator any
# peer can parse — so a V1-only receiver still answers and the pair
# settles on V1 without ever minting a protocol frame.


def encode_hello(src: int, max_version: int) -> bytes:
    """The dialer's offer: "I speak up to ``max_version``"."""
    return encode_frame(KIND_HELLO, {"max": max_version}, src, version=WIRE_V1)


def encode_ack(src: int, version: int) -> bytes:
    """The listener's answer: "we speak ``version`` on this link"."""
    return encode_frame(KIND_ACK, {"version": version}, src, version=WIRE_V1)


def negotiate_ack_version(payload: Any, own_max: int) -> int:
    """Listener side: highest version both ends speak (V1 on garbage)."""
    offered = payload.get("max") if isinstance(payload, dict) else None
    if not isinstance(offered, int) or isinstance(offered, bool) or offered < WIRE_V1:
        offered = WIRE_V1
    return min(offered, own_max)


def parse_ack_version(payload: Any, own_max: int) -> int:
    """Dialer side: accept the listener's pick if we speak it, else V1."""
    version = payload.get("version") if isinstance(payload, dict) else None
    if (
        isinstance(version, int)
        and not isinstance(version, bool)
        and WIRE_V1 <= version <= own_max
        and version in WIRE_VERSIONS
    ):
        return version
    return WIRE_V1


# ------------------------------------------------------------ stream decoding


class FrameDecoder:
    """Incremental frame parser for one TCP stream.

    Feed arbitrary byte chunks; complete frames come back decoded.  Two
    failure modes are distinguished on purpose:

    - a *single* malformed frame (bad JSON, unknown tag, a codec version
      outside ``accept_versions``) is skipped and counted in
      :attr:`malformed` — resynchronization is safe because the length
      prefix still delimits it; a batch that fails its link MAC is
      likewise skipped wholesale and counted in :attr:`batches_rejected`;
    - a *framing* violation (length prefix beyond :data:`MAX_FRAME_BYTES`)
      raises :class:`WireError`, because the stream can no longer be
      trusted to resynchronize — the caller should drop the connection.

    ``batch_auth_provider`` is a zero-argument callable returning the
    current batch authenticator (or ``None``); it is re-read per batch so
    an authenticator wired up after the connection was accepted still
    takes effect.
    """

    def __init__(
        self,
        accept_versions: Optional[Sequence[int]] = None,
        batch_auth_provider: Optional[Callable[[], Any]] = None,
    ) -> None:
        self._buffer = bytearray()
        self.malformed = 0
        self.frames_decoded = 0
        self.batches_decoded = 0
        self.batches_rejected = 0
        self.accept = frozenset(accept_versions if accept_versions is not None else WIRE_VERSIONS)
        self._accept_v2 = WIRE_V2 in self.accept
        self.batch_auth_provider = batch_auth_provider

    def feed(self, data: bytes) -> List[Tuple[str, Any, int]]:
        """Consume bytes; return every complete, valid frame decoded."""
        buffer = self._buffer
        buffer.extend(data)
        out: List[Tuple[str, Any, int]] = []
        decode_body = self._decode_body
        lensize = _LEN.size
        while True:
            if len(buffer) < lensize:
                return out
            (length,) = _LEN.unpack_from(buffer)
            if length > MAX_FRAME_BYTES:
                raise WireError(
                    f"length prefix {length} exceeds MAX_FRAME_BYTES; stream corrupt"
                )
            total = lensize + length
            if len(buffer) < total:
                return out
            body = bytes(buffer[lensize:total])
            del buffer[:total]
            if body and body[0] == MAGIC_BATCH:
                if not self._accept_v2:
                    self.malformed += 1
                    continue
                auth = self.batch_auth_provider() if self.batch_auth_provider else None
                try:
                    _src, members = split_batch_body(body, auth)
                except BatchAuthError:
                    self.batches_rejected += 1
                    continue
                except WireError:
                    self.malformed += 1
                    continue
                self.batches_decoded += 1
                for member in members:
                    frame = decode_body(member)
                    if frame is not None:
                        out.append(frame)
                continue
            frame = decode_body(body)
            if frame is not None:
                out.append(frame)

    def _decode_body(self, body: bytes) -> Optional[Tuple[str, Any, int]]:
        """One non-batch body, or ``None`` (counted) when unacceptable."""
        if body and body[0] == MAGIC_V2:
            if not self._accept_v2:
                self.malformed += 1  # a V2 frame at a V1-only receiver
                return None
            frame = _DECODE_MEMO.get(body)
            if frame is not None:  # only well-formed bodies are memoized
                self.frames_decoded += 1
                return frame
        try:
            frame = decode_frame_body(body)
        except WireError:
            self.malformed += 1
            return None
        self.frames_decoded += 1
        return frame

