"""Unified observability: metrics registry + protocol trace spans.

One subsystem, two runtimes: the discrete-event simulator shares a single
:class:`Observability` across all simulated processes (deterministic,
tick-stamped), while each live node owns one (wall-clock, exported as
Prometheus text and JSONL).  Protocol modules reach it through
``host.obs`` — part of the host API contract (:mod:`repro.hostapi`) — so
the instrumentation points are written once and feed both runtimes.

See DESIGN.md §5.16 and the "Observability" section of
``docs/architecture.md`` for the metric names and span taxonomy.
"""

from repro.obs.observability import (
    NULL_OBS,
    Observability,
    cache_stats_collector,
    get_obs,
    message_stats_collector,
    peer_stats_collector,
)
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
    diff_snapshots,
    merge_snapshots,
    metric_value,
    render_prometheus,
    render_table,
)
from repro.obs.spans import (
    SPAN_ADVERSARY_ACTION,
    SPAN_DETECTION,
    SPAN_EPOCH_ADVANCE,
    SPAN_EXPECTATION,
    SPAN_FAULT,
    SPAN_QUORUM_CHANGE,
    SPAN_SUSPICION_EDGE,
    SPAN_VIEW_CHANGE,
    Span,
    SpanSink,
)

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "SNAPSHOT_SCHEMA",
    "NULL_OBS",
    "Observability",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanSink",
    "SPAN_ADVERSARY_ACTION",
    "SPAN_DETECTION",
    "SPAN_EPOCH_ADVANCE",
    "SPAN_EXPECTATION",
    "SPAN_FAULT",
    "SPAN_QUORUM_CHANGE",
    "SPAN_SUSPICION_EDGE",
    "SPAN_VIEW_CHANGE",
    "cache_stats_collector",
    "diff_snapshots",
    "get_obs",
    "merge_snapshots",
    "message_stats_collector",
    "metric_value",
    "peer_stats_collector",
    "render_prometheus",
    "render_table",
]
