"""The per-run observability object: one registry + one span sink.

``Observability`` is what hosts expose as ``host.obs`` (part of the host
API, :mod:`repro.hostapi`).  The simulator shares a single instance
across every simulated process — metrics are labelled by ``pid``, and the
shared instance is what lets detection latency be measured from the fault
*injection* (host A crashes) to the *detection* (host B suspects A).  A
live node owns one instance per OS process; it only ever sees its own
faults, so cross-process detection latency is measured in the sim and the
net runtime reports the per-node metrics the parity test compares.

Disabled instances (``enabled=False``, and the :data:`NULL_OBS` fallback
for bare stub hosts in unit tests) turn every recording method into an
early return and refuse collector registration, so a metrics-off run does
no observability work at all — that, plus the collect-on-snapshot
discipline (:mod:`repro.obs.registry`), is the zero-overhead story.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.obs.registry import (
    BATCH_FRAME_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    ENCODE_SECONDS_BUCKETS,
    Collector,
    MetricsRegistry,
)
from repro.obs.spans import (
    DEFAULT_MAX_SPANS,
    SPAN_DETECTION,
    SPAN_FAULT,
    SpanSink,
)


class Observability:
    """Metrics + spans + fault bookkeeping for one run."""

    def __init__(self, enabled: bool = True, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.spans = SpanSink(max_spans=max_spans)
        # pid -> time its current fault was injected (cleared on recover).
        self._fault_at: Dict[int, float] = {}
        # (observer, target, fault_time) triples already measured, so a
        # repeated SUSPECTED publish never double-counts one detection.
        self._measured: Set[Tuple[int, int, float]] = set()

    # ------------------------------------------------------------- recording

    def add_collector(self, collector: Collector) -> None:
        """Register a snapshot-time collector (no-op when disabled)."""
        if self.enabled:
            self.registry.add_collector(collector)

    def span(self, name: str, pid: int, start: float,
             end: Optional[float] = None, **attrs: Any) -> None:
        if self.enabled:
            self.spans.record(name, pid, start, end=end, **attrs)

    def fault_injected(self, pid: int, now: float) -> None:
        """A host crashed: remember when, for detection-latency spans."""
        if not self.enabled:
            return
        self._fault_at[pid] = now
        self.spans.record(SPAN_FAULT, pid, now, what="crash")

    def fault_cleared(self, pid: int, now: float) -> None:
        """A host recovered: the fault window is over."""
        if not self.enabled:
            return
        self._fault_at.pop(pid, None)
        self.spans.record(SPAN_FAULT, pid, now, what="recover")

    def detection_observed(self, observer: int, target: int, now: float) -> None:
        """``observer`` just started suspecting ``target``.

        If a fault injection against ``target`` is on record, the elapsed
        time is one fault-to-suspicion latency sample — observed once per
        (observer, target, fault) into the fixed-bucket histogram and
        recorded as a :data:`SPAN_DETECTION` span covering the interval.
        Suspicions with no recorded fault (false alarms, Byzantine
        behaviour) are not latency samples and are skipped.
        """
        if not self.enabled:
            return
        fault_time = self._fault_at.get(target)
        if fault_time is None:
            return
        key = (observer, target, fault_time)
        if key in self._measured:
            return
        self._measured.add(key)
        latency = now - fault_time
        self.registry.histogram(
            "fd_detection_latency",
            help="time from fault injection to the observer suspecting the target",
            buckets=DEFAULT_TIME_BUCKETS,
            pid=observer,
        ).observe(latency)
        self.spans.record(
            SPAN_DETECTION, observer, fault_time, end=now,
            target=target, latency=latency,
        )

    # --------------------------------------------------------------- export

    def snapshot(self) -> Dict[str, Any]:
        """Collect and export the registry (see :mod:`repro.obs.registry`)."""
        return self.registry.snapshot()


#: Fallback for hosts built without observability (bare stub hosts in unit
#: tests); every method is a cheap no-op.
NULL_OBS = Observability(enabled=False)


def get_obs(host: Any) -> Observability:
    """The host's observability, or :data:`NULL_OBS` for bare stubs."""
    obs = getattr(host, "obs", None)
    return obs if obs is not None else NULL_OBS


# ----------------------------------------------------- standard collectors
# Adapters folding the pre-existing scattered counters into the registry.
# Each returns a collector closure suitable for ``obs.add_collector``.


def message_stats_collector(stats: Any) -> Collector:
    """Fold the simulator's :class:`~repro.sim.tracing.MessageStats` in."""

    def collect(registry: MetricsRegistry) -> None:
        for family, counter in (
            ("messages_sent_total", stats.sent_by_kind),
            ("messages_delivered_total", stats.delivered_by_kind),
            ("messages_dropped_total", stats.dropped_by_kind),
            ("messages_lost_total", stats.lost_by_kind),
        ):
            for kind, count in counter.items():
                registry.counter(family, help="simulated network traffic by kind",
                                 kind=kind).set(count)

    return collect


def peer_stats_collector(stats: Any, pid: int) -> Collector:
    """Fold a live node's :class:`~repro.net.peer.PeerStats` in."""

    def collect(registry: MetricsRegistry) -> None:
        for name, value in stats.as_dict().items():
            registry.counter(f"peer_{name}_total", help="live TCP peer statistics",
                             pid=pid).set(value)

    return collect


def wire_stats_collector(manager: Any, pid: int) -> Collector:
    """Fold a live node's codec/batching statistics in (duck-typed).

    ``manager`` is anything shaped like :class:`~repro.net.peer.PeerManager`
    (``wire_stats``, ``stats``, ``wire_version`` attributes); keeping the
    dependency duck-typed means the obs layer never imports the network
    stack.  Histogram state is *overwritten* from the manager's plain
    arrays — the same collect-on-snapshot discipline as every other
    collector, so the send hot path never touches a registry object.
    """

    def collect(registry: MetricsRegistry) -> None:
        stats = manager.stats
        ws = manager.wire_stats
        registry.counter(
            "net_bytes_sent_total", help="bytes written to peer sockets", pid=pid
        ).set(stats.bytes_sent)
        registry.counter(
            "net_bytes_received_total", help="bytes read from peer sockets", pid=pid
        ).set(stats.bytes_received)
        registry.gauge(
            "net_wire_version", help="configured wire codec version", pid=pid
        ).set(manager.wire_version)
        batch_hist = registry.histogram(
            "net_batch_frames", help="frames coalesced per outbound flush",
            buckets=BATCH_FRAME_BUCKETS, pid=pid,
        )
        batch_hist.counts = list(ws.batch_bucket_counts)
        batch_hist.sum = float(ws.batch_frames_sum)
        batch_hist.count = ws.batch_flushes
        encode_hist = registry.histogram(
            "wire_encode_seconds", help="time spent encoding one frame body",
            buckets=ENCODE_SECONDS_BUCKETS, pid=pid,
        )
        encode_hist.counts = list(ws.encode_bucket_counts)
        encode_hist.sum = ws.encode_seconds_sum
        encode_hist.count = ws.encode_count
        for version, count in sorted(ws.negotiated_versions.items()):
            registry.counter(
                "net_negotiated_connections_total",
                help="outbound handshakes by negotiated codec version",
                pid=pid, version=version,
            ).set(count)

    return collect


def cache_stats_collector(stats: Any) -> Collector:
    """Fold the result cache's :class:`~repro.analysis.cache.CacheStats` in."""

    def collect(registry: MetricsRegistry) -> None:
        registry.counter("cache_hits_total", help="result-cache hits").set(stats.hits)
        registry.counter("cache_misses_total", help="result-cache misses").set(stats.misses)
        registry.counter("cache_stores_total", help="result-cache stores").set(stats.stores)
        registry.counter("cache_corrupt_discarded_total",
                         help="corrupt cache entries discarded").set(stats.corrupt_discarded)
        registry.counter("cache_evictions_total",
                         help="cache entries evicted (LRU)").set(stats.evictions)
        registry.gauge("cache_hit_rate", help="hits / lookups").set(stats.hit_rate)

    return collect
