"""Runtime-agnostic metrics registry (counters, gauges, histograms).

One registry instance belongs to one run — a whole simulation (shared by
every simulated process) or one live node (one OS process).  Instruments
are identified by ``(name, labels)``; the same instrumentation point in a
protocol module therefore produces the same metric family on both
runtimes, labelled by ``pid``, which is what makes a sim snapshot and a
net snapshot directly comparable (the sim<->net metric parity test in
``tests/test_obs_parity.py`` does exactly that).

Two recording disciplines coexist:

- **inline**: rare protocol events (epoch advances, quorum changes,
  detections) call ``.inc()`` / ``.observe()`` at the moment they happen;
- **collect-on-snapshot**: hot-path code keeps its existing plain ``int``
  counters and registers a *collector* callback instead
  (:meth:`MetricsRegistry.add_collector`); collectors fold those ints
  into the registry only when a snapshot is taken.  The hot path pays
  nothing — the E21 benchmark constraint ("enabled but unexported must
  not regress") falls out of this design rather than being tuned for.

Histogram bucket boundaries are **fixed** (not adaptive) so a simulated
run (bucket unit = sim time) and a live run (bucket unit = wall seconds)
fill comparable shapes; both runtimes scale the heartbeat period, not the
buckets.

Snapshots are plain JSON-able dicts (schema ``repro.metrics/1``) and can
be rendered as a table, as Prometheus text exposition, diffed, or merged
across nodes (:func:`merge_snapshots` — how the cluster harness builds
one cluster-wide view from per-node registries).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

SNAPSHOT_SCHEMA = "repro.metrics/1"

#: Fixed boundaries for latency-style histograms.  The unit is "time"
#: (sim units or wall seconds); identical boundaries on both runtimes are
#: what keeps the exported shapes comparable.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Boundaries for the live runtime's wire instrumentation (E27).  They
#: live here — not in :mod:`repro.net` — so the obs layer never imports
#: the network stack (collectors are duck-typed over it instead).
BATCH_FRAME_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)
ENCODE_SECONDS_BUCKETS: Tuple[float, ...] = (
    2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 1e-3, 1e-2,
)

LabelItems = Tuple[Tuple[str, Any], ...]
Collector = Callable[["MetricsRegistry"], None]


def _label_key(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotone counter.  ``set()`` exists for collectors folding in an
    externally-maintained int; it must never be used to go backwards."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        self.value = value

    def to_entry(self) -> Dict[str, Any]:
        return {"name": self.name, "type": self.kind,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """Point-in-time value (current epoch, suspected-set size, ...)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def to_entry(self) -> Dict[str, Any]:
        return {"name": self.name, "type": self.kind,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-boundary histogram (cumulative on render, plain counts here)."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self, name: str, labels: Dict[str, Any],
        buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last slot = +Inf
        self.sum: float = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def to_entry(self) -> Dict[str, Any]:
        return {
            "name": self.name, "type": self.kind, "labels": dict(self.labels),
            "buckets": list(self.buckets), "counts": list(self.counts),
            "sum": self.sum, "count": self.count,
        }


class MetricsRegistry:
    """All instruments of one run, plus the snapshot-time collectors."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelItems], Any] = {}
        self._help: Dict[str, str] = {}
        self._collectors: List[Collector] = []

    # ------------------------------------------------------------ instruments

    def _get(self, factory, name: str, help: str, labels: Dict[str, Any]):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(name, labels)
            self._instruments[key] = instrument
            if help and name not in self._help:
                self._help[name] = help
        return instrument

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS, **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Histogram(name, labels, buckets)
            self._instruments[key] = instrument
            if help and name not in self._help:
                self._help[name] = help
        return instrument

    # ------------------------------------------------------------- collectors

    def add_collector(self, collector: Collector) -> None:
        """Register a snapshot-time callback folding external counters in."""
        self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            collector(self)

    # --------------------------------------------------------------- snapshot

    def snapshot(self) -> Dict[str, Any]:
        """Run collectors, then return a JSON-able view of every instrument."""
        self.collect()
        entries = [inst.to_entry() for inst in self._instruments.values()]
        entries.sort(key=_entry_sort_key)
        return {"schema": SNAPSHOT_SCHEMA, "metrics": entries,
                "help": dict(sorted(self._help.items()))}


# --------------------------------------------------------------- pure helpers
# Everything below operates on *snapshots* (plain dicts), so it works the
# same on an in-process registry, a JSONL record shipped by a node, or a
# file read back from disk.


def _entry_sort_key(entry: Dict[str, Any]) -> Tuple:
    return (entry["name"], tuple(sorted((k, str(v)) for k, v in entry["labels"].items())))


def metric_value(snapshot: Dict[str, Any], name: str, **labels: Any) -> Optional[float]:
    """The value of one counter/gauge in a snapshot, or ``None`` if absent."""
    for entry in snapshot.get("metrics", ()):
        if entry["name"] == name and entry["labels"] == labels:
            return entry.get("value")
    return None


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Union of several snapshots (e.g. one per cluster node).

    Entries with identical ``(name, labels)`` are combined: counters and
    histograms add, gauges keep the last writer (per-node gauges carry a
    ``pid`` label, so in practice gauge collisions do not occur).
    """
    merged: Dict[Tuple[str, LabelItems], Dict[str, Any]] = {}
    help_text: Dict[str, str] = {}
    for snapshot in snapshots:
        help_text.update(snapshot.get("help", {}))
        for entry in snapshot.get("metrics", ()):
            key = (entry["name"], _label_key(entry["labels"]))
            held = merged.get(key)
            if held is None:
                merged[key] = json_copy(entry)
            elif entry["type"] == "counter":
                held["value"] += entry["value"]
            elif entry["type"] == "histogram":
                held["counts"] = [a + b for a, b in zip(held["counts"], entry["counts"])]
                held["sum"] += entry["sum"]
                held["count"] += entry["count"]
            else:  # gauge: last writer wins
                held["value"] = entry["value"]
    entries = sorted(merged.values(), key=_entry_sort_key)
    return {"schema": SNAPSHOT_SCHEMA, "metrics": entries,
            "help": dict(sorted(help_text.items()))}


def json_copy(entry: Dict[str, Any]) -> Dict[str, Any]:
    """Deep-enough copy of a snapshot entry (lists and dicts one level in)."""
    copied = dict(entry)
    copied["labels"] = dict(entry["labels"])
    if "counts" in copied:
        copied["counts"] = list(copied["counts"])
        copied["buckets"] = list(copied["buckets"])
    return copied


def diff_snapshots(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """``after - before`` for counters/histograms; gauges keep the after value.

    Entries present only in ``after`` diff against zero; entries that
    vanished are dropped (an instrument never disappears mid-run, so this
    only happens when diffing unrelated runs).
    """
    old = {
        (e["name"], _label_key(e["labels"])): e for e in before.get("metrics", ())
    }
    entries: List[Dict[str, Any]] = []
    for entry in after.get("metrics", ()):
        key = (entry["name"], _label_key(entry["labels"]))
        prior = old.get(key)
        diffed = json_copy(entry)
        if prior is not None and entry["type"] == "counter":
            diffed["value"] = entry["value"] - prior["value"]
        elif prior is not None and entry["type"] == "histogram":
            diffed["counts"] = [a - b for a, b in zip(entry["counts"], prior["counts"])]
            diffed["sum"] = entry["sum"] - prior["sum"]
            diffed["count"] = entry["count"] - prior["count"]
        entries.append(diffed)
    return {"schema": SNAPSHOT_SCHEMA, "metrics": entries,
            "help": dict(after.get("help", {}))}


def _format_labels(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Prometheus text exposition (format version 0.0.4) of a snapshot."""
    help_text = snapshot.get("help", {})
    lines: List[str] = []
    seen_headers = set()
    for entry in snapshot.get("metrics", ()):
        name = entry["name"]
        if name not in seen_headers:
            seen_headers.add(name)
            if name in help_text:
                lines.append(f"# HELP {name} {help_text[name]}")
            lines.append(f"# TYPE {name} {entry['type']}")
        labels = entry["labels"]
        if entry["type"] == "histogram":
            cumulative = 0
            for bound, count in zip(entry["buckets"], entry["counts"]):
                cumulative += count
                bucket_labels = dict(labels, le=format(bound, "g"))
                lines.append(f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}")
            lines.append(
                f"{name}_bucket{_format_labels(dict(labels, le='+Inf'))} {entry['count']}"
            )
            lines.append(f"{name}_sum{_format_labels(labels)} {format(entry['sum'], 'g')}")
            lines.append(f"{name}_count{_format_labels(labels)} {entry['count']}")
        else:
            lines.append(f"{name}{_format_labels(labels)} {format(entry['value'], 'g')}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_table(snapshot: Dict[str, Any]) -> str:
    """Human-readable table of a snapshot (histograms as count/sum)."""
    from repro.analysis.report import Table

    table = Table(["metric", "labels", "type", "value"], title="metrics snapshot")
    for entry in snapshot.get("metrics", ()):
        labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items())) or "-"
        if entry["type"] == "histogram":
            value = f"count={entry['count']} sum={round(entry['sum'], 6)}"
        else:
            value = entry["value"]
        table.add_row(entry["name"], labels, entry["type"], value)
    return table.render()
