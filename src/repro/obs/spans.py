"""Protocol-level trace spans.

Where metrics answer "how many / how large", spans answer "what happened
and when": each span is one protocol-significant moment (or interval)
with structured attributes — an epoch advance, a quorum change, a
suspicion edge entering the matrix, an expectation timing out, a
detection completing.  Spans are stamped with the host's clock, so sim
spans carry deterministic tick times and net spans carry wall seconds
since node start; the *taxonomy* is identical on both runtimes.

The sink is a bounded ring: once ``max_spans`` is reached, new spans are
counted as dropped instead of stored — observability must never become
the memory leak it is meant to find.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

# ---------------------------------------------------------------- taxonomy
#: Epoch advanced (attrs: ``epoch`` — the new value).
SPAN_EPOCH_ADVANCE = "qs.epoch_advance"
#: A new quorum was issued (attrs: ``epoch``, ``quorum``).
SPAN_QUORUM_CHANGE = "qs.quorum_change"
#: A suspicion-matrix entry increased (attrs: ``suspector``, ``suspectee``,
#: ``stamp`` — the epoch written).
SPAN_SUSPICION_EDGE = "matrix.suspicion_edge"
#: An expectation left the happy path (attrs: ``source``, ``label``,
#: ``outcome`` — ``timeout`` or ``fulfilled_late``; ``start`` is issue time).
SPAN_EXPECTATION = "fd.expectation"
#: Fault-to-suspicion latency completed (attrs: ``target``, ``latency``).
SPAN_DETECTION = "fd.detection"
#: A host crashed or recovered (attrs: ``what`` — ``crash``/``recover``).
SPAN_FAULT = "host.fault"
#: XPaxos changed views (attrs: ``view``).
SPAN_VIEW_CHANGE = "xp.view_change"
#: The adversary engine actuated one attack primitive (attrs:
#: ``strategy``, ``action``, plus the action's targets — e.g.
#: ``suspector``/``victim`` for a false suspicion).
SPAN_ADVERSARY_ACTION = "adv.action"

#: Default sink capacity; generous for any in-tree scenario, small enough
#: that a runaway epoch-inflation run cannot exhaust memory through spans.
DEFAULT_MAX_SPANS = 65536


@dataclass(slots=True)
class Span:
    """One recorded span.  ``end`` equals ``start`` for instant events."""

    name: str
    pid: int
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_record(self) -> Dict[str, Any]:
        """JSON-able form (for the node JSONL stream and the CLI)."""
        return {"span": self.name, "pid": self.pid,
                "start": self.start, "end": self.end, **self.attrs}


class SpanSink:
    """Bounded collector of spans for one run."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0

    def record(
        self, name: str, pid: int, start: float,
        end: Optional[float] = None, **attrs: Any,
    ) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(Span(name, pid, start, start if end is None else end, attrs))

    def by_name(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def to_records(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        spans = self.spans if limit is None else self.spans[-limit:]
        return [span.to_record() for span in spans]

    def __len__(self) -> int:
        return len(self.spans)
