"""Protocol-neutral interface between ``repro.core`` and BFT backends (E29).

The paper positions Quorum Selection as a module *any* leader-centric
BFT protocol can consume.  This package makes that boundary executable:

- :mod:`repro.protocol.policy` — the quorum policies (enumeration vs.
  QS-driven selection) shared by every backend.  A protocol's decision
  number (XPaxos *view*, IBFT *round*) maps to a quorum through the same
  public enumeration, so two backends fed the same QS output adopt the
  same quorum.
- :mod:`repro.protocol.backend` — the :class:`ProtocolBackend` contract
  (replica construction, observation, message-cost accounting) and the
  registry behind every ``--protocol xpaxos|ibft`` switch.
- :mod:`repro.protocol.system` — a backend-parametrized twin of
  :func:`repro.xpaxos.system.build_system` used by the conformance
  suite and the head-to-head benchmark.

Backends register lazily: importing this package never imports a
protocol implementation, so ``repro.core`` stays free of protocol
dependencies while ``repro.xpaxos``/``repro.ibft`` may freely import
this package.
"""

from repro.protocol.backend import (
    BACKEND_NAMES,
    ProtocolBackend,
    ReplicaStatus,
    backend_names,
    get_backend,
    register_backend,
)
from repro.protocol.policy import EnumerationPolicy, QuorumPolicy, SelectionPolicy

__all__ = [
    "BACKEND_NAMES",
    "ProtocolBackend",
    "ReplicaStatus",
    "backend_names",
    "get_backend",
    "register_backend",
    "EnumerationPolicy",
    "QuorumPolicy",
    "SelectionPolicy",
]
