"""The :class:`ProtocolBackend` contract and registry (E29 tentpole).

A backend packages everything the runtimes need to run one BFT protocol
on top of the shared substrate — the QS module, suspicion matrix,
failure detector, crypto, and both host runtimes stay protocol-free:

- **quorum adoption**: the backend's replica consumes ``<QUORUM, Q>``
  events through a :class:`~repro.protocol.policy.QuorumPolicy`, mapping
  QS output to its own decision numbers (views/rounds) over the shared
  enumeration;
- **epoch/decision hooks**: :meth:`ProtocolBackend.observe` reduces a
  replica to a :class:`ReplicaStatus` so the node runtime, cluster
  harness, and benchmarks read one shape regardless of protocol;
- **expectation issuing**: each backend registers its FD expectations
  under its own group (:attr:`ProtocolBackend.fd_group`) so the
  detector can cancel exactly one protocol's expectations on a
  decision change;
- **message-cost accounting**: :attr:`ProtocolBackend.replica_kinds`
  names the inter-replica wire kinds, and
  :meth:`ProtocolBackend.message_costs` reduces a
  :class:`~repro.sim.tracing.MessageStats` to per-kind and per-decision
  counts — the currency of the paper's ~1/3 and ~1/2 savings claims.

Backends self-register at import time via :func:`register_backend`;
:func:`get_backend` lazily imports the built-in modules so this package
never depends on a protocol implementation.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional, Tuple

from repro.util.errors import ConfigurationError

#: Built-in backends, resolved lazily on first :func:`get_backend` call.
_BUILTIN_MODULES: Dict[str, str] = {
    "xpaxos": "repro.xpaxos.backend",
    "ibft": "repro.ibft.backend",
}

_REGISTRY: Dict[str, "ProtocolBackend"] = {}

#: The stable names accepted by every ``--protocol`` switch.
BACKEND_NAMES: Tuple[str, ...] = tuple(sorted(_BUILTIN_MODULES))


@dataclass(frozen=True)
class ReplicaStatus:
    """One replica reduced to the protocol-neutral observable facts.

    ``decision_number`` is the protocol's own counter — XPaxos view,
    IBFT round — and always maps to ``quorum``/``leader`` through the
    shared enumeration, so equal decision numbers mean equal quorums
    across backends.
    """

    protocol: str
    decision_number: int
    quorum: FrozenSet[int]
    leader: int
    status: str
    commits: int
    decision_changes: int
    executed: int
    checkpoints: int


class ProtocolBackend:
    """One BFT protocol behind the shared QS/FD/crypto substrate."""

    #: Registry name (the ``--protocol`` value).
    name: str = "?"
    #: The protocol's decision-number vocabulary ("view" or "round").
    decision_term: str = "view"
    #: FD expectation group used by this backend's replicas.
    fd_group: str = "?"
    #: Inter-replica wire kinds (client-facing kinds excluded).
    replica_kinds: Tuple[str, ...] = ()

    # ------------------------------------------------------------ construction

    def build_replica(
        self,
        host: Any,
        n: int,
        f: int,
        qs_module: Optional[Any] = None,
        *,
        batch_size: int = 1,
        batch_window: float = 0.0,
        checkpoint_interval: Optional[int] = None,
        state_machine: Optional[Any] = None,
    ) -> Any:
        """Create (and ``host.add_module``) this protocol's replica.

        ``qs_module`` present selects QS-driven operation
        (:class:`~repro.protocol.policy.SelectionPolicy`); absent, the
        backend falls back to its native enumeration behaviour.
        """
        raise NotImplementedError

    # ------------------------------------------------------------- observation

    def observe(self, replica: Any) -> ReplicaStatus:
        """Reduce a replica built by this backend to a :class:`ReplicaStatus`."""
        raise NotImplementedError

    # ------------------------------------------------------------- accounting

    def message_costs(self, stats: Any, decisions: int) -> Dict[str, Any]:
        """Per-kind and per-decision message counts from a ``MessageStats``.

        ``decisions`` is the number of committed slots the run produced;
        the per-decision quotient is the paper's inter-replica cost
        metric for head-to-head backend comparison.
        """
        by_kind = {
            kind: stats.total_sent(kinds=(kind,)) for kind in self.replica_kinds
        }
        total = sum(by_kind.values())
        return {
            "protocol": self.name,
            "by_kind": by_kind,
            "total": total,
            "decisions": decisions,
            "per_decision": (total / decisions) if decisions else None,
        }

    def analytic_messages_per_decision(self, quorum_size: int) -> int:
        """Closed-form normal-case messages for one decision in a quorum.

        Used by the benchmark to state the active-quorum savings against
        the same protocol run over all ``n`` replicas.
        """
        raise NotImplementedError


def register_backend(backend: ProtocolBackend) -> ProtocolBackend:
    """Add a backend to the registry (idempotent per name); returns it."""
    if not backend.name or backend.name == "?":
        raise ConfigurationError("backend must carry a stable name")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> ProtocolBackend:
    """The registered backend called ``name`` (built-ins import lazily)."""
    backend = _REGISTRY.get(name)
    if backend is not None:
        return backend
    module = _BUILTIN_MODULES.get(name)
    if module is not None:
        importlib.import_module(module)  # module registers itself on import
        backend = _REGISTRY.get(name)
        if backend is not None:
            return backend
    raise ConfigurationError(
        f"unknown protocol backend {name!r}; known: {', '.join(backend_names())}"
    )


def backend_names() -> Tuple[str, ...]:
    """Every selectable backend name (registered plus built-in)."""
    return tuple(sorted(set(_REGISTRY) | set(_BUILTIN_MODULES)))
