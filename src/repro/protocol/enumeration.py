"""The decision-number <-> quorum mapping (Section V-B), protocol-neutral.

Every leader-centric backend numbers its decisions (XPaxos *views*,
IBFT *rounds*) and runs each inside a fixed quorum.  XPaxos enumerates
all ``C(n, f)`` quorums of size ``q = n - f`` in a fixed order and moves
"to the next quorum in the enumeration, using round robin
if the list is exhausted".  We use lexicographic order of sorted id
tuples, the same total order Quorum Selection uses, and combinatorial
(un)ranking so view numbers can grow without materializing the list.

View ``v`` (0-based) maps to the quorum with lexicographic rank
``v mod C(n, f)``; the view's leader is the quorum's lowest id (Fig. 2).
A ``<QUORUM, Q>`` event maps back to the smallest view ``>= v_min`` whose
quorum is ``Q`` — installing it "suspects all quorums ordered before Q".
"""

from __future__ import annotations

from math import comb
from typing import FrozenSet, Iterable, Tuple

from repro.util.errors import ConfigurationError


def total_quorums(n: int, q: int) -> int:
    """``C(n, q)`` — the length of the enumeration cycle."""
    if not 1 <= q <= n:
        raise ConfigurationError(f"invalid quorum size q={q} for n={n}")
    return comb(n, q)


def quorum_for_view(view: int, n: int, q: int) -> FrozenSet[int]:
    """Unrank: the quorum assigned to (0-based) ``view``."""
    if view < 0:
        raise ConfigurationError(f"view must be >= 0, got {view}")
    rank = view % total_quorums(n, q)
    members = []
    next_id = 1
    remaining = q
    while remaining > 0:
        # Count of q-subsets starting with next_id among ids >= next_id.
        with_next = comb(n - next_id, remaining - 1)
        if rank < with_next:
            members.append(next_id)
            remaining -= 1
        else:
            rank -= with_next
        next_id += 1
    return frozenset(members)


def rank_of_quorum(quorum: Iterable[int], n: int, q: int) -> int:
    """Rank of a quorum in the lexicographic enumeration (0-based)."""
    members: Tuple[int, ...] = tuple(sorted(quorum))
    if len(members) != q or len(set(members)) != q:
        raise ConfigurationError(f"quorum must have exactly q={q} distinct members")
    if members[0] < 1 or members[-1] > n:
        raise ConfigurationError(f"quorum members out of range 1..{n}")
    rank = 0
    previous = 0
    for position, member in enumerate(members):
        for skipped in range(previous + 1, member):
            rank += comb(n - skipped, q - position - 1)
        previous = member
    return rank


def view_for_quorum(quorum: Iterable[int], n: int, q: int, min_view: int) -> int:
    """Smallest view ``>= min_view`` whose assigned quorum is ``quorum``."""
    cycle = total_quorums(n, q)
    rank = rank_of_quorum(quorum, n, q)
    if rank >= min_view % cycle:
        return (min_view // cycle) * cycle + rank
    return (min_view // cycle + 1) * cycle + rank


def leader_of_view(view: int, n: int, q: int) -> int:
    """The view's leader: lowest id in the view's quorum (Figure 2)."""
    return min(quorum_for_view(view, n, q))
