"""Quorum policies: how a replica maps decisions to quorums (shared).

This is the protocol-neutral half of the contract the paper describes
in Section V-B: a BFT protocol exposes a totally ordered sequence of
*decision numbers* (XPaxos calls them views, IBFT calls them rounds),
each running a fixed quorum from the public enumeration, and the Quorum
Selection module steers which decision number to jump to.

:class:`EnumerationPolicy` is the baseline — on any suspicion touching
the active quorum, try the next decision number (next quorum in the
enumeration).  :class:`SelectionPolicy` is this paper's contribution
wired in — decision numbers are driven by ``<QUORUM, Q>`` events from
the Quorum Selection module, jumping directly to the (smallest future)
decision number whose quorum is ``Q``.

Because both backends consult the *same* policy classes over the *same*
enumeration, identical QS output makes them adopt identical quorums —
the property the differential suite pins.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.protocol.enumeration import quorum_for_view, view_for_quorum


class QuorumPolicy:
    """Strategy interface consulted by every protocol backend's replica."""

    def __init__(self, n: int, f: int) -> None:
        self.n = n
        self.f = f
        self.q = n - f

    def quorum_of(self, view: int) -> FrozenSet[int]:
        return quorum_for_view(view, self.n, self.q)

    def leader_of(self, view: int) -> int:
        return min(self.quorum_of(view))

    def next_view_on_suspicion(self, current_view: int, suspected: FrozenSet[int]) -> Optional[int]:
        """View to move to when the FD suspects ``suspected`` (or None)."""
        raise NotImplementedError

    def view_for_selected_quorum(
        self, quorum: FrozenSet[int], current_view: int
    ) -> Optional[int]:
        """View to move to when Quorum Selection outputs ``quorum``."""
        raise NotImplementedError


class EnumerationPolicy(QuorumPolicy):
    """Original XPaxos: round-robin through all ``C(n, f)`` quorums."""

    def next_view_on_suspicion(self, current_view, suspected):
        if suspected & self.quorum_of(current_view):
            return current_view + 1
        return None

    def view_for_selected_quorum(self, quorum, current_view):
        return None  # enumeration mode ignores Quorum Selection


class SelectionPolicy(QuorumPolicy):
    """Quorum-Selection-driven decisions (Section V-B).

    Suspicions alone do not move the decision number — the Quorum
    Selection module aggregates them (including other processes'
    suspicions, via its eventually consistent matrix) and its
    ``<QUORUM, Q>`` output picks the target directly, skipping every
    quorum ordered before ``Q``.
    """

    def next_view_on_suspicion(self, current_view, suspected):
        return None  # wait for the QS module's verdict

    def view_for_selected_quorum(self, quorum, current_view):
        if quorum == self.quorum_of(current_view):
            return None
        return view_for_quorum(quorum, self.n, self.q, current_view + 1)
