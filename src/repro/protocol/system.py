"""Backend-parametrized system assembly (conformance + benchmark harness).

A protocol-neutral twin of :func:`repro.xpaxos.system.build_system`: the
same per-replica substrate (failure detector, heartbeats, Quorum
Selection) and the same client pool, but the replica layer comes from a
named :class:`~repro.protocol.backend.ProtocolBackend`.  The conformance
suite runs this builder once per backend; the head-to-head benchmark
compares the two resulting systems message for message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.quorum_selection import QuorumSelectionModule
from repro.failures.adversary import Adversary
from repro.fd.detector import FailureDetector
from repro.fd.heartbeat import HeartbeatModule
from repro.fd.timers import TimeoutPolicy
from repro.protocol.backend import ProtocolBackend, ReplicaStatus, get_backend
from repro.sim.runtime import Simulation, SimulationConfig
from repro.util.errors import ConfigurationError
from repro.xpaxos.client import XPaxosClient


@dataclass
class ProtocolSystem:
    """Handles to every component of one assembled backend system."""

    sim: Simulation
    n: int
    f: int
    backend: ProtocolBackend
    replicas: Dict[int, Any]
    clients: Dict[int, XPaxosClient]
    qs_modules: Dict[int, QuorumSelectionModule] = field(default_factory=dict)
    adversary: Optional[Adversary] = None

    @property
    def replica_pids(self) -> List[int]:
        return sorted(self.replicas)

    def correct_replicas(self) -> List[Any]:
        faulty = self.adversary.faulty if self.adversary else set()
        return [replica for pid, replica in sorted(self.replicas.items()) if pid not in faulty]

    def run(self, until: float) -> None:
        self.sim.run_until(until)

    # ------------------------------------------------------------ diagnostics

    def observe(self, pid: int) -> ReplicaStatus:
        return self.backend.observe(self.replicas[pid])

    def total_completed(self) -> int:
        return sum(len(client.completed) for client in self.clients.values())

    def total_commits(self) -> int:
        """Decided slots, by the most-advanced correct replica."""
        return max(
            (self.backend.observe(r).commits for r in self.correct_replicas()),
            default=0,
        )

    def histories_consistent(self) -> bool:
        """Safety: executed histories of correct replicas are prefix-ordered."""
        histories = [
            tuple(request.canonical() for request in replica.executed)
            for replica in self.correct_replicas()
        ]
        histories.sort(key=len)
        for shorter, longer in zip(histories, histories[1:]):
            if longer[: len(shorter)] != shorter:
                return False
        return True

    def inter_replica_messages(self) -> int:
        return self.sim.stats.sent_between(self.replica_pids)

    def protocol_message_costs(self) -> Dict[str, Any]:
        """Per-kind / per-decision protocol message counts (accounting hook)."""
        return self.backend.message_costs(self.sim.stats, self.total_commits())


def build_backend_system(
    protocol: str,
    n: int,
    f: int,
    clients: int = 1,
    client_ops: Optional[Sequence[Sequence[Tuple[Any, ...]]]] = None,
    seed: int = 1,
    gst: float = 0.0,
    delta: float = 1.0,
    pre_gst_max: float = 10.0,
    heartbeats: bool = True,
    heartbeat_period: float = 4.0,
    fd_base_timeout: float = 8.0,
    client_retry: float = 30.0,
    client_think_time: float = 0.0,
    batch_size: int = 1,
    batch_window: float = 0.0,
    checkpoint_interval: Optional[int] = None,
    state_machine_factory=None,
    chaos=None,
    max_steps: int = 2_000_000,
) -> ProtocolSystem:
    """Build a ready-to-run system for the named backend.

    Always QS-driven (``SelectionPolicy``): the point of this builder is
    exercising the shared quorum-consumption contract.  ``client_ops``
    is one op-list per client; defaults to 20 puts each.
    """
    backend = get_backend(protocol)
    if clients < 0:
        raise ConfigurationError("clients must be >= 0")
    sim = Simulation(
        SimulationConfig(
            n=n + clients, seed=seed, gst=gst, delta=delta,
            pre_gst_max=pre_gst_max, fifo=True, max_steps=max_steps,
            chaos=chaos,
        )
    )
    replicas: Dict[int, Any] = {}
    qs_modules: Dict[int, QuorumSelectionModule] = {}
    for pid in range(1, n + 1):
        host = sim.host(pid)
        FailureDetector(host, TimeoutPolicy(base_timeout=fd_base_timeout))
        if heartbeats:
            host.add_module(HeartbeatModule(host, n=n, period=heartbeat_period))
        qs_module = host.add_module(QuorumSelectionModule(host, n=n, f=f))
        qs_modules[pid] = qs_module
        replicas[pid] = backend.build_replica(
            host, n, f, qs_module,
            batch_size=batch_size, batch_window=batch_window,
            checkpoint_interval=checkpoint_interval,
            state_machine=(
                state_machine_factory() if state_machine_factory else None
            ),
        )
    client_modules: Dict[int, XPaxosClient] = {}
    for index in range(clients):
        pid = n + 1 + index
        host = sim.host(pid)
        if client_ops is not None:
            ops = list(client_ops[index])
        else:
            ops = [("put", f"key-{index}-{i}", i) for i in range(20)]
        client_modules[pid] = host.add_module(
            XPaxosClient(
                host, n=n, f=f, ops=ops,
                retry_timeout=client_retry, think_time=client_think_time,
            )
        )
    adversary = Adversary(sim, f_max=f)
    return ProtocolSystem(
        sim=sim, n=n, f=f, backend=backend, replicas=replicas,
        clients=client_modules, qs_modules=qs_modules, adversary=adversary,
    )
