"""Client-facing replicated key-value service on top of XPaxos+QS (E26).

The package layers a real workload over the consensus stack:

- :mod:`repro.service.kv` — the replicated state machine
  (GET/PUT/DEL/CAS) with a per-client at-most-once dedup table that is
  checkpointed with the log;
- :mod:`repro.service.client` — the client library: client-id+sequence
  request ids, exponential-backoff retry, redirect-to-leader learned
  from replies;
- :mod:`repro.service.loadgen` — open- and closed-loop load generation
  with zipfian key choice, phase-windowed throughput/latency stats, and
  the deterministic-sim driver;
- :mod:`repro.service.live` — the asyncio gateway that multiplexes many
  logical clients over one socket endpoint against a live cluster.
"""

from repro.service.kv import ServiceKVStore
from repro.service.client import ServiceClient
from repro.service.loadgen import (
    LoadGenerator,
    Workload,
    percentile,
    run_sim_load,
    summarize_phase,
)

__all__ = [
    "ServiceKVStore",
    "ServiceClient",
    "LoadGenerator",
    "Workload",
    "percentile",
    "run_sim_load",
    "summarize_phase",
]
