"""Service client library: request ids, backoff retry, leader redirect.

A :class:`ServiceClient` is one *logical* client: it stamps every
operation with ``(client_id, sequence)``, keeps exactly one request
outstanding (FIFO queue behind it), sends to the replica it believes
leads, and accepts a result once ``f + 1`` replicas report the same
value for the same sequence.  On timeout it retransmits as a broadcast
with exponential backoff and learns the current view — hence the leader
— from the replies it gets back.

It runs against the host-API contract (see :mod:`repro.hostapi`), so the
same class drives the deterministic simulator (one
:class:`~repro.sim.process.ProcessHost` per client) and the live
runtime, where a gateway host multiplexes many logical clients over one
socket endpoint (``subscribe=False``; the gateway routes replies by
``reply.client`` — see :mod:`repro.service.live`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, NamedTuple, Optional, Tuple

from repro.crypto.authenticator import SignedMessage
from repro.sim.events import TimerHandle
from repro.sim.process import Module
from repro.util.ids import ProcessId
from repro.xpaxos.enumeration import leader_of_view
from repro.xpaxos.messages import KIND_REPLY, KIND_REQUEST, ClientRequest, ReplyPayload

#: Completion callback: (op, result, latency).
CompletionCallback = Callable[[Tuple[Any, ...], Any, float], None]


class Completion(NamedTuple):
    """One completed request, as recorded by :attr:`ServiceClient.completed`.

    A named record rather than a bare tuple so phase-window slicing and
    cross-shard merging key off field names (``completed_at``,
    ``latency``) instead of positional indices.  Field order is the
    historical tuple layout, so positional consumers keep working.
    """

    sequence: int
    op: Tuple[Any, ...]
    result: Any
    latency: float
    completed_at: float
    view: int


class ServiceClient(Module):
    """One logical client of the replicated KV service."""

    def __init__(
        self,
        host,
        n: int,
        f: int,
        client_id: Optional[int] = None,
        authenticator=None,
        retry_timeout: float = 2.0,
        backoff: float = 2.0,
        max_retry_timeout: float = 30.0,
        subscribe: bool = True,
    ) -> None:
        super().__init__(host)
        self.n = n
        self.f = f
        self.client_id = host.pid if client_id is None else client_id
        self.authenticator = authenticator if authenticator is not None else host.authenticator
        self.retry_timeout = retry_timeout
        self.backoff = backoff
        self.max_retry_timeout = max_retry_timeout
        self._subscribe = subscribe
        self.believed_view = 0
        self.next_sequence = 0
        self.current: Optional[ClientRequest] = None
        self._signed_current: Optional[SignedMessage] = None
        self._current_callback: Optional[CompletionCallback] = None
        self._current_timeout = retry_timeout
        self._queue: Deque[Tuple[Tuple[Any, ...], Optional[CompletionCallback]]] = deque()
        self._votes: Dict[Any, set] = {}
        self._submitted_at = 0.0
        self._retry_timer: Optional[TimerHandle] = None
        #: Retries of the *current* request (resets on dispatch).
        self._retry_round = 0
        #: True once any valid reply has confirmed a serving view — the
        #: leader learned from it is worth one targeted retry before the
        #: n-fold broadcast escalation.
        self._leader_learned = False
        self.started_at = 0.0
        self.retries = 0
        self.completed: List[Completion] = []

    def start(self) -> None:
        self.started_at = self.host.now
        if self._subscribe:
            self.host.subscribe(KIND_REPLY, self.on_reply)

    # --------------------------------------------------------------- sending

    @property
    def idle(self) -> bool:
        return self.current is None and not self._queue

    @property
    def queued(self) -> int:
        return len(self._queue)

    def submit(self, op: Tuple[Any, ...], callback: Optional[CompletionCallback] = None) -> None:
        """Enqueue one operation; dispatches immediately when idle."""
        self._queue.append((tuple(op), callback))
        if self.current is None:
            self._dispatch_next()

    def _dispatch_next(self) -> None:
        self._cancel_retry()
        if not self._queue:
            self.current = None
            self._signed_current = None
            self._current_callback = None
            return
        op, callback = self._queue.popleft()
        self.current = ClientRequest(
            client=self.client_id, sequence=self.next_sequence, op=op
        )
        self.next_sequence += 1
        self._signed_current = self.authenticator.sign(self.current)
        self._current_callback = callback
        self._current_timeout = self.retry_timeout
        self._retry_round = 0
        self._votes = {}
        self._submitted_at = self.host.now
        self._send_current(broadcast=False)
        self._arm_retry()

    def _send_current(self, broadcast: bool) -> None:
        if self._signed_current is None:
            return
        if broadcast:
            for replica in range(1, self.n + 1):
                self.host.send(replica, KIND_REQUEST, self._signed_current)
        else:
            leader = leader_of_view(self.believed_view, self.n, self.n - self.f)
            self.host.send(leader, KIND_REQUEST, self._signed_current)

    def _arm_retry(self) -> None:
        self._cancel_retry()
        sequence = self.current.sequence if self.current is not None else None

        def retry() -> None:
            if self.current is None or self.current.sequence != sequence:
                return
            self.retries += 1
            # A leader learned from real replies earns one targeted
            # retry before escalating: broadcast-on-first-retry is n x
            # request amplification exactly when the system is loaded
            # (the usual reason a reply is late).  An unconfirmed view
            # (no reply ever seen) escalates immediately.
            leader_first = self._leader_learned and self._retry_round == 0
            self._retry_round += 1
            self.host.log.append(
                self.host.now, self.pid, "svc.client.retry",
                client=self.client_id, seq=sequence,
                broadcast=not leader_first,
            )
            self._send_current(broadcast=not leader_first)
            self._current_timeout = min(
                self._current_timeout * self.backoff, self.max_retry_timeout
            )
            self._arm_retry()

        self._retry_timer = self.host.set_timer(
            self._current_timeout, retry, label=f"svc-retry@c{self.client_id}"
        )

    def _cancel_retry(self) -> None:
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None

    # ------------------------------------------------------------- receiving

    def on_reply(self, kind: str, payload: Any, src: ProcessId) -> None:
        """Handle one (possibly gateway-routed) signed reply."""
        if not isinstance(payload, SignedMessage) or not self.authenticator.verify(payload):
            return
        reply = payload.payload
        if not isinstance(reply, ReplyPayload) or reply.client != self.client_id:
            return
        if reply.replica != payload.signer:
            return
        self._leader_learned = True
        if reply.view > self.believed_view:
            self.believed_view = reply.view
        if self.current is None or reply.sequence != self.current.sequence:
            return
        try:
            votes = self._votes.setdefault(reply.result, set())
        except TypeError:
            return  # unhashable garbage result from a Byzantine replica
        votes.add(reply.replica)
        if len(votes) < self.f + 1:
            return
        latency = self.host.now - self._submitted_at
        op = self.current.op
        self.completed.append(
            Completion(self.current.sequence, op, reply.result, latency,
                       self.host.now, reply.view)
        )
        callback = self._current_callback
        self.current = None
        self._signed_current = None
        self._current_callback = None
        self._cancel_retry()
        # Dispatch before the callback: a callback that submits (the
        # closed-loop feeder) must enqueue behind the next dispatch, not
        # race a second _dispatch_next against it.
        self._dispatch_next()
        if callback is not None:
            callback(op, reply.result, latency)

    # ----------------------------------------------------------- diagnostics

    def mean_latency(self) -> float:
        if not self.completed:
            return 0.0
        return sum(entry.latency for entry in self.completed) / len(self.completed)

    def throughput(self, until: Optional[float] = None) -> float:
        """Completed requests per time unit since this client started."""
        horizon = until if until is not None else self.host.now
        elapsed = horizon - self.started_at
        if elapsed <= 0:
            return 0.0
        count = sum(1 for entry in self.completed if entry.completed_at <= horizon)
        return count / elapsed
