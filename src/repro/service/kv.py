"""The replicated key-value service state machine.

Extends the plain :class:`~repro.xpaxos.state_machine.KeyValueStore`
vocabulary with compare-and-swap and — the part that makes it a
*service* — per-client **at-most-once** execution.  Clients stamp every
request with ``(client_id, sequence)`` and submit one request at a time,
so a replica can dedup with a compact per-client last-applied table
instead of an ever-growing set of request ids: a re-proposed retry of
the last request returns the cached result; anything older is refused as
stale.  The table is part of the state (it feeds ``state_digest`` and
``snapshot_items``), so it survives checkpoint/state-transfer along with
the data — a replica that catches up via snapshot still refuses the
duplicates the snapshot already covers.

Replicas call :meth:`ServiceKVStore.apply_request` when they know the
request id (see ``XPaxosReplica._execute_one``); bare :meth:`apply`
remains for anonymous operations (view-change noop filler).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.crypto.digests import digest
from repro.xpaxos.state_machine import StateMachine

#: Result tag for a request older than the client's last applied one.
STALE = "stale"


class ServiceKVStore(StateMachine):
    """Deterministic KV service state machine with at-most-once dedup.

    Operations (tuples, so they canonically encode):

    - ``("get", key)`` -> value or ``None``
    - ``("put", key, value)`` -> previous value or ``None``
    - ``("del", key)`` -> deleted value or ``None``
    - ``("cas", key, expected, new)`` -> ``("ok", previous)`` when the
      current value equals ``expected`` (``None`` matches an absent
      key), else ``("fail", current)`` and no write
    - ``("noop",)`` -> ``None``

    Unknown operations return ``("rejected", name)`` and mutate nothing
    but the history.
    """

    def __init__(self) -> None:
        self._data: Dict[Any, Any] = {}
        self.history: List[Tuple[Any, ...]] = []
        #: client id -> (last applied sequence, its result).
        self._last_applied: Dict[int, Tuple[int, Any]] = {}
        #: Retries refused by the dedup table (cached or stale replies).
        self.duplicates_refused = 0
        #: Client-stamped operations actually executed (not refused).
        self.applied_requests = 0

    # ------------------------------------------------------------- execution

    def apply(self, op: Tuple[Any, ...]) -> Any:
        """Execute one anonymous operation (no request id, no dedup)."""
        return self._execute(op)

    def apply_request(self, client: int, sequence: int, op: Tuple[Any, ...]) -> Any:
        """Execute one client-stamped operation at most once.

        Clients submit one request at a time with consecutive sequence
        numbers, and the log is executed in slot order — so one
        last-applied entry per client suffices: equal sequence means a
        retry of the completed request (return the cached result), lower
        means a stale straggler (refuse), higher is the client's next
        request (execute and advance the entry).
        """
        last = self._last_applied.get(client)
        if last is not None:
            last_sequence, last_result = last
            if sequence == last_sequence:
                self.duplicates_refused += 1
                return last_result
            if sequence < last_sequence:
                self.duplicates_refused += 1
                return (STALE, sequence, last_sequence)
        result = self._execute(op)
        self._last_applied[client] = (sequence, result)
        self.applied_requests += 1
        return result

    def _execute(self, op: Tuple[Any, ...]) -> Any:
        self.history.append(tuple(op))
        if not op:
            return None
        name = op[0]
        if name == "get" and len(op) == 2:
            return self._data.get(op[1])
        if name == "put" and len(op) == 3:
            previous = self._data.get(op[1])
            self._data[op[1]] = op[2]
            return previous
        if name == "del" and len(op) == 2:
            return self._data.pop(op[1], None)
        if name == "cas" and len(op) == 4:
            _, key, expected, new = op
            current = self._data.get(key)
            if current == expected:
                self._data[key] = new
                return ("ok", current)
            return ("fail", current)
        if name == "noop":
            return None
        return ("rejected", name)

    # ------------------------------------------------------------- inspection

    def get(self, key: Any) -> Any:
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    @property
    def executed_count(self) -> int:
        return len(self.history)

    def last_applied(self, client: int) -> Tuple[int, Any]:
        """The dedup entry for ``client`` (``(-1, None)`` when unseen)."""
        return self._last_applied.get(client, (-1, None))

    @property
    def known_clients(self) -> int:
        return len(self._last_applied)

    def at_most_once_intact(self) -> bool:
        """Each client sequence executed exactly once.

        Clients issue sequences 0,1,2,... one at a time, so the executed
        count must equal ``sum(last_seq + 1)`` over the table.  A request
        applied twice (or a sequence skipped) breaks the equation.
        """
        expected = sum(entry[0] + 1 for entry in self._last_applied.values())
        return self.applied_requests == expected

    # ------------------------------------------------------------ checkpoints

    def state_digest(self) -> str:
        """Digest over data and the dedup table.

        The table must be under the digest: two replicas that agree on
        the data but disagree on which retries they would refuse are
        *not* in the same state.  The op history is deliberately *not*
        digested — checkpoints in service mode are compact (a replica
        that caught up via state transfer has no flat history), and the
        dedup table already pins every client's position.
        """
        return digest(
            (
                "svc-kv-state",
                tuple(sorted(self._data.items())),
                tuple(sorted(self._last_applied.items())),
            )
        )

    def snapshot_items(self) -> Tuple:
        """Data plus dedup table — both checkpointed with the log."""
        return (
            "svc-kv",
            tuple(sorted(self._data.items())),
            tuple(sorted(self._last_applied.items())),
        )

    def restore(self, items, history) -> None:
        """Rebuild data and dedup table from a checkpoint snapshot."""
        tag, data, dedup = items
        if tag != "svc-kv":
            raise ValueError(f"not a service snapshot: {tag!r}")
        self._data = dict(data)
        self._last_applied = {
            client: (entry[0], entry[1]) for client, entry in dedup
        }
        self.history = [tuple(op) for op in history]
        # Re-baseline the executed counter so ``at_most_once_intact``
        # stays exact for replicas that caught up via snapshot.
        self.applied_requests = sum(
            entry[0] + 1 for entry in self._last_applied.values()
        )
