"""Live load driver: the KV service over real TCP, via a client gateway.

Topology: ``n`` replica OS processes (``python -m repro node --service
kv``) plus **one gateway process** — this one — that multiplexes many
logical clients over a single :class:`~repro.net.host.NetHost`.  Each
logical client keeps its own pid, sequence counter, and authenticator
(requests are signed as the *client* pid, so replicas dedup and reply
per client exactly as in the sim), while the rendezvous peer map points
every client pid at the gateway's address — replica replies to any
client land on the gateway socket and are routed back to the right
:class:`~repro.service.client.ServiceClient` by ``reply.client``.

Key registry sizing makes this sound: keys are derived per pid, so the
replicas' ``KeyRegistry(n + clients + 1)`` and the gateway's agree on
every signature and link MAC without sharing state.

:func:`run_live_load` is the wall-clock twin of
:func:`repro.service.loadgen.run_sim_load`: same phase structure
(steady / crash / recovery / view_change), same completion tuples, same
report shape — plus the per-node service blocks from the cluster's
final records (at-most-once verdicts, state digests).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

from repro.crypto.authenticator import Authenticator, SignedMessage
from repro.crypto.keys import KeyRegistry
from repro.net.batch import BatchAuthenticator
from repro.net.cluster import ClusterConfig, run_cluster
from repro.net.host import NetHost
from repro.net.node import parse_peer_map
from repro.net.peer import PeerManager
from repro.net.timers import NetTimerService
from repro.service.client import ServiceClient
from repro.service.loadgen import LoadGenerator, Workload, summarize_phase
from repro.util.errors import ConfigurationError
from repro.xpaxos.messages import KIND_REPLY, ReplyPayload
from repro.xpaxos.quorum_policy import SelectionPolicy


class ClientGateway:
    """One socket endpoint fronting many logical service clients."""

    def __init__(
        self,
        n: int,
        f: int,
        clients: int,
        retry_timeout: float = 1.0,
        wire_version: Optional[int] = None,
        queue_capacity: int = 4096,
    ) -> None:
        self.n = n
        self.f = f
        self.pid = n + clients + 1
        self.registry = KeyRegistry(self.pid)
        self.manager = PeerManager(
            self.pid,
            queue_capacity=queue_capacity,
            rng_seed=self.pid,
            wire_version=wire_version,
            batch_auth=BatchAuthenticator(self.registry, self.pid),
        )
        self.timers: Optional[NetTimerService] = None
        self.host: Optional[NetHost] = None
        self.clients: Dict[int, ServiceClient] = {}
        self._retry_timeout = retry_timeout
        self._client_count = clients
        self.replies_unrouted = 0

    async def start_server(self, bind_host: str = "127.0.0.1") -> str:
        host_addr, port = await self.manager.start_server(bind_host, 0)
        return f"{host_addr}:{port}"

    def attach(self, addresses: Dict[int, str]) -> None:
        """Wire the host and clients once replica addresses are known."""
        self.manager.addresses = {
            pid: addr
            for pid, addr in parse_peer_map(
                {str(p): a for p, a in addresses.items()}
            ).items()
            if pid != self.pid
        }
        self.timers = NetTimerService(asyncio.get_running_loop())
        self.host = NetHost(
            self.pid,
            self.manager,
            Authenticator(self.registry, self.pid),
            self.timers,
        )
        self.host.subscribe(KIND_REPLY, self._route_reply)
        for index in range(self._client_count):
            pid = self.n + 1 + index
            self.clients[pid] = ServiceClient(
                self.host,
                n=self.n,
                f=self.f,
                client_id=pid,
                authenticator=Authenticator(self.registry, pid),
                retry_timeout=self._retry_timeout,
                subscribe=False,
            )
        self.host.start()
        for client in self.clients.values():
            client.start()

    def _route_reply(self, kind: str, payload: Any, src: int) -> None:
        """Fan a replica reply out to the logical client it addresses."""
        if not isinstance(payload, SignedMessage):
            return
        reply = payload.payload
        if not isinstance(reply, ReplyPayload):
            return
        client = self.clients.get(reply.client)
        if client is None:
            self.replies_unrouted += 1
            return
        client.on_reply(kind, payload, src)

    async def warm_up(self, timeout: float = 10.0) -> bool:
        return await self.manager.warm_up(
            timeout=timeout, peers=range(1, self.n + 1)
        )

    async def close(self) -> None:
        await self.manager.close()


async def run_live_load(
    n: int = 4,
    f: int = 1,
    clients: int = 32,
    duration: float = 8.0,
    mode: str = "closed",
    rate: Optional[float] = None,
    seed: int = 3,
    keys: int = 1000,
    zipf_s: float = 1.1,
    kill_leader_at: Optional[float] = None,
    recover_at: Optional[float] = None,
    drain: float = 2.0,
    settle: float = 1.0,
    retry_timeout: float = 1.0,
    batch_size: int = 64,
    batch_window: float = 0.002,
    checkpoint_interval: Optional[int] = 16,
    heartbeat_period: float = 0.3,
    base_timeout: float = 1.5,
    wire_version: Optional[int] = None,
    protocol: str = "xpaxos",
    run_dir=None,
) -> Dict[str, Any]:
    """Drive the live replicated KV service under load; report phases.

    Mirrors :func:`~repro.service.loadgen.run_sim_load`, with wall-clock
    seconds for time units.  The leader-kill schedule runs on the victim
    node's own clock (seconds after its ready event), which trails the
    gateway's load-start clock by at most the warm-up slack — phase
    boundaries are aligned to within that slack, while the view-change
    window stays exact (it keys off the served view, not the clock).
    """
    if kill_leader_at is not None and kill_leader_at >= duration:
        raise ConfigurationError(
            f"kill_leader_at {kill_leader_at} outside the load window [0, {duration})"
        )
    loop = asyncio.get_running_loop()
    gateway = ClientGateway(
        n, f, clients, retry_timeout=retry_timeout, wire_version=wire_version
    )
    gateway_addr = await gateway.start_server()

    initial_leader = min(SelectionPolicy(n, f).quorum_of(0))
    kills = ()
    recovers = ()
    if kill_leader_at is not None:
        kills = ((initial_leader, settle + kill_leader_at),)
        if recover_at is not None:
            recovers = ((initial_leader, settle + recover_at),)
    cluster_config = ClusterConfig(
        n=n,
        f=f,
        duration=settle + duration + drain + 2.0,
        kills=kills,
        recovers=recovers,
        heartbeat_period=heartbeat_period,
        base_timeout=base_timeout,
        wire_version=wire_version,
        run_dir=run_dir,
        service="kv",
        service_clients=clients,
        extra_peers=tuple(
            (pid, gateway_addr) for pid in range(n + 1, gateway.pid + 1)
        ),
        batch_size=batch_size,
        batch_window=batch_window,
        checkpoint_interval=checkpoint_interval,
        protocol=protocol,
    )

    ready = asyncio.Event()
    address_box: Dict[int, str] = {}

    def on_ready(addresses: Dict[int, str]) -> None:
        def _apply() -> None:
            address_box.update(addresses)
            ready.set()

        loop.call_soon_threadsafe(_apply)

    cluster_future = loop.run_in_executor(
        None, lambda: run_cluster(cluster_config, on_ready=on_ready)
    )
    try:
        await asyncio.wait_for(ready.wait(), cluster_config.startup_timeout)
        gateway.attach(address_box)
        await gateway.warm_up()
        # Give replicas their own warm-up slack before offering load, so
        # the steady phase does not start with a retry storm.
        await asyncio.sleep(settle)

        workload = Workload(seed=seed, keys=keys, zipf_s=zipf_s)
        generator = LoadGenerator(
            gateway.host,
            list(gateway.clients.values()),
            workload,
            mode=mode,
            rate=rate,
            duration=duration,
        )
        t0 = gateway.host.now
        generator.start()
        await asyncio.sleep(duration + drain)
        generator.stop()

        # Completion times shifted to load-relative seconds, sim-style.
        completions = [
            entry._replace(completed_at=entry.completed_at - t0)
            for entry in generator.all_completions()
        ]
    finally:
        cluster_result = await cluster_future
        await gateway.close()

    phases: Dict[str, Any] = {}
    if kill_leader_at is None:
        phases["steady"] = summarize_phase(completions, 0.0, duration)
    else:
        crash_end = recover_at if recover_at is not None else duration
        phases["steady"] = summarize_phase(completions, 0.0, kill_leader_at)
        phases["crash"] = summarize_phase(completions, kill_leader_at, crash_end)
        if recover_at is not None:
            phases["recovery"] = summarize_phase(completions, recover_at, duration)
        resumed = [
            entry.completed_at
            for entry in completions
            if entry.completed_at > kill_leader_at and entry.view > 0
        ]
        higher_view = [
            client.believed_view
            for client in gateway.clients.values()
            if client.believed_view > 0
        ]
        phases["view_change"] = {
            "start": kill_leader_at,
            "end": round(min(resumed), 6) if resumed else None,
            "outage": round(min(resumed) - kill_leader_at, 6) if resumed else None,
            "new_view_learned_by": len(higher_view),
        }

    verdict = service_verdict(cluster_result)
    return {
        "n": n,
        "f": f,
        "protocol": protocol,
        "clients": clients,
        "mode": mode,
        "rate": rate,
        "seed": seed,
        "duration": duration,
        "offered": generator.offered,
        "completed": generator.completed,
        "retries": generator.total_retries,
        "phases": phases,
        "kill_leader_at": kill_leader_at,
        "recover_at": recover_at,
        "initial_leader": initial_leader,
        "at_most_once": verdict["at_most_once"],
        "duplicates_refused": verdict["duplicates_refused"],
        "replica_applied": verdict["replica_applied"],
        "digests_agree": verdict["digests_agree"],
        "replies_unrouted": gateway.replies_unrouted,
        "cluster": cluster_result.summary(),
    }


def service_verdict(cluster_result) -> Dict[str, Any]:
    """Service invariants over one cluster's final node records.

    Shared by the single-cluster driver above and the sharded live
    driver (:mod:`repro.shard.live`), which evaluates it per shard.
    """
    service_finals: Dict[int, Dict[str, Any]] = {}
    for pid, node in cluster_result.nodes.items():
        if node.final is not None and "service" in node.final:
            service_finals[pid] = node.final["service"]
    running = [
        pid
        for pid, node in cluster_result.nodes.items()
        if node.final is not None and node.final.get("running") and pid in service_finals
    ]
    applied = {pid: service_finals[pid]["applied_requests"] for pid in running}
    most_applied = max(applied.values(), default=0)
    frontier_digests = {
        service_finals[pid]["state_digest"]
        for pid in running
        if applied[pid] == most_applied
    }
    return {
        "at_most_once": all(
            block["at_most_once"] for block in service_finals.values()
        ) if service_finals else None,
        "duplicates_refused": sum(
            block["duplicates_refused"] for block in service_finals.values()
        ),
        "replica_applied": {pid: applied[pid] for pid in sorted(applied)},
        "digests_agree": len(frontier_digests) <= 1,
    }


def run_live_load_blocking(**kwargs: Any) -> Dict[str, Any]:
    """Synchronous wrapper around :func:`run_live_load`."""
    return asyncio.run(run_live_load(**kwargs))
