"""Load generation for the replicated KV service.

Runtime-agnostic pieces (used by both the deterministic sim and the live
gateway, which share the host-API contract):

- :class:`Workload` — seeded operation stream: zipfian key choice over a
  fixed key space, weighted GET/PUT/DEL/CAS mix;
- :class:`LoadGenerator` — drives a set of :class:`ServiceClient`\\ s in
  **closed-loop** mode (every client keeps exactly one request
  outstanding; think time optional) or **open-loop** mode (requests
  arrive on a fixed-rate clock regardless of completions, round-robin
  across clients whose queues absorb the backlog);
- :func:`percentile` / :func:`summarize_phase` — phase-windowed
  throughput and latency statistics for the benchmark report.

The sim driver :func:`run_sim_load` builds a full world (replicas +
thousands of simulated clients), optionally kills and recovers the
initial leader mid-run, and reports per-phase stats — the deterministic
twin of the live path in :mod:`repro.service.live`.
"""

from __future__ import annotations

import bisect
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.service.client import Completion, ServiceClient

__all__ = [
    "Completion", "Workload", "LoadGenerator", "percentile",
    "summarize_phase", "run_sim_load", "DEFAULT_MIX",
]

#: Default operation mix: read-heavy, as the zipfian web workloads are.
DEFAULT_MIX = (("get", 0.70), ("put", 0.20), ("cas", 0.05), ("del", 0.05))


class Workload:
    """Seeded zipfian operation stream.

    Key ``i`` (rank ``i + 1``) is drawn with probability proportional to
    ``1 / (i + 1) ** zipf_s`` via a precomputed CDF — hot keys are a
    real contention source for CAS while the tail keeps the key space
    wide.  Fully deterministic for a given seed.
    """

    def __init__(
        self,
        seed: int,
        keys: int = 1000,
        zipf_s: float = 1.1,
        mix: Sequence[Tuple[str, float]] = DEFAULT_MIX,
    ) -> None:
        if keys < 1:
            raise ValueError(f"need at least one key, got {keys}")
        self.rng = random.Random(f"svc-workload-{seed}")
        self.keys = [f"key-{i}" for i in range(keys)]
        weights = [1.0 / ((rank + 1) ** zipf_s) for rank in range(keys)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: List[float] = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self._cdf[-1] = 1.0
        names = [name for name, _ in mix]
        op_weights = [max(0.0, weight) for _, weight in mix]
        if sum(op_weights) <= 0:
            raise ValueError("operation mix weights must sum to > 0")
        self._op_names = names
        op_total = sum(op_weights)
        cumulative = 0.0
        self._op_cdf: List[float] = []
        for weight in op_weights:
            cumulative += weight / op_total
            self._op_cdf.append(cumulative)
        self._op_cdf[-1] = 1.0
        self._value_counter = 0

    def next_key(self) -> str:
        return self.keys[bisect.bisect_left(self._cdf, self.rng.random())]

    def next_op(self) -> Tuple[Any, ...]:
        name = self._op_names[bisect.bisect_left(self._op_cdf, self.rng.random())]
        key = self.next_key()
        if name == "get":
            return ("get", key)
        if name == "put":
            self._value_counter += 1
            return ("put", key, self._value_counter)
        if name == "del":
            return ("del", key)
        if name == "cas":
            self._value_counter += 1
            # Expected=None succeeds on absent keys; otherwise this is an
            # optimistic swap that legitimately fails under contention.
            expected = None if self.rng.random() < 0.5 else self._value_counter - 1
            return ("cas", key, expected, self._value_counter)
        raise ValueError(f"unknown op {name!r} in mix")


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (``p`` in [0, 100]); 0.0 on empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    # Nearest-rank: ceil(p/100 * N), clamped to [1, N].
    rank = min(len(ordered), max(1, -(-len(ordered) * p // 100)))
    return ordered[int(rank) - 1]


def as_completion(entry: Any) -> Completion:
    """Coerce a legacy positional tuple into a :class:`Completion`."""
    return entry if isinstance(entry, Completion) else Completion(*entry)


def summarize_phase(
    completions: Sequence[Tuple[Any, ...]],
    start: float,
    end: float,
) -> Dict[str, float]:
    """Throughput and latency stats over completions in ``[start, end)``.

    Windowing keys off the *named* ``completed_at`` / ``latency`` fields
    (bare six-tuples are coerced), so a record-layout change can never
    silently slice the wrong column.
    """
    window = [entry for entry in map(as_completion, completions)
              if start <= entry.completed_at < end]
    latencies = [entry.latency for entry in window]
    duration = max(end - start, 1e-9)
    return {
        "start": round(start, 6),
        "end": round(end, 6),
        "completed": len(window),
        "throughput": round(len(window) / duration, 3),
        "latency_mean": round(sum(latencies) / len(latencies), 6) if latencies else 0.0,
        "latency_p50": round(percentile(latencies, 50), 6),
        "latency_p99": round(percentile(latencies, 99), 6),
    }


class LoadGenerator:
    """Drives many logical clients through one host's timer service.

    ``host`` only needs the host-API surface (``now``, ``scheduler``),
    so the same generator runs on a sim :class:`ProcessHost` and on the
    live gateway's :class:`~repro.net.host.NetHost`.
    """

    def __init__(
        self,
        host,
        clients: Sequence[ServiceClient],
        workload: Workload,
        mode: str = "closed",
        rate: Optional[float] = None,
        duration: float = 60.0,
    ) -> None:
        if mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
        if mode == "open" and (rate is None or rate <= 0):
            raise ValueError("open-loop mode needs a positive rate")
        self.host = host
        self.clients = list(clients)
        if not self.clients:
            raise ValueError("need at least one client")
        self.workload = workload
        self.mode = mode
        self.rate = rate
        self.duration = duration
        self.offered = 0
        self.started_at: Optional[float] = None
        self.stop_at: Optional[float] = None
        self._arrival_handle = None
        self._next_client = 0

    def start(self) -> None:
        self.started_at = self.host.now
        self.stop_at = self.started_at + self.duration
        if self.mode == "closed":
            for client in self.clients:
                self._feed(client)
        else:
            period = 1.0 / float(self.rate)
            self._arrival_handle = self.host.scheduler.schedule_every(
                period, self._arrival, label="svc-loadgen-arrival"
            )

    def stop(self) -> None:
        if self._arrival_handle is not None:
            self._arrival_handle.cancel()
            self._arrival_handle = None
        self.stop_at = self.host.now

    # ------------------------------------------------------------ closed loop

    def _feed(self, client: ServiceClient) -> None:
        if self.stop_at is not None and self.host.now >= self.stop_at:
            return
        self.offered += 1
        client.submit(
            self.workload.next_op(),
            callback=lambda op, result, latency, c=client: self._feed(c),
        )

    # -------------------------------------------------------------- open loop

    def _arrival(self) -> None:
        if self.stop_at is not None and self.host.now >= self.stop_at:
            if self._arrival_handle is not None:
                self._arrival_handle.cancel()
                self._arrival_handle = None
            return
        self.offered += 1
        client = self.clients[self._next_client]
        self._next_client = (self._next_client + 1) % len(self.clients)
        client.submit(self.workload.next_op())

    # ------------------------------------------------------------ diagnostics

    def all_completions(self) -> List[Completion]:
        """Completion records of every client, ordered by completion time.

        Entries are :class:`Completion` named records; ``view`` is the
        view the serving quorum reported, which is how the benchmark
        finds the first post-kill completion in a new view.
        """
        merged: List[Completion] = []
        for client in self.clients:
            merged.extend(map(as_completion, client.completed))
        merged.sort(key=lambda entry: entry.completed_at)
        return merged

    @property
    def completed(self) -> int:
        return sum(len(client.completed) for client in self.clients)

    @property
    def backlog(self) -> int:
        """Open-loop pressure: offered requests not yet completed."""
        return self.offered - self.completed

    @property
    def total_retries(self) -> int:
        return sum(client.retries for client in self.clients)


def run_sim_load(
    n: int = 4,
    f: int = 1,
    clients: int = 100,
    duration: float = 300.0,
    mode: str = "closed",
    rate: Optional[float] = None,
    seed: int = 3,
    keys: int = 1000,
    zipf_s: float = 1.1,
    kill_leader_at: Optional[float] = None,
    recover_at: Optional[float] = None,
    drain: float = 60.0,
    retry_timeout: float = 10.0,
    batch_size: int = 8,
    batch_window: float = 0.5,
    checkpoint_interval: Optional[int] = 64,
    protocol: str = "xpaxos",
) -> Dict[str, Any]:
    """Run the service under load in the deterministic sim; report phases.

    Phases: ``steady`` (start -> kill), ``crash`` (kill -> recovery or
    end), ``recovery`` (recover -> end).  The ``view_change`` phase is
    the measured window between the leader kill and the first completion
    served in a higher view — the client-visible outage.  Without a kill
    schedule the whole run is one steady phase.
    """
    from repro.sim.worlds import build_kv_service_world

    world = build_kv_service_world(
        n=n,
        f=f,
        clients=clients,
        seed=seed,
        retry_timeout=retry_timeout,
        batch_size=batch_size,
        batch_window=batch_window,
        checkpoint_interval=checkpoint_interval,
        protocol=protocol,
    )
    workload = Workload(seed=seed, keys=keys, zipf_s=zipf_s)
    generator = LoadGenerator(
        world.gen_host,
        list(world.clients.values()),
        workload,
        mode=mode,
        rate=rate,
        duration=duration,
    )
    world.sim.scheduler.schedule(0.0, generator.start, label="svc-loadgen-start")

    initial_leader = min(world.replicas[1].policy.quorum_of(0))
    if kill_leader_at is not None:
        world.adversary.crash(initial_leader, at=kill_leader_at)
        if recover_at is not None:
            world.sim.at(
                recover_at,
                lambda: world.sim.host(initial_leader).recover(),
                label=f"recover-p{initial_leader}",
            )

    world.sim.run_until(duration + drain)

    completions = generator.all_completions()
    phases: Dict[str, Dict[str, float]] = {}
    if kill_leader_at is None:
        phases["steady"] = summarize_phase(completions, 0.0, duration)
    else:
        crash_end = recover_at if recover_at is not None else duration
        phases["steady"] = summarize_phase(completions, 0.0, kill_leader_at)
        phases["crash"] = summarize_phase(completions, kill_leader_at, crash_end)
        if recover_at is not None:
            phases["recovery"] = summarize_phase(completions, recover_at, duration)
        # Client-visible view-change outage: kill -> first completion
        # served in a higher view (in-flight old-view replies excluded).
        resumed = [entry.completed_at for entry in completions
                   if entry.completed_at > kill_leader_at and entry.view > 0]
        higher_view = [
            client.believed_view for client in world.clients.values()
            if client.believed_view > 0
        ]
        phases["view_change"] = {
            "start": kill_leader_at,
            "end": round(min(resumed), 6) if resumed else None,
            "outage": round(min(resumed) - kill_leader_at, 6) if resumed else None,
            "new_view_learned_by": len(higher_view),
        }

    replicas = list(world.replicas.values())
    live = [r for r in replicas if r.host.running]
    executed = {r.pid: r.kv.applied_requests for r in live}
    # Replicas outside the active quorum legitimately lag; safety says
    # replicas at the *same* execution point hold the same state.
    most_applied = max(executed.values(), default=0)
    frontier = [r for r in live if r.kv.applied_requests == most_applied]
    digests_agree = len({r.kv.state_digest() for r in frontier}) <= 1
    return {
        "n": n,
        "f": f,
        "protocol": protocol,
        "clients": clients,
        "mode": mode,
        "rate": rate,
        "seed": seed,
        "duration": duration,
        "offered": generator.offered,
        "completed": generator.completed,
        "retries": generator.total_retries,
        "phases": phases,
        "kill_leader_at": kill_leader_at,
        "recover_at": recover_at,
        "initial_leader": initial_leader,
        "at_most_once": all(r.kv.at_most_once_intact() for r in replicas),
        "duplicates_refused": sum(r.kv.duplicates_refused for r in replicas),
        "replica_applied": executed,
        "digests_agree": digests_agree,
        "world": world,
    }
