"""Sharded deployment: M independent XPaxos+QS clusters behind one router.

The paper's Quorum Selection module is strictly per-cluster, so the
orthogonal throughput axis is horizontal: partition the key space over
``M`` independent clusters, each running the full, unchanged protocol
stack, and route every KV request by key.

- :mod:`repro.shard.ring` — seeded consistent-hash ring (virtual nodes,
  stable SHA-256 key placement);
- :mod:`repro.shard.router` — :class:`ShardRouter` over per-shard client
  pools plus the :class:`ShardedLoadGenerator` that drives all shards
  concurrently;
- :mod:`repro.shard.sim` — M deterministic service worlds advanced in
  lockstep (the reproducible twin);
- :mod:`repro.shard.live` — M one-process-per-replica TCP clusters
  fronted by one router process holding M client gateways.
"""

from repro.shard.ring import HashRing
from repro.shard.router import ShardRouter, ShardedLoadGenerator

__all__ = ["HashRing", "ShardRouter", "ShardedLoadGenerator"]
