"""Live sharded deployment: M TCP clusters behind one router process.

Topology: ``M x n`` replica OS processes (each shard is a full
:func:`~repro.net.cluster.run_cluster` launch with its own ephemeral
ports, key registry, and fault schedule) plus **one router process** —
this one — holding the consistent-hash ring and one
:class:`~repro.service.live.ClientGateway` per shard.  All gateways
share this process's asyncio loop; each multiplexes that shard's
logical clients over a single socket to its own cluster.  Routing
happens entirely client-side: the
:class:`~repro.shard.router.ShardRouter` hashes each operation's key
and submits through the owning shard's gateway pool, so a shard's
replicas never see another shard's keys.

Because every shard runs real OS processes, aggregate throughput
genuinely uses the host's cores — the scaling claim the E30a benchmark
measures (and gates on hosts with >= 4 CPUs).

:func:`run_live_shard_load` is the wall-clock twin of
:func:`repro.shard.sim.run_sim_shard_load`: same report shape, wall
seconds for time units, per-shard cluster summaries attached, and the
cross-shard metrics rollup built with the existing
:func:`~repro.obs.registry.merge_snapshots`.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.net.cluster import ClusterConfig, run_cluster
from repro.obs.registry import merge_snapshots
from repro.service.live import ClientGateway, service_verdict
from repro.service.loadgen import Workload
from repro.shard.ring import DEFAULT_VNODES, HashRing
from repro.shard.router import ShardedLoadGenerator, ShardRouter
from repro.shard.sim import shard_phases
from repro.util.errors import ConfigurationError
from repro.xpaxos.quorum_policy import SelectionPolicy


async def run_live_shard_load(
    shards: int = 2,
    n: int = 4,
    f: int = 1,
    clients: int = 16,
    duration: float = 8.0,
    mode: str = "closed",
    rate: Optional[float] = None,
    seed: int = 3,
    keys: int = 1000,
    zipf_s: float = 1.1,
    vnodes: int = DEFAULT_VNODES,
    kill_shard_leader_at: Optional[float] = None,
    kill_shard: int = 0,
    recover_at: Optional[float] = None,
    drain: float = 2.0,
    settle: float = 1.0,
    retry_timeout: float = 1.0,
    batch_size: int = 64,
    batch_window: float = 0.002,
    checkpoint_interval: Optional[int] = 16,
    heartbeat_period: float = 0.3,
    base_timeout: float = 1.5,
    wire_version: Optional[int] = None,
    run_dir=None,
) -> Dict[str, Any]:
    """Drive M live shard clusters under one routed workload; report phases.

    ``clients`` is per shard (matching the sim twin).  The kill schedule
    — when given — applies to ``kill_shard`` only; the other shards run
    fault-free, which is what makes their crash-window throughput the
    blast-radius measurement.
    """
    if shards < 1:
        raise ConfigurationError(f"need at least one shard, got {shards}")
    if not 0 <= kill_shard < shards:
        raise ConfigurationError(
            f"kill_shard {kill_shard} out of range for {shards} shards"
        )
    if kill_shard_leader_at is not None and kill_shard_leader_at >= duration:
        raise ConfigurationError(
            f"kill_shard_leader_at {kill_shard_leader_at} outside the load "
            f"window [0, {duration})"
        )
    loop = asyncio.get_running_loop()
    run_dir = Path(run_dir) if run_dir is not None else None

    initial_leader = min(SelectionPolicy(n, f).quorum_of(0))
    gateways: List[ClientGateway] = []
    readies: List[asyncio.Event] = []
    address_boxes: List[Dict[int, str]] = []
    configs: List[ClusterConfig] = []
    for s in range(shards):
        gateway = ClientGateway(
            n, f, clients, retry_timeout=retry_timeout, wire_version=wire_version
        )
        gateway_addr = await gateway.start_server()
        kills = ()
        recovers = ()
        if kill_shard_leader_at is not None and s == kill_shard:
            kills = ((initial_leader, settle + kill_shard_leader_at),)
            if recover_at is not None:
                recovers = ((initial_leader, settle + recover_at),)
        configs.append(ClusterConfig(
            n=n,
            f=f,
            label=f"shard-{s}",
            duration=settle + duration + drain + 2.0,
            kills=kills,
            recovers=recovers,
            heartbeat_period=heartbeat_period,
            base_timeout=base_timeout,
            wire_version=wire_version,
            run_dir=(run_dir / f"shard_{s}") if run_dir is not None else None,
            service="kv",
            service_clients=clients,
            extra_peers=tuple(
                (pid, gateway_addr) for pid in range(n + 1, gateway.pid + 1)
            ),
            batch_size=batch_size,
            batch_window=batch_window,
            checkpoint_interval=checkpoint_interval,
        ))
        gateways.append(gateway)
        readies.append(asyncio.Event())
        address_boxes.append({})

    def make_on_ready(index: int):
        def on_ready(addresses: Dict[int, str]) -> None:
            def _apply() -> None:
                address_boxes[index].update(addresses)
                readies[index].set()

            loop.call_soon_threadsafe(_apply)

        return on_ready

    # One launcher thread per shard: run_cluster blocks for the whole
    # cluster lifetime, so the default executor (sized from CPU count)
    # could deadlock the rendezvous at higher M.
    executor = ThreadPoolExecutor(
        max_workers=shards, thread_name_prefix="shard-cluster"
    )
    cluster_futures = [
        loop.run_in_executor(
            executor,
            lambda cfg=configs[s], cb=make_on_ready(s): run_cluster(cfg, on_ready=cb),
        )
        for s in range(shards)
    ]
    try:
        await asyncio.wait_for(
            asyncio.gather(*(ready.wait() for ready in readies)),
            max(cfg.startup_timeout for cfg in configs),
        )
        for s, gateway in enumerate(gateways):
            gateway.attach(address_boxes[s])
        await asyncio.gather(*(gateway.warm_up() for gateway in gateways))
        await asyncio.sleep(settle)

        ring = HashRing(shards, vnodes=vnodes, seed=seed)
        router = ShardRouter(
            ring, {s: list(gw.clients.values()) for s, gw in enumerate(gateways)}
        )
        hosts = {s: gw.host for s, gw in enumerate(gateways)}
        workload = Workload(seed=seed, keys=keys, zipf_s=zipf_s)
        generator = ShardedLoadGenerator(
            hosts, router, workload, mode=mode, rate=rate, duration=duration
        )
        generator.start()
        await asyncio.sleep(duration + drain)
        generator.stop()

        # Per-shard completions shifted onto load-relative seconds; the
        # shards started within one loop iteration of each other, so the
        # per-shard origins differ by microseconds.
        shard_records = {
            s: [entry._replace(completed_at=entry.completed_at - generator.t0[s])
                for entry in records]
            for s, records in generator.shard_completions().items()
        }
    finally:
        cluster_results = await asyncio.gather(*cluster_futures)
        executor.shutdown(wait=False)
        for gateway in gateways:
            await gateway.close()

    per_shard: Dict[int, Dict[str, Any]] = {}
    for s in range(shards):
        records = shard_records[s]
        block = {
            "completed": len(records),
            "routed": router.routed[s],
            "phases": shard_phases(
                records, duration, kill_shard_leader_at, recover_at,
                killed=(s == kill_shard),
            ),
            "replies_unrouted": gateways[s].replies_unrouted,
            "cluster": cluster_results[s].summary(),
        }
        block.update(service_verdict(cluster_results[s]))
        per_shard[s] = block

    merged_all = sorted(
        (entry for records in shard_records.values() for entry in records),
        key=lambda entry: entry.completed_at,
    )
    aggregate = shard_phases(
        merged_all, duration, kill_shard_leader_at, recover_at, killed=False
    )

    # Cross-shard metrics rollup: every node of every shard into one
    # deployment-wide snapshot (pid labels collide across shards by
    # design — counters sum into deployment totals).
    snapshots = [
        snapshot
        for result in cluster_results
        for snapshot in result.metrics_snapshots().values()
    ]
    deployment_metrics = merge_snapshots(snapshots) if snapshots else None
    if run_dir is not None and deployment_metrics is not None:
        (run_dir / "deployment_metrics.json").write_text(
            json.dumps(deployment_metrics, indent=2, sort_keys=True) + "\n"
        )

    report: Dict[str, Any] = {
        "shards": shards,
        "n": n,
        "f": f,
        "clients_per_shard": clients,
        "clients_total": clients * shards,
        "mode": mode,
        "rate": rate,
        "seed": seed,
        "duration": duration,
        "ring": ring.describe(),
        "offered": generator.offered,
        "completed": generator.completed,
        "retries": generator.total_retries,
        "aggregate": aggregate,
        "per_shard": per_shard,
        "kill": None,
        "at_most_once": all(
            b["at_most_once"] for b in per_shard.values()
        ),
        "digests_agree": all(b["digests_agree"] for b in per_shard.values()),
        "replies_unrouted": sum(gw.replies_unrouted for gw in gateways),
        "metrics_families": (
            len(deployment_metrics["metrics"]) if deployment_metrics else 0
        ),
    }
    if kill_shard_leader_at is not None:
        report["kill"] = {
            "shard": kill_shard,
            "leader": initial_leader,
            "at": kill_shard_leader_at,
            "recover_at": recover_at,
            "view_change": per_shard[kill_shard]["phases"].get("view_change"),
        }
    return report


def run_live_shard_load_blocking(**kwargs: Any) -> Dict[str, Any]:
    """Synchronous wrapper around :func:`run_live_shard_load`."""
    return asyncio.run(run_live_shard_load(**kwargs))
