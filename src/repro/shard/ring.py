"""Seeded consistent-hash ring with virtual nodes.

Key -> shard mapping for the sharded deployment (DESIGN.md §5.19).  Two
properties the deployment leans on, both covered by the props tier:

- **balance** — each shard owns ``vnodes`` pseudo-random arcs of the
  2^64 ring, so shard loads concentrate around the fair share (relative
  spread shrinks like ``1/sqrt(vnodes)``);
- **minimal remapping** — growing ``shards`` from ``M`` to ``M+1`` (same
  seed, same ``vnodes``) only moves keys *onto* the new shard: a key's
  own ring position never changes, and every old vnode arc either
  survives intact or is split by a new-shard vnode.  Roughly ``K/(M+1)``
  of ``K`` keys move; none migrate between old shards.

Placement follows the :mod:`repro.util.rand` derivation style: vnode
positions hash a textual ``seed/shard/vnode`` path with SHA-256, so the
ring is stable across runs, platforms, and Python versions.  Keys hash
*without* the seed — their positions are fixed; only arc ownership is
seeded.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence

from repro.util.errors import ConfigurationError

#: Default virtual nodes per shard.  128 keeps worst-case shard load
#: within ~±25% of fair share at small M (see tests/test_props_shard_ring).
DEFAULT_VNODES = 128


def _point(text: str) -> int:
    """A stable position on the 2^64 ring for a textual path."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def key_point(key: str) -> int:
    """Ring position of a key (seed-independent — see module docstring)."""
    return _point(f"key/{key}")


class HashRing:
    """Immutable consistent-hash ring mapping keys to ``shards`` ids."""

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES,
                 seed: int = 0) -> None:
        if shards < 1:
            raise ConfigurationError(f"need at least one shard, got {shards}")
        if vnodes < 1:
            raise ConfigurationError(f"need at least one vnode, got {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        self.seed = seed
        placed = sorted(
            (_point(f"{seed}/shard-{shard}/vnode-{vnode}"), shard)
            for shard in range(shards)
            for vnode in range(vnodes)
        )
        self._points: List[int] = [point for point, _ in placed]
        self._owners: List[int] = [owner for _, owner in placed]

    def shard_of(self, key: str) -> int:
        """The shard owning ``key``: the first vnode at or after its point."""
        index = bisect.bisect_left(self._points, key_point(key))
        if index == len(self._points):
            index = 0  # wrap: past the last vnode belongs to the first
        return self._owners[index]

    def distribution(self, keys: Iterable[str]) -> Dict[int, int]:
        """Shard -> key count over ``keys`` (every shard present, even empty)."""
        counts = {shard: 0 for shard in range(self.shards)}
        for key in keys:
            counts[self.shard_of(key)] += 1
        return counts

    def remapped(self, other: "HashRing", keys: Sequence[str]) -> List[str]:
        """Keys whose owner differs between this ring and ``other``."""
        return [key for key in keys if self.shard_of(key) != other.shard_of(key)]

    def describe(self) -> Dict[str, int]:
        """Serializable ring identity for reports and rendezvous checks."""
        return {"shards": self.shards, "vnodes": self.vnodes, "seed": self.seed}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"HashRing(shards={self.shards}, vnodes={self.vnodes}, "
                f"seed={self.seed})")
