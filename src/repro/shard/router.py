"""Key-routing over M independent clusters' client pools.

:class:`ShardRouter` owns the ring and one pool of
:class:`~repro.service.client.ServiceClient`\\ s per shard.  Every KV
operation carries its key at position 1 (``("put", key, v)``, ...);
the router hashes the key, picks a client from the owning shard's pool
(idle-preferring round-robin, so queues only build once a whole shard is
saturated), and submits.  Each client belongs to exactly one shard's
cluster — replicas never see another shard's keys, so every shard runs
the full, unchanged protocol stack.

:class:`ShardedLoadGenerator` is the deployment-level twin of
:class:`~repro.service.loadgen.LoadGenerator`: one workload stream
drives all shards concurrently.  Closed loop keeps ``sum(pool sizes)``
requests outstanding deployment-wide — a completion on any shard feeds
the next operation, routed wherever its key lives — and open loop
routes fixed-rate arrivals by key.  Per-shard completion records keep
their own cluster's clock; drivers align them via :attr:`t0`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.service.client import Completion, ServiceClient
from repro.service.loadgen import Workload, as_completion
from repro.shard.ring import HashRing
from repro.util.errors import ConfigurationError


def key_of(op: Tuple[Any, ...]) -> str:
    """The routing key of a KV operation (keyless ops route like ``""``)."""
    return str(op[1]) if len(op) > 1 else ""


class ShardRouter:
    """Routes operations to per-shard client pools by consistent hashing."""

    def __init__(
        self, ring: HashRing, pools: Dict[int, Sequence[ServiceClient]]
    ) -> None:
        if sorted(pools) != list(range(ring.shards)):
            raise ConfigurationError(
                f"pools must cover shards 0..{ring.shards - 1}, got {sorted(pools)}"
            )
        if any(not pool for pool in pools.values()):
            raise ConfigurationError("every shard needs at least one client")
        self.ring = ring
        self.pools: Dict[int, List[ServiceClient]] = {
            shard: list(pool) for shard, pool in pools.items()
        }
        self._next: Dict[int, int] = {shard: 0 for shard in pools}
        self.routed: Dict[int, int] = {shard: 0 for shard in pools}

    @property
    def total_clients(self) -> int:
        return sum(len(pool) for pool in self.pools.values())

    def shard_of(self, op: Tuple[Any, ...]) -> int:
        return self.ring.shard_of(key_of(op))

    def client_for(self, shard: int) -> ServiceClient:
        """Idle-preferring round-robin within one shard's pool."""
        pool = self.pools[shard]
        start = self._next[shard]
        chosen = None
        for offset in range(len(pool)):
            candidate = pool[(start + offset) % len(pool)]
            if candidate.idle:
                chosen = candidate
                self._next[shard] = (start + offset + 1) % len(pool)
                break
        if chosen is None:
            chosen = pool[start % len(pool)]
            self._next[shard] = (start + 1) % len(pool)
        return chosen

    def submit(self, op: Tuple[Any, ...], callback=None) -> int:
        """Route one operation by key; returns the owning shard."""
        shard = self.shard_of(op)
        self.routed[shard] += 1
        self.client_for(shard).submit(op, callback=callback)
        return shard


class ShardedLoadGenerator:
    """One workload stream driving every shard of a deployment.

    ``hosts`` maps shard -> the host whose clock and timers that shard's
    clients live on (the per-world generator host in the sim, the
    per-shard gateway host live).  Open-loop arrivals tick on shard 0's
    host — the router then fans each arrival out by key.
    """

    def __init__(
        self,
        hosts: Dict[int, Any],
        router: ShardRouter,
        workload: Workload,
        mode: str = "closed",
        rate: Optional[float] = None,
        duration: float = 60.0,
    ) -> None:
        if mode not in ("closed", "open"):
            raise ConfigurationError(
                f"mode must be 'closed' or 'open', got {mode!r}"
            )
        if mode == "open" and (rate is None or rate <= 0):
            raise ConfigurationError("open-loop mode needs a positive rate")
        if sorted(hosts) != sorted(router.pools):
            raise ConfigurationError("hosts must cover exactly the router's shards")
        self.hosts = dict(hosts)
        self.router = router
        self.workload = workload
        self.mode = mode
        self.rate = rate
        self.duration = duration
        self.offered = 0
        #: Per-shard clock origin, captured at :meth:`start`.
        self.t0: Dict[int, float] = {}
        self._arrival_handle = None
        self._stopped = False

    # ---------------------------------------------------------------- driving

    def start(self) -> None:
        self.t0 = {shard: host.now for shard, host in self.hosts.items()}
        if self.mode == "closed":
            # One outstanding request per client, deployment-wide; keys
            # decide which shard each lands on, queues absorb skew.
            for _ in range(self.router.total_clients):
                self._offer()
        else:
            anchor = self.hosts[min(self.hosts)]
            period = 1.0 / float(self.rate)
            self._arrival_handle = anchor.scheduler.schedule_every(
                period, self._offer, label="shard-loadgen-arrival"
            )

    def stop(self) -> None:
        self._stopped = True
        if self._arrival_handle is not None:
            self._arrival_handle.cancel()
            self._arrival_handle = None

    def _expired(self, shard: int) -> bool:
        return self.hosts[shard].now - self.t0.get(shard, 0.0) >= self.duration

    def _offer(self) -> None:
        if self._stopped:
            return
        op = self.workload.next_op()
        shard = self.router.shard_of(op)
        if self._expired(shard):
            if self._arrival_handle is not None:
                self._arrival_handle.cancel()
                self._arrival_handle = None
            return
        self.offered += 1
        callback = None
        if self.mode == "closed":
            callback = lambda op_, result, latency: self._offer()  # noqa: E731
        self.router.submit(op, callback=callback)

    # ------------------------------------------------------------ diagnostics

    def shard_completions(self) -> Dict[int, List[Completion]]:
        """Per-shard completion records, each on its own cluster's clock."""
        merged: Dict[int, List[Completion]] = {}
        for shard, pool in self.router.pools.items():
            records: List[Completion] = []
            for client in pool:
                records.extend(map(as_completion, client.completed))
            records.sort(key=lambda entry: entry.completed_at)
            merged[shard] = records
        return merged

    def all_completions(self) -> List[Completion]:
        """Every shard's completions, merged and time-ordered."""
        merged: List[Completion] = []
        for records in self.shard_completions().values():
            merged.extend(records)
        merged.sort(key=lambda entry: entry.completed_at)
        return merged

    @property
    def completed(self) -> int:
        return sum(
            len(client.completed)
            for pool in self.router.pools.values()
            for client in pool
        )

    @property
    def backlog(self) -> int:
        return self.offered - self.completed

    @property
    def total_retries(self) -> int:
        return sum(
            client.retries
            for pool in self.router.pools.values()
            for client in pool
        )
