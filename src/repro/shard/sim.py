"""Deterministic sharded deployment: M sim worlds in lockstep.

Each shard is one full :func:`~repro.sim.worlds.build_kv_service_world`
(its own pid space, replicas, clients, RNG streams — seeds derived per
shard so the worlds are independent), and the driver advances all M
simulations in lockstep quanta behind one
:class:`~repro.shard.router.ShardedLoadGenerator`.  A completion inside
shard A's quantum may route its follow-up operation into shard B; B's
scheduler absorbs it at B's current clock, so cross-shard skew is
bounded by the quantum and the whole run stays deterministic (the same
seed replays the identical aggregate completion sequence).

This is the reproducible twin of :mod:`repro.shard.live` — identical
report shape, sim time units instead of wall seconds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.registry import merge_snapshots
from repro.service.loadgen import Workload, summarize_phase
from repro.shard.ring import DEFAULT_VNODES, HashRing
from repro.shard.router import ShardedLoadGenerator, ShardRouter
from repro.util.errors import ConfigurationError


def shard_phases(
    completions,
    duration: float,
    kill_at: Optional[float],
    recover_at: Optional[float],
    killed: bool,
) -> Dict[str, Any]:
    """Phase summaries for one shard (or the aggregate) of a deployment.

    Every shard reports ``steady``/``crash``/``recovery`` windows when a
    kill schedule exists — for *unaffected* shards the "crash" window is
    the evidence that the fault stayed contained.  The measured
    ``view_change`` outage is only meaningful on the killed shard.
    """
    phases: Dict[str, Any] = {}
    if kill_at is None:
        phases["steady"] = summarize_phase(completions, 0.0, duration)
        return phases
    crash_end = recover_at if recover_at is not None else duration
    phases["steady"] = summarize_phase(completions, 0.0, kill_at)
    phases["crash"] = summarize_phase(completions, kill_at, crash_end)
    if recover_at is not None:
        phases["recovery"] = summarize_phase(completions, recover_at, duration)
    if killed:
        resumed = [entry.completed_at for entry in completions
                   if entry.completed_at > kill_at and entry.view > 0]
        phases["view_change"] = {
            "start": kill_at,
            "end": round(min(resumed), 6) if resumed else None,
            "outage": round(min(resumed) - kill_at, 6) if resumed else None,
        }
    return phases


def shard_service_verdict(world) -> Dict[str, Any]:
    """At-most-once + frontier-digest verdicts for one sim shard."""
    replicas = list(world.replicas.values())
    live = [r for r in replicas if r.host.running]
    applied = {r.pid: r.kv.applied_requests for r in live}
    most_applied = max(applied.values(), default=0)
    frontier = [r for r in live if r.kv.applied_requests == most_applied]
    return {
        "at_most_once": all(r.kv.at_most_once_intact() for r in replicas),
        "duplicates_refused": sum(r.kv.duplicates_refused for r in replicas),
        "replica_applied": applied,
        "digests_agree": len({r.kv.state_digest() for r in frontier}) <= 1,
    }


def run_sim_shard_load(
    shards: int = 2,
    n: int = 4,
    f: int = 1,
    clients: int = 50,
    duration: float = 120.0,
    mode: str = "closed",
    rate: Optional[float] = None,
    seed: int = 3,
    keys: int = 1000,
    zipf_s: float = 1.1,
    vnodes: int = DEFAULT_VNODES,
    kill_shard_leader_at: Optional[float] = None,
    kill_shard: int = 0,
    recover_at: Optional[float] = None,
    drain: float = 60.0,
    retry_timeout: float = 10.0,
    batch_size: int = 8,
    batch_window: float = 0.5,
    checkpoint_interval: Optional[int] = 64,
    lockstep_quantum: float = 1.0,
) -> Dict[str, Any]:
    """Drive M deterministic shard worlds under one routed workload.

    ``clients`` is *per shard* — the M=1 vs M=4 scaling comparison holds
    per-shard offered load constant so aggregate throughput is the
    moving part.  ``kill_shard_leader_at`` crashes the initial leader of
    ``kill_shard`` only; every other shard keeps its full cluster.
    """
    from repro.sim.worlds import build_sharded_kv_worlds

    if shards < 1:
        raise ConfigurationError(f"need at least one shard, got {shards}")
    if not 0 <= kill_shard < shards:
        raise ConfigurationError(
            f"kill_shard {kill_shard} out of range for {shards} shards"
        )
    if lockstep_quantum <= 0:
        raise ConfigurationError(
            f"lockstep quantum must be positive, got {lockstep_quantum}"
        )

    worlds = build_sharded_kv_worlds(
        shards,
        n=n,
        f=f,
        clients=clients,
        seed=seed,
        retry_timeout=retry_timeout,
        batch_size=batch_size,
        batch_window=batch_window,
        checkpoint_interval=checkpoint_interval,
    )
    ring = HashRing(shards, vnodes=vnodes, seed=seed)
    router = ShardRouter(
        ring, {s: list(world.clients.values()) for s, world in enumerate(worlds)}
    )
    hosts = {s: world.gen_host for s, world in enumerate(worlds)}
    workload = Workload(seed=seed, keys=keys, zipf_s=zipf_s)
    generator = ShardedLoadGenerator(
        hosts, router, workload, mode=mode, rate=rate, duration=duration
    )

    killed_leader = None
    if kill_shard_leader_at is not None:
        victim_world = worlds[kill_shard]
        killed_leader = min(victim_world.replicas[1].policy.quorum_of(0))
        victim_world.adversary.crash(killed_leader, at=kill_shard_leader_at)
        if recover_at is not None:
            victim_world.sim.at(
                recover_at,
                lambda: victim_world.sim.host(killed_leader).recover(),
                label=f"recover-shard{kill_shard}-p{killed_leader}",
            )

    for world in worlds:
        world.sim.start()
    generator.start()

    # Lockstep: every world reaches each quantum boundary before any
    # world passes it, bounding cross-shard routing skew by the quantum.
    horizon = duration + drain
    boundary = 0.0
    while boundary < horizon:
        boundary = min(boundary + lockstep_quantum, horizon)
        for world in worlds:
            world.sim.run_until(boundary)

    per_shard: Dict[int, Dict[str, Any]] = {}
    shard_records = generator.shard_completions()
    for s, world in enumerate(worlds):
        records = shard_records[s]
        kill_at = kill_shard_leader_at
        block = {
            "completed": len(records),
            "routed": router.routed[s],
            "phases": shard_phases(
                records, duration, kill_at, recover_at, killed=(s == kill_shard)
            ),
        }
        block.update(shard_service_verdict(world))
        per_shard[s] = block

    aggregate = shard_phases(
        generator.all_completions(), duration,
        kill_shard_leader_at, recover_at, killed=False,
    )
    merged_metrics = merge_snapshots(
        [world.sim.obs.snapshot() for world in worlds]
    )

    report: Dict[str, Any] = {
        "shards": shards,
        "n": n,
        "f": f,
        "clients_per_shard": clients,
        "clients_total": clients * shards,
        "mode": mode,
        "rate": rate,
        "seed": seed,
        "duration": duration,
        "ring": ring.describe(),
        "offered": generator.offered,
        "completed": generator.completed,
        "retries": generator.total_retries,
        "aggregate": aggregate,
        "per_shard": per_shard,
        "kill": None,
        "at_most_once": all(b["at_most_once"] for b in per_shard.values()),
        "digests_agree": all(b["digests_agree"] for b in per_shard.values()),
        "metrics_families": len(merged_metrics["metrics"]),
        "worlds": worlds,
    }
    if kill_shard_leader_at is not None:
        report["kill"] = {
            "shard": kill_shard,
            "leader": killed_leader,
            "at": kill_shard_leader_at,
            "recover_at": recover_at,
            "view_change": per_shard[kill_shard]["phases"].get("view_change"),
        }
    return report


def unaffected_shards_ok(
    report: Dict[str, Any], tolerance: float = 0.5
) -> bool:
    """Did every *non-killed* shard keep serving through the crash window?

    True when each unaffected shard's crash-window throughput stayed
    within ``tolerance`` (fractional drop) of its own steady rate.
    Vacuously true without a kill schedule.
    """
    kill = report.get("kill")
    if not kill:
        return True
    ok = True
    for s, block in report["per_shard"].items():
        if int(s) == kill["shard"]:
            continue
        steady = block["phases"]["steady"]["throughput"]
        crash = block["phases"]["crash"]["throughput"]
        if steady <= 0:
            ok = False
        elif crash < steady * (1.0 - tolerance):
            ok = False
    return ok
