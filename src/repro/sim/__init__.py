"""Deterministic discrete-event simulation substrate.

The paper assumes an asynchronous message-passing system of ``n`` processes
connected by reliable channels, augmented with eventual synchrony for the
failure detector (Sections II and IV).  This package provides that world:

- :class:`Scheduler` — a deterministic event queue (time, then FIFO seq).
- :class:`LatencyModel` hierarchy — including
  :class:`EventuallySynchronousLatency`, which models a Global
  Stabilization Time (GST) after which message delays are bounded by
  ``delta`` (one "communication round" in the paper's vocabulary).
- :class:`Network` — reliable, optionally FIFO, channels with hooks that
  let an adversary manipulate traffic *of faulty processes only*.
- :class:`ProcessHost` — per-process harness wiring the failure detector,
  quorum-selection module, and application together, with timers.
- :class:`Simulation` — top-level builder/runner.
- :class:`MessageStats` — per-kind / per-link message accounting used by
  the message-savings experiments (E7).
"""

from repro.sim.clock import SimClock
from repro.sim.events import ScheduledEvent, TimerHandle
from repro.sim.scheduler import Scheduler
from repro.sim.latency import (
    LatencyModel,
    FixedLatency,
    UniformLatency,
    EventuallySynchronousLatency,
)
from repro.sim.network import Network, Envelope, SendAction, DELIVER, DROP
from repro.sim.process import ProcessHost, Module
from repro.sim.runtime import Simulation, SimulationConfig
from repro.sim.tracing import MessageStats

__all__ = [
    "SimClock",
    "ScheduledEvent",
    "TimerHandle",
    "Scheduler",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "EventuallySynchronousLatency",
    "Network",
    "Envelope",
    "SendAction",
    "DELIVER",
    "DROP",
    "ProcessHost",
    "Module",
    "Simulation",
    "SimulationConfig",
    "MessageStats",
]
