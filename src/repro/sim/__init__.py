"""Deterministic discrete-event simulation substrate.

The paper assumes an asynchronous message-passing system of ``n`` processes
connected by reliable channels, augmented with eventual synchrony for the
failure detector (Sections II and IV).  This package provides that world:

- :class:`Scheduler` — a deterministic event queue (time, then FIFO seq).
- :class:`LatencyModel` hierarchy — including
  :class:`EventuallySynchronousLatency`, which models a Global
  Stabilization Time (GST) after which message delays are bounded by
  ``delta`` (one "communication round" in the paper's vocabulary).
- :class:`Network` — reliable, optionally FIFO, channels with hooks that
  let an adversary manipulate traffic *of faulty processes only*, plus an
  opt-in :class:`ChaosConfig` lossy-channel model (drop / duplicate /
  reorder per link) for robustness testing.
- :class:`ReliableTransport` — ack + exponential-backoff retransmission
  with receiver-side dedup, restoring per-link reliability on top of a
  chaotic network.
- :class:`ProcessHost` — per-process harness wiring the failure detector,
  quorum-selection module, and application together, with timers.
- :class:`Simulation` — top-level builder/runner.
- :class:`MessageStats` — per-kind / per-link message accounting used by
  the message-savings experiments (E7).
"""

from repro.sim.clock import SimClock
from repro.sim.events import ScheduledEvent, TimerHandle
from repro.sim.scheduler import RepeatingHandle, Scheduler
from repro.sim.latency import (
    LatencyModel,
    FixedLatency,
    UniformLatency,
    EventuallySynchronousLatency,
)
from repro.sim.network import (
    ChaosConfig,
    DELIVER,
    DROP,
    Envelope,
    LinkChaos,
    Network,
    SendAction,
)
from repro.sim.process import ProcessHost, Module
from repro.sim.runtime import Simulation, SimulationConfig
from repro.sim.tracing import MessageStats
from repro.sim.transport import ReliableTransport

__all__ = [
    "SimClock",
    "ScheduledEvent",
    "TimerHandle",
    "RepeatingHandle",
    "Scheduler",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "EventuallySynchronousLatency",
    "Network",
    "Envelope",
    "SendAction",
    "ChaosConfig",
    "LinkChaos",
    "ReliableTransport",
    "DELIVER",
    "DROP",
    "ProcessHost",
    "Module",
    "Simulation",
    "SimulationConfig",
    "MessageStats",
]
