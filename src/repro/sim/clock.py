"""Simulation clock."""

from __future__ import annotations

from repro.util.errors import SimulationError


class SimClock:
    """Monotonic simulation clock owned by the scheduler.

    Time is a float in abstract "time units"; latency models define what a
    unit means (we use 1.0 == one post-GST message delay bound ``delta`` by
    default, so "two communication rounds" in the paper is ~2.0 units).
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        # Plain attribute, not a property: ``now`` is read on every
        # scheduler step and send, and the attribute is mutated only via
        # :meth:`advance_to`.
        self.now = start

    def advance_to(self, time: float) -> None:
        """Move the clock forward; rejects travel into the past."""
        if time < self.now:
            raise SimulationError(f"clock cannot go backwards: {time} < {self.now}")
        self.now = time
