"""Simulation clock."""

from __future__ import annotations

from repro.util.errors import SimulationError


class SimClock:
    """Monotonic simulation clock owned by the scheduler.

    Time is a float in abstract "time units"; latency models define what a
    unit means (we use 1.0 == one post-GST message delay bound ``delta`` by
    default, so "two communication rounds" in the paper is ~2.0 units).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward; rejects travel into the past."""
        if time < self._now:
            raise SimulationError(f"clock cannot go backwards: {time} < {self._now}")
        self._now = time
