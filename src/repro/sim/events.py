"""Scheduled-event and timer records for the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class ScheduledEvent:
    """An entry in the scheduler's priority queue.

    Ordering is ``(time, seq)``: events at equal times fire in scheduling
    order, which makes runs fully deterministic.  The callback is excluded
    from comparisons.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class TimerHandle:
    """Cancellation handle returned by :meth:`ProcessHost.set_timer`.

    Cancellation is lazy: the event stays queued but is skipped when its
    time comes.  ``fired`` distinguishes "ran" from "cancelled first".
    """

    def __init__(self, event: ScheduledEvent) -> None:
        self._event = event
        self.fired = False

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled and not self.fired

    def cancel(self) -> None:
        self._event.cancelled = True

    def _mark_fired(self) -> None:
        self.fired = True
